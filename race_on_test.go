//go:build race

package rvpsim_test

const raceEnabled = true
