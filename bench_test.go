package rvpsim_test

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its result at a reduced instruction budget
// and reports the headline number of that experiment as a custom metric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkFigure1  — average "register or lvp" load-reuse percentage
//	BenchmarkFigure3  — average static-RVP IPC gain over no prediction
//	BenchmarkFigure4  — selective-reissue IPC advantage over reissue
//	BenchmarkFigure5  — average drvp_dead_lv speedup (loads)
//	BenchmarkFigure6  — average drvp_all_dead_lv speedup (all insts)
//	BenchmarkTable2   — average drvp-dead coverage and accuracy
//	BenchmarkFigure7  — realloc speedup recovered vs ideal (fraction)
//	BenchmarkFigure8  — average drvp_all_dead_lv speedup on the 16-wide
//
// Absolute values shift with the budget; the shapes are asserted by the
// unit tests in internal/exp.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rvpsim"
	"rvpsim/internal/core"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/server"
	"rvpsim/internal/stats"
	"rvpsim/internal/workloads"
)

const benchInsts = 300_000

func newExperiments(b *testing.B) *rvpsim.Experiments {
	b.Helper()
	return rvpsim.NewExperiments(rvpsim.ExperimentOptions{
		Insts:        benchInsts,
		ProfileInsts: benchInsts / 4,
		Threshold:    0.80,
		Parallel:     true,
	})
}

// rowMean averages a row over the workload columns (ignoring aggregate
// columns like "average").
func rowMean(t *rvpsim.Table, label string, cols []string) float64 {
	row := t.Row(label)
	var vs []float64
	for _, c := range cols {
		if v, ok := row[c]; ok {
			vs = append(vs, v)
		}
	}
	return stats.Mean(vs)
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		row := t.Row("register or lvp")
		b.ReportMetric((row["C avg"]+row["F avg"])/2, "orlvp_%")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		names := rvpsim.Workloads()
		base := rowMean(t, "no_predict", names)
		srvp := rowMean(t, "srvp_live_lv", names)
		b.ReportMetric(srvp/base, "srvp_ipc_ratio")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		names := rvpsim.Workloads()
		sel := rowMean(t, "srvp_selective", names)
		re := rowMean(t, "srvp_reissue", names)
		b.ReportMetric(sel/re, "selective_vs_reissue")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Row("drvp_dead_lv")["average"], "avg_speedup")
		b.ReportMetric(t.Row("lvp")["average"], "lvp_speedup")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Row("drvp_all_dead_lv")["average"], "avg_speedup")
		b.ReportMetric(t.Row("Grp_all")["average"], "grp_speedup")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		cov, acc, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		names := rvpsim.Workloads()
		b.ReportMetric(rowMean(cov, "drvp dead", names), "coverage_%")
		b.ReportMetric(rowMean(acc, "drvp dead", names), "accuracy_%")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		cols := []string{"hydro2d", "li", "mgrid", "su2cor"}
		realloc := rowMean(t, "drvp_all_dead_lv_realloc", cols)
		ideal := rowMean(t, "drvp_all_dead_lv(ideal)", cols)
		b.ReportMetric(realloc/ideal, "realloc_vs_ideal")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newExperiments(b)
		t, err := e.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Row("drvp_all_dead_lv")["average"], "avg_speedup_16wide")
	}
}

// BenchmarkSimulator measures raw simulation throughput (committed
// instructions per wall-clock second) on one representative workload.
func BenchmarkSimulator(b *testing.B) {
	prog, err := rvpsim.Workload("li")
	if err != nil {
		b.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		st, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Committed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim_insts/s")
}

// BenchmarkSimulatorParallel measures aggregate machine throughput: W
// goroutines, each owning a private simulator and predictor (reused
// across iterations, exercising the recycled-runState path sweeps use),
// all committing against one shared metrics registry. Sub-benchmarks at
// 1, 2, and GOMAXPROCS workers expose the scaling curve; benchreg
// distills sim_insts_per_machine/s per point and gates the full-width
// scaling efficiency (IPS at GOMAXPROCS over GOMAXPROCS x IPS at 1)
// against benchreg.MinScalingEfficiency.
func BenchmarkSimulatorParallel(b *testing.B) {
	prog, err := workloads.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	cpus := runtime.GOMAXPROCS(0)
	widths := []int{1, 2}
	if cpus > 2 {
		widths = append(widths, cpus)
	}
	reg := obs.NewRegistry()
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var insts atomic.Uint64
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sim := pipeline.MustNew(cfg)
					sim.SetObserver(obs.NewObserverWith(reg))
					pred := core.MustDynamicRVP(core.DefaultCounterConfig())
					for n := 0; n < b.N; n++ {
						st, err := sim.Run(prog, pred, benchInsts)
						if err != nil {
							b.Error(err)
							return
						}
						insts.Add(st.Committed)
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(insts.Load())/b.Elapsed().Seconds(), "sim_insts_per_machine/s")
			b.ReportMetric(float64(cpus), "machine_cpus")
		})
	}
}

// BenchmarkServeObserved guards the service-layer observability cost:
// the same job pushed end to end through a full in-process daemon with
// telemetry disabled (bare) and with the always-on production shape
// enabled (observed: tracer, per-job event feed, progress and
// checkpoint hooks, flight recorder, slog). Both report jobs/s; the
// benchreg harness gates the observed-vs-bare gap at 5%.
func BenchmarkServeObserved(b *testing.B) {
	const serveInsts = 20_000
	serve := func(b *testing.B, disable bool) {
		srv, err := server.New(server.Config{
			StateDir:         b.TempDir(),
			Workers:          2,
			QueueDepth:       64,
			DefaultInsts:     serveInsts,
			JobTimeout:       time.Minute,
			DrainTimeout:     5 * time.Second,
			ProgressEvery:    5_000,
			DisableTelemetry: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		body := []byte(fmt.Sprintf(`{"kind":"run","workload":"go","predictor":"rvp","insts":%d}`, serveInsts))

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var st server.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			for st.State != server.StateSucceeded {
				if st.State == server.StateFailed {
					b.Fatalf("job failed: %+v", st.Error)
				}
				time.Sleep(time.Millisecond)
				r, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
				if err != nil {
					b.Fatal(err)
				}
				if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
					b.Fatal(err)
				}
				r.Body.Close()
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("bare", func(b *testing.B) { serve(b, true) })
	b.Run("observed", func(b *testing.B) { serve(b, false) })
}

// BenchmarkObserverOverhead guards the observability layer's hot-path
// cost: run the same workload bare and with an observer attached (metrics
// registry live, no event sinks — the always-on production shape) and
// report both throughputs. The sub-benchmark deltas should stay within
// ~5%; compare with
//
//	go test -bench BenchmarkObserverOverhead -count 5
func BenchmarkObserverOverhead(b *testing.B) {
	prog, err := rvpsim.Workload("li")
	if err != nil {
		b.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()

	b.Run("baseline", func(b *testing.B) {
		var insts uint64
		for i := 0; i < b.N; i++ {
			st, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), benchInsts)
			if err != nil {
				b.Fatal(err)
			}
			insts += st.Committed
		}
		b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim_insts/s")
	})
	b.Run("observed", func(b *testing.B) {
		reg := rvpsim.NewObserver().Registry()
		var insts uint64
		for i := 0; i < b.N; i++ {
			o := rvpsim.NewObserverWith(reg)
			st, err := rvpsim.RunObserved(prog, cfg, rvpsim.DynamicRVP(), benchInsts, o)
			if err != nil {
				b.Fatal(err)
			}
			insts += st.Committed
		}
		b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim_insts/s")
	})
}
