package rvpsim_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"rvpsim"
)

const testSrc = `
.text
.proc main
main:
        li      r9, 2000
outer:
        lda     r2, table
        li      r1, 8
loop:
        ldq     r3, 0(r2)
        add     r4, r4, r3
        addi    r2, r2, 8
        subi    r1, r1, 1
        bne     r1, loop
        subi    r9, r9, 1
        bne     r9, outer
        halt
.endproc
.data
.org 0x100000
table:  .quad 3, 3, 3, 3, 3, 3, 3, 3
`

func TestFacadeAssembleAndRun(t *testing.T) {
	prog, err := rvpsim.Assemble("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "t" || prog.Len() == 0 {
		t.Errorf("program meta wrong: %s %d", prog.Name(), prog.Len())
	}
	st, err := rvpsim.Run(prog, rvpsim.BaselineConfig(), rvpsim.NoPrediction(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 50_000 || st.IPC() <= 0 {
		t.Errorf("run stats wrong: %+v", st)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := rvpsim.Workloads()
	if len(names) != 9 {
		t.Fatalf("workloads = %v", names)
	}
	prog, err := rvpsim.Workload("li")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() == 0 {
		t.Error("empty workload")
	}
	if _, err := rvpsim.Workload("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestFacadePredictors(t *testing.T) {
	prog, err := rvpsim.Assemble("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	drvp, err := rvpsim.NewDynamicRVPWith(rvpsim.DefaultCounterConfig())
	if err != nil {
		t.Fatal(err)
	}
	lvp, err := rvpsim.NewLVPWith(rvpsim.DefaultLVPConfig())
	if err != nil {
		t.Fatal(err)
	}
	preds := []rvpsim.Predictor{
		rvpsim.NoPrediction(),
		rvpsim.DynamicRVP(),
		rvpsim.DynamicRVPLoads(),
		rvpsim.LastValue(true),
		rvpsim.LastValue(false),
		rvpsim.GabbayRegisterPredictor(),
		drvp,
		lvp,
	}
	for _, p := range preds {
		st, err := rvpsim.Run(prog, rvpsim.BaselineConfig(), p, 30_000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if st.Committed == 0 {
			t.Errorf("%s: no instructions committed", p.Name())
		}
	}
}

func TestFacadeProfileHintsAndStatic(t *testing.T) {
	prog, err := rvpsim.Assemble("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := rvpsim.ProfileProgram(prog, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	reuse := prof.LoadReuse()
	if reuse.Same < 0.9 {
		t.Errorf("constant-table load reuse = %.2f, want high", reuse.Same)
	}
	marked := prof.MarkedLoads(0.8, rvpsim.SupportLiveLV)
	if len(marked) == 0 {
		t.Fatal("no loads marked for static RVP")
	}
	hints := prof.Hints(0.8, rvpsim.SupportDeadLV, false)
	st, err := rvpsim.Run(prog, rvpsim.BaselineConfig(), rvpsim.StaticRVP(marked, hints), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Predicted == 0 {
		t.Error("static RVP made no predictions")
	}
	if st.Accuracy() < 0.95 {
		t.Errorf("static RVP accuracy %.2f on a constant table", st.Accuracy())
	}
}

func TestFacadeReallocate(t *testing.T) {
	prog, err := rvpsim.Workload("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := rvpsim.ProfileProgram(prog, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, report, err := rvpsim.Reallocate(prog, prof, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten.Len() != prog.Len() {
		t.Error("re-allocation changed instruction count")
	}
	if report.LVApplied+report.DeadApplied+report.LVDropped+report.DeadDropped == 0 {
		t.Error("re-allocation saw no reuse candidates on hydro2d")
	}
	if _, err := rvpsim.Run(rewritten, rvpsim.BaselineConfig(), rvpsim.DynamicRVP(), 50_000); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSpeedupOnReusefulProgram(t *testing.T) {
	prog, err := rvpsim.Workload("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	base, err := rvpsim.Run(prog, cfg, rvpsim.NoPrediction(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	rvp, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if rvp.Cycles >= base.Cycles {
		t.Errorf("no RVP speedup on m88ksim: %d vs %d cycles", rvp.Cycles, base.Cycles)
	}
}

func TestFacadeExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are exercised in internal/exp")
	}
	e := rvpsim.NewExperiments(rvpsim.ExperimentOptions{
		Insts: 40_000, ProfileInsts: 20_000, Threshold: 0.8, Parallel: true,
	})
	tab, err := e.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.RowLabels()) != 4 {
		t.Errorf("Figure1 rows = %v", tab.RowLabels())
	}
	if s := e.Table1(); s == "" {
		t.Error("Table1 empty")
	}
	if md := tab.Markdown(); md == "" {
		t.Error("markdown rendering empty")
	}
}

func TestFacadeRunTraced(t *testing.T) {
	prog, err := rvpsim.Assemble("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	st, err := rvpsim.RunTraced(prog, rvpsim.BaselineConfig(), rvpsim.DynamicRVP(), 10_000,
		func(tr rvpsim.TraceRecord) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != st.Committed {
		t.Errorf("traced %d records, committed %d", n, st.Committed)
	}
	if prog.InstString(0) == "" || prog.InstString(1<<30) != "<out of range>" {
		t.Error("InstString misbehaves")
	}
	if prog.Disassemble() == "" {
		t.Error("Disassemble empty")
	}
}

func TestFacadeStorageBits(t *testing.T) {
	if rvpsim.StorageBits(rvpsim.DynamicRVP()) != 3072 {
		t.Errorf("RVP storage = %d, want 3072", rvpsim.StorageBits(rvpsim.DynamicRVP()))
	}
	if rvpsim.StorageBits(rvpsim.LastValue(false)) <= rvpsim.StorageBits(rvpsim.DynamicRVP()) {
		t.Error("LVP storage not above RVP")
	}
	if rvpsim.StorageBits(rvpsim.Context()) <= rvpsim.StorageBits(rvpsim.Stride()) {
		t.Error("context storage not above stride")
	}
	if rvpsim.StorageBits(rvpsim.NoPrediction()) != 0 {
		t.Error("NoPrediction has storage")
	}
}

func TestFacadeCheckpointResume(t *testing.T) {
	prog, err := rvpsim.Workload("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	ref, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), 30_000)
	if err != nil {
		t.Fatal(err)
	}

	// Run the first 12k instructions, checkpointing to disk along the way.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	saves := 0
	_, err = rvpsim.RunCheckpointed(context.Background(), prog, cfg, rvpsim.DynamicRVP(), 12_000, 4_000,
		func(snap *rvpsim.Snapshot) error {
			saves++
			return rvpsim.SaveCheckpoint(path, snap)
		})
	if err != nil {
		t.Fatal(err)
	}
	if saves == 0 {
		t.Fatal("no periodic checkpoints taken")
	}

	// Resume from the last on-disk checkpoint: final stats must be
	// identical to the uninterrupted run.
	snap, err := rvpsim.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rvpsim.Resume(snap, prog, rvpsim.DynamicRVP(), 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("resumed stats differ from uninterrupted run:\ngot  %+v\nwant %+v", got, ref)
	}

	// A resume against the wrong program is corruption, not garbage.
	other, err := rvpsim.Workload("go")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rvpsim.Resume(snap, other, rvpsim.DynamicRVP(), 30_000); !errors.Is(err, rvpsim.ErrCorrupt) {
		t.Errorf("wrong-program resume: want ErrCorrupt, got %v", err)
	}
}

func TestFacadeValidate(t *testing.T) {
	prog, err := rvpsim.Workload("perl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rvpsim.Validate(prog, rvpsim.BaselineConfig(),
		rvpsim.DynamicRVP, rvpsim.LockstepOptions{MaxInsts: 20_000, CheckEvery: 5_000})
	if err != nil {
		t.Fatalf("divergence on a correct machine: %v", err)
	}
	if res.Committed == 0 || res.StateChecks == 0 {
		t.Errorf("empty validation run: %+v", res)
	}
}
