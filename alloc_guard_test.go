package rvpsim_test

// Steady-state allocation guard for the simulator hot loop. A Run has
// unavoidable per-run setup cost (capacity rings, dense predictor
// state, the memory page table), so absolute allocs/op is nonzero; what
// must stay at zero is the marginal cost of simulating MORE
// instructions. The guard therefore measures the delta between a long
// and a short run: (allocs(300k) - allocs(100k)) / 200k extra
// instructions must be ~0. Any per-commit allocation sneaking back into
// the pipeline loop (pendingPred churn, trace records, map growth)
// shows up here as thousands of allocations and fails loudly.

import (
	"testing"

	"rvpsim"
)

const (
	allocGuardShort = 100_000
	allocGuardLong  = 300_000
)

func allocsForRun(t *testing.T, insts uint64) float64 {
	t.Helper()
	prog, err := rvpsim.Workload("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	return testing.AllocsPerRun(3, func() {
		if _, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), insts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestZeroAllocsPerCommit(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("simulates 1.2M instructions; skipped with -short")
	}
	short := allocsForRun(t, allocGuardShort)
	long := allocsForRun(t, allocGuardLong)
	perCommit := (long - short) / float64(allocGuardLong-allocGuardShort)
	t.Logf("allocs: short(%d)=%.0f long(%d)=%.0f -> %.6f allocs/commit",
		allocGuardShort, short, allocGuardLong, long, perCommit)
	// Tolerance admits measurement noise (GC-triggered runtime allocs),
	// not real per-commit allocation: one alloc per commit would read 1.0.
	if perCommit > 0.001 {
		t.Fatalf("steady-state allocation regression: %.6f allocs/commit (want ~0)", perCommit)
	}
}
