package rvpsim_test

// Steady-state allocation guard for the simulator hot loop. A Run has
// unavoidable per-run setup cost (capacity rings, dense predictor
// state, the memory page table), so absolute allocs/op is nonzero; what
// must stay at zero is the marginal cost of simulating MORE
// instructions. The guard therefore measures the delta between a long
// and a short run: (allocs(300k) - allocs(100k)) / 200k extra
// instructions must be ~0. Any per-commit allocation sneaking back into
// the pipeline loop (pendingPred churn, trace records, map growth)
// shows up here as thousands of allocations and fails loudly.

import (
	"sync"
	"testing"

	"rvpsim"
	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/workloads"
)

const (
	allocGuardShort = 100_000
	allocGuardLong  = 300_000
)

func allocsForRun(t *testing.T, insts uint64) float64 {
	t.Helper()
	prog, err := rvpsim.Workload("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	return testing.AllocsPerRun(3, func() {
		if _, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), insts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestZeroAllocsPerCommit(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("simulates 1.2M instructions; skipped with -short")
	}
	short := allocsForRun(t, allocGuardShort)
	long := allocsForRun(t, allocGuardLong)
	perCommit := (long - short) / float64(allocGuardLong-allocGuardShort)
	t.Logf("allocs: short(%d)=%.0f long(%d)=%.0f -> %.6f allocs/commit",
		allocGuardShort, short, allocGuardLong, long, perCommit)
	// Tolerance admits measurement noise (GC-triggered runtime allocs),
	// not real per-commit allocation: one alloc per commit would read 1.0.
	if perCommit > 0.001 {
		t.Fatalf("steady-state allocation regression: %.6f allocs/commit (want ~0)", perCommit)
	}
}

// TestZeroAllocsPerCommitParallel is the same marginal-cost guard on the
// machine-saturation path: several goroutines each drive a private,
// reused simulator (the recycled-runState arena sweeps rely on), so any
// per-commit allocation OR cross-worker allocator contention structure
// (a shared pool, a global free list) that sneaks into the loop shows up
// as a nonzero delta. Workers each run to completion inside one
// AllocsPerRun body; the counter is process-wide, so the delta is
// normalized by total extra instructions across all workers.
func TestZeroAllocsPerCommitParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("simulates 4.8M instructions; skipped with -short")
	}
	const workers = 4
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.BaselineConfig()
	sims := make([]*pipeline.Sim, workers)
	preds := make([]*core.DynamicRVP, workers)
	for i := range sims {
		sims[i] = pipeline.MustNew(cfg)
		preds[i] = core.MustDynamicRVP(core.DefaultCounterConfig())
		// One warmup run so every worker's runState arena exists before
		// measurement — steady state, as in a sweep's second cell onward.
		if _, err := sims[i].Run(prog, preds[i], allocGuardShort); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(insts uint64) float64 {
		return testing.AllocsPerRun(3, func() {
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := sims[i].Run(prog, preds[i], insts); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
		})
	}
	short := measure(allocGuardShort)
	long := measure(allocGuardLong)
	perCommit := (long - short) / float64(workers*(allocGuardLong-allocGuardShort))
	t.Logf("parallel allocs: short=%.0f long=%.0f -> %.6f allocs/commit (%d workers)",
		short, long, perCommit, workers)
	if perCommit > 0.001 {
		t.Fatalf("parallel steady-state allocation regression: %.6f allocs/commit (want ~0)", perCommit)
	}
}
