// Recovery compares the paper's three value-misprediction recovery
// schemes — refetch, reissue, and selective reissue (Section 4.3 /
// Figure 4) — on a workload where predictions are plentiful but not
// perfect, showing the queue-pressure trade-off: refetch has the highest
// mispredict cost but imposes no cost on correct predictions, while
// reissue holds every younger instruction in the queue.
package main

import (
	"fmt"
	"log"

	"rvpsim"
)

func main() {
	const budget = 1_000_000
	workloads := []string{"m88ksim", "su2cor", "turb3d"}
	schemes := []struct {
		name string
		rec  rvpsim.Recovery
	}{
		{"refetch", rvpsim.RecoverRefetch},
		{"reissue", rvpsim.RecoverReissue},
		{"selective", rvpsim.RecoverSelective},
	}

	fmt.Printf("%-10s %12s %12s %12s %12s\n", "workload", "no_predict", "refetch", "reissue", "selective")
	for _, wl := range workloads {
		prog, err := rvpsim.Workload(wl)
		if err != nil {
			log.Fatal(err)
		}
		cfg := rvpsim.BaselineConfig()
		base, err := rvpsim.Run(prog, cfg, rvpsim.NoPrediction(), budget)
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-10s %12.3f", wl, base.IPC())
		for _, s := range schemes {
			cfg := rvpsim.BaselineConfig()
			cfg.Recovery = s.rec
			st, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), budget)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %12.3f", st.IPC())
		}
		fmt.Println(row)
	}
	fmt.Println("\nIPC under dynamic RVP per recovery scheme (higher is better).")
	fmt.Println("Refetch pays a full pipeline flush per mispredicted use; reissue and")
	fmt.Println("selective pay one cycle but hold instructions in the issue queue.")
}
