// Quickstart: assemble a tiny program, run it with and without register
// value prediction, and print the speedup — the smallest end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"rvpsim"
)

// src sums a table whose entries are mostly the same value: the load's
// result is usually already in its destination register, so dynamic RVP
// predicts it and dependent instructions issue without waiting.
const src = `
.text
.proc main
main:
        li      r9, 30000           ; outer repetitions
outer:
        lda     r2, table
        li      r1, 64
        clr     r4
loop:
        ldq     r3, 0(r2)           ; usually loads the same value
        mul     r5, r3, r3          ; dependent work
        add     r4, r4, r5
        addi    r2, r2, 8
        subi    r1, r1, 1
        bne     r1, loop
        subi    r9, r9, 1
        bne     r9, outer
        mov     r0, r4
        halt
.endproc

.data
.org 0x100000
table:
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 7
        .quad 7, 7, 7, 7, 7, 7, 7, 9
`

func main() {
	prog, err := rvpsim.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	const budget = 500_000

	base, err := rvpsim.Run(prog, cfg, rvpsim.NoPrediction(), budget)
	if err != nil {
		log.Fatal(err)
	}
	rvp, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("no prediction: %8d cycles  (IPC %.3f)\n", base.Cycles, base.IPC())
	fmt.Printf("dynamic RVP:   %8d cycles  (IPC %.3f)\n", rvp.Cycles, rvp.IPC())
	fmt.Printf("predicted %.1f%% of instructions at %.1f%% accuracy\n",
		100*rvp.Coverage(), 100*rvp.Accuracy())
	fmt.Printf("speedup: %.3f\n", float64(base.Cycles)/float64(rvp.Cycles))
}
