// Patterns demonstrates the paper's Figure 2: three value-reuse patterns
// that register allocation can turn into same-register reuse. For each
// pattern it assembles a "naive" and a "reuse-aware" version of the same
// kernel, profiles both, and shows the key load's same-register reuse
// appearing — plus the dynamic-RVP speedup the transformation unlocks.
package main

import (
	"fmt"
	"log"

	"rvpsim"
)

type pattern struct {
	name, note   string
	naive, aware string
}

var patterns = []pattern{
	{
		name: "(a) correlated values",
		note: "the load's value always equals what another instruction computed;\n      assigning both the same destination register exposes the reuse",
		// I1 computes a bound; the load later re-reads the same bound from
		// memory. Naive code puts them in different registers.
		naive: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, cell
        li      r6, 640             ; I1: bound (also stored at cell)
        stq     r6, 0(r2)
loop:
        ldq     r3, 0(r2)           ; I3: loads the bound into r3 (naive)
        add     r4, r3, r6
        li      r3, 0               ; r3 reused as scratch: kills same-reg
        add     r4, r4, r3
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
cell:   .quad 0
`,
		aware: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, cell
        li      r6, 640
        stq     r6, 0(r2)
loop:
        ldq     r6, 0(r2)           ; I3: same register as I1 -> reuse
        add     r4, r6, r6
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
cell:   .quad 0
`,
	},
	{
		name: "(b) memory renaming",
		note: "a load usually reads what a nearby store wrote; loading into the\n      store's source register turns the forwarding into register reuse",
		naive: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, slot
loop:
        li      r4, 77              ; value to communicate
        stq     r4, 0(r2)           ; I1: store r4
        ldq     r3, 0(r2)           ; I2: load into a different register
        add     r5, r3, r3
        li      r3, 0               ; r3 reused as scratch: kills same-reg
        add     r5, r5, r3
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
slot:   .quad 0
`,
		aware: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, slot
loop:
        li      r4, 77
        stq     r4, 0(r2)
        ldq     r4, 0(r2)           ; I2: same register as the store data
        add     r5, r4, r4
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
slot:   .quad 0
`,
	},
	{
		name: "(c) last-value reuse",
		note: "an intervening write to the load's register hides its last-value\n      locality; moving that write to another register exposes it",
		naive: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, cell
loop:
        ldq     r7, 0(r2)           ; I1: always loads the same value
        add     r4, r7, r7
        li      r7, 999             ; I2: clobbers r7 (Figure 2c)
        add     r5, r7, r4
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
cell:   .quad 31
`,
		aware: `
.text
.proc main
main:
        li      r9, 60000
        lda     r2, cell
loop:
        ldq     r7, 0(r2)
        add     r4, r7, r7
        li      r6, 999             ; I2 re-targeted: r7 untouched
        add     r5, r6, r4
        subi    r9, r9, 1
        bne     r9, loop
        halt
.endproc
.data
.org 0x100000
cell:   .quad 31
`,
	},
}

func measure(src string) (same float64, hints int) {
	prog, err := rvpsim.Assemble("pattern", src)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := rvpsim.ProfileProgram(prog, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	return prof.LoadReuse().Same, len(prof.Hints(0.8, rvpsim.SupportLiveLV, false))
}

func main() {
	fmt.Println("Figure 2: reuse patterns exposed by register allocation")
	for _, p := range patterns {
		nSame, nHints := measure(p.naive)
		aSame, aHints := measure(p.aware)
		fmt.Printf("\n%s\n      %s\n", p.name, p.note)
		fmt.Printf("      naive:       same-register load reuse %5.1f%%, profiler hints %d\n", 100*nSame, nHints)
		fmt.Printf("      reuse-aware: same-register load reuse %5.1f%%, profiler hints %d\n", 100*aSame, aHints)
	}
	fmt.Println("\nThe profiler finds the reuse the naive allocation hides (hints > 0);")
	fmt.Println("the reuse-aware allocation exposes it as plain same-register reuse.")
}
