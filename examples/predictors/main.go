// Predictors compares storageless RVP against the whole buffer-based
// hierarchy — LVP, stride, and a finite-context predictor — on several
// workloads, printing each scheme's speedup next to its hardware storage
// cost. This is the cost/benefit argument at the heart of the paper: RVP
// needs 3 Kbit of counters; the buffer-based schemes need 100-700 Kbit.
package main

import (
	"fmt"
	"log"

	"rvpsim"
)

func main() {
	const budget = 1_000_000
	workloadNames := []string{"m88ksim", "hydro2d", "turb3d", "li"}

	preds := []struct {
		name string
		mk   func() rvpsim.Predictor
	}{
		{"drvp (storageless)", rvpsim.DynamicRVP},
		{"G&M register pred.", rvpsim.GabbayRegisterPredictor},
		{"lvp", func() rvpsim.Predictor { return rvpsim.LastValue(false) }},
		{"stride", rvpsim.Stride},
		{"context (order 2)", rvpsim.Context},
	}

	fmt.Printf("%-20s %10s", "predictor", "storage")
	for _, w := range workloadNames {
		fmt.Printf(" %9s", w)
	}
	fmt.Println()

	base := map[string]int64{}
	for _, w := range workloadNames {
		prog, err := rvpsim.Workload(w)
		if err != nil {
			log.Fatal(err)
		}
		st, err := rvpsim.Run(prog, rvpsim.BaselineConfig(), rvpsim.NoPrediction(), budget)
		if err != nil {
			log.Fatal(err)
		}
		base[w] = st.Cycles
	}

	for _, p := range preds {
		bits := rvpsim.StorageBits(p.mk())
		fmt.Printf("%-20s %9.1fKb", p.name, float64(bits)/1024)
		for _, w := range workloadNames {
			prog, err := rvpsim.Workload(w)
			if err != nil {
				log.Fatal(err)
			}
			st, err := rvpsim.Run(prog, rvpsim.BaselineConfig(), p.mk(), budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.3f", float64(base[w])/float64(st.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\nSpeedup over no prediction; storage = value-prediction state only.")
	fmt.Println("RVP's counters are ~2% of LVP's table and ~0.4% of the context predictor's.")
}
