// Sweep runs the ablations DESIGN.md calls out: confidence-counter
// threshold, tagged vs untagged RVP counters (the paper reports untagged
// slightly wins), LVP table size (the loop-bigger-than-table interference
// effect), and the extra-read-port limit for non-load predictions.
package main

import (
	"fmt"
	"log"
	"strings"

	"rvpsim"
)

const budget = 500_000

func run(prog *rvpsim.Program, cfg rvpsim.Config, pred rvpsim.Predictor) rvpsim.Stats {
	st, err := rvpsim.Run(prog, cfg, pred, budget)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func must(p rvpsim.Predictor, err error) rvpsim.Predictor {
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// bigLoopSrc generates a loop body with 1024 unrolled load+use pairs, all
// loading the same constant: more static predictable instructions than a
// 1K-entry value table can hold.
func bigLoopSrc() string {
	var b strings.Builder
	b.WriteString(".text\n.proc main\nmain:\n        li r9, 400\n        lda r2, table\nouter:\n")
	for i := 0; i < 1024; i++ {
		fmt.Fprintf(&b, "        ldq r%d, %d(r2)\n", 3+i%4, (i%8)*8)
		fmt.Fprintf(&b, "        add r7, r7, r%d\n", 3+i%4)
	}
	b.WriteString("        subi r9, r9, 1\n        bne r9, outer\n        halt\n.endproc\n")
	b.WriteString(".data\n.org 0x100000\ntable: .quad 5, 5, 5, 5, 5, 5, 5, 5\n")
	return b.String()
}

func main() {
	prog, err := rvpsim.Workload("m88ksim")
	if err != nil {
		log.Fatal(err)
	}
	cfg := rvpsim.BaselineConfig()
	base := run(prog, cfg, rvpsim.NoPrediction())

	fmt.Println("== confidence threshold sweep (dynamic RVP, m88ksim) ==")
	for _, th := range []uint8{1, 3, 5, 7} {
		cc := rvpsim.DefaultCounterConfig()
		cc.Threshold = th
		st := run(prog, cfg, must(rvpsim.NewDynamicRVPWith(cc)))
		fmt.Printf("  threshold %d: speedup %.3f, coverage %4.1f%%, accuracy %5.1f%%\n",
			th, float64(base.Cycles)/float64(st.Cycles), 100*st.Coverage(), 100*st.Accuracy())
	}

	// The paper's interference argument needs a loop with more static
	// predictable instructions than the tables have entries: an LVP value
	// file "becomes virtually useless for a loop that is larger than the
	// value prediction table", while untagged RVP counters survive on
	// positive interference. Build a big unrolled loop to show it.
	big, err := rvpsim.Assemble("bigloop", bigLoopSrc())
	if err != nil {
		log.Fatal(err)
	}
	bigBase := run(big, cfg, rvpsim.NoPrediction())

	fmt.Println("== tagged vs untagged RVP counters (2K-instruction loop) ==")
	for _, tagged := range []bool{false, true} {
		cc := rvpsim.DefaultCounterConfig()
		cc.Tagged = tagged
		st := run(big, cfg, must(rvpsim.NewDynamicRVPWith(cc)))
		fmt.Printf("  tagged=%-5v speedup %.3f, coverage %4.1f%%\n",
			tagged, float64(bigBase.Cycles)/float64(st.Cycles), 100*st.Coverage())
	}

	fmt.Println("== LVP table size sweep (2K-instruction loop) ==")
	for _, entries := range []int{256, 1024, 4096} {
		lc := rvpsim.DefaultLVPConfig()
		lc.Entries = entries
		st := run(big, cfg, must(rvpsim.NewLVPWith(lc)))
		fmt.Printf("  %4d entries: speedup %.3f, coverage %4.1f%%\n",
			entries, float64(bigBase.Cycles)/float64(st.Cycles), 100*st.Coverage())
	}

	fmt.Println("== extra read ports for non-load RVP predictions ==")
	for _, ports := range []int{1, 2, 4, 0} {
		pcfg := cfg
		pcfg.PredictPorts = ports
		st := run(prog, pcfg, rvpsim.DynamicRVP())
		label := fmt.Sprint(ports)
		if ports == 0 {
			label = "unbounded"
		}
		fmt.Printf("  ports %-9s speedup %.3f, coverage %4.1f%%, starved %d\n",
			label, float64(base.Cycles)/float64(st.Cycles), 100*st.Coverage(), st.PortStarved)
	}
}
