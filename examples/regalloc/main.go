// Regalloc demonstrates the paper's Section 7.3 compiler support: profile
// a workload's register-value reuse, re-allocate registers with Chaitin
// colouring so dead-register and last-value reuse become same-register
// reuse, and re-simulate the rewritten program with plain dynamic RVP —
// the realistic counterpart of Figure 7's ideal re-allocation bars.
package main

import (
	"fmt"
	"log"

	"rvpsim"
)

func main() {
	const budget = 1_000_000
	for _, wl := range []string{"hydro2d", "li", "su2cor"} {
		prog, err := rvpsim.Workload(wl)
		if err != nil {
			log.Fatal(err)
		}

		// Profile register-value reuse (the paper's train-input pass).
		prof, err := rvpsim.ProfileProgram(prog, budget/4)
		if err != nil {
			log.Fatal(err)
		}
		reuse := prof.LoadReuse()

		// Re-allocate registers to expose the profiled reuse.
		rewritten, report, err := rvpsim.Reallocate(prog, prof, 0.8)
		if err != nil {
			log.Fatal(err)
		}

		// Measure: baseline, RVP on the original, RVP on the rewritten.
		cfg := rvpsim.BaselineConfig()
		base, err := rvpsim.Run(prog, cfg, rvpsim.NoPrediction(), budget)
		if err != nil {
			log.Fatal(err)
		}
		before, err := rvpsim.Run(prog, cfg, rvpsim.DynamicRVP(), budget)
		if err != nil {
			log.Fatal(err)
		}
		after, err := rvpsim.Run(rewritten, cfg, rvpsim.DynamicRVP(), budget)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", wl)
		fmt.Printf("  load reuse: same %.0f%%, dead %.0f%%, any %.0f%%, or-lvp %.0f%%\n",
			100*reuse.Same, 100*reuse.Dead, 100*reuse.Any, 100*reuse.OrLV)
		fmt.Printf("  re-allocation: %d dead reuses applied (%d dropped), %d LV reuses applied (%d dropped)\n",
			report.DeadApplied, report.DeadDropped, report.LVApplied, report.LVDropped)
		fmt.Printf("  drvp speedup before re-allocation: %.3f (coverage %.1f%%)\n",
			float64(base.Cycles)/float64(before.Cycles), 100*before.Coverage())
		fmt.Printf("  drvp speedup after  re-allocation: %.3f (coverage %.1f%%)\n\n",
			float64(base.Cycles)/float64(after.Cycles), 100*after.Coverage())
	}
}
