//go:build !race

package rvpsim_test

// raceEnabled reports whether the race detector is compiled in; the
// alloc guard skips under -race because instrumentation allocates.
const raceEnabled = false
