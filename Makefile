# Developer and CI entry points for rvpsim. `make ci` is the gate a
# change must pass: vet, build, the full test suite under the race
# detector, and the cross-run determinism check.

GO ?= go

.PHONY: all ci vet build test race determinism bench fmt-check fuzz-smoke faults

all: ci

ci: vet build race determinism faults fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Short fuzzing pass: 30s per native fuzz target. Long exploratory runs
# stay manual (go test -fuzz FuzzAssemble -fuzztime 10m ./internal/asm).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAssemble -fuzztime 30s ./internal/asm

# Fault-injection invariant suite: recovery schemes must never commit a
# wrong value and must terminate under injected latency/flip/panic faults.
faults:
	$(GO) test -race ./internal/faultinject/ -run . -count 1

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
