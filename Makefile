# Developer and CI entry points for rvpsim. `make ci` is the gate a
# change must pass: vet, build, the full test suite under the race
# detector, and the cross-run determinism check.

GO ?= go

.PHONY: all ci vet build test race determinism bench fmt-check

all: ci

ci: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
