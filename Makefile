# Developer and CI entry points for rvpsim. `make ci` is the gate a
# change must pass: formatting, vet, build, the full test suite under
# the race detector, and the cross-run determinism check.

GO ?= go

.PHONY: all ci vet build test race determinism lockstep bench bench-smoke fmt-check fuzz-smoke faults

all: ci

ci: fmt-check vet build race determinism faults fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run 'TestDeterminism|TestCheckpointDeterminism' ./...

# Differential validation: run the timing pipeline and the reference
# emulator in lockstep over all nine workloads under every recovery
# scheme; any divergence in the committed stream or architectural state
# fails the target.
lockstep:
	$(GO) test -race -run TestLockstepAllWorkloads ./internal/lockstep/ -count 1

# Full benchmark sweep through the regression harness: 3 averaged
# repetitions of every benchmark, appended to BENCH_pipeline.json and
# compared against the previous recorded run (>10% IPS drop fails).
bench:
	$(GO) run ./cmd/benchreg -compare

# CI fast path: one short BenchmarkSimulator repetition through the same
# harness, written to a throwaway file — proves the benchmark and the
# harness still work without touching the tracked trajectory.
bench-smoke:
	$(GO) run ./cmd/benchreg -smoke -out BENCH_smoke.json
	@rm -f BENCH_smoke.json

# Short fuzzing pass: 30s per native fuzz target. Long exploratory runs
# stay manual (go test -fuzz FuzzAssemble -fuzztime 10m ./internal/asm).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAssemble -fuzztime 30s ./internal/asm
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecode -fuzztime 30s ./internal/isa

# Fault-injection invariant suite: recovery schemes must never commit a
# wrong value and must terminate under injected latency/flip/panic faults.
faults:
	$(GO) test -race ./internal/faultinject/ -run . -count 1

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
