# Developer and CI entry points for rvpsim. `make ci` is the gate a
# change must pass: formatting, vet, build, the full test suite under
# the race detector, and the cross-run determinism check.

GO ?= go

.PHONY: all ci vet build test race determinism lockstep bench bench-parallel bench-smoke fmt-check fuzz-smoke faults staticcheck govulncheck serve-smoke obs-smoke fleet-smoke storage-faults net-faults fsck-smoke sync-vet pgo release

all: ci

ci: fmt-check vet sync-vet staticcheck govulncheck build race determinism faults storage-faults net-faults fuzz-smoke bench-smoke bench-parallel serve-smoke obs-smoke fleet-smoke fsck-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run 'TestDeterminism|TestCheckpointDeterminism' ./...

# Differential validation: run the timing pipeline and the reference
# emulator in lockstep over all nine workloads under every recovery
# scheme; any divergence in the committed stream or architectural state
# fails the target.
lockstep:
	$(GO) test -race -run TestLockstepAllWorkloads ./internal/lockstep/ -count 1

# Full benchmark sweep through the regression harness: 3 averaged
# repetitions of every benchmark, appended to BENCH_pipeline.json and
# compared against the previous recorded run (>10% IPS drop fails).
# The machine-saturation trajectory runs after it: one simulator per
# worker at 1, 2 and NumCPU workers appended to BENCH_parallel.json,
# gating both scaling efficiency at full width (>= 0.75x linear) and
# aggregate per-machine throughput vs the previous entry.
bench:
	$(GO) run ./cmd/benchreg -compare
	$(GO) run ./cmd/benchreg -parallel -compare

# CI fast path: one short BenchmarkSimulator repetition through the same
# harness, written to a throwaway file — proves the benchmark and the
# harness still work without touching the tracked trajectory.
bench-smoke:
	$(GO) run ./cmd/benchreg -smoke -out BENCH_smoke.json
	@rm -f BENCH_smoke.json

# CI fast path for the saturation benchmark: one short repetition of
# BenchmarkSimulatorParallel through the harness to a throwaway file.
bench-parallel:
	$(GO) run ./cmd/benchreg -smoke -parallel -out BENCH_parallel_smoke.json
	@rm -f BENCH_parallel_smoke.json

# Short fuzzing pass: 30s per native fuzz target. Long exploratory runs
# stay manual (go test -fuzz FuzzAssemble -fuzztime 10m ./internal/asm).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAssemble -fuzztime 30s ./internal/asm
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecode -fuzztime 30s ./internal/isa
	$(GO) test -run '^$$' -fuzz FuzzJobRequest -fuzztime 30s ./internal/server

# Static analysis and vulnerability scanning, gated on tool presence:
# the build container ships only the go toolchain, so missing tools are
# reported and skipped rather than failing ci.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# End-to-end smoke of the service binaries: boot rvpd on an ephemeral
# port, probe health through rvpc, run one small job to completion, and
# shut the daemon down with SIGTERM. No curl, no fixed ports.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/rvpd" ./cmd/rvpd; \
	$(GO) build -o "$$tmp/rvpc" ./cmd/rvpc; \
	"$$tmp/rvpd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -state "$$tmp/state" & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "rvpd never wrote its address"; kill $$pid; exit 1; }; \
	addr="http://$$(cat "$$tmp/addr")"; \
	"$$tmp/rvpc" -server "$$addr" health; \
	"$$tmp/rvpc" -server "$$addr" submit -wait -workload go -predictor rvp -n 200000; \
	kill -TERM $$pid; wait $$pid; \
	echo "serve-smoke OK"

# Observability smoke against a live daemon: watch a job's live event
# stream end to end (queued -> started -> progress heartbeats -> done)
# and pull the merged client+server trace, asserting the cross-process
# spans (client submit, daemon admission and simulation) all landed in
# one Chrome trace file.
obs-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/rvpd" ./cmd/rvpd; \
	$(GO) build -o "$$tmp/rvpc" ./cmd/rvpc; \
	"$$tmp/rvpd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -state "$$tmp/state" -progress-every 50000 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "rvpd never wrote its address"; kill $$pid; exit 1; }; \
	addr="http://$$(cat "$$tmp/addr")"; \
	"$$tmp/rvpc" -server "$$addr" submit -watch -workload go -predictor rvp -n 200000 \
		-trace-out "$$tmp/trace.json" | tee "$$tmp/watch.log"; \
	for ev in queued started progress done; do \
		grep -q "$$ev" "$$tmp/watch.log" || { echo "watch stream missing $$ev event"; kill $$pid; exit 1; }; \
	done; \
	for span in submit admission queue_wait worker "sim:go/"; do \
		grep -q "$$span" "$$tmp/trace.json" || { echo "merged trace missing $$span span"; kill $$pid; exit 1; }; \
	done; \
	kill -TERM $$pid; wait $$pid; \
	echo "obs-smoke OK"

# Fleet smoke: coordinator + three workers on ephemeral ports, one
# worker SIGKILLed mid-sweep, and the sweep must still finish with a
# merged table. The real chaos proof (byte-identical merge, counters vs
# ledger) lives in the fleet package's -race e2e; this target proves the
# shipped binaries wire together.
fleet-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/rvpd" ./cmd/rvpd; \
	$(GO) build -o "$$tmp/rvpcoord" ./cmd/rvpcoord; \
	$(GO) build -o "$$tmp/rvpc" ./cmd/rvpc; \
	pids=""; urls=""; \
	for w in a b c; do \
		"$$tmp/rvpd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr-$$w" -state "$$tmp/w-$$w" -workers 1 & pids="$$pids $$!"; \
	done; \
	for w in a b c; do \
		for i in $$(seq 1 100); do [ -s "$$tmp/addr-$$w" ] && break; sleep 0.1; done; \
		[ -s "$$tmp/addr-$$w" ] || { echo "worker $$w never wrote its address"; kill $$pids; exit 1; }; \
		urls="$$urls,http://$$(cat "$$tmp/addr-$$w")"; \
	done; \
	urls=$${urls#,}; \
	"$$tmp/rvpcoord" -addr 127.0.0.1:0 -addr-file "$$tmp/addr-coord" -state "$$tmp/coord" \
		-workers "$$urls" -lease 3s -steal-age 1s & cpid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr-coord" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr-coord" ] || { echo "rvpcoord never wrote its address"; kill $$pids $$cpid; exit 1; }; \
	coord="http://$$(cat "$$tmp/addr-coord")"; \
	"$$tmp/rvpc" -server "$$coord" sweep -workloads go,li,perl -predictors none,rvp -n 200000 \
		| tee "$$tmp/submit.log"; \
	id=$$(sed -n 's/^sweep \([a-f0-9]*\):.*/\1/p' "$$tmp/submit.log" | head -1); \
	[ -n "$$id" ] || { echo "no sweep id parsed"; kill $$pids $$cpid; exit 1; }; \
	sleep 1; kill -9 $$(echo $$pids | awk '{print $$1}'); \
	echo "killed worker a mid-sweep"; \
	"$$tmp/rvpc" -server "$$coord" sweep -wait "$$id" | tee "$$tmp/final.log"; \
	grep -q "average" "$$tmp/final.log" || { echo "no merged table in sweep output"; kill $$pids $$cpid; exit 1; }; \
	grep -q ": done" "$$tmp/final.log" || { echo "sweep did not finish done"; kill $$pids $$cpid; exit 1; }; \
	kill -TERM $$cpid; wait $$cpid; \
	kill -TERM $$pids 2>/dev/null || true; \
	echo "fleet-smoke OK"

# Fault-injection invariant suite: recovery schemes must never commit a
# wrong value and must terminate under injected latency/flip/panic faults.
faults:
	$(GO) test -race ./internal/faultinject/ -run . -count 1

# Hostile-storage suite under the race detector: the crash-at-every-
# syscall harness over every durable store, the shared torn/corrupt-tail
# conformance matrix, the vfs fault injector's own tests, and the
# ENOSPC-degradation e2e for both services.
storage-faults:
	$(GO) test -race -count 1 ./internal/vfs/ ./internal/wal/ ./internal/wal/waltest/
	$(GO) test -race -count 1 -run 'TornTailMatrix|ENOSPC' ./internal/server/ ./internal/exp/ ./internal/fleet/

# Hostile-network suite under the race detector: the netfault seam's
# own conformance tests, the client's retry/deadline/SSE-resume tests
# against injected faults, the server's tenant/deadline/slow-loris
# admission tests, and the fleet partition-chaos e2e (real workers
# behind fault-injecting proxies, SIGKILL, byte-identical merge).
net-faults:
	$(GO) test -race -count 1 ./internal/netfault/ ./internal/client/
	$(GO) test -race -count 1 -run 'Tenant|Deadline|SlowLoris|BreakerRetryAfter' ./internal/server/
	$(GO) test -race -count 1 -run 'TestFleetPartitionChaos|TestDigestMismatched|TestLeaseFencing' ./internal/fleet/ -timeout 10m

# Durability-layer errcheck: no discarded Sync/SyncDir/Close error in
# the packages that own persistent state or pooled connections.
sync-vet:
	$(GO) test -count 1 ./internal/tools/syncvet/

# Offline-scrub smoke through the shipped binary: a torn WAL tail and a
# garbage checkpoint must be detected (exit 1), repaired / quarantined
# on request, and leave a state dir fsck then calls clean (exit 0).
fsck-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/rvpadmin" ./cmd/rvpadmin; \
	mkdir -p "$$tmp/state"; \
	printf '{"crc":1,"rec":{"torn' > "$$tmp/state/cells.jsonl"; \
	printf 'not a checkpoint' > "$$tmp/state/bad.ckpt"; \
	if "$$tmp/rvpadmin" fsck "$$tmp/state" >/dev/null; then \
		echo "fsck missed the damage"; exit 1; fi; \
	"$$tmp/rvpadmin" fsck -repair -quarantine "$$tmp/q" "$$tmp/state" >/dev/null; \
	"$$tmp/rvpadmin" fsck "$$tmp/state" >/dev/null; \
	[ -f "$$tmp/q/bad.ckpt.corrupt" ] || { echo "checkpoint not quarantined"; exit 1; }; \
	echo "fsck-smoke OK"

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Profile-guided optimization. `make pgo` captures a CPU profile of a
# representative sweep (the saturation benchmark plus one figure sweep)
# into default.pgo; `make release` then builds the binaries with that
# profile applied. The profile is a local artifact (gitignored): release
# falls back to a plain build when it is absent, so CI stays hermetic.
pgo:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorParallel|BenchmarkFigure5' \
		-benchtime 3x -count 1 -cpuprofile default.pgo -o "$$tmp/bench.test" .; \
	echo "wrote default.pgo; run 'make release' to build with it"

release:
	@mkdir -p bin
	@if [ -f default.pgo ]; then \
		echo "building with profile-guided optimization (default.pgo)"; \
		$(GO) build -pgo=default.pgo -o bin/ ./cmd/...; \
	else \
		echo "default.pgo not found; plain build (run 'make pgo' first to enable PGO)"; \
		$(GO) build -o bin/ ./cmd/...; \
	fi
