module rvpsim

go 1.22
