// Command rvprofile prints a workload's register-reuse profile: the
// Figure 1 reuse fractions and the per-instruction lists the compiler
// model consumes (same-register / dead / live / last-value).
//
// Usage:
//
//	rvprofile [-w workload | -f prog.s] [-n insts] [-t threshold] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"rvpsim"
)

func main() {
	wl := flag.String("w", "li", "workload name")
	file := flag.String("f", "", "assembly file to profile instead of a workload")
	n := flag.Uint64("n", 1_000_000, "committed-instruction budget")
	threshold := flag.Float64("t", 0.8, "predictability threshold")
	flag.Parse()

	var (
		prog *rvpsim.Program
		err  error
	)
	if *file != "" {
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			prog, err = rvpsim.Assemble(*file, string(src))
		}
	} else {
		prog, err = rvpsim.Workload(*wl)
	}
	if err != nil {
		fatal(err)
	}

	pr, err := rvpsim.ProfileProgram(prog, *n)
	if err != nil {
		fatal(err)
	}
	s := pr.LoadReuse()
	fmt.Printf("program %s: register-value reuse for loads (Figure 1 bars)\n", prog.Name())
	fmt.Printf("  same register    %5.1f%%\n", 100*s.Same)
	fmt.Printf("  dead register    %5.1f%%\n", 100*s.Dead)
	fmt.Printf("  any register     %5.1f%%\n", 100*s.Any)
	fmt.Printf("  register or lvp  %5.1f%%\n", 100*s.OrLV)

	for _, level := range []rvpsim.Support{rvpsim.SupportDead, rvpsim.SupportDeadLV, rvpsim.SupportLiveLV} {
		hints := pr.Hints(*threshold, level, false)
		fmt.Printf("hints at %.0f%% threshold, level %v: %d instructions\n",
			100**threshold, level, len(hints))
	}
	marked := pr.MarkedLoads(*threshold, rvpsim.SupportLiveLV)
	fmt.Printf("static RVP marked loads (live_lv): %d\n", len(marked))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvprofile:", err)
	os.Exit(1)
}
