// Command rvprofile prints a workload's register-reuse profile: the
// Figure 1 reuse fractions and the per-instruction lists the compiler
// model consumes (same-register / dead / live / last-value).
//
// Usage:
//
//	rvprofile [-w workload | -f prog.s] [-n insts] [-t threshold] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rvpsim"
)

func main() {
	wl := flag.String("w", "li", "workload name")
	file := flag.String("f", "", "assembly file to profile instead of a workload")
	n := flag.Uint64("n", 1_000_000, "committed-instruction budget")
	threshold := flag.Float64("t", 0.8, "predictability threshold")
	jsonOut := flag.Bool("json", false, "emit the profile summary as one JSON object")
	flag.Parse()

	var (
		prog *rvpsim.Program
		err  error
	)
	if *file != "" {
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			prog, err = rvpsim.Assemble(*file, string(src))
		}
	} else {
		prog, err = rvpsim.Workload(*wl)
	}
	if err != nil {
		fatal(err)
	}

	pr, err := rvpsim.ProfileProgram(prog, *n)
	if err != nil {
		fatal(err)
	}
	s := pr.LoadReuse()
	if *jsonOut {
		type hintCount struct {
			Level string `json:"level"`
			Hints int    `json:"hints"`
		}
		out := struct {
			Program   string      `json:"program"`
			Insts     int         `json:"static_insts"`
			Budget    uint64      `json:"budget"`
			Threshold float64     `json:"threshold"`
			Same      float64     `json:"same_register"`
			Dead      float64     `json:"dead_register"`
			Any       float64     `json:"any_register"`
			OrLV      float64     `json:"register_or_lvp"`
			Hints     []hintCount `json:"hints"`
			Marked    int         `json:"marked_loads_live_lv"`
		}{
			Program: prog.Name(), Insts: prog.Len(), Budget: *n, Threshold: *threshold,
			Same: s.Same, Dead: s.Dead, Any: s.Any, OrLV: s.OrLV,
		}
		for _, level := range []rvpsim.Support{rvpsim.SupportDead, rvpsim.SupportDeadLV, rvpsim.SupportLiveLV} {
			out.Hints = append(out.Hints, hintCount{Level: level.String(), Hints: len(pr.Hints(*threshold, level, false))})
		}
		out.Marked = len(pr.MarkedLoads(*threshold, rvpsim.SupportLiveLV))
		b, jerr := json.MarshalIndent(out, "", "  ")
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("program %s: register-value reuse for loads (Figure 1 bars)\n", prog.Name())
	fmt.Printf("  same register    %5.1f%%\n", 100*s.Same)
	fmt.Printf("  dead register    %5.1f%%\n", 100*s.Dead)
	fmt.Printf("  any register     %5.1f%%\n", 100*s.Any)
	fmt.Printf("  register or lvp  %5.1f%%\n", 100*s.OrLV)

	for _, level := range []rvpsim.Support{rvpsim.SupportDead, rvpsim.SupportDeadLV, rvpsim.SupportLiveLV} {
		hints := pr.Hints(*threshold, level, false)
		fmt.Printf("hints at %.0f%% threshold, level %v: %d instructions\n",
			100**threshold, level, len(hints))
	}
	marked := pr.MarkedLoads(*threshold, rvpsim.SupportLiveLV)
	fmt.Printf("static RVP marked loads (live_lv): %d\n", len(marked))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvprofile:", err)
	os.Exit(1)
}
