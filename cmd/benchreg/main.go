// Command benchreg runs the repository's benchmark suite and appends
// the distilled result to the BENCH_pipeline.json trajectory.
//
// Usage:
//
//	benchreg [-out BENCH_pipeline.json] [-bench pattern] [-benchtime 3x]
//	         [-count 3] [-label text] [-insts 300000]
//	         [-compare] [-threshold 0.10] [-smoke]
//
// Default mode measures and appends. With -compare, the new run is
// additionally checked against the previous entry that carries
// simulator metrics: an IPS drop larger than -threshold (fractional)
// exits nonzero — the run is still saved first, so the regression is on
// record. -smoke is the CI fast path: one short BenchmarkSimulator
// repetition written to a throwaway file, proving the harness and the
// benchmark both still work without perturbing the tracked trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"rvpsim/internal/benchreg"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_pipeline.json", "trajectory file to append to")
		dir       = flag.String("dir", ".", "package directory holding bench_test.go")
		pattern   = flag.String("bench", ".", "benchmark pattern (-bench regexp)")
		benchtime = flag.String("benchtime", "3x", "per-benchmark time or iteration budget")
		count     = flag.Int("count", 3, "repetitions to average")
		label     = flag.String("label", "", "free-form label recorded on the run")
		insts     = flag.Uint64("insts", 300_000, "instructions per BenchmarkSimulator iteration (bench_test.go benchInsts)")
		compare   = flag.Bool("compare", false, "fail (exit 1) on IPS regression vs the previous recorded run")
		threshold = flag.Float64("threshold", 0.10, "fractional IPS regression threshold for -compare")
		smoke     = flag.Bool("smoke", false, "CI smoke: one short BenchmarkSimulator rep to a throwaway file")
		verbose   = flag.Bool("v", false, "echo raw go test -bench output")
	)
	flag.Parse()

	opts := benchreg.Options{
		Dir:       *dir,
		Pattern:   *pattern,
		Benchtime: *benchtime,
		Count:     *count,
		Label:     *label,
		SimInsts:  *insts,
	}
	if *smoke {
		opts.Pattern = "^BenchmarkSimulator$"
		opts.Benchtime = "1x"
		opts.Count = 1
		if opts.Label == "" {
			opts.Label = "smoke"
		}
	}

	run, text, err := benchreg.Execute(opts)
	if err != nil {
		fmt.Fprint(os.Stderr, text)
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
	if *verbose || *smoke {
		fmt.Print(text)
	}

	f, err := benchreg.Load(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
	prev := f.LastWithSim()
	f.Runs = append(f.Runs, run)
	if err := f.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}

	if run.Sim != nil {
		fmt.Printf("benchreg: %s: %.0f sim_insts/s, %.1f ns/inst, %.5f allocs/commit (%d reps)\n",
			run.GitSHA, run.Sim.IPS, run.Sim.NsPerInst, run.Sim.AllocsPerCommit, run.Iterations)
		if prev != nil && prev.Sim.IPS > 0 {
			fmt.Printf("benchreg: previous %s: %.0f sim_insts/s (%+.1f%%)\n",
				prev.GitSHA, prev.Sim.IPS, (run.Sim.IPS/prev.Sim.IPS-1)*100)
		}
	}
	if run.Serve != nil {
		fmt.Printf("benchreg: serve path: %.1f bare vs %.1f observed jobs/s (%.1f%% observability overhead, limit %.0f%%)\n",
			run.Serve.BareJPS, run.Serve.ObservedJPS, run.Serve.OverheadFrac*100, benchreg.ServeOverheadLimit*100)
	}
	fmt.Printf("benchreg: recorded run %d in %s\n", len(f.Runs), *out)

	if *compare {
		if err := benchreg.Compare(prev, &run, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
