// Command benchreg runs the repository's benchmark suite and appends
// the distilled result to the BENCH_pipeline.json trajectory.
//
// Usage:
//
//	benchreg [-out BENCH_pipeline.json] [-bench pattern] [-benchtime 3x]
//	         [-count 3] [-label text] [-insts 300000]
//	         [-compare] [-threshold 0.10] [-smoke]
//	         [-parallel] [-machine-threshold 0.10]
//
// Default mode measures and appends. With -compare, the new run is
// additionally checked against the previous entry that carries
// simulator metrics: an IPS drop larger than -threshold (fractional)
// exits nonzero — the run is still saved first, so the regression is on
// record. -smoke is the CI fast path: one short BenchmarkSimulator
// repetition written to a throwaway file, proving the harness and the
// benchmark both still work without perturbing the tracked trajectory.
//
// -parallel switches to the machine-saturation trajectory: it runs
// BenchmarkSimulatorParallel (one simulator per worker at 1, 2 and
// GOMAXPROCS workers), records aggregate sim_insts_per_machine/s per
// point into BENCH_parallel.json (unless -out overrides it), and with
// -compare gates both the scaling efficiency at full width (absolute,
// benchreg.MinScalingEfficiency) and the per-machine throughput against
// the previous parallel entry (-machine-threshold). -smoke -parallel is
// the CI fast path for this mode.
package main

import (
	"flag"
	"fmt"
	"os"

	"rvpsim/internal/benchreg"
)

func main() {
	var (
		out        = flag.String("out", "", "trajectory file to append to (default BENCH_pipeline.json, or BENCH_parallel.json with -parallel)")
		dir        = flag.String("dir", ".", "package directory holding bench_test.go")
		pattern    = flag.String("bench", "", "benchmark pattern (-bench regexp; default . or ^BenchmarkSimulatorParallel$ with -parallel)")
		benchtime  = flag.String("benchtime", "3x", "per-benchmark time or iteration budget")
		count      = flag.Int("count", 3, "repetitions to average")
		label      = flag.String("label", "", "free-form label recorded on the run")
		insts      = flag.Uint64("insts", 300_000, "instructions per BenchmarkSimulator iteration (bench_test.go benchInsts)")
		compare    = flag.Bool("compare", false, "fail (exit 1) on IPS regression vs the previous recorded run")
		threshold  = flag.Float64("threshold", 0.10, "fractional IPS regression threshold for -compare")
		machineThr = flag.Float64("machine-threshold", 0.10, "fractional per-machine IPS regression threshold for -parallel -compare")
		parallel   = flag.Bool("parallel", false, "measure machine saturation (BenchmarkSimulatorParallel) instead of the single-simulator suite")
		smoke      = flag.Bool("smoke", false, "CI smoke: one short repetition to a throwaway file")
		verbose    = flag.Bool("v", false, "echo raw go test -bench output")
	)
	flag.Parse()

	if *out == "" {
		if *parallel {
			*out = "BENCH_parallel.json"
		} else {
			*out = "BENCH_pipeline.json"
		}
	}
	if *pattern == "" {
		if *parallel {
			*pattern = "^BenchmarkSimulatorParallel$"
		} else {
			*pattern = "."
		}
	}

	opts := benchreg.Options{
		Dir:       *dir,
		Pattern:   *pattern,
		Benchtime: *benchtime,
		Count:     *count,
		Label:     *label,
		SimInsts:  *insts,
	}
	if *smoke {
		if *parallel {
			opts.Pattern = "^BenchmarkSimulatorParallel$"
		} else {
			opts.Pattern = "^BenchmarkSimulator$"
		}
		opts.Benchtime = "1x"
		opts.Count = 1
		if opts.Label == "" {
			opts.Label = "smoke"
		}
	}

	run, text, err := benchreg.Execute(opts)
	if err != nil {
		fmt.Fprint(os.Stderr, text)
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
	if *verbose || *smoke {
		fmt.Print(text)
	}

	f, err := benchreg.Load(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
	prev := f.LastWithSim()
	prevPar := f.LastWithParallel()
	f.Runs = append(f.Runs, run)
	if err := f.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}

	if run.Sim != nil {
		fmt.Printf("benchreg: %s: %.0f sim_insts/s, %.1f ns/inst, %.5f allocs/commit (%d reps)\n",
			run.GitSHA, run.Sim.IPS, run.Sim.NsPerInst, run.Sim.AllocsPerCommit, run.Iterations)
		if prev != nil && prev.Sim.IPS > 0 {
			fmt.Printf("benchreg: previous %s: %.0f sim_insts/s (%+.1f%%)\n",
				prev.GitSHA, prev.Sim.IPS, (run.Sim.IPS/prev.Sim.IPS-1)*100)
		}
	}
	if run.Serve != nil {
		fmt.Printf("benchreg: serve path: %.1f bare vs %.1f observed jobs/s (%.1f%% observability overhead, limit %.0f%%)\n",
			run.Serve.BareJPS, run.Serve.ObservedJPS, run.Serve.OverheadFrac*100, benchreg.ServeOverheadLimit*100)
	}
	if run.Parallel != nil {
		for _, pt := range run.Parallel.Points {
			fmt.Printf("benchreg: parallel: %d worker(s): %.0f sim_insts_per_machine/s\n", pt.Workers, pt.IPS)
		}
		if run.Parallel.Efficiency > 0 {
			fmt.Printf("benchreg: parallel: scaling efficiency %.2f at %d workers (floor %.2f)\n",
				run.Parallel.Efficiency, run.Parallel.CPUs, benchreg.MinScalingEfficiency)
		}
		if prevPar != nil && prevPar.Parallel.MachineIPS() > 0 {
			fmt.Printf("benchreg: parallel: previous %s: %.0f sim_insts_per_machine/s (%+.1f%%)\n",
				prevPar.GitSHA, prevPar.Parallel.MachineIPS(),
				(run.Parallel.MachineIPS()/prevPar.Parallel.MachineIPS()-1)*100)
		}
	}
	fmt.Printf("benchreg: recorded run %d in %s\n", len(f.Runs), *out)

	if *compare {
		if err := benchreg.Compare(prev, &run, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchreg.CompareParallel(prevPar, &run, *machineThr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
