// Command rvpasm assembles, validates, and disassembles programs in the
// simulator's assembly dialect.
//
// Usage:
//
//	rvpasm -f prog.s              # assemble + validate, print a summary
//	rvpasm -f prog.s -d           # assemble, then disassemble to stdout
//	rvpasm -w li -d               # disassemble a built-in workload
//	rvpasm -f prog.s -run -n 1000 # assemble and run functionally
//	rvpasm -f prog.s -json        # emit the summary as one JSON object
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/program"
	"rvpsim/internal/workloads"
)

func main() {
	file := flag.String("f", "", "assembly file")
	wl := flag.String("w", "", "built-in workload name instead of a file")
	dis := flag.Bool("d", false, "print disassembly")
	run := flag.Bool("run", false, "run the program functionally and print final r0")
	n := flag.Uint64("n", 1_000_000, "functional run budget")
	jsonOut := flag.Bool("json", false, "emit the program summary as one JSON object")
	flag.Parse()

	var (
		p   *program.Program
		err error
	)
	switch {
	case *wl != "":
		p, err = workloads.ByName(*wl)
	case *file != "":
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			p, err = asm.Assemble(*file, string(src), asm.Options{})
		}
	default:
		err = fmt.Errorf("one of -f or -w is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvpasm:", err)
		os.Exit(1)
	}

	classes := map[isa.Class]int{}
	for _, in := range p.Insts {
		classes[isa.Classify(in.Op)]++
	}
	if *jsonOut {
		out := struct {
			Name   string         `json:"name"`
			Insts  int            `json:"insts"`
			Procs  int            `json:"procs"`
			Data   int            `json:"data_chunks"`
			ByKind map[string]int `json:"mix"`
		}{
			Name: p.Name, Insts: len(p.Insts), Procs: len(p.Procs), Data: len(p.Data),
			ByKind: map[string]int{
				"alu":    classes[isa.ClassIntALU] + classes[isa.ClassIntMul] + classes[isa.ClassIntDiv],
				"load":   classes[isa.ClassLoad],
				"store":  classes[isa.ClassStore],
				"branch": classes[isa.ClassBranch],
				"fp":     classes[isa.ClassFPAdd] + classes[isa.ClassFPMul] + classes[isa.ClassFPDiv],
			},
		}
		b, jerr := json.MarshalIndent(out, "", "  ")
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "rvpasm:", jerr)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("%s: %d instructions, %d procedures, %d data chunks\n",
		p.Name, len(p.Insts), len(p.Procs), len(p.Data))
	fmt.Printf("  mix: %d alu, %d load, %d store, %d branch, %d fp\n",
		classes[isa.ClassIntALU]+classes[isa.ClassIntMul]+classes[isa.ClassIntDiv],
		classes[isa.ClassLoad], classes[isa.ClassStore], classes[isa.ClassBranch],
		classes[isa.ClassFPAdd]+classes[isa.ClassFPMul]+classes[isa.ClassFPDiv])

	if *dis {
		fmt.Print(asm.Disassemble(p))
	}
	if *run {
		s := emu.MustNew(p)
		executed := s.Run(*n)
		if s.Err() != nil {
			fmt.Fprintln(os.Stderr, "rvpasm: run:", s.Err())
			os.Exit(1)
		}
		state := "running"
		if s.Halted {
			state = "halted"
		}
		fmt.Printf("  ran %d instructions (%s), r0 = %d\n", executed, state, int64(s.Regs[isa.RV]))
	}
}
