// Command rvpd is the simulation service daemon: an HTTP/JSON API in
// front of a bounded job queue with admission control, a fixed worker
// pool, per-workload circuit breakers, and crash-safe job state.
//
// Usage:
//
//	rvpd [-addr host:port] [-addr-file path] [-state dir] [-workers n]
//	     [-queue depth] [-max-wait dur] [-job-timeout dur]
//	     [-drain-timeout dur] [-breaker-threshold n] [-breaker-cooloff dur]
//	     [-insts n] [-ckpt-every n] [-watchdog cycles] [-max-body bytes]
//	     [-body-read-timeout dur] [-tenant-queue n] [-tenant-rate r]
//	     [-tenant-burst n] [-log-level level] [-log-json]
//	     [-progress-every n] [-no-telemetry]
//	     [-advertise coord-url] [-advertise-url worker-url]
//
// With -advertise, the daemon self-registers its bound address with a
// fleet coordinator (POST /v1/workers) after the listener comes up,
// retrying with backoff while the coordinator starts.
//
// Endpoints: POST /v1/jobs (submit; 429/503 + Retry-After under
// overload), GET /v1/jobs/{id} (status/results), GET /v1/jobs/{id}/events
// (live Server-Sent Events stream: progress heartbeats, checkpoints,
// terminal state; resumable via Last-Event-ID), GET /v1/jobs/{id}/trace
// (the job's daemon-side spans; ?format=chrome for chrome://tracing),
// GET /healthz, GET /readyz, GET /metrics (Prometheus).
//
// Logs are structured (log/slog) on stderr with job and trace IDs;
// -log-level debug adds per-request lines, -log-json switches to JSON
// for log shippers.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting
// (readyz flips to 503, submissions get 503 + Retry-After), lets
// in-flight jobs finish within -drain-timeout, checkpoints anything
// unfinished, and exits. Restarting with the same -state directory
// re-enqueues unfinished jobs and resumes them from their journals and
// checkpoints instead of recomputing. A second signal kills the process
// immediately.
//
// -addr-file writes the actually bound address (useful with -addr
// 127.0.0.1:0 in scripts and smoke tests).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/server"
	"rvpsim/internal/server/shutdown"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	state := flag.String("state", "rvpd-state", "state directory: job store, journals, checkpoints")
	workers := flag.Int("workers", 0, "worker-pool size (0 = one per core)")
	queueDepth := flag.Int("queue", 64, "bounded queue depth (admission limit)")
	maxWait := flag.Duration("max-wait", 30*time.Second, "shed submissions when recent p99 queue wait exceeds this")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline before in-flight jobs are checkpointed")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive non-transient failures that trip a workload's circuit breaker (<0 disables)")
	breakerCooloff := flag.Duration("breaker-cooloff", 30*time.Second, "how long a tripped breaker sheds before probing")
	insts := flag.Uint64("insts", 2_000_000, "default committed-instruction budget for jobs that omit one")
	ckptEvery := flag.Uint64("ckpt-every", 200_000, "in-flight checkpoint cadence in committed instructions (0 = off)")
	watchdog := flag.Int("watchdog", 0, "abort a run if no instruction commits for N simulated cycles (0 = off)")
	maxBody := flag.Int64("max-body", 1<<20, "maximum POST body size in bytes (larger gets 413)")
	bodyReadTimeout := flag.Duration("body-read-timeout", 30*time.Second, "slow-loris guard: deadline for reading one submission body (408 past it)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queued-job quota (0 = only the shared queue limits)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained submissions/sec (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 1, "per-tenant token-bucket burst")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	progressEvery := flag.Uint64("progress-every", 100_000, "live-progress heartbeat cadence in committed instructions")
	noTelemetry := flag.Bool("no-telemetry", false, "disable job tracing, event streams and the flight recorder (benchmarking)")
	advertise := flag.String("advertise", "", "fleet coordinator base URL to self-register with once listening (e.g. http://127.0.0.1:9090)")
	advertiseURL := flag.String("advertise-url", "", "worker URL to advertise (default http://<bound addr>)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(strings.TrimSpace(*logLevel))); err != nil {
		fmt.Fprintf(os.Stderr, "rvpd: -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler).With("service", "rvpd")

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	srv, err := server.New(server.Config{
		StateDir:         *state,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		MaxWait:          *maxWait,
		JobTimeout:       *jobTimeout,
		DrainTimeout:     *drainTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooloff:   *breakerCooloff,
		DefaultInsts:     *insts,
		CheckpointEvery:  *ckptEvery,
		WatchdogCycles:   *watchdog,
		MaxBody:          *maxBody,
		BodyReadTimeout:  *bodyReadTimeout,
		TenantQueueDepth: *tenantQueue,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		Logger:           logger,
		ProgressEvery:    *progressEvery,
		DisableTelemetry: *noTelemetry,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpd: listen: %v\n", err)
		srv.Close()
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rvpd: addr-file: %v\n", err)
			srv.Close()
			return 1
		}
	}
	logger.Info("listening", "addr", bound, "state", *state, "workers", *workers, "queue", *queueDepth)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := shutdown.Context(context.Background())
	defer stop()

	// Self-register with the fleet coordinator once the listener is up.
	// Registration retries in the background (the coordinator may still
	// be starting) and gives up quietly on shutdown; a permanent
	// rejection is logged but does not kill the daemon — it can still
	// serve direct submissions.
	if *advertise != "" {
		self := *advertiseURL
		if self == "" {
			self = "http://" + bound
		}
		go func() {
			cl := client.New(*advertise, client.WithLogger(logger.With("component", "advertise")))
			if err := cl.RegisterWorker(ctx, self); err != nil && ctx.Err() == nil {
				logger.Warn("coordinator registration failed", "coordinator", *advertise,
					"worker", self, "error", err)
			}
		}()
	}
	select {
	case <-ctx.Done():
		logger.Info("signal received; draining")
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "rvpd: serve: %v\n", err)
		srv.Close()
		return 1
	}

	// Drain order matters: the job layer first (stop accepting, finish
	// or checkpoint work) while the HTTP listener keeps answering
	// status polls, then the listener.
	clean := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	if err := srv.Close(); err != nil {
		logger.Error("close", "error", err)
	}
	if !clean {
		logger.Warn("drain deadline hit; unfinished jobs checkpointed for resume", "state", *state)
	}
	return 0
}
