// Command rvpcoord is the fleet coordinator: it shards sweeps into
// cells, dispatches them to rvpd workers with time-bounded leases,
// steals straggler leases, and merges per-cell results into the final
// figure table — byte-identical to a single-node run no matter which
// workers survive.
//
// Usage:
//
//	rvpcoord [-addr host:port] [-addr-file path] [-state dir]
//	         [-workers url,url,...] [-lease dur] [-heartbeat dur]
//	         [-steal-age dur] [-poll dur] [-attempts n] [-insts n]
//	         [-tenant name] [-log-level level] [-log-json]
//
// Endpoints: POST /v1/sweeps (submit a sweep spec), GET /v1/sweeps and
// GET /v1/sweeps/{id} (status + merged table once done), POST
// /v1/workers (register a worker at runtime), GET /healthz, GET
// /metrics (fleet gauges: live workers, ready/leased/done cells,
// steals, lease expiries).
//
// State is a CRC-enveloped write-ahead cell ledger under -state:
// SIGKILL the coordinator and restart it with the same directory and
// every finished cell stays finished; only unfinished cells re-run.
//
// On SIGINT/SIGTERM the coordinator stops dispatching and exits;
// nothing is lost because nothing unledgered is ever acknowledged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"rvpsim/internal/fleet"
	"rvpsim/internal/server/shutdown"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8070", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	state := flag.String("state", "rvpcoord-state", "state directory for the cell ledger")
	workers := flag.String("workers", "", "comma-separated rvpd base URLs to dispatch to")
	lease := flag.Duration("lease", 10*time.Second, "cell lease duration (expired leases return the cell to ready)")
	heartbeat := flag.Duration("heartbeat", 0, "lease-renewing status-poll cadence (default lease/4)")
	stealAge := flag.Duration("steal-age", 0, "minimum lease age before an idle worker may steal it (default 2×heartbeat)")
	poll := flag.Duration("poll", 50*time.Millisecond, "idle scheduler poll cadence")
	attempts := flag.Int("attempts", 3, "attempts per cell before it is marked failed")
	insts := flag.Uint64("insts", 2_000_000, "default committed-instruction budget for sweeps that omit one")
	tenant := flag.String("tenant", "fleet", "X-Rvp-Tenant stamped on every dispatch (empty = the workers' default tenant)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(strings.TrimSpace(*logLevel))); err != nil {
		fmt.Fprintf(os.Stderr, "rvpcoord: -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler).With("service", "rvpcoord")

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	coord, err := fleet.Open(fleet.Config{
		StateDir:     *state,
		Workers:      urls,
		Lease:        *lease,
		Heartbeat:    *heartbeat,
		StealAge:     *stealAge,
		Poll:         *poll,
		CellAttempts: *attempts,
		DefaultInsts: *insts,
		Tenant:       *tenant,
		Logger:       logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpcoord: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpcoord: listen: %v\n", err)
		coord.Stop()
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rvpcoord: addr-file: %v\n", err)
			coord.Stop()
			return 1
		}
	}
	logger.Info("listening", "addr", bound, "state", *state, "workers", urls, "lease", *lease)

	httpSrv := &http.Server{Handler: fleet.Handler(coord)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := shutdown.Context(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received; stopping dispatch")
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "rvpcoord: serve: %v\n", err)
		coord.Stop()
		return 1
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	<-serveErr
	coord.Stop()
	logger.Info("stopped; ledger holds all finished cells", "state", *state)
	return 0
}
