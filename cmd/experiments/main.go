// Command experiments regenerates every table and figure from the
// paper's evaluation section.
//
// Usage:
//
//	experiments [-n insts] [-profile insts] [-serial] [-workers n]
//	            [-warmup insts] [-md report.md]
//	            [-only fig1,fig3,...] [-manifest dir] [-metrics out.prom]
//	            [-pprof dir] [-heartbeat seconds] [-watchdog cycles]
//	            [-resume dir] [-ckpt-every insts]
//
// With no -only filter it runs the full set: Figure 1 (reuse degrees),
// Table 1 (machine config), Figure 3 (static RVP), Figure 4 (recovery
// mechanisms), Figure 5 (dynamic RVP, loads), Figure 6 (dynamic RVP, all
// instructions), Table 2 (coverage/accuracy), Figure 7 (realistic
// re-allocation), Figure 8 (16-wide machine), plus the extension tables
// (predictor cost/benefit and the confidence-threshold sweep) under
// "ext". With -md, a markdown report is also written.
//
// Observability: -manifest writes one machine-readable JSON run manifest
// per figure (options, git describe, wall clock, result tables, and a
// metrics snapshot); -metrics writes the sweep-wide Prometheus snapshot;
// -pprof captures CPU and heap profiles of the whole sweep; -heartbeat
// prints progress lines to stderr while long sweeps run.
//
// Robustness: a failing workload does not sink the sweep. Its cells are
// rendered as ERR with the failure reason footnoted, the remaining
// figures still run, a warning goes to stderr, and the binary exits
// nonzero at the end. -watchdog arms the pipeline's forward-progress
// watchdog so a hung run aborts with a structured error.
//
// Crash safety: -resume names a state directory holding a write-ahead
// journal (journal.jsonl) plus per-run checkpoints (ckpt/*.ckpt). Every
// finished cell is fsync'd to the journal before aggregation; rerunning
// with the same -resume dir replays completed cells and re-enters
// half-finished runs from their latest checkpoint (cadence set by
// -ckpt-every). SIGINT/SIGTERM checkpoint in-flight runs and exit
// cleanly, so an interrupted sweep loses no completed work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"rvpsim/internal/benchreg"
	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
	"rvpsim/internal/server/shutdown"
	"rvpsim/internal/stats"
)

func main() { os.Exit(run()) }

func run() int {
	n := flag.Uint64("n", 2_000_000, "committed-instruction budget per run")
	prof := flag.Uint64("profile", 0, "profiling budget (default n/4)")
	serial := flag.Bool("serial", false, "run workloads serially")
	workers := flag.Int("workers", 0, "parallel sweep worker count (0 = one per core)")
	warmup := flag.Uint64("warmup", 0, "fast-forward each workload this many instructions once, fork the warmed state into every cell (0 = cold start)")
	md := flag.String("md", "", "also write a markdown report to this file")
	only := flag.String("only", "", "comma-separated subset: fig1,tab1,fig3,fig4,fig5,fig6,tab2,fig7,fig8,ext")
	manifestDir := flag.String("manifest", "", "write one JSON run manifest per figure into this directory")
	metricsOut := flag.String("metrics", "", "write a sweep-wide Prometheus metrics snapshot to this file")
	pprofDir := flag.String("pprof", "", "capture CPU and heap profiles of the sweep into this directory")
	heartbeat := flag.Int("heartbeat", 0, "print a progress heartbeat to stderr every N seconds (0 = off)")
	watchdog := flag.Int("watchdog", 0, "abort a run if no instruction commits for N simulated cycles (0 = off)")
	resumeDir := flag.String("resume", "", "state directory for crash-safe sweeps: journal finished cells, checkpoint and resume in-flight runs")
	ckptEvery := flag.Uint64("ckpt-every", 500_000, "auto-checkpoint cadence in committed instructions for in-flight runs (needs -resume; 0 = off)")
	benchOut := flag.String("bench-out", "", "append per-figure wall-time/IPS sweep records to this BENCH JSON trajectory")
	flag.Parse()

	ctx, stop := shutdown.Context(context.Background())
	defer stop()

	opts := exp.DefaultOptions()
	opts.Insts = *n
	if *prof != 0 {
		opts.ProfileInsts = *prof
	} else {
		opts.ProfileInsts = *n / 4
	}
	opts.Parallel = !*serial
	opts.MaxWorkers = *workers
	opts.WarmupInsts = *warmup
	opts.WatchdogCycles = *watchdog
	opts.Context = ctx
	if *resumeDir != "" {
		opts.StateDir = *resumeDir
		opts.CheckpointEvery = *ckptEvery
	}

	reg := obs.NewRegistry()
	if *manifestDir != "" || *metricsOut != "" || *benchOut != "" {
		opts.Registry = reg
	}

	var progress *obs.Progress
	if *heartbeat > 0 {
		progress = obs.NewProgress(os.Stderr, time.Duration(*heartbeat)*time.Second, 0)
		opts.OnRunDone = progress.Step
		progress.Start()
		defer progress.Stop()
	}

	if *pprofDir != "" {
		capture, err := obs.StartProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			return 1
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			}
		}()
	}

	r := exp.NewRunner(opts)
	if err := r.EnableResume(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: resume: %v\n", err)
		return 1
	}
	defer r.Close()
	if *resumeDir != "" {
		if done := r.Journaled(); done > 0 {
			fmt.Printf("resuming from %s: %d completed cells journaled\n", *resumeDir, done)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var report strings.Builder
	fmt.Fprintf(&report, "# rvpsim experiment report\n\n%d committed instructions per run.\n\n", *n)

	// jobTables collects the current job's tables for its manifest.
	var jobTables []*stats.Table
	emit := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Println(t)
			report.WriteString(t.Markdown())
			report.WriteByte('\n')
			jobTables = append(jobTables, t)
		}
	}

	type job struct {
		key string
		run func() error
	}
	// Drivers return partial tables alongside their error, so a failed
	// workload's figure is still printed with ERR cells.
	one := func(f func() (*stats.Table, error)) func() error {
		return func() error {
			t, err := f()
			if t != nil {
				emit(t)
			}
			return err
		}
	}
	jobs := []job{
		{"fig1", one(r.Figure1)},
		{"tab1", func() error {
			s := r.Table1()
			fmt.Println(s)
			fmt.Fprintf(&report, "### Table 1\n\n```\n%s```\n\n", s)
			return nil
		}},
		{"fig3", one(r.Figure3)},
		{"fig4", one(r.Figure4)},
		{"fig5", one(r.Figure5)},
		{"fig6", one(r.Figure6)},
		{"tab2", func() error {
			cov, acc, err := r.Table2()
			if cov != nil {
				emit(cov)
			}
			if acc != nil {
				emit(acc)
			}
			return err
		}},
		{"fig7", one(r.Figure7)},
		{"fig8", one(r.Figure8)},
		{"ext", func() error {
			t, err := r.StorageTable()
			if t != nil {
				emit(t)
			}
			t2, err2 := r.ThresholdTable()
			if t2 != nil {
				emit(t2)
			}
			return errors.Join(err, err2)
		}},
	}
	gitRev := ""
	if *manifestDir != "" || *benchOut != "" {
		gitRev = obs.GitDescribe("")
	}
	// committed feeds the per-figure IPS in -bench-out records: the
	// counter's delta across a job is the instructions that job simulated.
	committed := reg.Counter("rvpsim_committed_total", "committed instructions")
	var sweeps []benchreg.SweepRecord
	var failed []string
	for _, j := range jobs {
		if !sel(j.key) {
			continue
		}
		jobTables = nil
		start := time.Now()
		c0 := committed.Value()
		if err := j.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.key, err)
			failed = append(failed, j.key)
		}
		elapsed := time.Since(start)
		fmt.Printf("[%s done in %v]\n\n", j.key, elapsed.Round(time.Millisecond))
		if *manifestDir != "" {
			if err := writeManifest(*manifestDir, j.key, gitRev, opts, start, elapsed, jobTables, reg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: manifest %s: %v\n", j.key, err)
				return 1
			}
		}
		if *benchOut != "" {
			rec := benchreg.SweepRecord{
				Name:        j.key,
				WallSeconds: elapsed.Seconds(),
			}
			if d := committed.Value() - c0; d > 0 && elapsed > 0 {
				rec.Insts = uint64(d)
				rec.IPS = float64(d) / elapsed.Seconds()
			}
			sweeps = append(sweeps, rec)
		}
	}
	if *benchOut != "" && len(sweeps) > 0 {
		if err := appendSweeps(*benchOut, gitRev, sweeps); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench-out: %v\n", err)
			return 1
		}
		fmt.Printf("sweep bench records appended to %s\n", *benchOut)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
			return 1
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *md, err)
			return 1
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; in-flight runs checkpointed")
		if *resumeDir != "" {
			fmt.Fprintf(os.Stderr, "experiments: rerun with -resume %s to continue where this sweep stopped\n", *resumeDir)
		} else {
			fmt.Fprintln(os.Stderr, "experiments: rerun with -resume <dir> to make sweeps restartable")
		}
		return 1
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: completed with failures in: %s\n", strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// appendSweeps adds one trajectory Run carrying the sweep's per-figure
// wall-time/IPS records to the BENCH JSON file (same schema the
// benchreg harness writes).
func appendSweeps(path, gitRev string, sweeps []benchreg.SweepRecord) error {
	f, err := benchreg.Load(path)
	if err != nil {
		return err
	}
	f.Runs = append(f.Runs, benchreg.Run{
		GitSHA:    gitRev,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Label:     "experiments sweep",
		Sweeps:    sweeps,
	})
	return f.Save(path)
}

// manifestConfig is the reproducibility-relevant slice of exp.Options.
type manifestConfig struct {
	Insts        uint64  `json:"insts"`
	ProfileInsts uint64  `json:"profile_insts"`
	Threshold    float64 `json:"threshold"`
	Parallel     bool    `json:"parallel"`
	MaxWorkers   int     `json:"max_workers,omitempty"`
	WarmupInsts  uint64  `json:"warmup_insts,omitempty"`
}

// writeManifest records one figure's run: config, revision, wall clock,
// the result tables, and the sweep-so-far metrics snapshot.
func writeManifest(dir, key, gitRev string, opts exp.Options, start time.Time, elapsed time.Duration, tables []*stats.Table, reg *obs.Registry) error {
	host, _ := os.Hostname()
	snap := reg.Snapshot()
	m := &obs.Manifest{
		Name:      key,
		StartedAt: start.UTC(),
		WallClock: elapsed.Seconds(),
		Git:       gitRev,
		GoVersion: runtime.Version(),
		Hostname:  host,
		Config: manifestConfig{
			Insts:        opts.Insts,
			ProfileInsts: opts.ProfileInsts,
			Threshold:    opts.Threshold,
			Parallel:     opts.Parallel,
			MaxWorkers:   opts.MaxWorkers,
			WarmupInsts:  opts.WarmupInsts,
		},
		Results: tables,
		Metrics: &snap,
	}
	return obs.WriteManifest(filepath.Join(dir, key+".json"), m)
}

// writeMetrics dumps the registry as Prometheus text exposition.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
