// Command experiments regenerates every table and figure from the
// paper's evaluation section.
//
// Usage:
//
//	experiments [-n insts] [-profile insts] [-serial] [-md report.md]
//	            [-only fig1,fig3,...]
//
// With no -only filter it runs the full set: Figure 1 (reuse degrees),
// Table 1 (machine config), Figure 3 (static RVP), Figure 4 (recovery
// mechanisms), Figure 5 (dynamic RVP, loads), Figure 6 (dynamic RVP, all
// instructions), Table 2 (coverage/accuracy), Figure 7 (realistic
// re-allocation), Figure 8 (16-wide machine), plus the extension tables
// (predictor cost/benefit and the confidence-threshold sweep) under
// "ext". With -md, a markdown report is also written.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/stats"
)

func main() {
	n := flag.Uint64("n", 2_000_000, "committed-instruction budget per run")
	prof := flag.Uint64("profile", 0, "profiling budget (default n/4)")
	serial := flag.Bool("serial", false, "run workloads serially")
	md := flag.String("md", "", "also write a markdown report to this file")
	only := flag.String("only", "", "comma-separated subset: fig1,tab1,fig3,fig4,fig5,fig6,tab2,fig7,fig8,ext")
	flag.Parse()

	opts := exp.DefaultOptions()
	opts.Insts = *n
	if *prof != 0 {
		opts.ProfileInsts = *prof
	} else {
		opts.ProfileInsts = *n / 4
	}
	opts.Parallel = !*serial
	r := exp.NewRunner(opts)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var report strings.Builder
	fmt.Fprintf(&report, "# rvpsim experiment report\n\n%d committed instructions per run.\n\n", *n)

	emit := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Println(t)
			report.WriteString(t.Markdown())
			report.WriteByte('\n')
		}
	}

	type job struct {
		key string
		run func() error
	}
	one := func(f func() (*stats.Table, error)) func() error {
		return func() error {
			t, err := f()
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}
	}
	jobs := []job{
		{"fig1", one(r.Figure1)},
		{"tab1", func() error {
			s := r.Table1()
			fmt.Println(s)
			fmt.Fprintf(&report, "### Table 1\n\n```\n%s```\n\n", s)
			return nil
		}},
		{"fig3", one(r.Figure3)},
		{"fig4", one(r.Figure4)},
		{"fig5", one(r.Figure5)},
		{"fig6", one(r.Figure6)},
		{"tab2", func() error {
			cov, acc, err := r.Table2()
			if err != nil {
				return err
			}
			emit(cov, acc)
			return nil
		}},
		{"fig7", one(r.Figure7)},
		{"fig8", one(r.Figure8)},
		{"ext", func() error {
			t, err := r.StorageTable()
			if err != nil {
				return err
			}
			t2, err := r.ThresholdTable()
			if err != nil {
				return err
			}
			emit(t, t2)
			return nil
		}},
	}
	for _, j := range jobs {
		if !sel(j.key) {
			continue
		}
		start := time.Now()
		if err := j.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.key, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", j.key, time.Since(start).Round(time.Millisecond))
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *md, err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
}
