// Command experiments regenerates every table and figure from the
// paper's evaluation section.
//
// Usage:
//
//	experiments [-n insts] [-profile insts] [-serial] [-md report.md]
//	            [-only fig1,fig3,...] [-manifest dir] [-metrics out.prom]
//	            [-pprof dir] [-heartbeat seconds]
//
// With no -only filter it runs the full set: Figure 1 (reuse degrees),
// Table 1 (machine config), Figure 3 (static RVP), Figure 4 (recovery
// mechanisms), Figure 5 (dynamic RVP, loads), Figure 6 (dynamic RVP, all
// instructions), Table 2 (coverage/accuracy), Figure 7 (realistic
// re-allocation), Figure 8 (16-wide machine), plus the extension tables
// (predictor cost/benefit and the confidence-threshold sweep) under
// "ext". With -md, a markdown report is also written.
//
// Observability: -manifest writes one machine-readable JSON run manifest
// per figure (options, git describe, wall clock, result tables, and a
// metrics snapshot); -metrics writes the sweep-wide Prometheus snapshot;
// -pprof captures CPU and heap profiles of the whole sweep; -heartbeat
// prints progress lines to stderr while long sweeps run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
	"rvpsim/internal/stats"
)

func main() {
	n := flag.Uint64("n", 2_000_000, "committed-instruction budget per run")
	prof := flag.Uint64("profile", 0, "profiling budget (default n/4)")
	serial := flag.Bool("serial", false, "run workloads serially")
	md := flag.String("md", "", "also write a markdown report to this file")
	only := flag.String("only", "", "comma-separated subset: fig1,tab1,fig3,fig4,fig5,fig6,tab2,fig7,fig8,ext")
	manifestDir := flag.String("manifest", "", "write one JSON run manifest per figure into this directory")
	metricsOut := flag.String("metrics", "", "write a sweep-wide Prometheus metrics snapshot to this file")
	pprofDir := flag.String("pprof", "", "capture CPU and heap profiles of the sweep into this directory")
	heartbeat := flag.Int("heartbeat", 0, "print a progress heartbeat to stderr every N seconds (0 = off)")
	flag.Parse()

	opts := exp.DefaultOptions()
	opts.Insts = *n
	if *prof != 0 {
		opts.ProfileInsts = *prof
	} else {
		opts.ProfileInsts = *n / 4
	}
	opts.Parallel = !*serial

	reg := obs.NewRegistry()
	if *manifestDir != "" || *metricsOut != "" {
		opts.Registry = reg
	}

	var progress *obs.Progress
	if *heartbeat > 0 {
		progress = obs.NewProgress(os.Stderr, time.Duration(*heartbeat)*time.Second, 0)
		opts.OnRunDone = progress.Step
		progress.Start()
		defer progress.Stop()
	}

	if *pprofDir != "" {
		capture, err := obs.StartProfiles(*pprofDir)
		if err != nil {
			fatal(fmt.Errorf("pprof: %w", err))
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			}
		}()
	}

	r := exp.NewRunner(opts)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var report strings.Builder
	fmt.Fprintf(&report, "# rvpsim experiment report\n\n%d committed instructions per run.\n\n", *n)

	// jobTables collects the current job's tables for its manifest.
	var jobTables []*stats.Table
	emit := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Println(t)
			report.WriteString(t.Markdown())
			report.WriteByte('\n')
			jobTables = append(jobTables, t)
		}
	}

	type job struct {
		key string
		run func() error
	}
	one := func(f func() (*stats.Table, error)) func() error {
		return func() error {
			t, err := f()
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}
	}
	jobs := []job{
		{"fig1", one(r.Figure1)},
		{"tab1", func() error {
			s := r.Table1()
			fmt.Println(s)
			fmt.Fprintf(&report, "### Table 1\n\n```\n%s```\n\n", s)
			return nil
		}},
		{"fig3", one(r.Figure3)},
		{"fig4", one(r.Figure4)},
		{"fig5", one(r.Figure5)},
		{"fig6", one(r.Figure6)},
		{"tab2", func() error {
			cov, acc, err := r.Table2()
			if err != nil {
				return err
			}
			emit(cov, acc)
			return nil
		}},
		{"fig7", one(r.Figure7)},
		{"fig8", one(r.Figure8)},
		{"ext", func() error {
			t, err := r.StorageTable()
			if err != nil {
				return err
			}
			t2, err := r.ThresholdTable()
			if err != nil {
				return err
			}
			emit(t, t2)
			return nil
		}},
	}
	gitRev := ""
	if *manifestDir != "" {
		gitRev = obs.GitDescribe("")
	}
	for _, j := range jobs {
		if !sel(j.key) {
			continue
		}
		jobTables = nil
		start := time.Now()
		if err := j.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.key, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("[%s done in %v]\n\n", j.key, elapsed.Round(time.Millisecond))
		if *manifestDir != "" {
			if err := writeManifest(*manifestDir, j.key, gitRev, opts, start, elapsed, jobTables, reg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: manifest %s: %v\n", j.key, err)
				os.Exit(1)
			}
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *md, err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
}

// manifestConfig is the reproducibility-relevant slice of exp.Options.
type manifestConfig struct {
	Insts        uint64  `json:"insts"`
	ProfileInsts uint64  `json:"profile_insts"`
	Threshold    float64 `json:"threshold"`
	Parallel     bool    `json:"parallel"`
}

// writeManifest records one figure's run: config, revision, wall clock,
// the result tables, and the sweep-so-far metrics snapshot.
func writeManifest(dir, key, gitRev string, opts exp.Options, start time.Time, elapsed time.Duration, tables []*stats.Table, reg *obs.Registry) error {
	host, _ := os.Hostname()
	snap := reg.Snapshot()
	m := &obs.Manifest{
		Name:      key,
		StartedAt: start.UTC(),
		WallClock: elapsed.Seconds(),
		Git:       gitRev,
		GoVersion: runtime.Version(),
		Hostname:  host,
		Config: manifestConfig{
			Insts:        opts.Insts,
			ProfileInsts: opts.ProfileInsts,
			Threshold:    opts.Threshold,
			Parallel:     opts.Parallel,
		},
		Results: tables,
		Metrics: &snap,
	}
	return obs.WriteManifest(filepath.Join(dir, key+".json"), m)
}

// writeMetrics dumps the registry as Prometheus text exposition.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
