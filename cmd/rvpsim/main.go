// Command rvpsim runs one workload (or an assembly file) on the simulated
// machine under a chosen value predictor and prints the run statistics.
//
// Usage:
//
//	rvpsim [-w workload | -f prog.s] [-p predictor] [-n insts]
//	       [-recovery refetch|reissue|selective] [-wide] [-support level]
//	       [-trace out.json] [-events out.jsonl] [-metrics out.prom] [-json]
//	       [-timeout 30s] [-watchdog cycles] [-lockstep [-check-every n]]
//
// Predictors: none, drvp, drvp_loads, lvp, lvp_loads, grp, and the
// hint-assisted drvp variants drvp_dead, drvp_dead_lv (which profile the
// program first). -wide selects the 16-issue machine.
//
// -lockstep replaces the normal run with a differential validation run:
// the timing pipeline and the architectural reference emulator execute
// the program side by side, every committed instruction's (PC, dest
// register, value) is compared, and the full register/memory state is
// compared every -check-every commits. Any divergence exits nonzero with
// the first divergent commit identified.
//
// Observability: -trace writes a Chrome trace_event file (load it in
// chrome://tracing or https://ui.perfetto.dev), -events a JSONL event
// stream, -metrics a Prometheus text exposition snapshot, and -json
// replaces the human summary with the full Stats as one JSON object.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rvpsim"
)

func main() {
	wl := flag.String("w", "li", "workload name (see -list)")
	file := flag.String("f", "", "assembly file to run instead of a workload")
	predName := flag.String("p", "drvp", "predictor: none|drvp|drvp_loads|drvp_dead|drvp_dead_lv|lvp|lvp_loads|grp")
	n := flag.Uint64("n", 2_000_000, "committed-instruction budget (0 = to HALT)")
	recovery := flag.String("recovery", "selective", "value-mispredict recovery: refetch|reissue|selective")
	wide := flag.Bool("wide", false, "use the 16-issue machine")
	list := flag.Bool("list", false, "list workloads and exit")
	top := flag.Int("top", 0, "report the N most-predicted static instructions")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	eventsOut := flag.String("events", "", "write a JSONL structured event stream")
	metricsOut := flag.String("metrics", "", "write a Prometheus text exposition metrics snapshot")
	jsonOut := flag.Bool("json", false, "emit the full run Stats as one JSON object instead of the text summary")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the run, e.g. 30s (0 = none)")
	watchdog := flag.Int("watchdog", 0, "abort if no instruction commits for N simulated cycles (0 = off)")
	lock := flag.Bool("lockstep", false, "differentially validate the pipeline against the reference emulator instead of a normal run")
	checkEvery := flag.Uint64("check-every", 10_000, "lockstep: compare full register/memory state every N commits")
	flag.Parse()

	if *list {
		for _, name := range rvpsim.Workloads() {
			fmt.Println(name)
		}
		return
	}

	prog, err := loadProgram(*wl, *file)
	if err != nil {
		fatal(err)
	}

	cfg := rvpsim.BaselineConfig()
	if *wide {
		cfg = rvpsim.AggressiveConfig()
	}
	cfg.WatchdogCycles = *watchdog
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	switch *recovery {
	case "refetch":
		cfg.Recovery = rvpsim.RecoverRefetch
	case "reissue":
		cfg.Recovery = rvpsim.RecoverReissue
	case "selective":
		cfg.Recovery = rvpsim.RecoverSelective
	default:
		fatal(fmt.Errorf("unknown recovery %q", *recovery))
	}

	if *lock {
		res, lerr := rvpsim.Validate(prog, cfg, func() rvpsim.Predictor {
			p, perr := makePredictor(*predName, prog, *n)
			if perr != nil {
				fatal(perr)
			}
			return p
		}, rvpsim.LockstepOptions{MaxInsts: *n, CheckEvery: *checkEvery})
		if lerr != nil {
			fatal(lerr)
		}
		fmt.Printf("lockstep OK: %s under %s/%s: %d commits compared, %d state checks, zero divergences\n",
			prog.Name(), *predName, *recovery, res.Committed, res.StateChecks)
		return
	}

	pred, err := makePredictor(*predName, prog, *n)
	if err != nil {
		fatal(err)
	}

	type agg struct {
		execs, predicted, correct uint64
		lat                       int64
	}
	perInst := map[int]*agg{}
	record := func(index int, dispatch, done int64, predicted, correct bool) {
		a := perInst[index]
		if a == nil {
			a = &agg{}
			perInst[index] = a
		}
		a.execs++
		a.lat += done - dispatch
		if predicted {
			a.predicted++
			if correct {
				a.correct++
			}
		}
	}

	needObs := *traceOut != "" || *eventsOut != "" || *metricsOut != ""
	var st rvpsim.Stats
	var observer *rvpsim.Observer
	switch {
	case needObs:
		observer = rvpsim.NewObserver()
		var files []*os.File
		create := func(path string) *os.File {
			f, cerr := os.Create(path)
			if cerr != nil {
				fatal(cerr)
			}
			files = append(files, f)
			return f
		}
		if *traceOut != "" {
			ct := rvpsim.NewChromeTrace(create(*traceOut))
			// One lane per window slot keeps concurrently in-flight
			// instructions on separate trace rows.
			ct.Lanes = cfg.Window
			observer.AddSink(ct)
		}
		if *eventsOut != "" {
			observer.AddSink(rvpsim.NewJSONLTrace(create(*eventsOut)))
		}
		if *top > 0 {
			observer.AddSink(topSink(record))
		}
		st, err = rvpsim.RunObservedContext(ctx, prog, cfg, pred, *n, observer)
		if cerr := observer.Close(); cerr != nil && err == nil {
			err = cerr
		}
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err == nil && *metricsOut != "" {
			err = writeMetrics(*metricsOut, observer.Registry())
		}
	case *top > 0:
		st, err = rvpsim.RunTracedContext(ctx, prog, cfg, pred, *n, func(tr rvpsim.TraceRecord) {
			record(tr.Index, tr.Dispatch, tr.DoneAt, tr.Predicted, tr.Correct)
		})
	default:
		st, err = rvpsim.RunContext(ctx, prog, cfg, pred, *n)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		b, jerr := json.MarshalIndent(st, "", "  ")
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("program      %s (%d static instructions)\n", prog.Name(), prog.Len())
	fmt.Printf("predictor    %s, recovery %s\n", *predName, *recovery)
	fmt.Printf("committed    %d instructions in %d cycles (IPC %.3f)\n", st.Committed, st.Cycles, st.IPC())
	fmt.Printf("predictions  %d (%.1f%% of instructions), %.2f%% correct\n",
		st.Predicted, 100*st.Coverage(), 100*st.Accuracy())
	fmt.Printf("branches     %.2f%% conditional mispredict rate\n", 100*st.BranchMispredictRate())
	fmt.Printf("caches       L1D %.1f%% miss, L1I %.1f%% miss, L2 %.1f%% miss\n",
		missPct(st.DL1Hits, st.DL1Misses), missPct(st.IL1Hits, st.IL1Misses), missPct(st.L2Hits, st.L2Misses))
	fmt.Printf("stalls       window %d, intIQ %d, fpIQ %d (dispatch cycles)\n",
		st.StallWindow, st.StallIntIQ, st.StallFPIQ)

	if *top > 0 {
		idxs := make([]int, 0, len(perInst))
		for i := range perInst {
			idxs = append(idxs, i)
		}
		sort.Slice(idxs, func(a, b int) bool {
			return perInst[idxs[a]].predicted > perInst[idxs[b]].predicted
		})
		if len(idxs) > *top {
			idxs = idxs[:*top]
		}
		fmt.Printf("\nmost-predicted static instructions:\n")
		fmt.Printf("%8s %-28s %10s %10s %8s %9s\n", "index", "instruction", "execs", "predicted", "acc%", "avg lat")
		for _, i := range idxs {
			a := perInst[i]
			if a.predicted == 0 {
				break
			}
			fmt.Printf("%8d %-28s %10d %10d %7.1f%% %9.1f\n",
				i, prog.InstString(i), a.execs, a.predicted,
				100*float64(a.correct)/float64(a.predicted),
				float64(a.lat)/float64(a.execs))
		}
	}
}

func loadProgram(wl, file string) (*rvpsim.Program, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return rvpsim.Assemble(file, string(src))
	}
	return rvpsim.Workload(wl)
}

func makePredictor(name string, prog *rvpsim.Program, budget uint64) (rvpsim.Predictor, error) {
	profileHints := func(level rvpsim.Support, loadsOnly bool) (rvpsim.ReuseHints, error) {
		pr, err := rvpsim.ProfileProgram(prog, budget/4)
		if err != nil {
			return nil, err
		}
		return pr.Hints(0.8, level, loadsOnly), nil
	}
	switch name {
	case "none":
		return rvpsim.NoPrediction(), nil
	case "drvp":
		return rvpsim.DynamicRVP(), nil
	case "drvp_loads":
		return rvpsim.DynamicRVPLoads(), nil
	case "drvp_dead":
		h, err := profileHints(rvpsim.SupportDead, false)
		if err != nil {
			return nil, err
		}
		return rvpsim.DynamicRVPWithHints(h, false), nil
	case "drvp_dead_lv":
		h, err := profileHints(rvpsim.SupportDeadLV, false)
		if err != nil {
			return nil, err
		}
		return rvpsim.DynamicRVPWithHints(h, false), nil
	case "lvp":
		return rvpsim.LastValue(false), nil
	case "lvp_loads":
		return rvpsim.LastValue(true), nil
	case "grp":
		return rvpsim.GabbayRegisterPredictor(), nil
	}
	return nil, fmt.Errorf("unknown predictor %q", name)
}

// topSink adapts the -top aggregation callback into an event sink.
type topSink func(index int, dispatch, done int64, predicted, correct bool)

func (s topSink) Emit(e *rvpsim.Event) error {
	s(e.Index, e.Dispatch, e.Done, e.Predicted, e.Correct)
	return nil
}

func (topSink) Close() error { return nil }

// writeMetrics dumps the registry as Prometheus text exposition.
func writeMetrics(path string, reg *rvpsim.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func missPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(misses) / float64(hits+misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvpsim:", err)
	os.Exit(1)
}
