// Command rvpc is the rvpd client: submit simulation jobs, poll their
// status, and probe a daemon's health endpoints, with idempotency-keyed
// retries and exponential backoff that honors the server's Retry-After.
//
// Usage:
//
//	rvpc -server http://host:port submit -workload hydro2d -predictor rvp
//	     [-recovery selective] [-n insts] [-key K] [-wait] [-json]
//	rvpc -server http://host:port submit -figure fig5 [-n insts] [-wait]
//	rvpc -server http://host:port status <job-id> [-json]
//	rvpc -server http://host:port health
//
// submit prints the job ID on acceptance; with -wait it polls until the
// job is terminal and renders the result (exit 1 on a failed job).
// health checks /healthz, /readyz and /metrics, failing on any non-200.
// Rejections (429 queue shed, 503 drain/breaker) are retried with
// backoff under one idempotency key, so re-running a timed-out submit
// with the same -key can never double-run the job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/exp"
	"rvpsim/internal/server"
	"rvpsim/internal/server/shutdown"
)

func main() { os.Exit(run()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rvpc -server URL {submit|status|health} [flags]")
	flag.PrintDefaults()
}

func run() int {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "rvpd base URL")
	attempts := flag.Int("attempts", 10, "maximum submission attempts")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return 2
	}

	ctx, stop := shutdown.Context(context.Background())
	defer stop()
	c := client.New(strings.TrimRight(*serverURL, "/"), client.WithMaxAttempts(*attempts))

	switch flag.Arg(0) {
	case "submit":
		return submit(ctx, c, flag.Args()[1:])
	case "status":
		return status(ctx, c, flag.Args()[1:])
	case "health":
		return health(ctx, c)
	default:
		fmt.Fprintf(os.Stderr, "rvpc: unknown command %q\n", flag.Arg(0))
		usage()
		return 2
	}
}

func submit(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	workload := fs.String("workload", "", "workload name for a run job")
	predictor := fs.String("predictor", "rvp", "predictor for a run job: "+strings.Join(exp.JobPredictors(), ", "))
	recovery := fs.String("recovery", "selective", "recovery scheme: refetch, reissue, selective")
	figure := fs.String("figure", "", "figure sweep instead of a single run: "+strings.Join(exp.JobFigures(), ", "))
	n := fs.Uint64("n", 0, "committed-instruction budget (0 = server default)")
	key := fs.String("key", "", "idempotency key (generated when empty; reuse to retry safely)")
	wait := fs.Bool("wait", false, "poll until the job is terminal and print the result")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval with -wait")
	asJSON := fs.Bool("json", false, "print the job status as JSON")
	fs.Parse(args)

	var spec exp.JobSpec
	if *figure != "" {
		spec = exp.JobSpec{Kind: "figure", Figure: *figure, Insts: *n}
	} else {
		spec = exp.JobSpec{Kind: "run", Workload: *workload, Predictor: *predictor, Recovery: *recovery, Insts: *n}
	}

	st, err := c.Submit(ctx, spec, *key)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: submit: %v\n", err)
		return 1
	}
	if !*wait {
		render(st, *asJSON)
		return 0
	}
	st, err = c.Wait(ctx, st.ID, *poll)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: wait: %v\n", err)
		return 1
	}
	render(st, *asJSON)
	if st.State != server.StateSucceeded {
		return 1
	}
	return 0
}

func status(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the job status as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvpc status <job-id>")
		return 2
	}
	st, err := c.Status(ctx, fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: status: %v\n", err)
		return 1
	}
	render(st, *asJSON)
	return 0
}

func health(ctx context.Context, c *client.Client) int {
	ok := true
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		body, err := c.CheckEndpoint(ctx, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: %s: %v\n", path, err)
			ok = false
			continue
		}
		line := strings.SplitN(strings.TrimSpace(body), "\n", 2)[0]
		fmt.Printf("%s: ok (%s)\n", path, line)
	}
	if !ok {
		return 1
	}
	return 0
}

// render prints one job status for humans (or as JSON).
func render(st server.JobStatus, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
		return
	}
	fmt.Printf("job %s: %s", st.ID, st.State)
	if st.Attempts > 0 {
		fmt.Printf(" (attempt %d)", st.Attempts)
	}
	fmt.Println()
	switch {
	case st.Result != nil && st.Result.Text != "":
		fmt.Println(st.Result.Text)
	case st.Result != nil && st.Result.Stats != nil:
		s := st.Result.Stats
		fmt.Printf("  cycles %d, committed %d, IPC %.3f\n", s.Cycles, s.Committed, s.IPC())
	case st.Error != nil:
		fmt.Printf("  error: %s\n", st.Error.Message)
		if st.Error.Timeout {
			fmt.Println("  (per-job deadline exceeded)")
		}
	}
}
