// Command rvpc is the rvpd client: submit simulation jobs, watch them
// live, poll their status, fetch their traces, and probe a daemon's
// health endpoints, with idempotency-keyed retries and exponential
// backoff that honors the server's Retry-After.
//
// Usage:
//
//	rvpc [-v] -server http://host:port submit -workload hydro2d -predictor rvp
//	     [-recovery selective] [-n insts] [-key K] [-wait|-watch] [-json]
//	     [-trace-out file.json]
//	rvpc -server http://host:port submit -figure fig5 [-n insts] [-wait]
//	rvpc -server http://host:port status <job-id> [-json]
//	rvpc -server http://host:port watch <job-id>
//	rvpc -server http://host:port trace <job-id> [-chrome] [-o file]
//	rvpc -server http://host:port health
//
// submit prints the server-assigned job and trace IDs on acceptance;
// with -wait it polls until the job is terminal and renders the result
// (exit 1 on a failed job), and with -watch it streams the job's live
// events (progress heartbeats with committed instructions and IPC,
// checkpoints, terminal state) instead of polling. -trace-out writes
// the merged client+server span trace as a Chrome trace_event file
// loadable in chrome://tracing or ui.perfetto.dev.
//
// watch attaches to a job's event stream (reconnecting and resuming
// via Last-Event-ID on hiccups). trace prints a job's daemon-side
// spans. health checks /healthz, /readyz and /metrics, failing on any
// non-200. -v logs every request, retry and backoff decision with the
// submission's trace ID.
//
// Rejections (429 queue shed, 503 drain/breaker) are retried with
// backoff under one idempotency key, so re-running a timed-out submit
// with the same -key can never double-run the job.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/exp"
	"rvpsim/internal/fleet"
	"rvpsim/internal/obs"
	"rvpsim/internal/server"
	"rvpsim/internal/server/shutdown"
)

func main() { os.Exit(run()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rvpc [-v] -server URL {submit|status|watch|trace|sweep|health} [flags]")
	flag.PrintDefaults()
}

func run() int {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "rvpd base URL")
	attempts := flag.Int("attempts", 10, "maximum submission attempts")
	verbose := flag.Bool("v", false, "log requests, retries and backoff (with trace IDs) to stderr")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return 2
	}

	ctx, stop := shutdown.Context(context.Background())
	defer stop()
	opts := []client.Option{client.WithMaxAttempts(*attempts)}
	// The tracer is always on — client-side spans are cheap and bounded,
	// and they are what -trace-out and the server's admission span
	// parent under. -v controls only log verbosity.
	tracer := obs.NewTracer("rvpc", 256)
	opts = append(opts, client.WithTracer(tracer))
	if *verbose {
		opts = append(opts, client.WithLogger(slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))))
	}
	c := client.New(strings.TrimRight(*serverURL, "/"), opts...)

	switch flag.Arg(0) {
	case "submit":
		return submit(ctx, c, flag.Args()[1:])
	case "status":
		return status(ctx, c, flag.Args()[1:])
	case "watch":
		return watch(ctx, c, flag.Args()[1:])
	case "trace":
		return trace(ctx, c, flag.Args()[1:])
	case "sweep":
		return sweep(ctx, strings.TrimRight(*serverURL, "/"), flag.Args()[1:])
	case "health":
		return health(ctx, c)
	default:
		fmt.Fprintf(os.Stderr, "rvpc: unknown command %q\n", flag.Arg(0))
		usage()
		return 2
	}
}

func submit(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	workload := fs.String("workload", "", "workload name for a run job")
	predictor := fs.String("predictor", "rvp", "predictor for a run job: "+strings.Join(exp.JobPredictors(), ", "))
	recovery := fs.String("recovery", "selective", "recovery scheme: refetch, reissue, selective")
	figure := fs.String("figure", "", "figure sweep instead of a single run: "+strings.Join(exp.JobFigures(), ", "))
	n := fs.Uint64("n", 0, "committed-instruction budget (0 = server default)")
	key := fs.String("key", "", "idempotency key (generated when empty; reuse to retry safely)")
	wait := fs.Bool("wait", false, "poll until the job is terminal and print the result")
	watchIt := fs.Bool("watch", false, "stream the job's live events until it is terminal")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval with -wait")
	asJSON := fs.Bool("json", false, "print the job status as JSON")
	traceOut := fs.String("trace-out", "", "write the merged client+server trace (Chrome trace_event JSON) to this file")
	fs.Parse(args)

	var spec exp.JobSpec
	if *figure != "" {
		spec = exp.JobSpec{Kind: "figure", Figure: *figure, Insts: *n}
	} else {
		spec = exp.JobSpec{Kind: "run", Workload: *workload, Predictor: *predictor, Recovery: *recovery, Insts: *n}
	}

	st, err := c.Submit(ctx, spec, *key)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: submit: %v\n", err)
		return 1
	}
	if !*wait && !*watchIt {
		render(st, *asJSON)
		return 0
	}
	if *watchIt {
		if _, err := c.Watch(ctx, st.ID, 0, printEvent); err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: watch: %v\n", err)
			return 1
		}
		if st, err = c.Status(ctx, st.ID); err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: status: %v\n", err)
			return 1
		}
	} else {
		if st, err = c.Wait(ctx, st.ID, *poll); err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: wait: %v\n", err)
			return 1
		}
	}
	render(st, *asJSON)
	if *traceOut != "" {
		if err := writeMergedTrace(ctx, c, st.ID, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: trace-out: %v\n", err)
			return 1
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if st.State != server.StateSucceeded {
		return 1
	}
	return 0
}

// writeMergedTrace joins the client's own spans with the daemon's for
// the job into one Chrome trace file.
func writeMergedTrace(ctx context.Context, c *client.Client, id, path string) error {
	srvSpans, err := c.Trace(ctx, id)
	if err != nil {
		return err
	}
	all := append(c.Spans(), srvSpans...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeSpans(f, all); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printEvent renders one live event as a human-readable line.
func printEvent(ev server.JobEvent) {
	ts := time.UnixMicro(ev.TimeUS).Format("15:04:05.000")
	switch ev.Type {
	case server.EvProgress:
		fmt.Printf("%s progress %s: %d insts, IPC %.3f\n", ts, ev.Label, ev.Committed, ev.IPC)
	case server.EvCheckpointed:
		fmt.Printf("%s checkpointed %s\n", ts, ev.Label)
	case server.EvFailed:
		fmt.Printf("%s FAILED (attempt %d): %s\n", ts, ev.Attempt, ev.Error)
	case server.EvDone:
		fmt.Printf("%s done (attempt %d)\n", ts, ev.Attempt)
	default:
		fmt.Printf("%s %s\n", ts, ev.Type)
	}
}

// sweep talks to an rvpcoord (point -server at the coordinator, not an
// rvpd): with axis flags it submits a fleet sweep; with a positional
// sweep ID it reports (or, with -wait, waits for) an existing one.
func sweep(ctx context.Context, base string, args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	name := fs.String("name", "", "sweep/table name (defaulted from the sweep ID)")
	wls := fs.String("workloads", "", "comma-separated workloads (empty = all)")
	preds := fs.String("predictors", "", "comma-separated predictors (empty = all: "+strings.Join(exp.JobPredictors(), ", ")+")")
	recs := fs.String("recoveries", "", "comma-separated recovery schemes (empty = selective)")
	n := fs.Uint64("n", 0, "committed-instruction budget per cell (0 = coordinator default)")
	wait := fs.Bool("wait", false, "poll until every cell is terminal and print the merged table")
	poll := fs.Duration("poll", 500*time.Millisecond, "status poll interval with -wait")
	asJSON := fs.Bool("json", false, "print the sweep status as JSON")
	fs.Parse(args)

	cc := fleet.NewCoordClient(base)
	var st fleet.SweepStatus
	var err error
	if fs.NArg() >= 1 {
		id := fs.Arg(0)
		if *wait {
			st, err = cc.Wait(ctx, id, *poll)
		} else {
			st, err = cc.Status(ctx, id)
		}
	} else {
		split := func(s string) []string {
			if s == "" {
				return nil
			}
			return strings.Split(s, ",")
		}
		spec := fleet.SweepSpec{
			Name: *name, Workloads: split(*wls), Predictors: split(*preds),
			Recoveries: split(*recs), Insts: *n,
		}
		st, err = cc.SubmitSweep(ctx, spec)
		if err == nil && *wait {
			st, err = cc.Wait(ctx, st.ID, *poll)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: sweep: %v\n", err)
		return 1
	}
	renderSweep(st, *asJSON)
	if st.Terminal() && st.State != "done" {
		return 1
	}
	return 0
}

// renderSweep prints one sweep status for humans (or as JSON).
func renderSweep(st fleet.SweepStatus, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
		return
	}
	fmt.Printf("sweep %s: %s (%d/%d done, %d failed, %d leased, %d ready)\n",
		st.ID, st.State, st.Done, st.Total, st.Failed, st.Leased, st.Ready)
	for _, w := range st.Workers {
		state := "down"
		if w.Live {
			state = "live"
		}
		if w.Draining {
			state = "draining"
		}
		fmt.Printf("  worker %s: %s, %d leased, %d done\n", w.URL, state, w.Leased, w.Done)
	}
	if st.TableText != "" {
		fmt.Println(st.TableText)
	}
}

func watch(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	after := fs.Int64("after", 0, "resume after this event sequence number")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvpc watch <job-id>")
		return 2
	}
	last, err := c.Watch(ctx, fs.Arg(0), *after, printEvent)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: watch: %v\n", err)
		return 1
	}
	if last.Type == server.EvFailed {
		return 1
	}
	return 0
}

func trace(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace_event JSON instead of one span per line")
	out := fs.String("o", "", "write to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvpc trace <job-id> [-chrome] [-o file]")
		return 2
	}
	spans, err := c.Trace(ctx, fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: trace: %v\n", err)
		return 1
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: trace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if *chrome {
		err = obs.WriteChromeSpans(w, spans)
	} else {
		err = obs.WriteSpansJSONL(w, spans)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: trace: %v\n", err)
		return 1
	}
	return 0
}

func status(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the job status as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvpc status <job-id>")
		return 2
	}
	st, err := c.Status(ctx, fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvpc: status: %v\n", err)
		return 1
	}
	render(st, *asJSON)
	return 0
}

func health(ctx context.Context, c *client.Client) int {
	ok := true
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		body, err := c.CheckEndpoint(ctx, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvpc: %s: %v\n", path, err)
			ok = false
			continue
		}
		line := strings.SplitN(strings.TrimSpace(body), "\n", 2)[0]
		fmt.Printf("%s: ok (%s)\n", path, line)
	}
	if !ok {
		return 1
	}
	return 0
}

// render prints one job status for humans (or as JSON).
func render(st server.JobStatus, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
		return
	}
	fmt.Printf("job %s: %s", st.ID, st.State)
	if st.Attempts > 0 {
		fmt.Printf(" (attempt %d)", st.Attempts)
	}
	if st.TraceID != "" {
		fmt.Printf(" trace %s", st.TraceID)
	}
	fmt.Println()
	switch {
	case st.Result != nil && st.Result.Text != "":
		fmt.Println(st.Result.Text)
	case st.Result != nil && st.Result.Stats != nil:
		s := st.Result.Stats
		fmt.Printf("  cycles %d, committed %d, IPC %.3f\n", s.Cycles, s.Committed, s.IPC())
	case st.Error != nil:
		fmt.Printf("  error: %s\n", st.Error.Message)
		if st.Error.Timeout {
			fmt.Println("  (per-job deadline exceeded)")
		}
		if st.Flight != nil {
			fmt.Printf("  flight recorder: %d event(s) before failure (spec %s); `status -json` for the dump\n",
				len(st.Flight.Events), st.Flight.SpecDigest)
		}
	}
}
