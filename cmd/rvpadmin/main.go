// Command rvpadmin is the offline operator toolbox for rvpd/rvpcoord
// state directories.
//
// Usage:
//
//	rvpadmin fsck [-repair] [-quarantine dir] <state-dir>...
//
// fsck scrubs every durable artifact under the given state
// directories while the services are stopped:
//
//   - *.jsonl write-ahead logs are scanned record by record (CRC
//     envelopes), distinguishing a torn tail (crash mid-append;
//     repairable) from interior damage (bitrot or an outside writer;
//     never silently repaired).
//   - *.ckpt checkpoint files are structurally verified against their
//     embedded CRC.
//
// With -repair, torn WAL tails are truncated to the last valid record
// (the cut bytes are preserved next to the log, or under the
// quarantine directory when one is given). With -quarantine dir,
// interior-corrupt WALs and damaged checkpoints are moved aside so the
// next service start begins clean instead of refusing to open.
//
// Exit codes: 0 everything clean (or fully repaired/quarantined),
// 1 damage found that was not (or could not be) handled, 2 usage or
// I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: rvpadmin fsck [-repair] [-quarantine dir] <state-dir>...")
		return 2
	}
	switch args[0] {
	case "fsck":
		return runFsck(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "rvpadmin: unknown subcommand %q (want fsck)\n", args[0])
		return 2
	}
}

func runFsck(args []string, stdout, stderr io.Writer) int {
	fset := flag.NewFlagSet("fsck", flag.ContinueOnError)
	fset.SetOutput(stderr)
	repair := fset.Bool("repair", false, "truncate torn WAL tails to the last valid record (cut bytes preserved)")
	quarantine := fset.String("quarantine", "", "move interior-corrupt WALs and damaged checkpoints into this directory")
	if err := fset.Parse(args); err != nil {
		return 2
	}
	dirs := fset.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "rvpadmin fsck: at least one state directory required")
		return 2
	}
	fsck := &fsck{
		fsys:       vfs.OS,
		repair:     *repair,
		quarantine: *quarantine,
		stdout:     stdout,
		stderr:     stderr,
	}
	for _, dir := range dirs {
		if err := fsck.walk(dir); err != nil {
			fmt.Fprintf(stderr, "rvpadmin fsck: %s: %v\n", dir, err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "fsck: %d file(s) scanned, %d damaged, %d repaired, %d quarantined\n",
		fsck.scanned, fsck.damaged, fsck.repaired, fsck.quarantined)
	if fsck.damaged > fsck.repaired+fsck.quarantined {
		return 1
	}
	return 0
}

// fsck carries the scrub state across files and directories.
type fsck struct {
	fsys       vfs.FS
	repair     bool
	quarantine string
	stdout     io.Writer
	stderr     io.Writer

	scanned     int
	damaged     int
	repaired    int
	quarantined int
}

func (f *fsck) walk(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Never descend into our own quarantine output.
			if f.quarantine != "" && samePath(path, f.quarantine) {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".jsonl"):
			return f.checkWAL(path)
		case strings.HasSuffix(path, ".ckpt"):
			return f.checkCheckpoint(path)
		}
		return nil
	})
}

func samePath(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func (f *fsck) checkWAL(path string) error {
	f.scanned++
	rep, err := wal.Scrub(f.fsys, path, nil)
	if err != nil {
		return fmt.Errorf("scrub %s: %w", path, err)
	}
	if rep.Clean() {
		fmt.Fprintf(f.stdout, "ok    %s (%d records)\n", path, rep.Records)
		return nil
	}
	f.damaged++
	fmt.Fprintf(f.stdout, "DAMAGED %s: %s\n", path, rep)
	for _, is := range rep.Issues {
		fmt.Fprintf(f.stdout, "        line %d @%d: %s\n", is.Line, is.Offset, is.Reason)
	}
	switch {
	case rep.Interior && f.quarantine != "":
		dst, err := wal.Quarantine(f.fsys, path, f.quarantine, nil)
		if err != nil {
			return fmt.Errorf("quarantine %s: %w", path, err)
		}
		f.quarantined++
		fmt.Fprintf(f.stdout, "        quarantined -> %s\n", dst)
	case !rep.Interior && f.repair:
		qdir := f.quarantine
		if qdir == "" {
			qdir = filepath.Dir(path)
		}
		if _, err := wal.RepairTail(f.fsys, path, qdir, nil); err != nil {
			return fmt.Errorf("repair %s: %w", path, err)
		}
		f.repaired++
		fmt.Fprintf(f.stdout, "        tail repaired (cut bytes saved under %s)\n", qdir)
	case rep.Interior:
		fmt.Fprintf(f.stdout, "        interior damage: rerun with -quarantine <dir> to move aside\n")
	default:
		fmt.Fprintf(f.stdout, "        torn tail: rerun with -repair to truncate to the last valid record\n")
	}
	return nil
}

func (f *fsck) checkCheckpoint(path string) error {
	f.scanned++
	data, err := vfs.ReadFile(f.fsys, path)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	if err := checkpoint.Verify(data); err != nil {
		f.damaged++
		fmt.Fprintf(f.stdout, "DAMAGED %s: %v\n", path, err)
		if f.quarantine != "" {
			if qerr := quarantineFile(f.fsys, path, f.quarantine); qerr != nil {
				return fmt.Errorf("quarantine %s: %w", path, qerr)
			}
			f.quarantined++
			fmt.Fprintf(f.stdout, "        quarantined -> %s\n",
				filepath.Join(f.quarantine, filepath.Base(path)+".corrupt"))
		} else {
			fmt.Fprintf(f.stdout, "        rerun with -quarantine <dir> to move aside (the run will recompute)\n")
		}
		return nil
	}
	fmt.Fprintf(f.stdout, "ok    %s (%d bytes)\n", path, len(data))
	return nil
}

// quarantineFile moves any damaged file into dir with a .corrupt
// suffix, syncing both directories so the move itself is durable.
func quarantineFile(fsys vfs.FS, path, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(dir, filepath.Base(path)+".corrupt")
	if err := fsys.Rename(path, dst); err != nil {
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}
