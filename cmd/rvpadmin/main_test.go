package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/exp"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/server"
)

// runFsckCLI runs the CLI entry point and returns exit code + stdout.
func runFsckCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"fsck"}, args...), &out, &errb)
	if errb.Len() > 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return code, out.String()
}

// seedState builds a realistic state dir: a job store, a journal, and
// one checkpoint.
func seedState(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := server.OpenStore(server.StorePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j1", "j2"} {
		if err := s.Append(server.JobStatus{ID: id, State: server.StateQueued}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := exp.OpenJournal(exp.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell-1", pipeline.Stats{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Save(filepath.Join(dir, "ckpt", "a.ckpt"), &pipeline.Snapshot{Program: "x"}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFsckCleanState(t *testing.T) {
	dir := seedState(t)
	code, out := runFsckCLI(t, dir)
	if code != 0 {
		t.Fatalf("clean state: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "3 file(s) scanned, 0 damaged") {
		t.Fatalf("summary line wrong:\n%s", out)
	}
}

func TestFsckTornTailRepair(t *testing.T) {
	dir := seedState(t)
	logPath := server.StorePath(dir)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":12,"rec":{"tor`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Without -repair: damage found, not handled -> exit 1.
	code, out := runFsckCLI(t, dir)
	if code != 1 || !strings.Contains(out, "torn tail") {
		t.Fatalf("unrepaired torn tail: exit %d\n%s", code, out)
	}

	// With -repair: fixed -> exit 0, store opens with both jobs.
	code, out = runFsckCLI(t, "-repair", dir)
	if code != 0 || !strings.Contains(out, "tail repaired") {
		t.Fatalf("repair run: exit %d\n%s", code, out)
	}
	s, err := server.OpenStore(logPath)
	if err != nil {
		t.Fatalf("store after repair: %v", err)
	}
	if s.Len() != 2 || s.Truncated != 0 {
		t.Fatalf("store after repair: len=%d truncated=%d", s.Len(), s.Truncated)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The cut bytes survive next to the log.
	if _, err := os.Stat(logPath + ".tail"); err != nil {
		t.Fatalf("cut tail not preserved: %v", err)
	}
}

func TestFsckInteriorQuarantine(t *testing.T) {
	dir := seedState(t)
	logPath := server.StorePath(dir)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0x01 // interior damage: a valid record follows
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Without -quarantine: reported, not handled.
	code, out := runFsckCLI(t, dir)
	if code != 1 || !strings.Contains(out, "INTERIOR") {
		t.Fatalf("interior damage: exit %d\n%s", code, out)
	}

	qdir := filepath.Join(t.TempDir(), "q")
	code, out = runFsckCLI(t, "-quarantine", qdir, dir)
	if code != 0 || !strings.Contains(out, "quarantined") {
		t.Fatalf("quarantine run: exit %d\n%s", code, out)
	}
	if _, err := os.Stat(logPath); !os.IsNotExist(err) {
		t.Fatalf("damaged log still in place: %v", err)
	}
	if _, err := os.Stat(filepath.Join(qdir, "jobs.jsonl.corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// A fresh daemon open now starts clean.
	s, err := server.OpenStore(logPath)
	if err != nil {
		t.Fatalf("store after quarantine: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("store after quarantine: len=%d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckDamagedCheckpoint(t *testing.T) {
	dir := seedState(t)
	ckpt := filepath.Join(dir, "ckpt", "a.ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runFsckCLI(t, dir)
	if code != 1 || !strings.Contains(out, "DAMAGED") {
		t.Fatalf("damaged checkpoint: exit %d\n%s", code, out)
	}
	qdir := filepath.Join(t.TempDir(), "q")
	code, _ = runFsckCLI(t, "-quarantine", qdir, dir)
	if code != 0 {
		t.Fatalf("checkpoint quarantine: exit %d", code)
	}
	if _, err := os.Stat(filepath.Join(qdir, "a.ckpt.corrupt")); err != nil {
		t.Fatalf("quarantined checkpoint missing: %v", err)
	}
}

func TestFsckUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"nonesuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown subcommand: exit %d", code)
	}
	if code := run([]string{"fsck"}, &out, &errb); code != 2 {
		t.Fatalf("fsck without dirs: exit %d", code)
	}
}
