// Package faultinject deterministically perturbs simulation runs for
// robustness testing: stretching memory latencies, flipping value-
// prediction confidence decisions, failing or panicking at checkpoints,
// and truncating programs. An Injector implements pipeline.FaultInjector;
// every perturbation is a pure function of the configuration and the
// run's own event stream, so a faulted run is exactly reproducible.
//
// Faults perturb *timing* and *speculation*, never architecture: the
// oracle-driven pipeline still commits the emulator's correct values, so
// the invariant suite can check that no injected fault ever causes a
// wrong value to commit or a run to hang.
package faultinject

import (
	"fmt"

	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// Config selects which faults an Injector injects. The zero value
// injects nothing.
type Config struct {
	// Seed perturbs which events are hit, so different seeds exercise
	// different instructions without losing determinism.
	Seed uint64

	// MemEvery stretches every Nth data access by MemExtra cycles
	// (0 disables). MemExtra may be large enough to blow a watchdog.
	MemEvery uint64
	MemExtra int

	// FlipEvery inverts every Nth predict/don't-predict decision taken
	// on an eligible instruction (0 disables) — a confidence-counter
	// state flip.
	FlipEvery uint64

	// PanicAfter makes every checkpoint from the Nth on panic
	// (0 disables). Panics are sticky so a retried run fails again.
	PanicAfter uint64

	// FailAfter makes every checkpoint from the Nth on return an error
	// wrapping simerr.ErrInjected (0 disables). Sticky, like PanicAfter.
	FailAfter uint64

	// Transient makes the first N checkpoints return an error marked
	// transient (simerr.IsTransient), then succeed — a fault one retry
	// recovers from (0 disables).
	Transient uint64
}

// Enabled reports whether the configuration injects anything.
func (c Config) Enabled() bool {
	return c.MemEvery > 0 || c.FlipEvery > 0 || c.PanicAfter > 0 ||
		c.FailAfter > 0 || c.Transient > 0
}

// Injector deterministically injects the configured faults. It is
// stateful (event counters persist across runs, so sticky faults stay
// stuck through a retry) and must not be shared between concurrent
// simulations.
type Injector struct {
	cfg Config

	mems        uint64 // data accesses seen
	decisions   uint64 // eligible predict decisions seen
	checkpoints uint64 // checkpoints seen

	// Statistics for tests.
	MemFaults  uint64
	FlipFaults uint64
}

// New builds an injector for the configuration.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration.
func (f *Injector) Config() Config { return f.cfg }

// MemLatency implements pipeline.FaultInjector.
func (f *Injector) MemLatency(addr uint64, now int64, lat int) int {
	if f.cfg.MemEvery == 0 {
		return lat
	}
	f.mems++
	if (f.mems+f.cfg.Seed)%f.cfg.MemEvery == 0 {
		f.MemFaults++
		return lat + f.cfg.MemExtra
	}
	return lat
}

// FlipPredict implements pipeline.FaultInjector.
func (f *Injector) FlipPredict(idx int) bool {
	if f.cfg.FlipEvery == 0 {
		return false
	}
	f.decisions++
	if (f.decisions+f.cfg.Seed)%f.cfg.FlipEvery == 0 {
		f.FlipFaults++
		return true
	}
	return false
}

// CheckPoint implements pipeline.FaultInjector.
func (f *Injector) CheckPoint(committed uint64, cycle int64) error {
	f.checkpoints++
	if f.cfg.PanicAfter > 0 && f.checkpoints >= f.cfg.PanicAfter {
		panic(fmt.Sprintf("faultinject: injected panic at checkpoint %d (committed %d, cycle %d)",
			f.checkpoints, committed, cycle))
	}
	if f.cfg.FailAfter > 0 && f.checkpoints >= f.cfg.FailAfter {
		return fmt.Errorf("checkpoint %d (committed %d): %w",
			f.checkpoints, committed, simerr.ErrInjected)
	}
	if f.cfg.Transient > 0 && f.checkpoints <= f.cfg.Transient {
		return simerr.Transient(fmt.Errorf("transient checkpoint %d: %w",
			f.checkpoints, simerr.ErrInjected))
	}
	return nil
}

// Truncate returns a copy of p keeping only the first n instructions —
// a deterministic model of a corrupted/partial program image. The
// result is intentionally broken (branch targets may dangle, the HALT
// may be gone); emu.New or emu.Step reports the damage as an error, and
// the robustness machinery must surface it rather than hang. n <= 0
// produces an empty program, n >= len(p.Insts) a plain clone.
func Truncate(p *program.Program, n int) *program.Program {
	q := p.Clone()
	if n < 0 {
		n = 0
	}
	if n < len(q.Insts) {
		q.Insts = q.Insts[:n]
		q.Name = fmt.Sprintf("%s_trunc%d", p.Name, n)
	}
	if q.Entry >= len(q.Insts) {
		q.Entry = 0
	}
	return q
}
