package faultinject_test

import (
	"errors"
	"strings"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/faultinject"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/program"
	"rvpsim/internal/progtest"
	"rvpsim/internal/simerr"
)

const budget = 20_000

// cleanStream executes p architecturally (no timing, no faults) and
// returns the committed static-instruction index stream, truncated to
// max instructions.
func cleanStream(t *testing.T, p *program.Program, max uint64) []int {
	t.Helper()
	st := emu.MustNew(p)
	var out []int
	for uint64(len(out)) < max {
		e, ok := st.Step()
		if !ok {
			if st.Err() != nil {
				t.Fatalf("clean run failed: %v", st.Err())
			}
			break
		}
		out = append(out, e.Index)
	}
	return out
}

// TestFaultInvariants is the core invariant suite: under injected memory
// latency faults and confidence flips, all three recovery schemes must
// (a) commit exactly the clean architectural instruction stream — a
// fault may change *when* things happen, never *what* commits — and (b)
// keep the prediction accounting and commit-order invariants intact.
// Termination is guaranteed by the instruction budget plus the watchdog.
func TestFaultInvariants(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	faults := []faultinject.Config{
		{MemEvery: 3, MemExtra: 97},
		{FlipEvery: 2, Seed: 1},
		{MemEvery: 5, MemExtra: 401, FlipEvery: 3, Seed: 7},
	}
	recoveries := []pipeline.Recovery{
		pipeline.RecoverRefetch, pipeline.RecoverReissue, pipeline.RecoverSelective,
	}
	for seed := 1; seed <= seeds; seed++ {
		p := progtest.Random(uint64(seed))
		want := cleanStream(t, p, budget)
		for _, fc := range faults {
			for _, rec := range recoveries {
				cfg := pipeline.BaselineConfig()
				cfg.Recovery = rec
				cfg.WatchdogCycles = 1_000_000 // termination backstop, never trips
				sim := pipeline.MustNew(cfg)
				sim.SetFaults(faultinject.New(fc))

				var got []int
				var lastCommit int64
				ordered := true
				sim.SetTracer(func(tr pipeline.TraceRecord) {
					got = append(got, tr.Index)
					if tr.CommitAt < lastCommit {
						ordered = false
					}
					lastCommit = tr.CommitAt
				})
				st, err := sim.Run(p, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
				if err != nil {
					t.Fatalf("seed %d %v %+v: run failed: %v", seed, rec, fc, err)
				}
				if !ordered {
					t.Errorf("seed %d %v %+v: commit order regressed", seed, rec, fc)
				}
				if uint64(len(got)) != st.Committed {
					t.Errorf("seed %d %v: traced %d != committed %d", seed, rec, len(got), st.Committed)
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d %v %+v: committed %d instructions, clean run commits %d",
						seed, rec, fc, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v %+v: commit %d is instruction %d, clean run commits %d — a fault changed architecture",
							seed, rec, fc, i, got[i], want[i])
					}
				}
				if st.PredictCorrect+st.PredictWrong != st.Predicted {
					t.Errorf("seed %d %v: correct+wrong != predicted", seed, rec)
				}
				if st.Predicted > st.Eligible {
					t.Errorf("seed %d %v: predicted %d > eligible %d", seed, rec, st.Predicted, st.Eligible)
				}
				if st.Cycles <= 0 {
					t.Errorf("seed %d %v: nonpositive cycle count %d", seed, rec, st.Cycles)
				}
			}
		}
	}
}

const loadLoopSrc = `
.text
.proc main
main:
        lda r2, table
        li r3, 2000
loop:
        ldq r4, 0(r2)
        add r5, r5, r4
        subi r3, r3, 1
        bne r3, loop
        halt
.endproc
.data
.org 0x100000
table: .quad 7
`

// TestFaultWatchdogTrip forces a memory-latency fault large enough to
// stall commit past the watchdog and checks the run aborts with a
// structured ErrNoProgress instead of absorbing the stall silently.
func TestFaultWatchdogTrip(t *testing.T) {
	p := asm.MustAssemble("loadloop", loadLoopSrc, asm.Options{})
	cfg := pipeline.BaselineConfig()
	cfg.WatchdogCycles = 500
	sim := pipeline.MustNew(cfg)
	sim.SetFaults(faultinject.New(faultinject.Config{MemEvery: 50, MemExtra: 100_000}))
	st, err := sim.Run(p, core.NoPredictor{}, 0)
	if !errors.Is(err, simerr.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
	var se *simerr.SimError
	if !errors.As(err, &se) || se.Stage != "pipeline" || !se.HasCycle {
		t.Fatalf("watchdog error lacks coordinates: %v", err)
	}
	if st.Committed == 0 {
		t.Error("watchdog abort returned no partial progress")
	}
}

// TestFaultInjectedFailure checks a sticky checkpoint failure surfaces
// as a non-transient error wrapping ErrInjected with partial stats, and
// stays failed on a retry (the same injector keeps counting).
func TestFaultInjectedFailure(t *testing.T) {
	p := asm.MustAssemble("loadloop", loadLoopSrc, asm.Options{})
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	inj := faultinject.New(faultinject.Config{FailAfter: 2})
	sim.SetFaults(inj)
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := sim.Run(p, core.NoPredictor{}, 0)
		if !errors.Is(err, simerr.ErrInjected) {
			t.Fatalf("attempt %d: want ErrInjected, got %v", attempt, err)
		}
		if simerr.IsTransient(err) {
			t.Fatalf("attempt %d: sticky failure marked transient", attempt)
		}
	}
}

// TestFaultTransient checks a transient checkpoint failure is marked
// transient and clears on retry with the same injector.
func TestFaultTransient(t *testing.T) {
	p := asm.MustAssemble("loadloop", loadLoopSrc, asm.Options{})
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	sim.SetFaults(faultinject.New(faultinject.Config{Transient: 1}))
	_, err := sim.Run(p, core.NoPredictor{}, 0)
	if !errors.Is(err, simerr.ErrInjected) || !simerr.IsTransient(err) {
		t.Fatalf("want transient ErrInjected, got %v", err)
	}
	if _, err := sim.Run(p, core.NoPredictor{}, 0); err != nil {
		t.Fatalf("retry after transient fault failed: %v", err)
	}
}

// TestFaultPanicPropagates checks an injected checkpoint panic escapes
// Run (the experiment runner, not the pipeline, owns recovery) and is
// sticky across a retry.
func TestFaultPanicPropagates(t *testing.T) {
	p := asm.MustAssemble("loadloop", loadLoopSrc, asm.Options{})
	sim := pipeline.MustNew(pipeline.BaselineConfig())
	sim.SetFaults(faultinject.New(faultinject.Config{PanicAfter: 1}))
	for attempt := 1; attempt <= 2; attempt++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("attempt %d: injected panic did not propagate", attempt)
				}
				if !strings.Contains(r.(string), "injected panic") {
					t.Fatalf("attempt %d: unexpected panic %v", attempt, r)
				}
			}()
			_, _ = sim.Run(p, core.NoPredictor{}, 0)
		}()
	}
}

// TestFaultTruncate checks truncated programs fail fast with structured
// errors (or run to completion when the truncation kept the program
// intact) and never hang.
func TestFaultTruncate(t *testing.T) {
	p := asm.MustAssemble("loadloop", loadLoopSrc, asm.Options{})
	cfg := pipeline.BaselineConfig()
	cfg.WatchdogCycles = 1_000_000

	// Empty program: rejected up front as a config error.
	empty := faultinject.Truncate(p, 0)
	sim := pipeline.MustNew(cfg)
	if _, err := sim.Run(empty, core.NoPredictor{}, budget); !errors.Is(err, simerr.ErrConfig) {
		t.Fatalf("empty program: want ErrConfig, got %v", err)
	}

	// Mid-truncation (HALT cut off): the run must terminate with an
	// error or hit the instruction budget — never hang.
	for _, n := range []int{1, 3, 5} {
		tr := faultinject.Truncate(p, n)
		sim := pipeline.MustNew(cfg)
		st, err := sim.Run(tr, core.NoPredictor{}, budget)
		if err == nil && st.Committed < budget {
			t.Errorf("truncate %d: run ended cleanly after %d insts with no HALT and no error", n, st.Committed)
		}
	}

	// Full-length truncation is the identity.
	whole := faultinject.Truncate(p, len(p.Insts))
	simA := pipeline.MustNew(cfg)
	a, err := simA.Run(whole, core.NoPredictor{}, budget)
	if err != nil {
		t.Fatalf("identity truncation failed: %v", err)
	}
	simB := pipeline.MustNew(cfg)
	b, err := simB.Run(p, core.NoPredictor{}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("identity truncation changed timing: %d/%d cycles, %d/%d committed",
			a.Cycles, b.Cycles, a.Committed, b.Committed)
	}
}
