// Cross-process kill-and-resume e2e: build the real rvpd binary, SIGTERM
// it mid-figure-sweep, restart it against the same state directory, and
// require the resumed job's table to be byte-identical to an
// uninterrupted in-process run of the same spec. This is the only test
// that proves the checkpoint/journal contract holds across an actual
// process boundary rather than a context cancellation.
package server_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/exp"
	"rvpsim/internal/server"
)

// e2eSpec is the sweep both the daemon and the in-process reference
// run. The budget is sized so the whole figure takes seconds, not
// milliseconds: the SIGTERM must land while the sweep is genuinely
// mid-flight even though the daemon simulates cells in parallel.
var e2eSpec = exp.JobSpec{Kind: "figure", Figure: "fig5", Insts: 500_000, ProfileInsts: 125_000, Threshold: 0.80}

// startDaemon launches the rvpd binary and waits for its bound address.
func startDaemon(t *testing.T, bin, state, addrFile string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-state", state, "-workers", "1",
		"-drain-timeout", "1s", "-ckpt-every", "50000")
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting rvpd: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, "http://" + string(raw), &logs
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("rvpd never wrote its address; logs:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stopDaemon SIGTERMs the daemon and waits for a clean exit.
func stopDaemon(t *testing.T, cmd *exec.Cmd, logs *bytes.Buffer) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rvpd exited uncleanly: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("rvpd did not exit after SIGTERM; logs:\n%s", logs.String())
	}
}

func TestKillAndResumeAcrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process e2e skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rvpd")
	build := exec.Command("go", "build", "-o", bin, "rvpsim/cmd/rvpd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rvpd: %v\n%s", err, out)
	}
	state := filepath.Join(tmp, "state")
	addrFile := filepath.Join(tmp, "addr")

	// Daemon 1: submit the sweep and let it get partway.
	cmd1, base1, logs1 := startDaemon(t, bin, state, addrFile)
	cl := client.New(base1)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := cl.Submit(ctx, e2eSpec, "e2e-resume-key")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The job's simulation journal gains one record per finished sweep
	// cell. Wait for two — proof the sweep is genuinely mid-flight — then
	// pull the plug.
	journal := exp.JournalPath(filepath.Join(state, "jobs", st.ID))
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if raw, err := os.ReadFile(journal); err == nil && bytes.Count(raw, []byte{'\n'}) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never journaled two cells; logs:\n%s", logs1.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopDaemon(t, cmd1, logs1)

	// The dead daemon's store must show the job non-terminal (queued):
	// accepted, interrupted, not dropped.
	store, err := server.OpenStore(server.StorePath(state))
	if err != nil {
		t.Fatalf("opening dead daemon's store: %v", err)
	}
	rec, ok := store.Get(st.ID)
	store.Close()
	if !ok {
		t.Fatalf("job %s missing from the store after the kill", st.ID)
	}
	if rec.Terminal() {
		// The sweep outran the kill; the resume path was not exercised.
		t.Fatalf("job %s already terminal (%s) before the kill landed", st.ID, rec.State)
	}
	if rec.State != server.StateQueued {
		t.Fatalf("interrupted job state = %s, want queued (requeued by drain)", rec.State)
	}

	// Daemon 2 on the same state dir: the job must resume and finish
	// without resubmission.
	cmd2, base2, logs2 := startDaemon(t, bin, state, addrFile)
	cl2 := client.New(base2)
	final, err := cl2.Wait(ctx, st.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for resumed job: %v; logs:\n%s", err, logs2.String())
	}
	if final.State != server.StateSucceeded {
		t.Fatalf("resumed job state = %s (%+v); logs:\n%s", final.State, final.Error, logs2.String())
	}
	if final.Result == nil || final.Result.Text == "" {
		t.Fatalf("resumed job has no table text")
	}
	if final.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (one per daemon)", final.Attempts)
	}
	stopDaemon(t, cmd2, logs2)

	// Byte-identical against an uninterrupted in-process run of the very
	// same spec.
	ref, err := exp.RunJob(context.Background(), e2eSpec, exp.Options{Parallel: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if final.Result.Text != ref.Text {
		t.Errorf("resumed table is not byte-identical to the uninterrupted run:\n--- resumed\n%s--- reference\n%s",
			final.Result.Text, ref.Text)
	}
}
