package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"rvpsim/internal/vfs"
)

// TestSubmitENOSPCDegradesAndRecovers is the graceful-degradation
// contract end to end: when the disk stops taking durable writes the
// daemon sheds submissions with 503 + Retry-After and flips /readyz —
// it does not crash and does not run unacknowledged work — and once
// space returns the storage probe restores service without a restart.
func TestSubmitENOSPCDegradesAndRecovers(t *testing.T) {
	fault := vfs.NewFault(vfs.OS)
	srv, ts := newTestServer(t, func(c *Config) {
		c.FS = fault
		c.StorageProbeEvery = 20 * time.Millisecond
	})

	// Healthy baseline: a job submits and completes.
	resp := postJob(t, ts, runBody, "healthy")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy submit: %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	waitTerminal(t, ts, st.ID)

	// Pull the disk.
	fault.SetPersistent(vfs.ENOSPC)
	resp = postJob(t, ts, runBody, "doomed")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under ENOSPC: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 under ENOSPC carries no Retry-After")
	}
	resp.Body.Close()
	if !srv.storageDegraded.Load() {
		t.Fatalf("server not marked degraded after failed append")
	}

	// Further submissions shed immediately (degraded flag, not a fresh
	// disk failure each time).
	resp = postJob(t, ts, runBody, "doomed2")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit under ENOSPC: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// readyz reflects the degradation.
	code, ready := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || !ready.StorageDegraded || ready.Ready {
		t.Fatalf("readyz under ENOSPC: %d %+v", code, ready)
	}

	// Space returns; the probe must restore service.
	fault.SetPersistent(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, ready = getReadyz(t, ts.URL)
		if code == http.StatusOK && ready.Ready && !ready.StorageDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recovered: %d %+v", code, ready)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp = postJob(t, ts, runBody, "recovered")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery: %d", resp.StatusCode)
	}
	st = decodeStatus(t, resp)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("post-recovery job ended %s: %+v", fin.State, fin.Error)
	}

	// The doomed submissions must not have silently run: their keys map
	// to nothing.
	if _, ok := srv.store.ByKey("doomed"); ok {
		t.Fatalf("shed submission landed in the store")
	}
}

func getReadyz(t *testing.T, base string) (int, readyStatus) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var st readyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return resp.StatusCode, st
}
