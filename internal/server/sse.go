package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// sseKeepalive is the idle heartbeat cadence on event streams: a
// comment frame proves the connection is alive through proxies that
// time out silent responses. Variable for tests.
var sseKeepalive = 15 * time.Second

// handleEvents streams a job's live events as Server-Sent Events:
//
//	id: <seq>
//	event: <type>
//	data: <JobEvent JSON>
//
// A Last-Event-ID header (or ?after= query, for curl) resumes after
// that sequence number: events still in the job's ring are replayed
// first, then the stream goes live. The stream ends after the terminal
// done/failed event. For a job that finished before the daemon
// restarted (no feed in memory), a single synthetic terminal event is
// served from the job record, so "watch" works on any known job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		reject(w, http.StatusNotFound, "unknown job "+id, 0)
		return
	}
	if s.tel == nil {
		reject(w, http.StatusNotImplemented, "telemetry disabled on this daemon", 0)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		reject(w, http.StatusInternalServerError, "streaming unsupported by this connection", 0)
		return
	}
	after := parseLastEventID(r)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	feed, have := s.tel.lookup(id)
	if !have {
		if rec.Terminal() {
			// Completed in a previous daemon's lifetime: one synthetic
			// terminal frame tells the watcher how the story ended.
			ev := JobEvent{Seq: after + 1, Type: EvDone, TimeUS: time.Now().UnixMicro(),
				Job: id, Attempt: rec.Attempts}
			if rec.State == StateFailed {
				ev.Type = EvFailed
				if rec.Error != nil {
					ev.Error = rec.Error.Message
				}
			}
			_ = writeSSE(w, fl, ev)
			return
		}
		feed = s.tel.feed(id)
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		replay, sub := feed.subscribe(after)
		for _, ev := range replay {
			if err := writeSSE(w, fl, ev); err != nil {
				if sub != nil {
					feed.unsubscribe(sub)
				}
				return
			}
			after = ev.Seq
			if terminalEvent(ev.Type) {
				if sub != nil {
					feed.unsubscribe(sub)
				}
				return
			}
		}
		if sub == nil {
			return // terminal feed, fully replayed
		}
	live:
		for {
			select {
			case ev, open := <-sub.ch:
				if !open {
					// Overflow or terminal close: resubscribe and let the
					// ring replay whatever this subscriber missed.
					break live
				}
				if err := writeSSE(w, fl, ev); err != nil {
					feed.unsubscribe(sub)
					return
				}
				after = ev.Seq
				if terminalEvent(ev.Type) {
					feed.unsubscribe(sub)
					return
				}
			case <-r.Context().Done():
				feed.unsubscribe(sub)
				return
			case <-keepalive.C:
				if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
					feed.unsubscribe(sub)
					return
				}
				fl.Flush()
			}
		}
	}
}

// parseLastEventID reads the SSE resume point: the standard
// Last-Event-ID header, with an ?after= query fallback.
func parseLastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// writeSSE emits one event frame and flushes it.
func writeSSE(w http.ResponseWriter, fl http.Flusher, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
