package server

import (
	"testing"

	"rvpsim/internal/vfs"
	"rvpsim/internal/wal/waltest"
)

// TestJobStoreTornTailMatrix runs the shared torn/corrupt-tail
// conformance matrix against the job store: byte-level truncation of
// the final envelope, flipped CRC, flipped payload, and the
// interior-damage refusal, identical to the journal's and ledger's
// runs.
func TestJobStoreTornTailMatrix(t *testing.T) {
	waltest.Run(t, "/state/jobs.jsonl", waltest.Store{
		Records: func(n int) []any {
			out := make([]any, n)
			for i := range out {
				out[i] = JobStatus{ID: waltest.Fmt("job", i), State: StateQueued}
			}
			return out
		},
		Open: func(fsys vfs.FS, path string) (int, int, error) {
			s, err := OpenStoreFS(path, fsys, nil)
			if err != nil {
				return 0, 0, err
			}
			defer s.Close()
			return s.Len(), s.Truncated, nil
		},
	})
}
