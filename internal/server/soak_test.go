// Soak/chaos test: N concurrent retrying clients against an in-process
// daemon whose simulations have injected faults (transient checkpoint
// failures, stretched memory latencies, and one workload with a sticky
// hard fault). The invariants under load:
//
//   - every submission eventually lands (the client's backoff absorbs
//     429/503 sheds),
//   - every accepted job reaches a terminal state: succeeded, or failed
//     with a typed error — no job is silently dropped,
//   - admission control actually shed under the load (the queue was
//     driven past its depth), and
//   - the daemon's goroutines are gone after Close (no leaks).
//
// The test lives in package server_test because it drives the service
// through internal/client, which imports internal/server.
package server_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/exp"
	"rvpsim/internal/faultinject"
	"rvpsim/internal/server"
	"rvpsim/internal/testutil/leak"
)

func TestSoakConcurrentClientsWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	// Goroutine-leak check: everything the daemon starts must be gone
	// after Close.
	leak.Check(t)

	srv, err := server.New(server.Config{
		StateDir:     t.TempDir(),
		Workers:      2,
		QueueDepth:   2, // small on purpose: the load must overrun admission
		DefaultInsts: 5_000,
		JobTimeout:   2 * time.Minute,
		DrainTimeout: 10 * time.Second,
		// High threshold: hard-fault jobs must reach their own terminal
		// failed state rather than shedding later submissions, so the
		// "nothing dropped" accounting stays exact.
		BreakerThreshold: 1_000,
		Faults: map[string]faultinject.Config{
			// One transient checkpoint failure: the first attempt fails,
			// the runner's retry recovers.
			"go": {Transient: 1},
			// Timing chaos only: stretched memory latencies perturb the
			// run but never fail it.
			"perl": {MemEvery: 50, MemExtra: 20},
			// Sticky hard fault: every attempt fails non-transiently.
			"li": {FailAfter: 1},
		},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	// Phase 1 — deterministic overload: occupy both workers with long
	// jobs, fill the queue to its depth, and verify that a burst of raw
	// (non-retrying) submissions is shed with 429 + Retry-After on every
	// rejection. Without this staging the tiny soak jobs drain faster
	// than clients can pile up and admission control never fires.
	plugCl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var plugged []string
	for i := 0; i < 2; i++ {
		// Big enough to hold a worker well past the burst below (also
		// without -race), small enough that even the ~10-20x race-detector
		// slowdown keeps it far inside the job deadline.
		spec := exp.JobSpec{Kind: "run", Workload: "m88ksim", Predictor: "rvp",
			Insts: 6_000_000, ProfileInsts: 500_000}
		st, err := plugCl.Submit(ctx, spec, fmt.Sprintf("soak-plug-%d", i))
		if err != nil {
			t.Fatalf("plug submit %d: %v", i, err)
		}
		plugged = append(plugged, st.ID)
	}
	waitInflight := time.Now().Add(30 * time.Second)
	for srv.Registry().Gauge("srv_inflight_jobs", "").Value() != 2 {
		if time.Now().After(waitInflight) {
			t.Fatalf("plug jobs never occupied both workers")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 2; i++ { // fill the queue to its depth
		spec := exp.JobSpec{Kind: "run", Workload: "m88ksim", Predictor: "rvp", Insts: 5_000}
		st, err := plugCl.Submit(ctx, spec, fmt.Sprintf("soak-fill-%d", i))
		if err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
		plugged = append(plugged, st.ID)
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"run","workload":"go","predictor":"rvp","insts":5000}`))
		if err != nil {
			t.Fatalf("burst post %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("burst post %d = %d, want 429 with workers plugged and queue full", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("burst rejection %d carried no Retry-After", i)
		}
	}

	// Phase 2 — concurrent retrying clients against the still-plugged
	// service: every submission must eventually land via backoff.
	const (
		nClients      = 6
		jobsPerClient = 4
	)
	workloads := []string{"go", "perl", "li", "m88ksim"}

	type landed struct {
		id       string
		workload string
	}
	var (
		mu       sync.Mutex
		accepted []landed
		errs     []error
	)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(ts.URL,
				client.WithBackoff(client.Backoff{Base: 5 * time.Millisecond, Max: 2 * time.Second, Factor: 2}),
				client.WithMaxAttempts(60),
				client.WithSeed(int64(c)))
			for j := 0; j < jobsPerClient; j++ {
				wl := workloads[(c+j)%len(workloads)]
				spec := exp.JobSpec{Kind: "run", Workload: wl, Predictor: "rvp", Insts: 5_000}
				key := fmt.Sprintf("soak-c%d-j%d", c, j)
				st, err := cl.Submit(ctx, spec, key)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("client %d job %d (%s): %w", c, j, wl, err))
				} else {
					accepted = append(accepted, landed{id: st.ID, workload: wl})
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		t.Errorf("submission lost: %v", err)
	}
	if len(accepted) != nClients*jobsPerClient {
		t.Fatalf("landed %d of %d submissions", len(accepted), nClients*jobsPerClient)
	}

	// Every accepted job must reach a terminal state — including the
	// plug and fill jobs from the overload phase.
	cl := client.New(ts.URL)
	for _, id := range plugged {
		st, err := cl.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("plug job %s never terminal: %v", id, err)
		}
		if st.State != server.StateSucceeded {
			t.Errorf("plug job %s state = %s (%+v), want succeeded", id, st.State, st.Error)
		}
	}
	for _, a := range accepted {
		st, err := cl.Wait(ctx, a.id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("job %s (%s) never terminal: %v", a.id, a.workload, err)
		}
		switch a.workload {
		case "li":
			if st.State != server.StateFailed {
				t.Errorf("hard-faulted job %s state = %s, want failed", a.id, st.State)
			} else if st.Error == nil || st.Error.Message == "" {
				t.Errorf("failed job %s has no typed error", a.id)
			}
		default:
			if st.State != server.StateSucceeded {
				t.Errorf("job %s (%s) state = %s (%+v), want succeeded", a.id, a.workload, st.State, st.Error)
			}
		}
	}

	// Accounting: nothing dropped, nothing still pending, and the queue
	// really was driven past admission.
	reg := srv.Registry()
	succeeded := reg.Counter("srv_jobs_succeeded_total", "").Value()
	failed := reg.Counter("srv_jobs_failed_total", "").Value()
	submitted := reg.Counter("srv_jobs_submitted_total", "").Value()
	if want := int64(len(accepted) + len(plugged)); submitted != want {
		t.Errorf("srv_jobs_submitted_total = %d, want %d", submitted, want)
	}
	if succeeded+failed != submitted {
		t.Errorf("terminal jobs %d+%d != submitted %d: work was dropped", succeeded, failed, submitted)
	}
	if pending := srv.Store().Pending(); len(pending) != 0 {
		t.Errorf("%d jobs still pending after the soak: %+v", len(pending), pending)
	}
	if shed := reg.Counter("srv_shed_queue_total", "").Value(); shed == 0 {
		t.Errorf("queue never shed: the soak did not drive admission control")
	}
	if retries := reg.Counter("exp_transient_retries", "").Value(); retries == 0 {
		t.Errorf("no transient retries recorded: the fault injection did not fire")
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
