// Cross-process trace test. This file is an external test package on
// purpose: internal/client imports internal/server, so an internal
// test file (package server) importing the client would be an import
// cycle. Out here we can hold both ends of the wire.
package server_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rvpsim/internal/client"
	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
	"rvpsim/internal/server"
)

// TestConnectedClientServerTrace submits a job through the real client
// and asserts the merged client+server span set forms one connected
// trace: a single root (the client's submit span), every other span's
// parent present, and the expected stages — submission, admission,
// queue wait, worker, job, simulation — all on the same trace ID.
func TestConnectedClientServerTrace(t *testing.T) {
	srv, err := server.New(server.Config{
		StateDir:     t.TempDir(),
		Workers:      1,
		QueueDepth:   4,
		DefaultInsts: 5_000,
		JobTimeout:   time.Minute,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	tracer := obs.NewTracer("rvpc", 64)
	c := client.New(ts.URL, client.WithTracer(tracer), client.WithHTTPClient(ts.Client()))

	ctx := context.Background()
	st, err := c.Submit(ctx, exp.JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 5_000}, "trace-e2e")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.TraceID == "" {
		t.Fatalf("accepted job carries no trace ID")
	}
	if st, err = c.Wait(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != server.StateSucceeded {
		t.Fatalf("state = %s, want succeeded", st.State)
	}

	srvSpans, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	merged := append(c.Spans(), srvSpans...)
	if !obs.ConnectedTrace(merged) {
		for _, sp := range merged {
			t.Logf("span %s trace=%s id=%s parent=%s", sp.Name, sp.Trace, sp.ID, sp.Parent)
		}
		t.Fatalf("merged client+server spans are not one connected trace")
	}
	names := make(map[string]bool)
	for _, sp := range merged {
		names[sp.Name] = true
		if sp.Trace != st.TraceID {
			t.Fatalf("span %s on trace %s, want %s", sp.Name, sp.Trace, st.TraceID)
		}
		if sp.DurUS < 0 {
			t.Fatalf("span %s has negative duration %d", sp.Name, sp.DurUS)
		}
	}
	for _, want := range []string{"submit", "submit_attempt", "admission", "queue_wait", "worker", "job:run"} {
		if !names[want] {
			t.Fatalf("merged trace missing span %q; have %v", want, keys(names))
		}
	}
	sim := false
	for n := range names {
		if strings.HasPrefix(n, "sim:go/") {
			sim = true
		}
	}
	if !sim {
		t.Fatalf("merged trace has no sim:go/* span; have %v", keys(names))
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
