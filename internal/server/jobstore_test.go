package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rvpsim/internal/exp"
)

func testSpec() exp.JobSpec {
	s := exp.JobSpec{Kind: "run", Workload: "go", Predictor: "rvp"}
	s.Normalize(10_000)
	return s
}

func TestStoreReplayLatestWins(t *testing.T) {
	path := StorePath(t.TempDir())
	s, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	spec := testSpec()
	recs := []JobStatus{
		{ID: "j1", Key: "k1", State: StateQueued, Spec: spec},
		{ID: "j2", Key: "k2", State: StateQueued, Spec: spec},
		{ID: "j1", Key: "k1", State: StateRunning, Spec: spec, Attempts: 1},
		{ID: "j1", Key: "k1", State: StateSucceeded, Spec: spec, Attempts: 1},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Truncated != 0 {
		t.Fatalf("Truncated = %d on a clean log", s2.Truncated)
	}
	if got, ok := s2.Get("j1"); !ok || got.State != StateSucceeded {
		t.Fatalf("j1 after replay = %+v, want succeeded", got)
	}
	if got, ok := s2.ByKey("k2"); !ok || got.ID != "j2" {
		t.Fatalf("ByKey(k2) = %+v, want j2", got)
	}
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != "j2" {
		t.Fatalf("Pending = %+v, want just j2", pending)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
}

func TestStoreRunningRecoversAsPending(t *testing.T) {
	path := StorePath(t.TempDir())
	s, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	spec := testSpec()
	s.Append(JobStatus{ID: "j1", Key: "k1", State: StateQueued, Spec: spec})
	s.Append(JobStatus{ID: "j1", Key: "k1", State: StateRunning, Spec: spec, Attempts: 1})
	s.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	// A job that died mid-run is non-terminal: it must come back.
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("Pending = %+v, want the running job", pending)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	path := StorePath(t.TempDir())
	s, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	spec := testSpec()
	s.Append(JobStatus{ID: "j1", Key: "k1", State: StateQueued, Spec: spec})
	s.Append(JobStatus{ID: "j2", Key: "k2", State: StateQueued, Spec: spec})
	s.Close()

	// Simulate a crash mid-append: chop bytes off the last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatalf("tear log: %v", err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen torn log: %v", err)
	}
	defer s2.Close()
	if s2.Truncated == 0 {
		t.Fatalf("torn tail not reported")
	}
	if _, ok := s2.Get("j1"); !ok {
		t.Fatalf("intact record lost with the torn tail")
	}
	if _, ok := s2.Get("j2"); ok {
		t.Fatalf("torn record replayed")
	}

	// Appending after truncation keeps the log healthy.
	if err := s2.Append(JobStatus{ID: "j3", Key: "k3", State: StateQueued, Spec: spec}); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	s2.Close()
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if s3.Truncated != 0 {
		t.Fatalf("log still damaged after repair: Truncated = %d", s3.Truncated)
	}
	if _, ok := s3.Get("j3"); !ok {
		t.Fatalf("post-repair record lost")
	}
}

// damageTail writes two records, lets damage mutate the raw log bytes,
// and then asserts the full repair contract: exactly the final record
// is dropped, the first survives, the repaired log accepts appends, and
// a third open finds no damage left.
func damageTail(t *testing.T, name string, damage func(data []byte, lastLine int) []byte) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		path := StorePath(t.TempDir())
		s, err := OpenStore(path)
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		spec := testSpec()
		s.Append(JobStatus{ID: "j1", Key: "k1", State: StateQueued, Spec: spec})
		s.Append(JobStatus{ID: "j2", Key: "k2", State: StateQueued, Spec: spec})
		s.Close()

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read log: %v", err)
		}
		lastLine := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
		if err := os.WriteFile(path, damage(data, lastLine), 0o644); err != nil {
			t.Fatalf("damage log: %v", err)
		}

		s2, err := OpenStore(path)
		if err != nil {
			t.Fatalf("reopen damaged log: %v", err)
		}
		if s2.Truncated != 1 {
			t.Errorf("Truncated = %d, want exactly the final record", s2.Truncated)
		}
		if _, ok := s2.Get("j1"); !ok {
			t.Errorf("intact record lost with the damaged tail")
		}
		if _, ok := s2.Get("j2"); ok {
			t.Errorf("damaged record replayed")
		}
		if err := s2.Append(JobStatus{ID: "j3", Key: "k3", State: StateQueued, Spec: spec}); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		s2.Close()

		s3, err := OpenStore(path)
		if err != nil {
			t.Fatalf("clean reopen: %v", err)
		}
		defer s3.Close()
		if s3.Truncated != 0 {
			t.Errorf("log still damaged after repair: Truncated = %d", s3.Truncated)
		}
		if _, ok := s3.Get("j1"); !ok {
			t.Errorf("first record lost across repair")
		}
		if _, ok := s3.Get("j3"); !ok {
			t.Errorf("post-repair record lost")
		}
	})
}

// TestStoreTornTailAtEnvelopeBoundary drives the torn-tail repair with
// damage that lands on the CRC envelope's own framing, not inside the
// job payload: a crash can tear a line anywhere, including mid-way
// through `{"crc":` or across the `,"rec":` seam, and the repair must
// behave identically wherever the tear lands.
func TestStoreTornTailAtEnvelopeBoundary(t *testing.T) {
	// Torn inside the `{"crc":NNN` prefix: the final line dies before its
	// checksum is even complete (and has no trailing newline).
	damageTail(t, "inside-crc-prefix", func(data []byte, lastLine int) []byte {
		return data[:lastLine+len(`{"crc":12`)]
	})
	// Corruption straddling the `,"rec":` boundary between the checksum
	// and the protected payload, newline intact: the key no longer
	// parses as "rec", so the envelope carries no payload and the CRC
	// cannot match.
	damageTail(t, "across-rec-seam", func(data []byte, lastLine int) []byte {
		seam := bytes.Index(data[lastLine:], []byte(`,"rec":`))
		if seam < 0 {
			t.Fatalf("envelope seam not found in %q", data[lastLine:])
		}
		copy(data[lastLine+seam:], `,"rxc":`)
		return data
	})
	// The payload's final bytes and the envelope's closing braces
	// overwritten, newline intact: invalid JSON on the last line only.
	damageTail(t, "closing-braces", func(data []byte, lastLine int) []byte {
		copy(data[len(data)-4:], "xyz")
		return data
	})
	// Torn exactly at the envelope boundary: the final line is just
	// `{"crc":` and nothing else — checksum present, payload never
	// written.
	damageTail(t, "crc-only", func(data []byte, lastLine int) []byte {
		end := bytes.Index(data[lastLine:], []byte(`,"rec":`))
		if end < 0 {
			t.Fatalf("envelope seam not found")
		}
		return data[:lastLine+end]
	})
}

func TestStoreCorruptPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	path := StorePath(dir)
	s, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	s.Append(JobStatus{ID: "j1", Key: "k1", State: StateQueued, Spec: testSpec()})
	s.Close()

	// Flip a byte inside the record (not the envelope framing): the CRC
	// must catch it and the replay must stop there.
	data, _ := os.ReadFile(path)
	mid := len(data) / 2
	data[mid] ^= 0x20
	os.WriteFile(path, data, 0o644)

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen corrupt log: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("corrupt record replayed: Len = %d", s2.Len())
	}
	if s2.Truncated == 0 {
		t.Fatalf("corruption not reported")
	}
}

func TestStorePathShape(t *testing.T) {
	if got := StorePath("/x/y"); got != filepath.Join("/x/y", "jobs.jsonl") {
		t.Fatalf("StorePath = %q", got)
	}
}
