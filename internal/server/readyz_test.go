package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestReadyzDrainTransition pins the contract the fleet coordinator
// reads: a serving daemon answers 200 with ready:true/draining:false,
// and from the moment SIGTERM starts a drain, /readyz answers 503 with
// an explicit Draining:true body — so a coordinator stops assigning
// cells to the worker (drain) instead of treating it as dead (down),
// while the still-listening endpoint keeps status polls alive.
func TestReadyzDrainTransition(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	get := func() (int, readyStatus) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		defer resp.Body.Close()
		var st readyStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("readyz body (status %d): %v", resp.StatusCode, err)
		}
		return resp.StatusCode, st
	}

	code, st := get()
	if code != http.StatusOK || !st.Ready || st.Draining {
		t.Fatalf("before drain: %d %+v, want 200 ready:true draining:false", code, st)
	}

	if !srv.Drain() {
		t.Fatalf("idle drain reported unclean")
	}

	code, st = get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", code)
	}
	if st.Ready || !st.Draining {
		t.Fatalf("during drain: body %+v, want ready:false draining:true", st)
	}

	// Draining is terminal for this process: the flag never flips back.
	code, st = get()
	if code != http.StatusServiceUnavailable || !st.Draining {
		t.Fatalf("drain did not stick: %d %+v", code, st)
	}
}
