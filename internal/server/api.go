// Package server is the hardened simulation service: an HTTP/JSON API
// in front of a bounded job queue with admission control, a fixed
// worker pool driving jobs through the crash-safe experiment runner, a
// per-workload circuit breaker, and a graceful drain that checkpoints
// unfinished work so a restarted daemon resumes instead of recomputing.
//
// The contract with clients:
//
//   - POST /v1/jobs submits a job (exp.JobSpec JSON). 202 + JobStatus on
//     acceptance. 429 + Retry-After when the queue is full, its p99
//     wait exceeds the admission limit, or the caller's tenant is over
//     its queued-job quota or token-bucket rate (the Retry-After is
//     per-tenant: the queue's p99 wait, or the time to the next token);
//     503 + Retry-After while draining or while the workload's circuit
//     breaker is open (the hint matches the remaining cooloff); 400 for
//     invalid specs, malformed X-Rvp-Tenant names, and malformed or
//     already-expired X-Rvp-Deadline values; 408 when the request body
//     does not arrive within the body-read timeout (slow-loris defense;
//     the connection closes); 413 for oversized bodies (rejected before
//     decoding); 409 when an Idempotency-Key is reused with a different
//     spec.
//   - X-Rvp-Tenant names the caller's admission bucket ("default" when
//     absent; up to 64 bytes of [A-Za-z0-9._-]). Per-tenant quotas and
//     rate limits are opt-in server config; srv_tenant_* metrics
//     attribute load either way.
//   - X-Rvp-Deadline (unix microseconds) propagates the caller's
//     end-to-end deadline: expired at submit is rejected, a queued job
//     whose deadline passes is abandoned as failed/timeout without
//     charging the workload's breaker, and a running job is cancelled
//     at the deadline.
//   - An Idempotency-Key header makes submission retry-safe: the same
//     key always maps to the same job, so a client that times out and
//     retries cannot double-submit.
//   - GET /v1/jobs/{id} returns the job's JobStatus (404 unknown).
//   - GET /v1/jobs/{id}/events streams the job's lifecycle as
//     Server-Sent Events (queued, started, progress heartbeats with
//     committed/IPC, checkpointed, requeued, done/failed); Last-Event-ID
//     resumes a dropped stream from the job's bounded event ring.
//   - GET /v1/jobs/{id}/trace returns the daemon-side spans of the
//     job's trace (?format=chrome for a chrome://tracing file). Clients
//     propagate trace identity via X-Rvp-Trace-Id/X-Rvp-Parent-Span.
//   - GET /healthz is liveness (200 while the process serves).
//   - GET /readyz is readiness: 200 + queue stats while accepting, 503
//     while draining.
//   - GET /metrics is the obs registry in Prometheus text format.
//
// Every state transition of an accepted job is fsync'd to a CRC-checked
// job store before it is acknowledged, so accepted jobs survive a
// restart: on startup, queued and interrupted jobs are re-enqueued and
// their simulation state (write-ahead journal + checkpoints, keyed by
// the normalized spec digest) lets them resume mid-stream.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"rvpsim/internal/exp"
	"rvpsim/internal/simerr"
)

// Job states. The lifecycle is queued -> running -> succeeded|failed,
// with running -> queued on a drain or crash (the job is requeued and
// resumed by the next daemon).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
)

// JobStatus is the wire representation of one job. It is also the job
// store's on-disk record: the latest record per ID wins on replay.
type JobStatus struct {
	ID string `json:"id"`
	// Key is the client's idempotency key, when one was supplied.
	Key   string      `json:"key,omitempty"`
	State string      `json:"state"`
	Spec  exp.JobSpec `json:"spec"`
	// Attempts counts how many times the job entered a worker, across
	// daemon restarts.
	Attempts int            `json:"attempts,omitempty"`
	Result   *exp.JobResult `json:"result,omitempty"`
	Error    *ErrorInfo     `json:"error,omitempty"`
	// TraceID identifies the job's distributed trace (client-supplied
	// via X-Rvp-Trace-Id, or daemon-assigned).
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the quota bucket the job was admitted under
	// (X-Rvp-Tenant, DefaultTenant for anonymous callers).
	Tenant string `json:"tenant,omitempty"`
	// DeadlineUS is the caller's propagated deadline (X-Rvp-Deadline,
	// unix microseconds; 0 none). The daemon abandons queued jobs past
	// it and cancels running ones at it.
	DeadlineUS int64 `json:"deadline_us,omitempty"`
	// Flight is the flight recorder's dump, present only on failed jobs:
	// the most recent events leading up to the failure.
	Flight *FlightRecord `json:"flight,omitempty"`
}

// FlightRecord is the bounded pre-failure event history embedded in a
// failed job's record. It identifies the spec only by digest — the
// events themselves carry no spec fields.
type FlightRecord struct {
	SpecDigest string     `json:"spec_digest"`
	Events     []JobEvent `json:"events"`
}

// Terminal reports whether the state is final.
func (j JobStatus) Terminal() bool {
	return j.State == StateSucceeded || j.State == StateFailed
}

// ErrorInfo is the typed failure payload of a failed job, flattened
// from the simulator's error taxonomy so clients classify failures
// without parsing message strings.
type ErrorInfo struct {
	Message  string `json:"message"`
	Stage    string `json:"stage,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Transient marks failures the simulator classified as transient
	// (the run was already retried once and still failed).
	Transient bool `json:"transient,omitempty"`
	// Timeout marks per-job deadline expiries.
	Timeout bool `json:"timeout,omitempty"`
}

// errorInfo flattens err into the wire payload.
func errorInfo(err error, timeout bool) *ErrorInfo {
	info := &ErrorInfo{
		Message:   err.Error(),
		Transient: simerr.IsTransient(err),
		Timeout:   timeout,
	}
	var se *simerr.SimError
	if errors.As(err, &se) {
		info.Stage = se.Stage
		info.Workload = se.Workload
	}
	return info
}

// apiError is the JSON error body for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// DecodeJobRequest parses and validates one POST /v1/jobs body. The
// decoder is strict — unknown fields and trailing data are rejected —
// so malformed automation fails loudly instead of silently running a
// default job. The returned spec is already normalized against
// defaultInsts. It never panics on any input (see FuzzJobRequest).
func DecodeJobRequest(body []byte, defaultInsts uint64) (exp.JobSpec, error) {
	var spec exp.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return exp.JobSpec{}, fmt.Errorf("invalid job request: %w", err)
	}
	if dec.More() {
		return exp.JobSpec{}, errors.New("invalid job request: trailing data after JSON object")
	}
	spec.Normalize(defaultInsts)
	if err := spec.Validate(); err != nil {
		return exp.JobSpec{}, err
	}
	return spec, nil
}
