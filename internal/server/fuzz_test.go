package server

import (
	"testing"

	"rvpsim/internal/exp"
)

// FuzzJobRequest drives the HTTP decoder with arbitrary bodies. The
// contract under fuzz: DecodeJobRequest never panics, and any spec it
// accepts is valid and normalized (budgets bounded, digest computable).
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"kind":"run","workload":"go","predictor":"rvp"}`))
	f.Add([]byte(`{"kind":"run","workload":"hydro2d","predictor":"stride","recovery":"refetch","insts":100000}`))
	f.Add([]byte(`{"kind":"figure","figure":"fig5","insts":30000,"profile_insts":15000,"threshold":0.8}`))
	f.Add([]byte(`{"kind":"figure","figure":"fig1"}`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"kind":`))
	f.Add([]byte(`{"kind":"run"} {"kind":"run"}`))
	f.Add([]byte(`{"kind":"run","unknown_field":true}`))
	f.Add([]byte(`{"kind":"run","insts":-1}`))
	f.Add([]byte(`{"kind":"run","threshold":1e308}`))
	f.Add([]byte("{\"kind\":\"\x00\",\"workload\":\"\xff\"}"))

	f.Fuzz(func(t *testing.T, body []byte) {
		spec, err := DecodeJobRequest(body, 2_000_000)
		if err != nil {
			return
		}
		// Accepted specs must satisfy the validated invariants the queue
		// and runner rely on.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid spec %+v: %v", spec, verr)
		}
		if spec.Insts == 0 || spec.Insts > exp.MaxJobInsts {
			t.Fatalf("accepted spec has out-of-range insts %d", spec.Insts)
		}
		if spec.Threshold < 0 || spec.Threshold > 1 {
			t.Fatalf("accepted spec has out-of-range threshold %v", spec.Threshold)
		}
		if spec.Digest() == "" {
			t.Fatalf("accepted spec has empty digest")
		}
	})
}
