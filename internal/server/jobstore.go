package server

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rvpsim/internal/simerr"
)

// Store is the daemon's write-ahead job log: every job state transition
// (accepted, started, finished, requeued) is appended — and fsync'd —
// as a CRC-32-enveloped JSON line before the transition is acknowledged
// anywhere else. Replaying the log (latest record per job ID wins)
// reconstructs every job after a restart, which is what makes "no
// accepted job is ever silently dropped" hold across process deaths: a
// job either reaches a terminal record or is re-enqueued by the next
// daemon. A torn or corrupt tail — the signature of a crash mid-append —
// is truncated away on open, never fatal.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	jobs  map[string]JobStatus
	order []string          // first-seen order, for deterministic recovery
	byKey map[string]string // idempotency key -> job ID

	// Truncated reports how many damaged tail records were dropped on
	// open.
	Truncated int
}

// storeEnvelope wraps one record: Rec's exact bytes are CRC-protected.
type storeEnvelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// StorePath is the job log's location inside a state directory.
func StorePath(dir string) string { return filepath.Join(dir, "jobs.jsonl") }

// OpenStore opens (creating if absent) the job log at path and replays
// every valid record.
func OpenStore(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, simerr.New("jobstore", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, simerr.New("jobstore", err)
	}
	s := &Store{f: f, jobs: map[string]JobStatus{}, byKey: map[string]string{}}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, simerr.New("jobstore", err)
	}
	valid := 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break
		}
		rec, ok := parseStoreLine(data[valid : valid+nl])
		if !ok {
			break
		}
		s.apply(rec)
		valid += nl + 1
	}
	if valid < len(data) {
		s.Truncated = 1 + bytes.Count(data[valid:], []byte{'\n'})
		if data[len(data)-1] == '\n' {
			s.Truncated--
		}
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, simerr.New("jobstore", err)
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, simerr.New("jobstore", err)
	}
	return s, nil
}

// parseStoreLine validates one envelope line.
func parseStoreLine(line []byte) (JobStatus, bool) {
	var rec JobStatus
	if len(bytes.TrimSpace(line)) == 0 {
		return rec, false
	}
	var env storeEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return rec, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return rec, false
	}
	if err := json.Unmarshal(env.Rec, &rec); err != nil || rec.ID == "" {
		return rec, false
	}
	return rec, true
}

// apply folds one replayed record into the in-memory view. Caller holds
// the lock (or is still single-threaded in OpenStore).
func (s *Store) apply(rec JobStatus) {
	if _, seen := s.jobs[rec.ID]; !seen {
		s.order = append(s.order, rec.ID)
	}
	s.jobs[rec.ID] = rec
	if rec.Key != "" {
		s.byKey[rec.Key] = rec.ID
	}
}

// Append records one job state transition, fsyncing before it returns.
func (s *Store) Append(rec JobStatus) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return simerr.New("jobstore", err)
	}
	line, err := json.Marshal(storeEnvelope{CRC: crc32.ChecksumIEEE(raw), Rec: raw})
	if err != nil {
		return simerr.New("jobstore", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return simerr.New("jobstore", err)
	}
	if err := s.f.Sync(); err != nil {
		return simerr.New("jobstore", err)
	}
	s.apply(rec)
	return nil
}

// Get returns the latest record for id.
func (s *Store) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// ByKey returns the latest record for the job an idempotency key maps to.
func (s *Store) ByKey(key string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return JobStatus{}, false
	}
	rec, ok := s.jobs[id]
	return rec, ok
}

// Pending returns every non-terminal job in first-seen order: the work
// a restarted daemon must re-enqueue.
func (s *Store) Pending() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobStatus
	for _, id := range s.order {
		if rec := s.jobs[id]; !rec.Terminal() {
			out = append(out, rec)
		}
	}
	return out
}

// Len returns how many distinct jobs the store knows.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
