package server

import (
	"encoding/json"
	"path/filepath"
	"sync"

	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Store is the daemon's write-ahead job log: every job state transition
// (accepted, started, finished, requeued) is appended — and fsync'd —
// before the transition is acknowledged anywhere else. Replaying the log
// (latest record per job ID wins) reconstructs every job after a
// restart, which is what makes "no accepted job is ever silently
// dropped" hold across process deaths: a job either reaches a terminal
// record or is re-enqueued by the next daemon.
//
// The durability mechanics — CRC envelope, fsync-per-append, torn-tail
// repair on open, interior-corruption refusal — live in internal/wal;
// this type is the job-shaped layer on top. The on-disk format is
// unchanged from the pre-engine store, so old state dirs resume.
type Store struct {
	mu    sync.Mutex
	w     *wal.WAL
	jobs  map[string]JobStatus
	order []string          // first-seen order, for deterministic recovery
	byKey map[string]string // idempotency key -> job ID

	// Truncated reports how many damaged tail records were dropped on
	// open.
	Truncated int
}

// StorePath is the job log's location inside a state directory.
func StorePath(dir string) string { return filepath.Join(dir, "jobs.jsonl") }

// OpenStore opens (creating if absent) the job log at path and replays
// every valid record, via the real filesystem.
func OpenStore(path string) (*Store, error) { return OpenStoreFS(path, nil, nil) }

// OpenStoreFS is OpenStore through an explicit filesystem seam (nil
// means vfs.OS) with optional wal metrics.
func OpenStoreFS(path string, fsys vfs.FS, met *wal.Metrics) (*Store, error) {
	s := &Store{jobs: map[string]JobStatus{}, byKey: map[string]string{}}
	w, err := wal.Open(path, wal.Options{FS: fsys, Name: "jobstore", Metrics: met}, func(raw json.RawMessage) error {
		var rec JobStatus
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		if rec.ID == "" {
			return simerr.Newf("jobstore", "record with empty job ID")
		}
		s.apply(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.w = w
	s.Truncated = w.Truncated
	return s, nil
}

// apply folds one replayed record into the in-memory view. Caller holds
// the lock (or is still single-threaded in OpenStore).
func (s *Store) apply(rec JobStatus) {
	if _, seen := s.jobs[rec.ID]; !seen {
		s.order = append(s.order, rec.ID)
	}
	s.jobs[rec.ID] = rec
	if rec.Key != "" {
		s.byKey[rec.Key] = rec.ID
	}
}

// Append records one job state transition, fsyncing before it returns.
func (s *Store) Append(rec JobStatus) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Append(rec); err != nil {
		return err
	}
	s.apply(rec)
	return nil
}

// Probe checks that the store's storage still takes durable writes; a
// degraded daemon calls this to decide the disk has come back.
func (s *Store) Probe() error { return s.w.Probe() }

// Get returns the latest record for id.
func (s *Store) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// ByKey returns the latest record for the job an idempotency key maps to.
func (s *Store) ByKey(key string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return JobStatus{}, false
	}
	rec, ok := s.jobs[id]
	return rec, ok
}

// Pending returns every non-terminal job in first-seen order: the work
// a restarted daemon must re-enqueue.
func (s *Store) Pending() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobStatus
	for _, id := range s.order {
		if rec := s.jobs[id]; !rec.Terminal() {
			out = append(out, rec)
		}
	}
	return out
}

// Len returns how many distinct jobs the store knows.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Close closes the underlying log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
