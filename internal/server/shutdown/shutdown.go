// Package shutdown centralises the process-lifecycle plumbing the
// binaries share: a signal-bound context and a drain-deadline wait.
// cmd/rvpd and cmd/experiments both install SIGINT/SIGTERM handlers and
// both need "give in-flight work this long to finish, then force it" —
// this package is the single implementation.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Context returns a copy of parent canceled on the first SIGINT or
// SIGTERM. The returned stop function releases the signal registration;
// a second signal after the first therefore kills the process with the
// default disposition, so a stuck drain can always be escalated.
func Context(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Wait blocks until done is closed or timeout elapses, reporting
// whether done closed in time. A non-positive timeout waits forever.
// This is the drain deadline: pass the channel your workers close when
// the last in-flight job finishes.
func Wait(done <-chan struct{}, timeout time.Duration) bool {
	if timeout <= 0 {
		<-done
		return true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// WaitGroup adapts a sync.WaitGroup-style Wait method to Wait's channel
// contract: it runs wait in a goroutine and returns true if it finished
// within the timeout. The goroutine is not reaped on timeout — the
// caller is about to force-cancel whatever wait was stuck on.
func WaitGroup(wait func(), timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		defer close(done)
		wait()
	}()
	return Wait(done, timeout)
}
