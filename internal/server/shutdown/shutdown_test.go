package shutdown

import (
	"context"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestContextCancelsOnSignal(t *testing.T) {
	ctx, stop := Context(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("context not canceled after SIGTERM")
	}
}

func TestContextInheritsParentCancel(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := Context(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("context not canceled with parent")
	}
}

func TestWaitClosedInTime(t *testing.T) {
	done := make(chan struct{})
	close(done)
	if !Wait(done, 10*time.Millisecond) {
		t.Fatalf("Wait(closed) = false, want true")
	}
}

func TestWaitTimesOut(t *testing.T) {
	done := make(chan struct{})
	start := time.Now()
	if Wait(done, 20*time.Millisecond) {
		t.Fatalf("Wait(never-closed) = true, want false")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("Wait returned before the deadline")
	}
}

func TestWaitNoTimeoutBlocksUntilDone(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	if !Wait(done, 0) {
		t.Fatalf("Wait(done, 0) = false, want true")
	}
}

func TestWaitGroup(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		wg.Done()
	}()
	if !WaitGroup(wg.Wait, time.Second) {
		t.Fatalf("WaitGroup did not observe completion in time")
	}

	var stuck sync.WaitGroup
	stuck.Add(1)
	defer stuck.Done() // reap the leaked waiter's reason to block
	if WaitGroup(stuck.Wait, 10*time.Millisecond) {
		t.Fatalf("WaitGroup reported completion for a stuck wait")
	}
}
