package server

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/faultinject"
	"rvpsim/internal/obs"
	"rvpsim/internal/server/shutdown"
	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// StateDir holds the job store and per-job simulation state
	// (required: it is what makes accepted jobs survive restarts).
	StateDir string
	// Workers is the fixed worker-pool size (default one per core).
	Workers int
	// QueueDepth is the admission limit on queued jobs (default 64).
	QueueDepth int
	// MaxWait sheds submissions when the p99 of recent queue waits
	// exceeds it (default 30s; 0 disables the wait-based signal).
	MaxWait time.Duration
	// JobTimeout bounds each job attempt (default 10m).
	JobTimeout time.Duration
	// DrainTimeout is how long a graceful drain lets in-flight jobs
	// finish before force-cancelling them into checkpoints (default 10s).
	DrainTimeout time.Duration
	// BreakerThreshold trips a workload's circuit breaker after this
	// many consecutive non-transient failures (default 3; <0 disables).
	BreakerThreshold int
	// BreakerCooloff is how long a tripped breaker sheds before its
	// half-open probe (default 30s).
	BreakerCooloff time.Duration
	// DefaultInsts is the per-run budget for specs that omit one
	// (default 2M).
	DefaultInsts uint64
	// CheckpointEvery is the in-flight checkpoint cadence in committed
	// instructions (default 200k; 0 disables mid-run checkpoints).
	CheckpointEvery uint64
	// WatchdogCycles arms the pipeline watchdog for every run (0 off).
	WatchdogCycles int
	// MaxBody bounds POST bodies; larger requests get 413 before any
	// decoding (default 1 MiB).
	MaxBody int64
	// Registry receives service and simulation metrics (fresh if nil).
	Registry *obs.Registry
	// Faults injects deterministic faults into jobs' simulation runs,
	// keyed by workload (chaos/soak testing).
	Faults map[string]faultinject.Config
	// Logger receives structured lifecycle logs (with job and trace
	// IDs); nil discards them.
	Logger *slog.Logger
	// DisableTelemetry turns off job tracing, event feeds and the flight
	// recorder. It exists for the serve-path overhead benchmark — the
	// baseline it measures against — not for production use.
	DisableTelemetry bool
	// ProgressEvery is the live-heartbeat cadence in committed
	// instructions (default 100k).
	ProgressEvery uint64
	// FlightRecorderSize is how many recent events each job's feed
	// retains for SSE replay and the failure dump (default 256).
	FlightRecorderSize int
	// TracerCapacity bounds the daemon's retained spans (default 4096).
	TracerCapacity int
	// FS is the filesystem seam all durability I/O (job store, sweep
	// journals, checkpoints) goes through. Nil means the real
	// filesystem; tests inject vfs.Mem/vfs.Fault to simulate hostile
	// storage.
	FS vfs.FS
	// StorageProbeEvery is how often a storage-degraded daemon probes
	// the disk for recovery (default 2s).
	StorageProbeEvery time.Duration
	// TenantQueueDepth caps how many jobs one tenant (X-Rvp-Tenant, or
	// DefaultTenant) may hold queued at once, so a single tenant cannot
	// fill the shared queue (0 disables: only the shared queue limits,
	// which keeps single-tenant deployments on the plain admission
	// path).
	TenantQueueDepth int
	// TenantRate is each tenant's sustained admission rate in jobs per
	// second, enforced by a token bucket of TenantBurst capacity
	// (default 0: no rate limit).
	TenantRate float64
	// TenantBurst is the token-bucket burst per tenant (default 1 when
	// TenantRate is set).
	TenantBurst int
	// BodyReadTimeout bounds how long a submission may take to deliver
	// its body, so slow-loris clients are cut with 408 instead of
	// holding connections open indefinitely (default 30s; <0 disables).
	BodyReadTimeout time.Duration
}

func (c *Config) setDefaults() error {
	if c.StateDir == "" {
		return simerr.Newf("server", "Config.StateDir is required: %v", simerr.ErrConfig)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 30 * time.Second
	}
	if c.DefaultInsts == 0 {
		c.DefaultInsts = 2_000_000
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 100_000
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	if c.TracerCapacity <= 0 {
		c.TracerCapacity = 4096
	}
	if c.StorageProbeEvery <= 0 {
		c.StorageProbeEvery = 2 * time.Second
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 1
	}
	if c.BodyReadTimeout == 0 {
		c.BodyReadTimeout = 30 * time.Second
	}
	return nil
}

// maxFeeds bounds how many per-job event feeds the telemetry hub
// retains (terminal feeds are evicted oldest-first past this).
const maxFeeds = 1024

// Server is the simulation service: HTTP API, bounded queue, worker
// pool, circuit breakers, and crash-safe job state.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	store   *Store
	queue   *queue
	breaker *breaker
	tenants *tenants
	log     *slog.Logger

	// tel and tracer are the observability layer: per-job event feeds
	// (SSE + flight recorder) and the daemon's span collector. Both are
	// nil with Config.DisableTelemetry, and every use is nil-safe.
	tel    *telemetry
	tracer *obs.Tracer

	// baseCtx parents every job run; cancelling it is the drain
	// deadline's hammer that turns in-flight runs into checkpoints.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// stopPick tells workers to stop picking up new jobs.
	stopPick  chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	draining  atomic.Bool
	drainOnce sync.Once
	drainedOK bool

	// submitMu serializes admission so concurrent idempotent retries
	// cannot double-enqueue one logical job.
	submitMu sync.Mutex

	inflight atomic.Int64

	// storageDegraded is set when a durable append fails persistently:
	// the daemon stops accepting work (503 + Retry-After, /readyz not
	// ready) instead of crashing or silently dropping records, and a
	// background probe clears the flag when the disk takes durable
	// writes again.
	storageDegraded atomic.Bool
	walMet          *wal.Metrics

	mSubmitted, mDeduped            *obs.Counter
	mShedQueue, mShedBreaker        *obs.Counter
	mShedDraining, mShedStorage     *obs.Counter
	mSucceeded, mFailed, mRequeued  *obs.Counter
	mBreakerTrips                   *obs.Counter
	mBodyTimeouts, mDeadlineExpired *obs.Counter
	gDepth, gInflight, gWorkers     *obs.Gauge
	gBreakerOpen, gDraining         *obs.Gauge
	gStorageDegraded                *obs.Gauge
	gvBreaker, gvTenantQueued       *obs.GaugeVec
	cvTenantSubmitted, cvTenantShed *obs.CounterVec
	hWaitMS, hRunMS                 *obs.Histogram
}

// New opens the state directory, replays the job store, re-enqueues
// every non-terminal job, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	walMet := wal.NewMetrics(cfg.Registry)
	store, err := OpenStoreFS(StorePath(cfg.StateDir), cfg.FS, walMet)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		store:    store,
		walMet:   walMet,
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooloff),
		log:      cfg.Logger,
		stopPick: make(chan struct{}),
	}
	if !cfg.DisableTelemetry {
		s.tel = newTelemetry(cfg.FlightRecorderSize, maxFeeds)
		s.tracer = obs.NewTracer("rvpd", cfg.TracerCapacity)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.initMetrics()
	s.tenants = newTenants(cfg.TenantQueueDepth, cfg.TenantRate, cfg.TenantBurst, s.gvTenantQueued)
	if store.Truncated > 0 {
		s.log.Warn("jobstore: dropped damaged tail records", "count", store.Truncated)
	}

	// Recovery: everything non-terminal re-enters the queue, past
	// admission — these jobs were accepted by a previous daemon and the
	// acceptance contract survives the restart. Queue capacity is sized
	// so force() cannot block.
	pending := store.Pending()
	s.queue = newQueue(cfg.QueueDepth, cfg.QueueDepth+len(pending), cfg.MaxWait)
	for _, rec := range pending {
		if rec.State == StateRunning {
			// The previous daemon died mid-run; normalize the record so
			// status reads don't claim a dead daemon is running it.
			rec.State = StateQueued
			if err := store.Append(rec); err != nil {
				_ = store.Close() // already failing; surface the append error
				return nil, err
			}
		}
		tenant := rec.Tenant
		if tenant == "" {
			tenant = DefaultTenant
		}
		var deadline time.Time
		if rec.DeadlineUS > 0 {
			deadline = time.UnixMicro(rec.DeadlineUS)
		}
		s.tenants.force(tenant)
		s.queue.force(&job{
			id: rec.ID, spec: rec.Spec, breakerKey: breakerKey(rec.Spec),
			enqueued: time.Now(), tctx: obs.SpanContext{Trace: rec.TraceID},
			tenant: tenant, deadline: deadline,
		})
		s.tel.publish(rec.ID, JobEvent{Type: EvQueued, Attempt: rec.Attempts})
		s.log.Info("recovered job", "job", rec.ID, "kind", rec.Spec.Kind, "trace", rec.TraceID)
	}
	s.gDepth.Set(int64(s.queue.depthNow()))
	s.gWorkers.Set(int64(cfg.Workers))

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.storageProbe()
	return s, nil
}

// noteStorageFailure flips the daemon into storage-degraded mode after
// a failed durable append. From here the daemon sheds new work with 503
// + Retry-After and reports not-ready, rather than crashing or
// acknowledging writes it cannot persist; the probe loop clears the
// mode once the disk recovers.
func (s *Server) noteStorageFailure(err error) {
	if s.storageDegraded.CompareAndSwap(false, true) {
		s.gStorageDegraded.Set(1)
		s.log.Error("storage degraded: durable append failed; shedding new work until the disk recovers", "error", err)
	}
}

// storageProbe periodically checks a degraded daemon's disk and
// restores service when durable writes succeed again (e.g. space was
// freed after ENOSPC).
func (s *Server) storageProbe() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.StorageProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopPick:
			return
		case <-t.C:
			if !s.storageDegraded.Load() {
				continue
			}
			if err := s.store.Probe(); err != nil {
				s.log.Debug("storage probe failed; staying degraded", "error", err)
				continue
			}
			s.storageDegraded.Store(false)
			s.gStorageDegraded.Set(0)
			s.log.Info("storage recovered: accepting work again")
		}
	}
}

func (s *Server) initMetrics() {
	s.mSubmitted = s.reg.Counter("srv_jobs_submitted_total", "jobs accepted into the queue")
	s.mDeduped = s.reg.Counter("srv_jobs_deduped_total", "submissions answered from an existing idempotency key")
	s.mShedQueue = s.reg.Counter("srv_shed_queue_total", "submissions shed by queue admission control (429)")
	s.mShedBreaker = s.reg.Counter("srv_shed_breaker_total", "submissions shed by an open circuit breaker (503)")
	s.mShedDraining = s.reg.Counter("srv_shed_draining_total", "submissions shed while draining (503)")
	s.mShedStorage = s.reg.Counter("srv_shed_storage_total", "submissions shed while storage-degraded (503)")
	s.mSucceeded = s.reg.Counter("srv_jobs_succeeded_total", "jobs that reached a successful terminal state")
	s.mFailed = s.reg.Counter("srv_jobs_failed_total", "jobs that reached a failed terminal state")
	s.mRequeued = s.reg.Counter("srv_jobs_requeued_total", "in-flight jobs checkpointed and requeued by a drain")
	s.mBreakerTrips = s.reg.Counter("srv_breaker_trips_total", "circuit-breaker open transitions")
	s.mBodyTimeouts = s.reg.Counter("srv_body_timeouts_total", "submissions cut for exceeding the body-read timeout (slow-loris defense, 408)")
	s.mDeadlineExpired = s.reg.Counter("srv_deadline_expired_total", "jobs abandoned or refused because the caller's propagated deadline passed")
	s.gDepth = s.reg.Gauge("srv_queue_depth", "jobs currently queued")
	s.gInflight = s.reg.Gauge("srv_inflight_jobs", "jobs currently running on workers")
	s.gWorkers = s.reg.Gauge("srv_workers_total", "size of the worker pool (utilization = srv_inflight_jobs / this)")
	s.gBreakerOpen = s.reg.Gauge("srv_breaker_open", "circuit breakers currently open")
	s.gvBreaker = s.reg.GaugeVec("srv_breaker_state", "per-workload breaker state (0 closed, 1 half-open, 2 open)", "key")
	s.gvTenantQueued = s.reg.GaugeVec("srv_tenant_queued", "jobs currently queued per tenant", "tenant")
	s.cvTenantSubmitted = s.reg.CounterVec("srv_tenant_submitted_total", "jobs accepted per tenant", "tenant")
	s.cvTenantShed = s.reg.CounterVec("srv_tenant_shed_total", "submissions shed by per-tenant quota or rate limit (429)", "tenant")
	s.gDraining = s.reg.Gauge("srv_draining", "1 while the daemon is draining")
	s.gStorageDegraded = s.reg.Gauge("srv_storage_degraded", "1 while durable appends are failing and new work is shed")
	s.hWaitMS = s.reg.Histogram("srv_queue_wait_ms", "queue wait per job, milliseconds", obs.ExpBuckets(2, 2, 14))
	s.hRunMS = s.reg.Histogram("srv_job_run_ms", "run time per job attempt, milliseconds", obs.ExpBuckets(2, 2, 16))
}

// breakerKey buckets a job for the circuit breaker: per workload for
// run jobs, per figure for sweeps.
func breakerKey(spec exp.JobSpec) string {
	if spec.Kind == "figure" {
		return "figure:" + spec.Figure
	}
	return spec.Workload
}

// jobDir is where one job's crash-safe simulation state lives. It is
// keyed by the job ID, which is stable across restarts, and the
// journal/checkpoint keys inside are derived from the normalized spec,
// so a resumed job finds its own work.
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "jobs", id)
}

// TraceIDHeader and ParentSpanHeader propagate trace identity from
// clients: a submission carrying them joins the client's trace, so one
// connected span tree covers both processes.
const (
	TraceIDHeader    = "X-Rvp-Trace-Id"
	ParentSpanHeader = "X-Rvp-Parent-Span"
)

// TenantHeader names the caller's tenant for per-tenant quotas and
// rate limits; anonymous callers are bucketed under DefaultTenant.
// DeadlineHeader carries the caller's context deadline as unix
// microseconds: the server refuses work it cannot start in time and
// cancels runs whose caller has already given up, so orphaned work
// never occupies a worker.
const (
	TenantHeader   = "X-Rvp-Tenant"
	DeadlineHeader = "X-Rvp-Deadline"
	DefaultTenant  = "default"
)

// parseDeadline reads a DeadlineHeader value (unix microseconds; empty
// means no deadline).
func parseDeadline(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	us, err := strconv.ParseInt(v, 10, 64)
	if err != nil || us <= 0 {
		return time.Time{}, fmt.Errorf("invalid %s %q: want a positive unix-microsecond timestamp", DeadlineHeader, v)
	}
	return time.UnixMicro(us), nil
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", obs.Handler(s.reg))
	return s.logRequests(mux)
}

// logRequests logs one debug line per request with its trace ID when
// the client sent one. Debug level keeps the serve path's default-off
// logging cost to one Enabled check.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.log.Enabled(r.Context(), slog.LevelDebug) {
			start := time.Now()
			next.ServeHTTP(w, r)
			s.log.Debug("request",
				"method", r.Method, "path", r.URL.Path,
				"trace", r.Header.Get(TraceIDHeader),
				"dur_ms", time.Since(start).Milliseconds())
			return
		}
		next.ServeHTTP(w, r)
	})
}

// clientSpanContext reads the caller's trace position from the request
// headers (zero when absent — spans then root a fresh trace).
func clientSpanContext(r *http.Request) obs.SpanContext {
	return obs.SpanContext{
		Trace: r.Header.Get(TraceIDHeader),
		Span:  r.Header.Get(ParentSpanHeader),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// reject writes a JSON error; a positive retryAfter also sets the
// Retry-After header (whole seconds, rounded up, at least 1).
func reject(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	body := apiError{Error: msg}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.RetryAfterSeconds = secs
	}
	writeJSON(w, code, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	admitStart := time.Now()
	// Oversized bodies are refused before any read or decode.
	if r.ContentLength > s.cfg.MaxBody {
		reject(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body %d exceeds limit %d", r.ContentLength, s.cfg.MaxBody), 0)
		return
	}
	// Slow-loris defense: the whole body must arrive within the read
	// timeout. A trickling client costs one handler goroutine for at
	// most that long and never reaches admission, so it cannot occupy a
	// worker slot or the submit lock.
	rc := http.NewResponseController(w)
	if s.cfg.BodyReadTimeout > 0 {
		_ = rc.SetReadDeadline(time.Now().Add(s.cfg.BodyReadTimeout))
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	body, err := io.ReadAll(r.Body)
	if s.cfg.BodyReadTimeout > 0 && err == nil {
		// Clear the deadline so a keep-alive connection's next request
		// does not inherit it. On a timed-out read the expired deadline
		// deliberately stays armed: the server's post-handler body drain
		// then fails instantly and the connection closes, instead of
		// blocking forever on bytes the trickling client will never send.
		_ = rc.SetReadDeadline(time.Time{})
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			reject(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds limit %d", s.cfg.MaxBody), 0)
			return
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.mBodyTimeouts.Inc()
			reject(w, http.StatusRequestTimeout,
				fmt.Sprintf("request body not delivered within %v", s.cfg.BodyReadTimeout), 0)
			return
		}
		reject(w, http.StatusBadRequest, "reading body: "+err.Error(), 0)
		return
	}

	spec, err := DecodeJobRequest(body, s.cfg.DefaultInsts)
	if err != nil {
		reject(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tenant, err := tenantName(r.Header.Get(TenantHeader))
	if err != nil {
		reject(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	deadline, err := parseDeadline(r.Header.Get(DeadlineHeader))
	if err != nil {
		reject(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		// The caller's own deadline has already passed; any work done
		// now is orphaned by construction.
		s.mDeadlineExpired.Inc()
		reject(w, http.StatusBadRequest,
			fmt.Sprintf("%s already expired at submission", DeadlineHeader), 0)
		return
	}
	key := r.Header.Get("Idempotency-Key")

	s.submitMu.Lock()
	defer s.submitMu.Unlock()

	// Idempotency: a known key is answered from the store, so client
	// retries can never double-submit. A key reused with a different
	// spec is a client bug worth a loud 409.
	if key != "" {
		if rec, ok := s.store.ByKey(key); ok {
			if rec.Spec.Digest() != spec.Digest() {
				reject(w, http.StatusConflict,
					fmt.Sprintf("idempotency key %q already used with a different spec", key), 0)
				return
			}
			s.mDeduped.Inc()
			writeJSON(w, http.StatusOK, rec)
			return
		}
	}

	if s.draining.Load() {
		s.mShedDraining.Inc()
		reject(w, http.StatusServiceUnavailable, "draining: not accepting new jobs", 10*time.Second)
		return
	}
	if s.storageDegraded.Load() {
		s.mShedStorage.Inc()
		reject(w, http.StatusServiceUnavailable,
			"storage degraded: cannot persist new jobs", 2*s.cfg.StorageProbeEvery)
		return
	}
	bkey := breakerKey(spec)
	if ok, retryAfter := s.breaker.Allow(bkey); !ok {
		s.mShedBreaker.Inc()
		s.updateBreakerGauges()
		reject(w, http.StatusServiceUnavailable,
			fmt.Sprintf("circuit breaker open for %q", bkey), retryAfter)
		return
	}
	// Per-tenant admission runs after the shared-fate checks: a quota or
	// rate rejection is this tenant's own 429, with a Retry-After shaped
	// by its own bucket, while the shared queue stays available to
	// everyone else.
	if terr := s.tenants.admit(tenant, s.queue.retryAfter()); terr != nil {
		s.cvTenantShed.With(tenant).Inc()
		reject(w, http.StatusTooManyRequests, terr.Error(), terr.retryAfter)
		return
	}

	id := newJobID(key)
	// The admission span is retroactive: it covers decode + dedup +
	// admission, measured from handler entry, and parents every later
	// span of this job. With no client trace headers it roots a fresh
	// trace, so daemon-side tracing works for plain curl too.
	tctx := clientSpanContext(r)
	if s.tracer != nil {
		tctx = s.tracer.Record(tctx, "admission", admitStart, time.Since(admitStart),
			map[string]string{"job": id, "kind": spec.Kind})
	}
	rec := JobStatus{ID: id, Key: key, State: StateQueued, Spec: spec, TraceID: tctx.Trace, Tenant: tenant}
	if !deadline.IsZero() {
		rec.DeadlineUS = deadline.UnixMicro()
	}
	j := &job{id: id, spec: spec, breakerKey: bkey, enqueued: time.Now(), tctx: tctx,
		tenant: tenant, deadline: deadline}
	if err := s.queue.admit(j); err != nil {
		s.tenants.release(tenant) // the quota slot charged above never queued
		var adm *admissionError
		if errors.As(err, &adm) {
			s.mShedQueue.Inc()
			reject(w, http.StatusTooManyRequests, adm.Error(), adm.retryAfter)
			return
		}
		reject(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	// Write-ahead: the acceptance is durable before it is acknowledged.
	// (A crash between fsync and response just means the client retries
	// its key and finds the job already there.)
	if err := s.store.Append(rec); err != nil {
		// The job is already in the channel; mark it abandoned so a
		// worker discards it instead of running unrecorded work, flip
		// into degraded mode, and tell the client to retry elsewhere or
		// later — an unpersisted acceptance must never be acknowledged.
		j.dropped.Store(true)
		s.noteStorageFailure(err)
		s.mShedStorage.Inc()
		reject(w, http.StatusServiceUnavailable,
			"storage degraded: persisting job failed: "+err.Error(), 2*s.cfg.StorageProbeEvery)
		return
	}
	s.mSubmitted.Inc()
	s.cvTenantSubmitted.With(tenant).Inc()
	s.gDepth.Set(int64(s.queue.depthNow()))
	s.tel.publish(id, JobEvent{Type: EvQueued})
	s.log.Info("job accepted", "job", id, "kind", spec.Kind, "tenant", tenant, "trace", tctx.Trace)
	writeJSON(w, http.StatusAccepted, rec)
}

// updateBreakerGauges refreshes the open-count gauge and the per-key
// state family after any breaker transition.
func (s *Server) updateBreakerGauges() {
	s.gBreakerOpen.Set(int64(s.breaker.OpenCount()))
	for key, st := range s.breaker.States() {
		s.gvBreaker.With(key).Set(st)
	}
}

// newJobID derives a stable ID from the idempotency key, or a random
// one without. Key-derived IDs are what let a restarted daemon map a
// retried submission onto the recovered job.
func newJobID(key string) string {
	if key != "" {
		sum := sha256.Sum256([]byte("idem:" + key))
		return "j" + hex.EncodeToString(sum[:8])
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand cannot fail on supported platforms.
		panic("server: crypto/rand: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		reject(w, http.StatusNotFound, "unknown job "+id, 0)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyStatus is the /readyz payload.
type readyStatus struct {
	Ready      bool  `json:"ready"`
	Draining   bool  `json:"draining"`
	QueueDepth int   `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`
	// P99WaitMS is the 99th-percentile queue wait from the service's
	// wait histogram (obs quantile estimate).
	P99WaitMS   int64 `json:"p99_wait_ms"`
	BreakerOpen int   `json:"breakers_open"`
	// StorageDegraded is true while durable appends are failing: the
	// daemon is alive but shedding new work until the disk recovers.
	StorageDegraded bool `json:"storage_degraded"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := readyStatus{
		Ready:           !s.draining.Load() && !s.storageDegraded.Load(),
		Draining:        s.draining.Load(),
		QueueDepth:      s.queue.depthNow(),
		Inflight:        s.inflight.Load(),
		P99WaitMS:       s.hWaitMS.Snapshot().Quantile(0.99),
		BreakerOpen:     s.breaker.OpenCount(),
		StorageDegraded: s.storageDegraded.Load(),
	}
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// worker runs jobs until told to stop picking new ones.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopPick:
			return
		default:
		}
		select {
		case <-s.stopPick:
			return
		case j := <-s.queue.ch:
			s.runJob(j)
		}
	}
}

// runJob drives one job attempt end to end and records its outcome.
func (s *Server) runJob(j *job) {
	wait := time.Since(j.enqueued)
	s.queue.noteDequeue(j, wait)
	s.tenants.release(j.tenant)
	s.gDepth.Set(int64(s.queue.depthNow()))
	if j.dropped.Load() {
		// Admission rolled this job back (its acceptance never became
		// durable and the client was told 503); running it would do
		// unacknowledged work.
		return
	}
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		// The caller's deadline expired while the job sat queued: the
		// caller has given up, so the work is orphaned before it starts.
		// Record the terminal timeout without charging the workload's
		// breaker — the queue wait, not the workload, ate the budget.
		s.abandonExpired(j)
		return
	}
	s.hWaitMS.Observe(wait.Milliseconds())

	// Queue wait is retroactive (measured from the enqueue timestamp);
	// the worker span then covers the whole attempt, and everything the
	// experiment runner does parents under it.
	tctx := j.tctx
	if s.tracer != nil {
		s.tracer.Record(tctx, "queue_wait", j.enqueued, wait, map[string]string{"job": j.id})
	}
	wsp := s.tracer.Start(tctx, "worker")
	wsp.SetAttr("job", j.id)

	rec, _ := s.store.Get(j.id)
	rec.ID, rec.Spec = j.id, j.spec // first record may be the store miss of a test
	if rec.TraceID == "" {
		rec.TraceID = tctx.Trace
	}
	rec.State = StateRunning
	rec.Attempts++
	rec.Result, rec.Error = nil, nil
	if err := s.store.Append(rec); err != nil {
		s.log.Error("recording job start failed", "job", j.id, "error", err)
		s.noteStorageFailure(err)
	}
	s.inflight.Add(1)
	s.gInflight.Set(s.inflight.Load())
	defer func() {
		s.inflight.Add(-1)
		s.gInflight.Set(s.inflight.Load())
	}()
	s.tel.publish(j.id, JobEvent{Type: EvStarted, Attempt: rec.Attempts})
	s.log.Info("job started", "job", j.id, "attempt", rec.Attempts, "trace", rec.TraceID)

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	if !j.deadline.IsZero() {
		// The propagated caller deadline caps the run below JobTimeout:
		// past it the caller is gone and further work is orphaned.
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, j.deadline)
		defer dcancel()
	}
	opts := exp.Options{
		Parallel:        true,
		StateDir:        s.jobDir(j.id),
		CheckpointEvery: s.cfg.CheckpointEvery,
		Registry:        s.reg,
		Faults:          s.cfg.Faults,
		WatchdogCycles:  s.cfg.WatchdogCycles,
		Tracer:          s.tracer,
		TraceParent:     wsp.Context(),
		FS:              s.cfg.FS,
		WALMetrics:      s.walMet,
	}
	if s.tel != nil {
		// The heartbeat and checkpoint hooks run on simulation
		// goroutines; publish is lock-bounded and never blocks, which is
		// what makes them safe there.
		id := j.id
		opts.ProgressEvery = s.cfg.ProgressEvery
		opts.OnProgress = func(label string, committed uint64, cycles int64) {
			ev := JobEvent{Type: EvProgress, Label: label, Committed: committed, Cycles: cycles}
			if cycles > 0 {
				ev.IPC = float64(committed) / float64(cycles)
			}
			s.tel.publish(id, ev)
		}
		opts.OnCheckpoint = func(label string) {
			s.tel.publish(id, JobEvent{Type: EvCheckpointed, Label: label})
		}
	}
	start := time.Now()
	res, err := exp.RunJob(ctx, j.spec, opts)
	s.hRunMS.Observe(time.Since(start).Milliseconds())
	wsp.EndErr(err)

	switch {
	case err == nil:
		// Seal before persisting: every consumer — the fleet coordinator
		// above all — can verify the result envelope against corruption
		// in transit.
		res.Seal()
		rec.State = StateSucceeded
		rec.Result = res
		s.breaker.Success(j.breakerKey)
		s.updateBreakerGauges()
		s.mSucceeded.Inc()
		if serr := s.store.Append(rec); serr != nil {
			s.log.Error("recording job success failed", "job", j.id, "error", serr)
			s.noteStorageFailure(serr)
			return // keep the state dir: the result is not durable
		}
		// The result is durable; the simulation scratch state is now
		// redundant.
		os.RemoveAll(s.jobDir(j.id))
		s.tel.publish(j.id, JobEvent{Type: EvDone, Attempt: rec.Attempts})
		s.log.Info("job succeeded", "job", j.id, "attempt", rec.Attempts, "trace", rec.TraceID)

	case s.baseCtx.Err() != nil:
		// Drain hammer: the run checkpointed on its way out. Requeue so
		// the next daemon resumes it.
		rec.State = StateQueued
		s.breaker.Requeued(j.breakerKey)
		s.mRequeued.Inc()
		if serr := s.store.Append(rec); serr != nil {
			s.log.Error("recording job requeue failed", "job", j.id, "error", serr)
			s.noteStorageFailure(serr)
		}
		s.tel.publish(j.id, JobEvent{Type: EvRequeued, Attempt: rec.Attempts})
		s.log.Info("job checkpointed and requeued by drain", "job", j.id)

	default:
		timeout := errors.Is(err, context.DeadlineExceeded)
		// A run cut by the caller's propagated deadline is the caller's
		// timeout, not evidence against the workload; it must not feed
		// the breaker.
		callerExpired := timeout && !j.deadline.IsZero() && !time.Now().Before(j.deadline)
		if callerExpired {
			s.mDeadlineExpired.Inc()
		}
		rec.State = StateFailed
		rec.Error = errorInfo(err, timeout)
		// Flight recorder: freeze the job's recent events into the
		// durable record before the terminal event lands, so the dump is
		// the pre-failure story. The events are redacted by construction
		// — they reference the spec only through its digest.
		if f, ok := s.tel.lookup(j.id); ok {
			rec.Flight = &FlightRecord{SpecDigest: j.spec.Digest(), Events: f.events()}
		}
		if !simerr.IsTransient(err) && !callerExpired {
			if tripped := s.breaker.Failure(j.breakerKey); tripped {
				s.mBreakerTrips.Inc()
				s.log.Warn("circuit breaker tripped", "key", j.breakerKey)
			}
		}
		s.mFailed.Inc()
		s.updateBreakerGauges()
		if serr := s.store.Append(rec); serr != nil {
			s.log.Error("recording job failure failed", "job", j.id, "error", serr)
			s.noteStorageFailure(serr)
			return
		}
		os.RemoveAll(s.jobDir(j.id))
		s.tel.publish(j.id, JobEvent{Type: EvFailed, Attempt: rec.Attempts, Error: err.Error()})
		s.log.Warn("job failed", "job", j.id, "attempt", rec.Attempts,
			"trace", rec.TraceID, "error", err)
	}
}

// abandonExpired records the terminal timeout of a job whose caller's
// propagated deadline passed while it was still queued. The run never
// starts: no worker time is spent on work nobody is waiting for, and
// the workload's breaker is not charged.
func (s *Server) abandonExpired(j *job) {
	s.mDeadlineExpired.Inc()
	s.mFailed.Inc()
	rec, _ := s.store.Get(j.id)
	rec.ID, rec.Spec = j.id, j.spec
	if rec.TraceID == "" {
		rec.TraceID = j.tctx.Trace
	}
	rec.State = StateFailed
	rec.Result = nil
	rec.Error = &ErrorInfo{
		Message: fmt.Sprintf("caller deadline expired %v before the job reached a worker",
			time.Since(j.deadline).Round(time.Millisecond)),
		Timeout: true,
	}
	if err := s.store.Append(rec); err != nil {
		s.log.Error("recording deadline abandonment failed", "job", j.id, "error", err)
		s.noteStorageFailure(err)
	}
	os.RemoveAll(s.jobDir(j.id))
	s.tel.publish(j.id, JobEvent{Type: EvFailed, Attempt: rec.Attempts, Error: rec.Error.Message})
	s.log.Warn("job abandoned: caller deadline expired while queued",
		"job", j.id, "tenant", j.tenant, "trace", rec.TraceID)
}

// handleTrace returns the daemon-side spans of one job's trace as a
// JSON array (?format=chrome renders a chrome://tracing-loadable
// trace_event file instead). Clients merge these with their own spans
// to assemble the full cross-process trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		reject(w, http.StatusNotFound, "unknown job "+id, 0)
		return
	}
	if s.tracer == nil {
		reject(w, http.StatusNotImplemented, "telemetry disabled on this daemon", 0)
		return
	}
	if rec.TraceID == "" {
		writeJSON(w, http.StatusOK, []obs.Span{})
		return
	}
	var spans []obs.Span
	for _, sp := range s.tracer.Spans() {
		if sp.Trace == rec.TraceID {
			spans = append(spans, sp)
		}
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeSpans(w, spans)
		return
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, spans)
}

// Drain gracefully shuts the service down: stop accepting, stop picking
// new jobs, give in-flight jobs DrainTimeout to finish, then cancel the
// stragglers — which checkpoints them and requeues their records — and
// wait for the workers to exit. It reports whether every in-flight job
// finished inside the deadline. Queued jobs that never started keep
// their queued records and are re-enqueued by the next daemon. Safe to
// call more than once.
func (s *Server) Drain() bool {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.gDraining.Set(1)
		s.log.Info("draining", "queued", s.queue.depthNow(), "inflight", s.inflight.Load())
		s.stopOnce.Do(func() { close(s.stopPick) })
		s.drainedOK = shutdown.WaitGroup(s.wg.Wait, s.cfg.DrainTimeout)
		if !s.drainedOK {
			s.log.Warn("drain deadline elapsed; cancelling in-flight jobs into checkpoints",
				"inflight", s.inflight.Load())
			s.baseCancel()
			// Cancellation propagates within one commit batch; workers
			// then exit promptly.
			s.wg.Wait()
		}
		s.baseCancel()
		s.log.Info("drained", "clean", s.drainedOK)
	})
	return s.drainedOK
}

// Close drains (if not already drained) and releases the job store.
func (s *Server) Close() error {
	s.Drain()
	return s.store.Close()
}

// Store exposes the job store for tests and the status API.
func (s *Server) Store() *Store { return s.store }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }
