package server

import (
	"sync"
	"time"
)

// breaker is a per-key (workload or figure) circuit breaker. It trips
// open after `threshold` consecutive non-transient failures of the same
// key, sheds that key's submissions for `cooloff`, then half-opens: one
// trial job is admitted, and its outcome decides between closing the
// breaker and re-opening it for another cooloff. Transient failures
// neither trip nor reset the breaker — they are the retry path's
// problem, not a health signal.
//
// The breaker is deliberately in-memory only: after a restart every
// key starts closed, because the restart itself is the operator's reset.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooloff   time.Duration
	now       func() time.Time // injectable for tests
	entries   map[string]*breakerEntry
	trips     int64
}

type breakerEntry struct {
	consecutive int
	open        bool
	openUntil   time.Time
	// trial marks a half-open probe in flight; further submissions are
	// shed until the probe reports.
	trial bool
}

func newBreaker(threshold int, cooloff time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooloff:   cooloff,
		now:       time.Now,
		entries:   map[string]*breakerEntry{},
	}
}

// Allow reports whether a submission for key may be admitted. When it
// may not, retryAfter says how long the client should back off.
func (b *breaker) Allow(key string) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || !e.open {
		return true, 0
	}
	if e.trial {
		return false, b.cooloff
	}
	if now := b.now(); !now.Before(e.openUntil) {
		// Cooloff elapsed: admit exactly one trial probe.
		e.trial = true
		return true, 0
	}
	left := e.openUntil.Sub(b.now())
	if left < time.Second {
		left = time.Second
	}
	return false, left
}

// Success reports a completed job for key; it fully closes the breaker.
func (b *breaker) Success(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[key]; e != nil {
		e.consecutive = 0
		e.open = false
		e.trial = false
	}
}

// Failure reports a non-transient job failure for key (callers filter
// out transient ones) and reports whether this failure tripped the
// breaker open.
func (b *breaker) Failure(key string) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.consecutive++
	if e.open && e.trial {
		// Failed probe: re-open for another cooloff.
		e.trial = false
		e.openUntil = b.now().Add(b.cooloff)
		b.trips++
		return true
	}
	if !e.open && e.consecutive >= b.threshold {
		e.open = true
		e.trial = false
		e.openUntil = b.now().Add(b.cooloff)
		b.trips++
		return true
	}
	return false
}

// Requeued reports that key's job was requeued without completing (the
// daemon drained mid-run). A half-open probe must release its trial
// slot, or the breaker would shed that key until the next restart.
func (b *breaker) Requeued(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[key]; e != nil {
		e.trial = false
	}
}

// Breaker states as gauge values: closed admits freely, half-open is
// waiting on (or running) its trial probe, open sheds.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// States returns every known key's current state (for the per-key
// gauge family).
func (b *breaker) States() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.entries))
	now := b.now()
	for key, e := range b.entries {
		switch {
		case !e.open:
			out[key] = BreakerClosed
		case e.trial || !now.Before(e.openUntil):
			out[key] = BreakerHalfOpen
		default:
			out[key] = BreakerOpen
		}
	}
	return out
}

// OpenCount returns how many keys are currently open (for the gauge).
func (b *breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	now := b.now()
	for _, e := range b.entries {
		if e.open && (e.trial || now.Before(e.openUntil)) {
			n++
		}
	}
	return n
}

// Trips returns the total number of open transitions (for the counter).
func (b *breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
