package server

import (
	"errors"
	"testing"
	"time"

	"rvpsim/internal/exp"
)

func testJob(id string) *job {
	return &job{
		id:         id,
		spec:       exp.JobSpec{Kind: "run", Workload: "go", Predictor: "rvp"},
		breakerKey: "go",
		enqueued:   time.Now(),
	}
}

func TestQueueAdmitUntilFull(t *testing.T) {
	q := newQueue(2, 2, 0)
	if err := q.admit(testJob("a")); err != nil {
		t.Fatalf("admit a: %v", err)
	}
	if err := q.admit(testJob("b")); err != nil {
		t.Fatalf("admit b: %v", err)
	}
	err := q.admit(testJob("c"))
	var adm *admissionError
	if !errors.As(err, &adm) {
		t.Fatalf("admit past limit = %v, want *admissionError", err)
	}
	if adm.reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", adm.reason)
	}
	if adm.retryAfter < time.Second || adm.retryAfter > time.Minute {
		t.Fatalf("retryAfter = %v, want clamped to [1s, 60s]", adm.retryAfter)
	}
	if q.depthNow() != 2 {
		t.Fatalf("depth = %d, want 2", q.depthNow())
	}
}

func TestQueueDequeueReopensAdmission(t *testing.T) {
	q := newQueue(1, 1, 0)
	if err := q.admit(testJob("a")); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := q.admit(testJob("b")); err == nil {
		t.Fatalf("admit past limit succeeded")
	}
	j := <-q.ch
	q.noteDequeue(j, 5*time.Millisecond)
	if err := q.admit(testJob("b")); err != nil {
		t.Fatalf("admit after dequeue: %v", err)
	}
}

func TestQueueShedsOnSlowWaits(t *testing.T) {
	q := newQueue(100, 100, 50*time.Millisecond)
	// Saturate the wait window with waits far past maxWait.
	for i := 0; i < queueWindow; i++ {
		q.noteDequeue(testJob("x"), time.Second)
		q.depth.Add(1) // undo noteDequeue's decrement; only the window matters here
	}
	q.depth.Store(1) // the slow signal only applies while work is queued
	err := q.admit(testJob("a"))
	var adm *admissionError
	if !errors.As(err, &adm) {
		t.Fatalf("admit with slow p99 = %v, want *admissionError", err)
	}
	if adm.reason != "queue_slow" {
		t.Fatalf("reason = %q, want queue_slow", adm.reason)
	}
}

func TestQueueSlowSignalSkippedWhenEmpty(t *testing.T) {
	q := newQueue(100, 100, 50*time.Millisecond)
	for i := 0; i < queueWindow; i++ {
		q.noteDequeue(testJob("x"), time.Second)
		q.depth.Add(1)
	}
	q.depth.Store(0)
	// An empty queue cannot make anyone wait: slow history must not shed.
	if err := q.admit(testJob("a")); err != nil {
		t.Fatalf("admit into empty queue with slow history = %v, want nil", err)
	}
}

func TestQueueSlowSamplesExpire(t *testing.T) {
	q := newQueue(100, 100, 50*time.Millisecond)
	clock := time.Now()
	q.now = func() time.Time { return clock }
	for i := 0; i < queueWindow; i++ {
		q.noteDequeue(testJob("x"), time.Second)
		q.depth.Add(1)
	}
	q.depth.Store(1)
	if err := q.admit(testJob("a")); err == nil {
		t.Fatalf("fresh slow samples did not shed")
	}
	// Past the horizon the stall is history: admission must recover even
	// though no fresh samples have displaced the old ones.
	clock = clock.Add(q.horizon() + time.Second)
	if err := q.admit(testJob("a")); err != nil {
		t.Fatalf("admit after samples expired = %v, want nil", err)
	}
}

func TestQueueForceBypassesAdmission(t *testing.T) {
	// Capacity exceeds the admission limit so recovered jobs fit.
	q := newQueue(1, 3, 0)
	if err := q.admit(testJob("a")); err != nil {
		t.Fatalf("admit: %v", err)
	}
	q.force(testJob("r1"))
	q.force(testJob("r2"))
	if q.depthNow() != 3 {
		t.Fatalf("depth = %d, want 3", q.depthNow())
	}
	if err := q.admit(testJob("b")); err == nil {
		t.Fatalf("admit above limit succeeded after force")
	}
}

func TestQueueP99(t *testing.T) {
	q := newQueue(10, 10, 0)
	if got := q.p99(); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	// 97 fast waits and a 3% slow tail: the ceil-rank p99 must land in
	// the tail.
	for i := 0; i < 97; i++ {
		q.noteDequeue(testJob("x"), time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		q.noteDequeue(testJob("x"), time.Second)
	}
	if got := q.p99(); got != time.Second {
		t.Fatalf("p99 = %v, want 1s (the tail)", got)
	}
}
