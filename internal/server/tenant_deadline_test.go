package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"rvpsim/internal/faultinject"
)

// decodeInto decodes resp's JSON body into v (does not close the body).
func decodeInto(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// postJobHeaders is postJob with arbitrary extra headers.
func postJobHeaders(t *testing.T, ts *httptest.Server, body, key string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

// plugWorker submits a job big enough to occupy the single worker for
// the rest of the test and waits until it is running.
func plugWorker(t *testing.T, srv *Server, ts *httptest.Server) string {
	t.Helper()
	resp := postJob(t, ts, `{"kind":"run","workload":"m88ksim","predictor":"rvp","insts":6000000,"profile_insts":500000}`, "plug")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plug submit = %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for srv.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("plug job never occupied the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return st.ID
}

func TestTenantQuotaSheds429(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.TenantQueueDepth = 1
		c.DrainTimeout = time.Second // the plug job is cancelled at Close
	})
	plugWorker(t, srv, ts)

	// Tenant A's first queued job fills its quota of 1.
	resp := postJobHeaders(t, ts, runBody, "a1", map[string]string{TenantHeader: "tenant-a"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-a first submit = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// Its second is shed with a per-tenant 429 + Retry-After.
	resp = postJobHeaders(t, ts, runBody, "a2", map[string]string{TenantHeader: "tenant-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over quota = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("quota 429 Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// Tenant B is untouched by A's quota: the shared queue still has
	// room.
	resp = postJobHeaders(t, ts, runBody, "b1", map[string]string{TenantHeader: "tenant-b"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-b submit = %d, want 202 (another tenant's quota leaked)", resp.StatusCode)
	}
	resp.Body.Close()

	if shed := srv.Registry().CounterVec("srv_tenant_shed_total", "", "tenant").With("tenant-a").Value(); shed != 1 {
		t.Errorf("srv_tenant_shed_total{tenant-a} = %d, want 1", shed)
	}
	if q := srv.tenants.queuedNow("tenant-a"); q != 1 {
		t.Errorf("tenant-a queued = %d, want 1", q)
	}
}

func TestTenantRateLimitSheds429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.TenantRate = 0.5 // one token per 2s
		c.TenantBurst = 1
	})

	resp := postJobHeaders(t, ts, runBody, "r1", map[string]string{TenantHeader: "noisy"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// The bucket is empty; the rejection's Retry-After is the time to
	// the next token (~2s), never below the 1s floor.
	resp = postJobHeaders(t, ts, runBody, "r2", map[string]string{TenantHeader: "noisy"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("rate 429 Retry-After = %q, want ~2s", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// Another tenant has its own bucket.
	resp = postJobHeaders(t, ts, runBody, "q1", map[string]string{TenantHeader: "quiet"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202 (buckets shared across tenants)", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestTenantHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		resp := postJobHeaders(t, ts, runBody, "", map[string]string{TenantHeader: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tenant %q = %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestDeadlineHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, bad := range []string{"banana", "-1", "0"} {
		resp := postJobHeaders(t, ts, runBody, "", map[string]string{DeadlineHeader: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline %q = %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// A deadline already in the past is refused outright: the caller is
	// gone before the work could start.
	past := fmt.Sprintf("%d", time.Now().Add(-time.Second).UnixMicro())
	resp := postJobHeaders(t, ts, runBody, "", map[string]string{DeadlineHeader: past})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("expired deadline = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestDeadlineExpiredWhileQueuedAbandonsJob(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.DrainTimeout = time.Second
		c.BreakerThreshold = 1 // one breaker charge would open it
	})
	plugWorker(t, srv, ts)

	// Queued behind the plug with a deadline the wait will blow through.
	dl := time.Now().Add(200 * time.Millisecond)
	resp := postJobHeaders(t, ts, runBody, "dl1",
		map[string]string{DeadlineHeader: fmt.Sprintf("%d", dl.UnixMicro())})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.DeadlineUS != dl.UnixMicro() {
		t.Fatalf("recorded DeadlineUS = %d, want %d", st.DeadlineUS, dl.UnixMicro())
	}

	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed || final.Error == nil || !final.Error.Timeout {
		t.Fatalf("abandoned job = %+v, want failed with Timeout", final)
	}
	if !strings.Contains(final.Error.Message, "deadline expired") {
		t.Fatalf("abandonment error = %q", final.Error.Message)
	}
	if n := srv.Registry().Counter("srv_deadline_expired_total", "").Value(); n < 1 {
		t.Errorf("srv_deadline_expired_total = %d, want >= 1", n)
	}
	// The abandonment must not have charged the workload's breaker.
	if open := srv.breaker.OpenCount(); open != 0 {
		t.Errorf("breaker opened by a caller-deadline abandonment (open=%d)", open)
	}
}

// TestBreakerRetryAfterMatchesCooloff: a breaker-open 503's Retry-After
// must agree with the breaker's actual cooloff — never longer than the
// configured cooloff, never below the 1s header floor.
func TestBreakerRetryAfterMatchesCooloff(t *testing.T) {
	cooloff := 5 * time.Second
	srv, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 1
		c.BreakerCooloff = cooloff
		c.Faults = map[string]faultinject.Config{"li": {FailAfter: 1}}
	})

	resp := postJob(t, ts, `{"kind":"run","workload":"li","predictor":"rvp","insts":5000}`, "trip")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trip submit = %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateFailed {
		t.Fatalf("trip job = %+v, want failed", fin)
	}

	resp = postJob(t, ts, `{"kind":"run","workload":"li","predictor":"rvp","insts":5000}`, "after")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with open breaker = %d, want 503", resp.StatusCode)
	}
	defer resp.Body.Close()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("breaker 503 Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if ra < 1 || ra > int(cooloff/time.Second) {
		t.Fatalf("Retry-After = %ds, want within [1, %v] (the remaining cooloff)", ra, cooloff)
	}
	var body apiError
	if err := decodeInto(resp, &body); err != nil {
		t.Fatalf("decoding 503 body: %v", err)
	}
	if body.RetryAfterSeconds != ra {
		t.Fatalf("body retry_after_seconds = %d, header = %d; the two must agree", body.RetryAfterSeconds, ra)
	}
	if n := srv.Registry().Counter("srv_shed_breaker_total", "").Value(); n != 1 {
		t.Errorf("srv_shed_breaker_total = %d, want 1", n)
	}
}

// TestSlowLorisBodyTimeout: clients trickling their request bodies are
// cut with 408 after BodyReadTimeout and never reach admission, while a
// fast client sails past them — slow readers cost a handler goroutine
// for a bounded time, not a worker slot.
func TestSlowLorisBodyTimeout(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.BodyReadTimeout = 300 * time.Millisecond
	})
	tu, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Three slow-loris clients: headers promise a body that trickles in
	// far slower than the read timeout.
	const nSlow = 3
	conns := make([]net.Conn, nSlow)
	for i := range conns {
		c, err := net.Dial("tcp", tu.Host)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		conns[i] = c
		fmt.Fprintf(c, "POST /v1/jobs HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{", tu.Host)
	}

	// While they trickle, a fast client must be admitted immediately.
	start := time.Now()
	resp := postJob(t, ts, runBody, "fast")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fast submit = %d, want 202 while slow-loris clients trickle", resp.StatusCode)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("fast submit took %v behind slow-loris clients", d)
	}

	// Each slow client is eventually cut with 408.
	for i, c := range conns {
		_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 512)
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("slow conn %d read: %v", i, err)
		}
		if line := string(buf[:n]); !strings.Contains(line, "408") {
			t.Fatalf("slow conn %d response = %q, want 408", i, line)
		}
	}
	if n := srv.Registry().Counter("srv_body_timeouts_total", "").Value(); n != nSlow {
		t.Errorf("srv_body_timeouts_total = %d, want %d", n, nSlow)
	}
}
