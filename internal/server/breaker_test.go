package server

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's injectable now.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeBreaker(threshold int, cooloff time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, cooloff)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newFakeBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if tripped := b.Failure("go"); tripped {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
		if ok, _ := b.Allow("go"); !ok {
			t.Fatalf("breaker open before threshold")
		}
	}
	if tripped := b.Failure("go"); !tripped {
		t.Fatalf("third failure did not trip")
	}
	ok, retryAfter := b.Allow("go")
	if ok {
		t.Fatalf("open breaker admitted a submission")
	}
	if retryAfter <= 0 {
		t.Fatalf("open breaker gave no Retry-After")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
	// Other keys are unaffected.
	if ok, _ := b.Allow("perl"); !ok {
		t.Fatalf("unrelated key shed")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newFakeBreaker(3, time.Minute)
	b.Failure("go")
	b.Failure("go")
	b.Success("go")
	b.Failure("go")
	b.Failure("go")
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("breaker open though success reset the streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newFakeBreaker(1, time.Minute)
	b.Failure("go")
	if ok, _ := b.Allow("go"); ok {
		t.Fatalf("open breaker admitted before cooloff")
	}
	clk.advance(time.Minute)
	// Cooloff elapsed: exactly one trial is admitted.
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("half-open breaker refused the trial probe")
	}
	if ok, _ := b.Allow("go"); ok {
		t.Fatalf("second submission admitted while the probe is in flight")
	}
	// A successful probe closes the breaker fully.
	b.Success("go")
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("breaker still open after successful probe")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newFakeBreaker(1, time.Minute)
	b.Failure("go")
	clk.advance(time.Minute)
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("trial probe refused")
	}
	if tripped := b.Failure("go"); !tripped {
		t.Fatalf("failed probe did not re-trip")
	}
	if ok, _ := b.Allow("go"); ok {
		t.Fatalf("breaker admitted right after a failed probe")
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2 (initial + failed probe)", b.Trips())
	}
	// The next cooloff admits another probe.
	clk.advance(time.Minute)
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("no probe after second cooloff")
	}
}

func TestBreakerRequeuedReleasesTrial(t *testing.T) {
	b, clk := newFakeBreaker(1, time.Minute)
	b.Failure("go")
	clk.advance(time.Minute)
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("trial probe refused")
	}
	// The daemon drained mid-probe: the job is requeued, not judged.
	b.Requeued("go")
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("trial slot not released after requeue")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := newFakeBreaker(0, time.Minute)
	for i := 0; i < 10; i++ {
		if tripped := b.Failure("go"); tripped {
			t.Fatalf("disabled breaker tripped")
		}
	}
	if ok, _ := b.Allow("go"); !ok {
		t.Fatalf("disabled breaker shed")
	}
	if b.OpenCount() != 0 {
		t.Fatalf("disabled breaker reports open keys")
	}
}

func TestBreakerOpenCount(t *testing.T) {
	b, _ := newFakeBreaker(1, time.Minute)
	b.Failure("go")
	b.Failure("perl")
	if got := b.OpenCount(); got != 2 {
		t.Fatalf("OpenCount = %d, want 2", got)
	}
	b.Success("go")
	if got := b.OpenCount(); got != 1 {
		t.Fatalf("OpenCount after success = %d, want 1", got)
	}
}
