package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
)

// job is one queued unit of work.
type job struct {
	id         string
	spec       exp.JobSpec
	breakerKey string
	enqueued   time.Time
	// tctx is the span context the job's server-side spans parent
	// under: the admission span for fresh submissions, a bare trace ID
	// for jobs recovered from the store.
	tctx obs.SpanContext
	// dropped marks a job whose durable acceptance record could not be
	// written after it entered the queue: the client got a 503, so a
	// worker must discard it instead of running unacknowledged work.
	dropped atomic.Bool
	// tenant is the quota bucket charged for the job; dequeue releases
	// it (empty on jobs constructed outside admission in tests).
	tenant string
	// deadline is the caller's propagated deadline (zero: none). Jobs
	// past it are abandoned at dequeue; running jobs are cancelled.
	deadline time.Time
}

// admissionError is the typed rejection a full or slow queue returns;
// the HTTP layer maps it to 429 + Retry-After.
type admissionError struct {
	reason     string // "queue_full" or "queue_slow"
	retryAfter time.Duration
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("admission rejected: %s (retry after %v)", e.reason, e.retryAfter)
}

// queue is the bounded job queue with admission control. Admission is
// refused — never blocked — when the configured depth limit is reached
// or when the p99 of recently observed queue waits exceeds maxWait:
// under overload the service sheds with 429 + Retry-After instead of
// growing an unbounded backlog whose tail latency nobody survives.
//
// The channel capacity may exceed the admission limit: jobs recovered
// from the store on startup are force-enqueued past admission (they
// were already accepted by a previous daemon and must not be lost).
type queue struct {
	ch      chan *job
	limit   int
	maxWait time.Duration
	depth   atomic.Int64
	now     func() time.Time // injectable for tests

	// Ring of recent queue waits for the p99 admission signal. Exact
	// over the window, cheap, and immune to the unbounded history a
	// cumulative histogram would average away. Samples expire (see
	// horizon) so a past stall cannot shed traffic forever: without
	// expiry, slow waits would block admission, admission being blocked
	// would starve the ring of fresh samples, and the queue would
	// livelock rejecting everything.
	mu    sync.Mutex
	waits []waitSample
	n     int // filled entries
	idx   int // next write position
}

type waitSample struct {
	d  time.Duration
	at time.Time
}

// queueWindow is how many recent waits the admission p99 considers.
const queueWindow = 128

func newQueue(limit, capacity int, maxWait time.Duration) *queue {
	if capacity < limit {
		capacity = limit
	}
	return &queue{
		ch:      make(chan *job, capacity),
		limit:   limit,
		maxWait: maxWait,
		now:     time.Now,
		waits:   make([]waitSample, queueWindow),
	}
}

// horizon is how long a wait sample stays in the p99 window.
func (q *queue) horizon() time.Duration {
	if q.maxWait > 0 {
		return 4 * q.maxWait
	}
	return 2 * time.Minute
}

// admit enqueues j or returns an *admissionError. It never blocks.
func (q *queue) admit(j *job) error {
	if int(q.depth.Load()) >= q.limit {
		return &admissionError{reason: "queue_full", retryAfter: q.retryAfter()}
	}
	// The wait-based signal only applies while work is actually queued:
	// an empty queue cannot make anyone wait, no matter what the recent
	// history says.
	if p := q.p99(); q.maxWait > 0 && p > q.maxWait && q.depth.Load() > 0 {
		return &admissionError{reason: "queue_slow", retryAfter: q.retryAfter()}
	}
	select {
	case q.ch <- j:
		q.depth.Add(1)
		return nil
	default:
		// The channel itself filled (recovered jobs occupy capacity).
		return &admissionError{reason: "queue_full", retryAfter: q.retryAfter()}
	}
}

// force enqueues a job recovered from the store, bypassing admission.
// Capacity is sized at startup to hold every recovered job, so this
// cannot block in practice; blocking here would mean a sizing bug, and
// deadlocking a startup is better caught than silently dropping work.
func (q *queue) force(j *job) {
	q.ch <- j
	q.depth.Add(1)
}

// noteDequeue records that a worker picked up j after waiting.
func (q *queue) noteDequeue(j *job, wait time.Duration) {
	q.depth.Add(-1)
	q.mu.Lock()
	q.waits[q.idx] = waitSample{d: wait, at: q.now()}
	q.idx = (q.idx + 1) % len(q.waits)
	if q.n < len(q.waits) {
		q.n++
	}
	q.mu.Unlock()
}

// p99 returns the 99th-percentile wait over the recent, unexpired
// window (0 with no samples).
func (q *queue) p99() time.Duration {
	cutoff := q.now().Add(-q.horizon())
	q.mu.Lock()
	buf := make([]time.Duration, 0, q.n)
	for _, s := range q.waits[:q.n] {
		if s.at.After(cutoff) {
			buf = append(buf, s.d)
		}
	}
	q.mu.Unlock()
	n := len(buf)
	if n == 0 {
		return 0
	}
	// Selection by sort: the window is tiny and admission is off the
	// simulation hot path.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	k := (99*n + 99) / 100 // ceil rank
	if k > n {
		k = n
	}
	return buf[k-1]
}

// retryAfter estimates how long a shed client should back off: the
// recent p99 wait, clamped to [1s, 60s] so the header is always sane
// even with no samples yet.
func (q *queue) retryAfter() time.Duration {
	p := q.p99()
	if p < time.Second {
		return time.Second
	}
	if p > time.Minute {
		return time.Minute
	}
	return p.Round(time.Second)
}

// depthNow returns the current queue depth.
func (q *queue) depthNow() int { return int(q.depth.Load()) }
