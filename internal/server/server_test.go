package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rvpsim/internal/faultinject"
)

// newTestServer builds a small, fast service against a temp state dir.
// mutate may adjust the config before New.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		StateDir:     t.TempDir(),
		Workers:      1,
		QueueDepth:   4,
		DefaultInsts: 5_000,
		JobTimeout:   time.Minute,
		DrainTimeout: 5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, body, key string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding JobStatus: %v", err)
	}
	return st
}

// waitTerminal polls the status endpoint until the job is terminal.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		st := decodeStatus(t, resp)
		if st.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

const runBody = `{"kind":"run","workload":"go","predictor":"rvp","insts":5000}`

func TestSubmitRunsToSuccess(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJob(t, ts, runBody, "key-1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("accepted status = %+v", st)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("final state = %s (%+v)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Stats == nil || final.Result.Stats.Committed == 0 {
		t.Fatalf("no stats in result: %+v", final.Result)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}
}

func TestSubmitIdempotencyDedupe(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := decodeStatus(t, postJob(t, ts, runBody, "dup-key"))
	waitTerminal(t, ts, st.ID)

	// Same key, same spec: answered from the store with the job's current
	// (terminal) record, not a second job.
	resp := postJob(t, ts, runBody, "dup-key")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedupe status = %d, want 200", resp.StatusCode)
	}
	again := decodeStatus(t, resp)
	if again.ID != st.ID {
		t.Fatalf("dedupe returned a different job: %s vs %s", again.ID, st.ID)
	}
	if again.State != StateSucceeded {
		t.Fatalf("dedupe state = %s, want the terminal record", again.State)
	}
}

func TestSubmitIdempotencyConflict(t *testing.T) {
	_, ts := newTestServer(t, nil)
	decodeStatus(t, postJob(t, ts, runBody, "conflict-key"))
	other := `{"kind":"run","workload":"perl","predictor":"rvp","insts":5000}`
	resp := postJob(t, ts, other, "conflict-key")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("key reuse with different spec = %d, want 409", resp.StatusCode)
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, body := range []string{
		``,
		`not json`,
		`{"kind":"run","workload":"nonesuch","predictor":"rvp"}`,
		`{"kind":"run","workload":"go","predictor":"rvp","bogus_field":1}`,
		`{"kind":"run","workload":"go","predictor":"rvp"} trailing`,
	} {
		resp := postJob(t, ts, body, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestSubmitOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBody = 256 })

	// Declared oversized: rejected on Content-Length before any read.
	big := `{"kind":"run","workload":"go","predictor":"rvp","recovery":"` + strings.Repeat("x", 1024) + `"}`
	resp := postJob(t, ts, big, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized declared body = %d, want 413", resp.StatusCode)
	}

	// Chunked (unknown length) oversized: caught by MaxBytesReader.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		io.NopCloser(struct{ io.Reader }{strings.NewReader(big)}))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.ContentLength = -1
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("chunked POST: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunked body = %d, want 413", resp2.StatusCode)
	}
}

func TestSubmitShedsWhenQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 2 })
	// Park the worker pool so nothing drains the queue.
	srv.stopOnce.Do(func() { close(srv.stopPick) })
	srv.wg.Wait()

	for i := 0; i < 2; i++ {
		resp := postJob(t, ts, runBody, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postJob(t, ts, runBody, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past depth = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.RetryAfterSeconds < 1 {
		t.Fatalf("429 body = %+v (err %v), want retry_after_seconds >= 1", body, err)
	}
}

func TestSubmitShedsWhileDraining(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	if !srv.Drain() {
		t.Fatalf("idle drain reported unclean")
	}
	resp := postJob(t, ts, runBody, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining 503 without Retry-After")
	}
}

func TestSubmitShedsOnOpenBreaker(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooloff = time.Hour
	})
	srv.breaker.Failure("go")
	srv.breaker.Failure("go")

	resp := postJob(t, ts, runBody, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with open breaker = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("breaker 503 without Retry-After")
	}
	// Other workloads still pass.
	ok := postJob(t, ts, `{"kind":"run","workload":"perl","predictor":"rvp","insts":5000}`, "")
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("unrelated workload shed with the breaker: %d", ok.StatusCode)
	}
}

func TestStatusUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/jdeadbeef")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %v %d", err, resp.StatusCode)
	}
	var ready readyStatus
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	resp.Body.Close()
	if !ready.Ready || ready.Draining {
		t.Fatalf("readyz = %+v, want ready", ready)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %v %d", err, resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"srv_jobs_submitted_total", "srv_queue_depth", "srv_queue_wait_ms"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics output missing %s", want)
		}
	}

	// After a drain, readyz flips to 503 while healthz stays 200.
	srv.Drain()
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz after drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain = %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRestartRecoversQueuedJobs proves the acceptance contract survives
// a restart: jobs queued (but never started) when the daemon stops are
// re-enqueued and completed by the next daemon against the same state
// directory.
func TestRestartRecoversQueuedJobs(t *testing.T) {
	state := t.TempDir()
	cfg := Config{
		StateDir:     state,
		Workers:      1,
		QueueDepth:   4,
		DefaultInsts: 5_000,
		JobTimeout:   time.Minute,
		DrainTimeout: time.Second,
	}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatalf("first daemon: %v", err)
	}
	// Park the worker so the job stays queued, then accept one job.
	srv1.stopOnce.Do(func() { close(srv1.stopPick) })
	srv1.wg.Wait()
	ts1 := httptest.NewServer(srv1.Handler())
	st := decodeStatus(t, postJob(t, ts1, runBody, "recover-key"))
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("second daemon: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	final := waitTerminal(t, ts2, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recovered job state = %s (%+v)", final.State, final.Error)
	}

	// The idempotency key still maps to the same, now-finished job.
	resp := postJob(t, ts2, runBody, "recover-key")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart dedupe = %d, want 200", resp.StatusCode)
	}
	if got := decodeStatus(t, resp); got.ID != st.ID {
		t.Fatalf("post-restart dedupe job = %s, want %s", got.ID, st.ID)
	}
}

// TestJobFailureRecordsTypedError injects a sticky non-transient fault
// into one workload and checks the typed error payload, the breaker
// trip, and the failure counter.
func TestJobFailureRecordsTypedError(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 1
		c.BreakerCooloff = time.Hour
		c.Faults = map[string]faultinject.Config{"go": {FailAfter: 1}}
	})
	st := decodeStatus(t, postJob(t, ts, runBody, "fail-key"))
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("faulted job state = %s, want failed", final.State)
	}
	if final.Error == nil || final.Error.Message == "" {
		t.Fatalf("failed job carries no typed error: %+v", final)
	}
	if final.Error.Transient {
		t.Fatalf("injected hard fault marked transient: %+v", final.Error)
	}
	if got := srv.reg.Counter("srv_jobs_failed_total", "").Value(); got != 1 {
		t.Fatalf("srv_jobs_failed_total = %d, want 1", got)
	}

	// One non-transient failure trips the threshold-1 breaker: the next
	// submission for the same workload is shed.
	resp := postJob(t, ts, runBody, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after breaker trip = %d, want 503", resp.StatusCode)
	}
	if got := srv.reg.Counter("srv_breaker_trips_total", "").Value(); got != 1 {
		t.Fatalf("srv_breaker_trips_total = %d, want 1", got)
	}
}

// jobDir cleanup: a succeeded job must not leave scratch state behind.
func TestSucceededJobCleansStateDir(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	st := decodeStatus(t, postJob(t, ts, runBody, "clean-key"))
	waitTerminal(t, ts, st.ID)
	if _, err := os.Stat(srv.jobDir(st.ID)); !os.IsNotExist(err) {
		t.Fatalf("job state dir still present after success (err=%v)", err)
	}
}
