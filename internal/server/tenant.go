package server

import (
	"fmt"
	"sync"
	"time"

	"rvpsim/internal/obs"
)

// tenants enforces per-tenant admission on top of the global queue: a
// queue-depth quota (one tenant cannot fill the shared queue) and a
// token-bucket rate limit (one tenant cannot monopolize admission even
// with a short queue). Both answer overload with the same typed
// rejection the queue uses, so the HTTP layer maps them to 429 with a
// per-tenant Retry-After.
type tenants struct {
	maxQueued int     // per-tenant cap on queued jobs (0 disables)
	rate      float64 // token refill per second (0 disables the bucket)
	burst     float64 // bucket capacity
	now       func() time.Time

	gQueued *obs.GaugeVec // srv_tenant_queued, updated under mu

	mu sync.Mutex
	m  map[string]*tenantState
}

type tenantState struct {
	queued int
	tokens float64
	last   time.Time
}

func newTenants(maxQueued int, rate float64, burst int, gQueued *obs.GaugeVec) *tenants {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tenants{
		maxQueued: maxQueued,
		rate:      rate,
		burst:     b,
		now:       time.Now,
		gQueued:   gQueued,
		m:         map[string]*tenantState{},
	}
}

// get returns the tenant's state, creating it with a full bucket. Caller
// holds mu.
func (t *tenants) get(name string) *tenantState {
	st, ok := t.m[name]
	if !ok {
		st = &tenantState{tokens: t.burst, last: t.now()}
		t.m[name] = st
	}
	return st
}

// refill advances the token bucket to now. Caller holds mu.
func (t *tenants) refill(st *tenantState) {
	now := t.now()
	st.tokens += t.rate * now.Sub(st.last).Seconds()
	if st.tokens > t.burst {
		st.tokens = t.burst
	}
	st.last = now
}

// admit charges one submission to the tenant, or returns the typed
// rejection. waitHint is the queue's drain estimate — the Retry-After a
// quota rejection carries; a rate rejection instead carries the exact
// time until the tenant's next token.
func (t *tenants) admit(name string, waitHint time.Duration) *admissionError {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.get(name)
	if t.maxQueued > 0 && st.queued >= t.maxQueued {
		return &admissionError{
			reason:     fmt.Sprintf("tenant %q queue quota (%d) exhausted", name, t.maxQueued),
			retryAfter: waitHint,
		}
	}
	if t.rate > 0 {
		t.refill(st)
		if st.tokens < 1 {
			need := time.Duration((1 - st.tokens) / t.rate * float64(time.Second))
			return &admissionError{
				reason:     fmt.Sprintf("tenant %q rate limit (%.3g/s) exceeded", name, t.rate),
				retryAfter: need,
			}
		}
		st.tokens--
	}
	st.queued++
	t.gQueued.With(name).Set(int64(st.queued))
	return nil
}

// force counts a queued job past admission — recovery re-enqueues
// already-accepted jobs, and their eventual dequeue releases them.
func (t *tenants) force(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.get(name)
	st.queued++
	t.gQueued.With(name).Set(int64(st.queued))
}

// release returns a quota slot when a worker dequeues the tenant's job
// (or admission rolls a failed enqueue back). Unknown names are a no-op
// so tests driving the worker loop directly stay valid.
func (t *tenants) release(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[name]
	if !ok {
		return
	}
	if st.queued > 0 {
		st.queued--
	}
	t.gQueued.With(name).Set(int64(st.queued))
	// With no bucket to preserve, an idle tenant's state can go; a live
	// bucket stays so deletion cannot refund spent tokens.
	if st.queued == 0 && t.rate <= 0 {
		delete(t.m, name)
	}
}

// queuedNow reports the tenant's current queued count.
func (t *tenants) queuedNow(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.m[name]; ok {
		return st.queued
	}
	return 0
}

// tenantName extracts and validates the tenant header value; anonymous
// callers land in DefaultTenant. Names are bounded and character-limited
// so they are safe as metric label values and log fields.
func tenantName(v string) (string, error) {
	if v == "" {
		return DefaultTenant, nil
	}
	if len(v) > 64 {
		return "", fmt.Errorf("invalid %s: name longer than 64 bytes", TenantHeader)
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return "", fmt.Errorf("invalid %s: byte %q not in [A-Za-z0-9._-]", TenantHeader, c)
		}
	}
	return v, nil
}
