package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rvpsim/internal/faultinject"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int64
	event string
	data  JobEvent
}

// readSSE consumes an event stream until a terminal event, maxFrames
// frames, or the body ends, returning the parsed frames.
func readSSE(t *testing.T, body *bufio.Scanner, maxFrames int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	var data string
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if data == "" {
				continue
			}
			if err := json.Unmarshal([]byte(data), &cur.data); err != nil {
				t.Fatalf("bad data line %q: %v", data, err)
			}
			frames = append(frames, cur)
			if terminalEvent(cur.event) || len(frames) >= maxFrames {
				return frames
			}
			cur, data = sseFrame{}, ""
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func getSSE(t *testing.T, ts *httptest.Server, id string, lastEventID int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	return resp
}

// TestSSEStreamFramingAndResume walks a whole job through its event
// stream: correct SSE framing (id/event/data triplets, ids dense and
// increasing), the full lifecycle sequence (queued, started, progress
// heartbeats with committed counts and IPC, done), and Last-Event-ID
// resume — a second subscription after N sees exactly the events past N
// replayed from the ring, including after the job finished.
func TestSSEStreamFramingAndResume(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.ProgressEvery = 1_000
	})
	st := decodeStatus(t, postJob(t, ts, `{"kind":"run","workload":"go","predictor":"rvp","insts":30000}`, ""))

	resp := getSSE(t, ts, st.ID, 0)
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", got)
	}
	frames := readSSE(t, bufio.NewScanner(resp.Body), 10_000)
	if len(frames) < 4 {
		t.Fatalf("got %d frames, want at least queued/started/progress/done", len(frames))
	}
	for i, f := range frames {
		if f.id != int64(i+1) {
			t.Fatalf("frame %d has id %d, want dense 1-based ids", i, f.id)
		}
		if f.id != f.data.Seq {
			t.Fatalf("frame id %d != payload seq %d", f.id, f.data.Seq)
		}
		if f.event != f.data.Type {
			t.Fatalf("frame event %q != payload type %q", f.event, f.data.Type)
		}
		if f.data.Job != st.ID {
			t.Fatalf("event for job %q, want %q", f.data.Job, st.ID)
		}
	}
	if frames[0].event != EvQueued || frames[1].event != EvStarted {
		t.Fatalf("stream starts %q,%q, want queued,started", frames[0].event, frames[1].event)
	}
	last := frames[len(frames)-1]
	if last.event != EvDone {
		t.Fatalf("stream ends with %q, want done", last.event)
	}
	progress := 0
	for _, f := range frames {
		if f.event == EvProgress {
			progress++
			if f.data.Committed == 0 || f.data.Cycles <= 0 || f.data.IPC <= 0 {
				t.Fatalf("progress payload incomplete: %+v", f.data)
			}
		}
	}
	if progress == 0 {
		t.Fatalf("no progress heartbeats over 30k insts at 1k cadence")
	}

	// Resume after the job is done: Last-Event-ID = N-2 must replay
	// exactly the last two events from the ring.
	resume := getSSE(t, ts, st.ID, last.id-2)
	defer resume.Body.Close()
	replayed := readSSE(t, bufio.NewScanner(resume.Body), 10_000)
	if len(replayed) != 2 {
		t.Fatalf("resume replayed %d frames, want 2", len(replayed))
	}
	if replayed[0].id != last.id-1 || replayed[1].id != last.id {
		t.Fatalf("resume ids = %d,%d, want %d,%d", replayed[0].id, replayed[1].id, last.id-1, last.id)
	}
	if replayed[1].event != EvDone {
		t.Fatalf("resume did not end on the terminal event: %q", replayed[1].event)
	}
}

// TestSSEUnknownJob pins the 404 on streaming a job that never existed.
func TestSSEUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := getSSE(t, ts, "jnope", 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderOnFailure injects a sticky fault and checks the
// failed job's record carries the flight dump: the events leading up to
// the failure, identified by spec digest only (redaction — the events
// embed no spec fields).
func TestFlightRecorderOnFailure(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.ProgressEvery = 1_000
		c.Faults = map[string]faultinject.Config{"go": {FailAfter: 1}}
	})
	st := decodeStatus(t, postJob(t, ts, `{"kind":"run","workload":"go","predictor":"rvp","insts":30000}`, ""))
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Flight == nil {
		t.Fatalf("failed job has no flight record")
	}
	spec := final.Spec
	if final.Flight.SpecDigest != spec.Digest() {
		t.Fatalf("flight digest %q != spec digest %q", final.Flight.SpecDigest, spec.Digest())
	}
	if len(final.Flight.Events) < 2 {
		t.Fatalf("flight record has %d events, want at least queued+started", len(final.Flight.Events))
	}
	if final.Flight.Events[0].Type != EvQueued {
		t.Fatalf("flight record starts with %q, want queued", final.Flight.Events[0].Type)
	}
	for _, ev := range final.Flight.Events {
		if terminalEvent(ev.Type) {
			t.Fatalf("flight record contains terminal event %q; it must be the pre-failure story", ev.Type)
		}
	}
	if final.TraceID == "" {
		t.Fatalf("failed job has no trace ID")
	}
}

// TestSyntheticTerminalEventAfterRestart covers watching a job whose
// feed no longer exists (daemon restarted after it finished): the
// stream serves one synthetic terminal frame from the store record.
func TestSyntheticTerminalEventAfterRestart(t *testing.T) {
	state := t.TempDir()
	srv1, ts1 := newTestServer(t, func(c *Config) { c.StateDir = state })
	st := decodeStatus(t, postJob(t, ts1, runBody, "restart-key"))
	waitTerminal(t, ts1, st.ID)
	ts1.Close()
	srv1.Close()

	_, ts2 := newTestServer(t, func(c *Config) { c.StateDir = state })
	resp := getSSE(t, ts2, st.ID, 0)
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body), 10)
	if len(frames) != 1 || frames[0].event != EvDone {
		t.Fatalf("restarted watch frames = %+v, want one synthetic done", frames)
	}
}

// TestWorkerAndBreakerGauges pins the fleet-introspection metrics: the
// worker-pool gauge and the per-workload breaker state family on
// /metrics, flipping a breaker open via injected failures.
func TestWorkerAndBreakerGauges(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 3
		c.BreakerThreshold = 1
		c.BreakerCooloff = time.Hour
		c.Faults = map[string]faultinject.Config{"go": {FailAfter: 1}}
	})
	st := decodeStatus(t, postJob(t, ts, runBody, ""))
	waitTerminal(t, ts, st.ID)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	body := buf.String()
	for _, want := range []string{
		"srv_workers_total 3",
		`srv_breaker_state{key="go"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestFeedOverflowResubscribe pins the hub's no-blocking contract: a
// subscriber that stops draining is closed, not waited on, and a
// resubscription from its last seen sequence replays what the ring
// still holds.
func TestFeedOverflowResubscribe(t *testing.T) {
	f := newJobFeed("j1", 4)
	_, sub := f.subscribe(0)
	for i := 0; i < 10; i++ { // channel cap is the ring cap (4): overflow
		f.publish(JobEvent{Type: EvProgress})
	}
	var lastSeen int64
	for ev := range sub.ch { // closed by the overflow
		lastSeen = ev.Seq
	}
	if lastSeen == 0 {
		t.Fatalf("subscriber saw nothing before overflow close")
	}
	replay, sub2 := f.subscribe(lastSeen)
	if sub2 == nil {
		t.Fatalf("feed terminal without a terminal event")
	}
	defer f.unsubscribe(sub2)
	// The ring holds the last 4 events (seqs 7-10); everything after
	// lastSeen that survived eviction must replay in order.
	if len(replay) == 0 {
		t.Fatalf("no replay after overflow")
	}
	for i := 1; i < len(replay); i++ {
		if replay[i].Seq != replay[i-1].Seq+1 {
			t.Fatalf("replay not dense: %+v", replay)
		}
	}
	if got := replay[len(replay)-1].Seq; got != 10 {
		t.Fatalf("replay ends at seq %d, want 10", got)
	}
}

// TestTelemetryConcurrent hammers the telemetry layer from every
// direction at once — parallel submissions, concurrent SSE watchers,
// metrics and trace readers — and is the service-level -race exercise
// for concurrent span emission and event publishing from the worker
// pool plus HTTP handlers.
func TestTelemetryConcurrent(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 32
		c.ProgressEvery = 500
	})

	const jobs = 6
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		body := fmt.Sprintf(`{"kind":"run","workload":"go","predictor":"rvp","insts":%d}`, 8000+i*1000)
		st := decodeStatus(t, postJob(t, ts, body, fmt.Sprintf("conc-%d", i)))
		ids[i] = st.ID
	}
	// Watchers: one SSE stream per job, drained to the terminal event.
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp := getSSE(t, ts, id, 0)
			defer resp.Body.Close()
			frames := readSSE(t, bufio.NewScanner(resp.Body), 100_000)
			if len(frames) == 0 || !terminalEvent(frames[len(frames)-1].event) {
				t.Errorf("job %s: stream ended without terminal event (%d frames)", id, len(frames))
			}
		}(id)
	}
	// Pollers: metrics and trace endpoints while everything runs.
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if resp, err := ts.Client().Get(ts.URL + "/metrics"); err == nil {
					resp.Body.Close()
				}
				if resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + ids[0] + "/trace"); err == nil {
					resp.Body.Close()
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	close(stop)
	wg.Wait()
}
