package server

import (
	"sync"
	"time"
)

// This file is the service's live-telemetry spine: every accepted job
// gets a bounded event feed that three consumers share. The SSE
// endpoint streams it (with Last-Event-ID replay from the ring), the
// flight recorder dumps it into the job record on failure, and tests
// read it directly. One buffer, three views — the ring is the single
// source of truth for "what happened to this job recently".

// Job event types, in lifecycle order. "progress" and "checkpointed"
// repeat; the others appear at most once per attempt.
const (
	EvQueued       = "queued"
	EvStarted      = "started"
	EvProgress     = "progress"
	EvCheckpointed = "checkpointed"
	EvRequeued     = "requeued"
	EvDone         = "done"
	EvFailed       = "failed"
)

// terminalEvent reports whether typ ends a job's stream.
func terminalEvent(typ string) bool { return typ == EvDone || typ == EvFailed }

// JobEvent is one entry in a job's event stream. Seq is the job-scoped
// sequence number (1-based, dense) that SSE clients resume from via
// Last-Event-ID. Events carry no job spec — a flight record embedded in
// a job status must not duplicate (or leak) the spec, which the record
// already identifies by digest.
type JobEvent struct {
	Seq    int64  `json:"seq"`
	Type   string `json:"type"`
	TimeUS int64  `json:"time_us"`
	Job    string `json:"job"`
	// Attempt is the job attempt the event belongs to (started/requeued/
	// done/failed).
	Attempt int `json:"attempt,omitempty"`
	// Label names the simulation cell ("workload/predictor") a progress
	// or checkpoint event came from.
	Label string `json:"label,omitempty"`
	// Committed/Cycles/IPC are the live heartbeat payload.
	Committed uint64  `json:"committed,omitempty"`
	Cycles    int64   `json:"cycles,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	// Error carries the failure message on "failed" events.
	Error string `json:"error,omitempty"`
}

// feedSub is one SSE subscriber's delivery channel. The channel is
// buffered to the ring size; a subscriber that falls further behind
// than the ring could replay anyway is closed (never blocked on), and
// the SSE handler resubscribes from its last-seen sequence number.
type feedSub struct {
	ch chan JobEvent
}

// jobFeed is one job's bounded event history plus its live subscribers.
type jobFeed struct {
	mu         sync.Mutex
	job        string
	cap        int
	seq        int64
	ring       []JobEvent // oldest first, len <= cap
	subs       map[*feedSub]struct{}
	terminal   bool
	terminalAt time.Time
}

func newJobFeed(job string, capacity int) *jobFeed {
	return &jobFeed{job: job, cap: capacity, subs: map[*feedSub]struct{}{}}
}

// publish assigns the next sequence number, records ev in the ring
// (evicting the oldest past capacity), and fans it out to subscribers.
// Delivery never blocks: a full subscriber is closed instead, which the
// SSE handler observes as "resubscribe and replay what you missed". A
// terminal event closes every subscriber after delivery.
func (f *jobFeed) publish(ev JobEvent) JobEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.terminal {
		return ev // nothing follows done/failed
	}
	f.seq++
	ev.Seq = f.seq
	ev.Job = f.job
	if ev.TimeUS == 0 {
		ev.TimeUS = time.Now().UnixMicro()
	}
	if len(f.ring) >= f.cap {
		copy(f.ring, f.ring[1:])
		f.ring = f.ring[:len(f.ring)-1]
	}
	f.ring = append(f.ring, ev)
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
		default:
			close(sub.ch)
			delete(f.subs, sub)
		}
	}
	if terminalEvent(ev.Type) {
		f.terminal = true
		f.terminalAt = time.Now()
		for sub := range f.subs {
			close(sub.ch)
			delete(f.subs, sub)
		}
	}
	return ev
}

// subscribe returns the ring events after seq `after` plus a live
// subscription. The replay and the subscription are atomic with
// respect to publish, so no event can fall between them. For a
// terminal feed the subscription is nil: the replay is the whole
// remaining story.
func (f *jobFeed) subscribe(after int64) ([]JobEvent, *feedSub) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var replay []JobEvent
	for _, ev := range f.ring {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	if f.terminal {
		return replay, nil
	}
	sub := &feedSub{ch: make(chan JobEvent, f.cap)}
	f.subs[sub] = struct{}{}
	return replay, sub
}

// unsubscribe detaches sub (idempotent; safe after an overflow close).
func (f *jobFeed) unsubscribe(sub *feedSub) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.subs, sub)
}

// events returns a copy of the ring: the flight-recorder read.
func (f *jobFeed) events() []JobEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]JobEvent(nil), f.ring...)
}

// telemetry owns the per-job feeds. Feeds for terminal jobs are kept
// for late watchers (replay still works after completion) but bounded:
// past maxFeeds, the oldest-terminal feed is evicted first, so the hub
// cannot grow without bound on a long-lived daemon. Live feeds are
// never evicted — their population is already bounded by queue depth
// plus the worker count.
type telemetry struct {
	mu       sync.Mutex
	feeds    map[string]*jobFeed
	ringCap  int
	maxFeeds int
}

func newTelemetry(ringCap, maxFeeds int) *telemetry {
	return &telemetry{feeds: map[string]*jobFeed{}, ringCap: ringCap, maxFeeds: maxFeeds}
}

// feed returns (creating if needed) the feed for job id. Nil receiver
// (telemetry disabled) returns nil; jobFeed methods are not nil-safe,
// so callers gate on the returned feed.
func (t *telemetry) feed(id string) *jobFeed {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.feeds[id]; ok {
		return f
	}
	if len(t.feeds) >= t.maxFeeds {
		t.evictLocked()
	}
	f := newJobFeed(id, t.ringCap)
	t.feeds[id] = f
	return f
}

// lookup returns the feed for id without creating one.
func (t *telemetry) lookup(id string) (*jobFeed, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.feeds[id]
	return f, ok
}

// evictLocked drops the feed whose job finished longest ago. When no
// feed is terminal the hub grows past maxFeeds — correctness (live
// streams staying attached) beats the bound.
func (t *telemetry) evictLocked() {
	var victim string
	var oldest time.Time
	for id, f := range t.feeds {
		f.mu.Lock()
		term, at := f.terminal, f.terminalAt
		f.mu.Unlock()
		if term && (victim == "" || at.Before(oldest)) {
			victim, oldest = id, at
		}
	}
	if victim != "" {
		delete(t.feeds, victim)
	}
}

// publish is the server's one-line event emitter: resolve the feed and
// publish, all nil-safe so call sites need no telemetry-enabled branch.
func (t *telemetry) publish(id string, ev JobEvent) {
	if f := t.feed(id); f != nil {
		f.publish(ev)
	}
}
