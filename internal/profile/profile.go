// Package profile implements the paper's register-reuse profiler
// (Section 5). It runs a program on the functional emulator and measures,
// for every register-writing static instruction:
//
//   - same-register reuse: the result equals the destination register's
//     prior value;
//   - dead/live-register correlation: the result equals the current value
//     of some other register, classified by static liveness at that point;
//   - last-value reuse: the result equals the instruction's own previous
//     result;
//   - any-register reuse, and "register or last value" (Figure 1);
//   - execution frequency, loop criticality inputs, and the primary
//     producer of each correlated register's value (needed by the
//     Section 7.3 register re-allocator).
//
// From the raw profile it derives the four instruction lists the paper's
// compiler model consumes (same / dead / live / last-value) at a given
// predictability threshold, and converts them into core.ReuseHints.
package profile

import (
	"fmt"
	"sort"

	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/program"
)

// InstStats is the raw profile of one static instruction.
type InstStats struct {
	Index int
	Inst  isa.Inst

	Execs    uint64
	SameHits uint64 // result == prior value of the destination register
	LastHits uint64 // result == this instruction's previous result
	AnyHits  uint64 // result == some register's current value
	DeadHits uint64 // result == some statically-dead register's value
	OrLVHits uint64 // AnyHits condition or LastHits condition

	// Best correlated register among statically dead candidates and among
	// live candidates, with their hit counts.
	BestDead     isa.Reg
	BestDeadHits uint64
	BestLive     isa.Reg
	BestLiveHits uint64

	// Primary producer (static index) of the value found in BestDead /
	// BestLive, and how often that producer supplied it. -1 when unknown.
	DeadProducer int
	LiveProducer int

	// CritHits counts executions in which this instruction's result was
	// the latest-arriving (chain-height-maximal) input of a consumer — a
	// cheap critical-path profile in the spirit of [15].
	CritHits uint64
}

// Rate helpers. Each returns 0 when the instruction never executed.
func rate(h, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(h) / float64(n)
}

// SameRate is the same-register reuse fraction.
func (s *InstStats) SameRate() float64 { return rate(s.SameHits, s.Execs) }

// LastRate is the last-value reuse fraction.
func (s *InstStats) LastRate() float64 { return rate(s.LastHits, s.Execs) }

// AnyRate is the any-register reuse fraction.
func (s *InstStats) AnyRate() float64 { return rate(s.AnyHits, s.Execs) }

// DeadRate is the any-dead-register reuse fraction.
func (s *InstStats) DeadRate() float64 { return rate(s.DeadHits, s.Execs) }

// OrLVRate is the register-or-last-value fraction (Figure 1, last bar).
func (s *InstStats) OrLVRate() float64 { return rate(s.OrLVHits, s.Execs) }

// BestDeadRate is the best single dead register's hit fraction.
func (s *InstStats) BestDeadRate() float64 { return rate(s.BestDeadHits, s.Execs) }

// BestLiveRate is the best single live register's hit fraction.
func (s *InstStats) BestLiveRate() float64 { return rate(s.BestLiveHits, s.Execs) }

// Profile is the result of profiling one program.
type Profile struct {
	Prog  *program.Program
	Insts map[int]*InstStats // keyed by static instruction index
	Total uint64             // committed instructions profiled
	Loads uint64             // committed loads
}

// Options configures the profiler.
type Options struct {
	MaxInsts uint64 // committed-instruction budget (0 = to completion)
	// MinExecs filters instructions with too few executions from lists.
	MinExecs uint64
}

// Run profiles prog. It executes the program twice: once to gather reuse
// statistics and select correlated registers, once to attribute primary
// producers for the selected registers.
func Run(prog *program.Program, opts Options) (*Profile, error) {
	if opts.MinExecs == 0 {
		opts.MinExecs = 16
	}
	live, err := newLivenessIndex(prog)
	if err != nil {
		return nil, err
	}

	p := &Profile{Prog: prog, Insts: make(map[int]*InstStats)}
	regHits := make(map[int]*[isa.NumRegs]uint64) // per-inst per-register

	// Pass 1: reuse counting.
	st, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	var lastVal = make(map[int]uint64)
	var lastSeen = make(map[int]bool)
	// Chain heights for the critical-path profile.
	var height [isa.NumRegs]uint64
	var producerIdx [isa.NumRegs]int
	for i := range producerIdx {
		producerIdx[i] = -1
	}

	for {
		if opts.MaxInsts > 0 && p.Total >= opts.MaxInsts {
			break
		}
		// Snapshot register values before the step.
		regs := st.Regs
		e, ok := st.Step()
		if !ok {
			break
		}
		p.Total++
		if isa.IsLoad(e.Inst.Op) {
			p.Loads++
		}

		// Critical-path credit: the maximal-height source's producer.
		var h uint64
		bestSrc := -1
		for _, r := range e.Inst.Sources(nil) {
			if r.IsZero() {
				continue
			}
			if height[r] >= h {
				h = height[r]
				bestSrc = producerIdx[r]
			}
		}
		if bestSrc >= 0 {
			if bs := p.Insts[bestSrc]; bs != nil {
				bs.CritHits++
			}
		}

		if !e.WroteRd {
			continue
		}
		is := p.Insts[e.Index]
		if is == nil {
			is = &InstStats{Index: e.Index, Inst: e.Inst, DeadProducer: -1, LiveProducer: -1}
			p.Insts[e.Index] = is
			regHits[e.Index] = &[isa.NumRegs]uint64{}
		}
		is.Execs++
		v := e.NewDest
		wasLast := lastSeen[e.Index] && lastVal[e.Index] == v
		if v == e.OldDest {
			is.SameHits++
		}
		if wasLast {
			is.LastHits++
		}
		lastVal[e.Index] = v
		lastSeen[e.Index] = true

		any, dead := false, false
		hits := regHits[e.Index]
		for r := 0; r < isa.NumRegs; r++ {
			reg := isa.Reg(r)
			if reg.IsZero() || reg == e.Inst.Rd {
				continue
			}
			if regs[r] == v {
				hits[r]++
				any = true
				if live.deadBefore(e.Index, reg) {
					dead = true
				}
			}
		}
		if any || v == e.OldDest {
			is.AnyHits++
		}
		if dead {
			is.DeadHits++
		}
		// Figure 1's last bar: the value is in some register now, or was
		// this instruction's previous result.
		if any || v == e.OldDest || wasLast {
			is.OrLVHits++
		}

		height[e.Inst.Rd] = h + 1
		producerIdx[e.Inst.Rd] = e.Index
	}

	// Select best dead and live correlated registers per instruction.
	for idx, is := range p.Insts {
		hits := regHits[idx]
		for r := 0; r < isa.NumRegs; r++ {
			reg := isa.Reg(r)
			if reg.IsZero() || reg == is.Inst.Rd || hits[r] == 0 {
				continue
			}
			if live.deadBefore(idx, reg) {
				if hits[r] > is.BestDeadHits {
					is.BestDeadHits = hits[r]
					is.BestDead = reg
				}
			} else if hits[r] > is.BestLiveHits {
				is.BestLiveHits = hits[r]
				is.BestLive = reg
			}
		}
	}

	// Pass 2: primary producers of the selected correlated registers.
	if err := p.attributeProducers(opts); err != nil {
		return nil, err
	}
	return p, nil
}

// attributeProducers re-runs the program, tracking the last static writer
// of each architectural register, and attributes the majority producer of
// each instruction's best dead/live correlated register.
func (p *Profile) attributeProducers(opts Options) error {
	type key struct {
		inst int
		dead bool
	}
	counts := make(map[key]map[int]uint64)
	st, err := emu.New(p.Prog)
	if err != nil {
		return err
	}
	var lastWriter [isa.NumRegs]int
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	var n uint64
	for {
		if opts.MaxInsts > 0 && n >= opts.MaxInsts {
			break
		}
		regs := st.Regs
		e, ok := st.Step()
		if !ok {
			break
		}
		n++
		if !e.WroteRd {
			continue
		}
		is := p.Insts[e.Index]
		if is == nil {
			continue
		}
		record := func(reg isa.Reg, dead bool) {
			if reg.IsZero() || regs[reg] != e.NewDest {
				return
			}
			w := lastWriter[reg]
			if w < 0 {
				return
			}
			k := key{e.Index, dead}
			m := counts[k]
			if m == nil {
				m = make(map[int]uint64)
				counts[k] = m
			}
			m[w]++
		}
		if is.BestDeadHits > 0 {
			record(is.BestDead, true)
		}
		if is.BestLiveHits > 0 {
			record(is.BestLive, false)
		}
		lastWriter[e.Inst.Rd] = e.Index
	}
	majority := func(m map[int]uint64) int {
		best, bestN := -1, uint64(0)
		// Deterministic tie-break by smallest index.
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if m[i] > bestN {
				best, bestN = i, m[i]
			}
		}
		return best
	}
	for idx, is := range p.Insts {
		if m := counts[key{idx, true}]; m != nil {
			is.DeadProducer = majority(m)
		}
		if m := counts[key{idx, false}]; m != nil {
			is.LiveProducer = majority(m)
		}
	}
	return nil
}

// livenessIndex precomputes per-instruction liveness for the whole
// program (one CFG per procedure; a synthetic whole-program procedure
// when none are declared).
type livenessIndex struct {
	byInst []*program.Liveness
}

func buildLiveness(prog *program.Program) ([]*program.Liveness, []program.Procedure) {
	procs := prog.Procs
	if len(procs) == 0 {
		procs = []program.Procedure{{Name: "<all>", Start: 0, End: len(prog.Insts)}}
	}
	out := make([]*program.Liveness, len(prog.Insts))
	for i := range procs {
		g := program.BuildCFG(prog, &procs[i])
		l := program.ComputeLiveness(prog, g)
		for j := procs[i].Start; j < procs[i].End; j++ {
			out[j] = l
		}
	}
	return out, procs
}

func newLivenessIndex(prog *program.Program) (*livenessIndex, error) {
	if len(prog.Insts) == 0 {
		return nil, fmt.Errorf("profile: empty program")
	}
	li, _ := buildLiveness(prog)
	return &livenessIndex{byInst: li}, nil
}

// deadBefore reports whether reg's value is statically dead immediately
// before instruction idx executes.
func (l *livenessIndex) deadBefore(idx int, reg isa.Reg) bool {
	lv := l.byInst[idx]
	if lv == nil {
		return false
	}
	return !lv.LiveIn(idx).Has(reg)
}
