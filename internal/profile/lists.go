package profile

import (
	"rvpsim/internal/core"
	"rvpsim/internal/isa"
)

// Support enumerates the compiler-assistance levels the paper evaluates.
type Support uint8

// Compiler support levels.
const (
	// SupportNone: hardware-only; plain same-register reuse.
	SupportNone Support = iota
	// SupportDead: re-allocate destinations onto correlated dead
	// registers (the paper's "dead" optimisation).
	SupportDead
	// SupportLive: SupportDead plus a move from correlated live
	// registers (the paper's "live" optimisation; move cost not charged,
	// an acknowledged optimistic bound).
	SupportLive
	// SupportDeadLV: SupportDead plus last-value exposure by reserving
	// the destination register across iterations ("dead_lv").
	SupportDeadLV
	// SupportLiveLV: SupportLive plus last-value exposure ("live_lv").
	SupportLiveLV
)

func (s Support) String() string {
	switch s {
	case SupportNone:
		return "same"
	case SupportDead:
		return "dead"
	case SupportLive:
		return "live"
	case SupportDeadLV:
		return "dead_lv"
	case SupportLiveLV:
		return "live_lv"
	}
	return "support(?)"
}

// Lists are the profiler's four instruction lists at one threshold
// (Section 5): same-register reuse, dead-register correlation,
// live-register correlation, and last-value predictability. An
// instruction appears in at most one of Same/Dead/Live (priority order:
// same, dead, live); LV collects instructions with last-value reuse that
// lack same-register reuse.
type Lists struct {
	Threshold float64
	Same      map[int]bool
	Dead      map[int]isa.Reg
	Live      map[int]isa.Reg
	LV        map[int]bool
}

// hintMargin is how much better a redirected prediction source must be
// than native same-register reuse before the compiler model uses it: a
// marginal improvement is not worth disturbing the register allocation.
const hintMargin = 0.10

// Lists derives the instruction lists at the given predictability
// threshold (the paper uses 0.80 for most results, 0.90 for Figure 4).
// With loadsOnly, only load instructions are listed (static RVP);
// otherwise all register-writing instructions are candidates.
func (p *Profile) Lists(threshold float64, loadsOnly bool, minExecs uint64) Lists {
	if minExecs == 0 {
		minExecs = 16
	}
	l := Lists{
		Threshold: threshold,
		Same:      make(map[int]bool),
		Dead:      make(map[int]isa.Reg),
		Live:      make(map[int]isa.Reg),
		LV:        make(map[int]bool),
	}
	for idx, is := range p.Insts {
		if is.Execs < minExecs {
			continue
		}
		if loadsOnly && !isa.IsLoad(is.Inst.Op) {
			continue
		}
		// A hint is only worth taking when the alternative source is both
		// above the threshold and strictly better than what the hardware
		// already gets from plain same-register reuse.
		switch {
		case is.SameRate() >= threshold && is.SameRate() >= is.BestDeadRate() && is.SameRate() >= is.BestLiveRate():
			l.Same[idx] = true
		case is.BestDeadRate() >= threshold && is.BestDeadRate() > is.SameRate()+hintMargin:
			l.Dead[idx] = is.BestDead
		case is.BestLiveRate() >= threshold && is.BestLiveRate() > is.SameRate()+hintMargin:
			l.Live[idx] = is.BestLive
		case is.SameRate() >= threshold:
			l.Same[idx] = true
		}
		if is.LastRate() >= threshold && is.LastRate() > is.SameRate()+hintMargin {
			l.LV[idx] = true
		}
	}
	return l
}

// Hints converts the lists into the reuse hints a predictor consumes at
// the given compiler-support level. Dead-register hints take priority
// over live-register hints, which take priority over last-value hints.
func (l Lists) Hints(level Support) core.ReuseHints {
	h := make(core.ReuseHints)
	if level == SupportNone {
		return h
	}
	for idx, r := range l.Dead {
		h[idx] = core.ReuseHint{Kind: core.KindOtherReg, Reg: r}
	}
	if level == SupportLive || level == SupportLiveLV {
		for idx, r := range l.Live {
			if _, dup := h[idx]; !dup {
				h[idx] = core.ReuseHint{Kind: core.KindOtherReg, Reg: r}
			}
		}
	}
	if level == SupportDeadLV || level == SupportLiveLV {
		for idx := range l.LV {
			if _, dup := h[idx]; !dup {
				h[idx] = core.ReuseHint{Kind: core.KindLastValue}
			}
		}
	}
	return h
}

// Marked returns the static-RVP marked-instruction set for the support
// level: instructions with native same-register reuse plus every
// instruction covered by a hint at that level.
func (l Lists) Marked(level Support) map[int]bool {
	m := make(map[int]bool, len(l.Same))
	for idx := range l.Same {
		m[idx] = true
	}
	for idx := range l.Hints(level) {
		m[idx] = true
	}
	return m
}

// ReuseSummary aggregates per-execution load reuse fractions (Figure 1).
type ReuseSummary struct {
	Same float64 // value already in the destination register
	Dead float64 // value in some statically-dead register
	Any  float64 // value in any register
	OrLV float64 // in a register, or the load's previous value
}

// LoadReuseSummary computes Figure 1's bars for this program: the
// fraction of dynamic loads whose value was already in the same register,
// a dead register, any register, or either a register or the last value.
func (p *Profile) LoadReuseSummary() ReuseSummary {
	var execs, same, dead, any, orlv uint64
	for _, is := range p.Insts {
		if !isa.IsLoad(is.Inst.Op) {
			continue
		}
		execs += is.Execs
		same += is.SameHits
		any += is.AnyHits
		orlv += is.OrLVHits
		d := is.DeadHits
		if is.SameHits > d {
			// "dead register" subsumes same-register reuse for the figure:
			// the destination's own prior value is dead by definition when
			// the instruction overwrites it without further reads.
			d = is.SameHits
		}
		dead += d
	}
	if execs == 0 {
		return ReuseSummary{}
	}
	n := float64(execs)
	return ReuseSummary{
		Same: float64(same) / n,
		Dead: float64(dead) / n,
		Any:  float64(any) / n,
		OrLV: float64(orlv) / n,
	}
}
