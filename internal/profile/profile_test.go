package profile_test

import (
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/core"
	"rvpsim/internal/isa"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
)

func mustProfile(t *testing.T, src string, max uint64) *profile.Profile {
	t.Helper()
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.Run(p, profile.Options{MaxInsts: max})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func findLoad(t *testing.T, pr *profile.Profile) *profile.InstStats {
	t.Helper()
	for _, is := range pr.Insts {
		if isa.IsLoad(is.Inst.Op) {
			return is
		}
	}
	t.Fatal("no load profiled")
	return nil
}

// sameRegSrc loads the same value into the same register repeatedly.
const sameRegSrc = `
.text
.proc main
main:
        li      r1, 100
        lda     r2, table
loop:
        ldq     r3, 0(r2)
        add     r4, r3, r3
        subi    r1, r1, 1
        bne     r1, loop
        halt
.endproc
.data
.org 0x100000
table:  .quad 7
`

func TestSameRegisterReuseDetected(t *testing.T) {
	pr := mustProfile(t, sameRegSrc, 0)
	ld := findLoad(t, pr)
	if ld.Execs != 100 {
		t.Fatalf("load execs = %d, want 100", ld.Execs)
	}
	// First load has OldDest 0 != 7; the other 99 are same-register reuse.
	if got := ld.SameRate(); got < 0.98 {
		t.Errorf("same rate = %.3f, want ~0.99", got)
	}
	if got := ld.LastRate(); got < 0.98 {
		t.Errorf("last rate = %.3f, want ~0.99", got)
	}
	lists := pr.Lists(0.8, true, 16)
	if !lists.Same[ld.Index] {
		t.Error("load not in Same list")
	}
	if _, inDead := lists.Dead[ld.Index]; inDead {
		t.Error("same-reg load also in Dead list")
	}
}

// deadCorrSrc: the loaded value always equals what r9 holds, and r9 is
// dead at the load (written before any subsequent read).
const deadCorrSrc = `
.text
.proc main
main:
        li      r1, 100
        lda     r2, table
loop:
        ldq     r6, 0(r2)       ; writes r6 (volatile): value 7
        add     r4, r6, r6      ; last read of r6: it is dead afterwards
        ldq     r3, 0(r2)       ; loads 7 == dead r9's value; r3 then clobbered
        add     r5, r3, r4
        li      r3, 0           ; destroy r3 so no same-register reuse
        subi    r1, r1, 1
        bne     r1, loop
        halt
.endproc
.data
.org 0x100000
table:  .quad 7
`

func TestDeadRegisterCorrelation(t *testing.T) {
	pr := mustProfile(t, deadCorrSrc, 0)
	p, _ := asm.Assemble("t", deadCorrSrc, asm.Options{})
	// The second load (into r3) is at index 4 (li, lda, ldq, add, ldq).
	var target *profile.InstStats
	for _, is := range pr.Insts {
		if isa.IsLoad(is.Inst.Op) && is.Inst.Rd == 3 {
			target = is
		}
	}
	_ = p
	if target == nil {
		t.Fatal("load into r3 not profiled")
	}
	if target.SameRate() > 0.2 {
		t.Errorf("unexpected same-reg reuse: %.3f", target.SameRate())
	}
	if target.BestDeadRate() < 0.9 {
		t.Fatalf("best dead rate = %.3f (reg %v), want high", target.BestDeadRate(), target.BestDead)
	}
	if target.BestDead != 6 {
		t.Errorf("best dead reg = %v, want r6", target.BestDead)
	}
	lists := pr.Lists(0.8, true, 16)
	if r, ok := lists.Dead[target.Index]; !ok || r != 6 {
		t.Errorf("Dead list entry = %v, %v", r, ok)
	}
	// The primary producer of r9's value is the first load.
	if target.DeadProducer < 0 {
		t.Error("no dead producer attributed")
	} else if !isa.IsLoad(pr.Insts[target.DeadProducer].Inst.Op) {
		t.Errorf("dead producer = inst %d (%v), want the r6 load",
			target.DeadProducer, pr.Insts[target.DeadProducer].Inst)
	}
}

// liveCorrSrc: value correlates with a register that stays live.
const liveCorrSrc = `
.text
.proc main
main:
        li      r1, 100
        lda     r2, table
        ldq     r9, 0(r2)       ; r9 = 7 and stays live (read every iter)
loop:
        ldq     r3, 0(r2)       ; loads 7 == live r9
        add     r4, r3, r9      ; keeps r9 live
        li      r3, 0
        subi    r1, r1, 1
        bne     r1, loop
        halt
.endproc
.data
.org 0x100000
table:  .quad 7
`

func TestLiveRegisterCorrelation(t *testing.T) {
	pr := mustProfile(t, liveCorrSrc, 0)
	var target *profile.InstStats
	for _, is := range pr.Insts {
		if isa.IsLoad(is.Inst.Op) && is.Inst.Rd == 3 {
			target = is
		}
	}
	if target == nil {
		t.Fatal("loop load not profiled")
	}
	if target.BestLiveRate() < 0.9 || target.BestLive != 9 {
		t.Errorf("best live = %v @ %.3f, want r9 high", target.BestLive, target.BestLiveRate())
	}
	lists := pr.Lists(0.8, true, 16)
	if r, ok := lists.Live[target.Index]; !ok || r != 9 {
		t.Errorf("Live list entry = %v, %v", r, ok)
	}
}

// lvSrc: the load's value repeats, but an intervening write to the same
// register kills same-register reuse — pure last-value locality.
const lvSrc = `
.text
.proc main
main:
        li      r1, 100
        lda     r2, table
loop:
        ldq     r7, 0(r2)       ; always 7, but r7 clobbered below
        add     r4, r7, r7
        li      r7, 999         ; intervening write (Figure 2c)
        add     r5, r7, r4
        subi    r1, r1, 1
        bne     r1, loop
        halt
.endproc
.data
.org 0x100000
table:  .quad 7
`

func TestLastValueWithoutSameRegister(t *testing.T) {
	pr := mustProfile(t, lvSrc, 0)
	var target *profile.InstStats
	for _, is := range pr.Insts {
		if isa.IsLoad(is.Inst.Op) {
			target = is
		}
	}
	if target == nil {
		t.Fatal("load not profiled")
	}
	if target.SameRate() > 0.1 {
		t.Errorf("same rate = %.3f, want ~0 (register clobbered)", target.SameRate())
	}
	if target.LastRate() < 0.98 {
		t.Errorf("last rate = %.3f, want ~1", target.LastRate())
	}
	lists := pr.Lists(0.8, true, 16)
	if !lists.LV[target.Index] {
		t.Error("load not in LV list")
	}
	h := lists.Hints(profile.SupportDeadLV)
	if hint, ok := h[target.Index]; !ok || hint.Kind != core.KindLastValue {
		t.Errorf("hint = %+v, %v; want last-value", h[target.Index], ok)
	}
	// Without LV support, no hint.
	if _, ok := lists.Hints(profile.SupportDead)[target.Index]; ok {
		t.Error("dead-level hints include LV instruction")
	}
}

func TestHintPriorities(t *testing.T) {
	l := profile.Lists{
		Same: map[int]bool{1: true},
		Dead: map[int]isa.Reg{2: 9},
		Live: map[int]isa.Reg{3: 10},
		LV:   map[int]bool{2: true, 4: true},
	}
	h := l.Hints(profile.SupportLiveLV)
	if h[2].Kind != core.KindOtherReg {
		t.Error("dead hint not prioritised over LV")
	}
	if h[3].Kind != core.KindOtherReg || h[3].Reg != 10 {
		t.Error("live hint missing")
	}
	if h[4].Kind != core.KindLastValue {
		t.Error("LV hint missing")
	}
	if _, ok := h[1]; ok {
		t.Error("same-list instruction needs no hint")
	}
	m := l.Marked(profile.SupportLiveLV)
	for _, idx := range []int{1, 2, 3, 4} {
		if !m[idx] {
			t.Errorf("inst %d not marked", idx)
		}
	}
	if len(l.Hints(profile.SupportNone)) != 0 {
		t.Error("SupportNone produced hints")
	}
}

func TestLoadReuseSummary(t *testing.T) {
	pr := mustProfile(t, sameRegSrc, 0)
	s := pr.LoadReuseSummary()
	if s.Same < 0.98 {
		t.Errorf("summary same = %.3f", s.Same)
	}
	// Monotone: same <= dead <= any <= orlv.
	if s.Dead < s.Same || s.Any < s.Dead || s.OrLV < s.Any {
		t.Errorf("summary not monotone: %+v", s)
	}
	if s.OrLV > 1.0001 {
		t.Errorf("orlv fraction > 1: %+v", s)
	}
}

func TestMaxInstsBudget(t *testing.T) {
	pr := mustProfile(t, sameRegSrc, 50)
	if pr.Total != 50 {
		t.Errorf("profiled %d insts, want 50", pr.Total)
	}
}

func TestMinExecsFilter(t *testing.T) {
	pr := mustProfile(t, sameRegSrc, 0)
	// With an absurd MinExecs nothing is listed.
	lists := pr.Lists(0.5, true, 1<<40)
	if len(lists.Same)+len(lists.Dead)+len(lists.Live)+len(lists.LV) != 0 {
		t.Error("MinExecs filter ignored")
	}
}

func TestCritHitsPopulated(t *testing.T) {
	pr := mustProfile(t, sameRegSrc, 0)
	var any bool
	for _, is := range pr.Insts {
		if is.CritHits > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no critical-path credit recorded")
	}
}

func TestProfileProgramWithoutProcs(t *testing.T) {
	src := `
.text
main:
        li r1, 30
loop:
        subi r1, r1, 1
        bne r1, loop
        halt
`
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Strip procedure info to exercise the synthetic whole-program proc.
	p.Procs = nil
	if _, err := profile.Run(p, profile.Options{}); err != nil {
		t.Fatal(err)
	}
}

var _ = program.DefaultCodeBase // keep import for doc reference
