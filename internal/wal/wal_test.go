package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"testing"

	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
)

type testRec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func openCollect(t *testing.T, fsys vfs.FS, path string) (*WAL, *[]testRec) {
	t.Helper()
	var recs []testRec
	w, err := Open(path, Options{FS: fsys}, func(raw json.RawMessage) error {
		var r testRec
		if err := json.Unmarshal(raw, &r); err != nil {
			return err
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, &recs
}

// TestRoundTrip: append, close, reopen, replay.
func TestRoundTrip(t *testing.T) {
	m := vfs.NewMem()
	w, _ := openCollect(t, m, "/state/log.jsonl")
	for i := 0; i < 5; i++ {
		if err := w.Append(testRec{N: i, S: "x"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := openCollect(t, m, "/state/log.jsonl")
	defer w2.Close()
	if len(*recs) != 5 || w2.Records() != 5 || w2.Truncated != 0 {
		t.Fatalf("reopen: %d records, Records()=%d, Truncated=%d", len(*recs), w2.Records(), w2.Truncated)
	}
	for i, r := range *recs {
		if r.N != i {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestAppendDurableAcrossCrash: a nil-returning Append survives
// Mem.Crash — the acknowledgment IS the durability claim.
func TestAppendDurableAcrossCrash(t *testing.T) {
	m := vfs.NewMem()
	w, _ := openCollect(t, m, "/state/log.jsonl")
	if err := w.Append(testRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	w2, recs := openCollect(t, m, "/state/log.jsonl")
	defer w2.Close()
	if len(*recs) != 1 || (*recs)[0].N != 1 {
		t.Fatalf("acknowledged record lost: %+v", *recs)
	}
}

// TestTailRepairDurable: a torn tail is truncated on open, the repair
// itself survives a crash, and the damage is counted.
func TestTailRepairDurable(t *testing.T) {
	m := vfs.NewMem()
	w, _ := openCollect(t, m, "/log.jsonl")
	_ = w.Append(testRec{N: 1})
	_ = w.Append(testRec{N: 2})
	_ = w.Close()

	// Tear the tail: append garbage directly.
	f, err := m.OpenFile("/log.jsonl", os.O_WRONLY|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte(`{"crc":1,"rec":{"n"`)) // torn, unterminated
	_ = f.Sync()
	_ = f.Close()

	w2, recs := openCollect(t, m, "/log.jsonl")
	if len(*recs) != 2 || w2.Truncated != 1 {
		t.Fatalf("repair: %d records, Truncated=%d", len(*recs), w2.Truncated)
	}
	_ = w2.Append(testRec{N: 3})
	_ = w2.Close()
	m.Crash()

	w3, recs3 := openCollect(t, m, "/log.jsonl")
	defer w3.Close()
	if len(*recs3) != 3 || w3.Truncated != 0 {
		t.Fatalf("post-crash reopen: %d records, Truncated=%d (torn bytes resurrected?)", len(*recs3), w3.Truncated)
	}
}

// TestInteriorDamageRefusesOpen: damage with valid records after it is
// a typed error, never a silent truncation, and the file is untouched.
func TestInteriorDamageRefusesOpen(t *testing.T) {
	m := vfs.NewMem()
	w, _ := openCollect(t, m, "/log.jsonl")
	for i := 0; i < 3; i++ {
		_ = w.Append(testRec{N: i})
	}
	_ = w.Close()

	data, err := vfs.ReadFile(m, "/log.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record.
	mut := append([]byte(nil), data...)
	mut[10] ^= 0x01
	f, _ := m.OpenFile("/log.jsonl", os.O_WRONLY|os.O_TRUNC, 0o644)
	_, _ = f.Write(mut)
	_ = f.Sync()
	_ = f.Close()

	_, err = Open("/log.jsonl", Options{FS: m}, nil)
	if err == nil {
		t.Fatalf("interior damage opened silently")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error type %T (%v), want *CorruptError", err, err)
	}
	if !errors.Is(err, simerr.ErrCorrupt) {
		t.Fatalf("CorruptError does not wrap simerr.ErrCorrupt: %v", err)
	}
	if ce.Line != 1 {
		t.Fatalf("damage reported at line %d, want 1", ce.Line)
	}
	after, _ := vfs.ReadFile(m, "/log.jsonl")
	if string(after) != string(mut) {
		t.Fatalf("refusing open still modified the file")
	}
}

// TestENOSPCHeals: appends fail while the disk is full, the failed
// bytes are rolled back, and the log takes appends again when space
// returns — with no phantom or torn records in between.
func TestENOSPCHeals(t *testing.T) {
	m := vfs.NewMem()
	fault := vfs.NewFault(m)
	w, _ := openCollect(t, fault, "/log.jsonl")
	if err := w.Append(testRec{N: 1}); err != nil {
		t.Fatal(err)
	}

	fault.SetPersistent(vfs.ENOSPC)
	for i := 0; i < 3; i++ {
		if err := w.Append(testRec{N: 100 + i}); err == nil {
			t.Fatalf("append %d succeeded under ENOSPC", i)
		}
	}
	if err := w.Probe(); err == nil {
		t.Fatalf("probe succeeded under ENOSPC")
	}

	fault.SetPersistent(nil)
	if err := w.Probe(); err != nil {
		t.Fatalf("probe after space returned: %v", err)
	}
	if err := w.Append(testRec{N: 2}); err != nil {
		t.Fatalf("append after space returned: %v", err)
	}
	_ = w.Close()

	w2, recs := openCollect(t, m, "/log.jsonl")
	defer w2.Close()
	if len(*recs) != 2 || (*recs)[0].N != 1 || (*recs)[1].N != 2 {
		t.Fatalf("post-heal log: %+v (failed appends leaked?)", *recs)
	}
	if w2.Truncated != 0 {
		t.Fatalf("post-heal log still torn: Truncated=%d", w2.Truncated)
	}
}

// TestFlipDetectedOnReopen: a silently-corrupted write (the disk lied)
// is caught by the CRC on the next open — as interior damage once valid
// appends follow it, which is exactly the never-silent contract.
func TestFlipDetectedOnReopen(t *testing.T) {
	m := vfs.NewMem()
	fault := vfs.NewFault(m)
	w, _ := openCollect(t, fault, "/log.jsonl")
	_ = w.Append(testRec{N: 1})
	// The very next counted op is the second append's write: flip it.
	fault.FailAt(vfs.Plan{At: fault.Ops(), Kind: vfs.KindFlip})
	if err := w.Append(testRec{N: 2}); err != nil {
		t.Fatalf("flipped append must look successful: %v", err)
	}
	if err := w.Append(testRec{N: 3}); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	_, err := Open("/log.jsonl", Options{FS: m}, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped record not detected: err=%v", err)
	}
	if ce.Line != 2 {
		t.Fatalf("damage at line %d, want 2", ce.Line)
	}
}

// TestLegacyFormatCompat: a file hand-built in the historical envelope
// format (predating internal/wal) replays cleanly — the engine IS the
// compat decoder.
func TestLegacyFormatCompat(t *testing.T) {
	m := vfs.NewMem()
	var legacy []byte
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf(`{"n":%d,"s":"legacy"}`, i))
		line, err := json.Marshal(struct {
			CRC uint32          `json:"crc"`
			Rec json.RawMessage `json:"rec"`
		}{crc32.ChecksumIEEE(payload), payload})
		if err != nil {
			t.Fatal(err)
		}
		legacy = append(legacy, append(line, '\n')...)
	}
	f, err := m.OpenFile("/legacy.jsonl", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write(legacy)
	_ = f.Sync()
	_ = f.Close()

	w, recs := openCollect(t, m, "/legacy.jsonl")
	if len(*recs) != 3 || w.Truncated != 0 {
		t.Fatalf("legacy replay: %d records, Truncated=%d", len(*recs), w.Truncated)
	}
	// And what the engine appends stays in the same format: re-parse
	// with the hand-rolled decoder.
	if err := w.Append(testRec{N: 3, S: "new"}); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	data, _ := vfs.ReadFile(m, "/legacy.jsonl")
	lines := 0
	for _, line := range splitLines(data) {
		var env struct {
			CRC uint32          `json:"crc"`
			Rec json.RawMessage `json:"rec"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			t.Fatalf("line %d not legacy-parseable: %v", lines, err)
		}
		if crc32.ChecksumIEEE(env.Rec) != env.CRC {
			t.Fatalf("line %d fails legacy CRC", lines)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("file has %d lines, want 4", lines)
	}
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, data[start:i])
			start = i + 1
		}
	}
	return out
}

// TestScrubRepairQuarantine exercises the fsck primitives end to end.
func TestScrubRepairQuarantine(t *testing.T) {
	m := vfs.NewMem()
	w, _ := openCollect(t, m, "/state/log.jsonl")
	for i := 0; i < 3; i++ {
		_ = w.Append(testRec{N: i})
	}
	_ = w.Close()
	clean, err := Scrub(m, "/state/log.jsonl", nil)
	if err != nil || !clean.Clean() || clean.Records != 3 {
		t.Fatalf("clean scrub: %+v, %v", clean, err)
	}

	// Torn tail: RepairTail fixes it and preserves the cut bytes.
	f, _ := m.OpenFile("/state/log.jsonl", os.O_WRONLY|os.O_RDWR, 0o644)
	_, _ = f.Seek(0, 2)
	_, _ = f.Write([]byte("garbage"))
	_ = f.Sync()
	_ = f.Close()
	rep, err := Scrub(m, "/state/log.jsonl", nil)
	if err != nil || rep.Clean() || rep.Interior {
		t.Fatalf("torn scrub: %+v, %v", rep, err)
	}
	rep, err = RepairTail(m, "/state/log.jsonl", "/q", nil)
	if err != nil || !rep.Repaired {
		t.Fatalf("RepairTail: %+v, %v", rep, err)
	}
	if cut, err := vfs.ReadFile(m, "/q/log.jsonl.tail"); err != nil || string(cut) != "garbage" {
		t.Fatalf("cut bytes not preserved: %q, %v", cut, err)
	}
	w2, recs := openCollect(t, m, "/state/log.jsonl")
	if len(*recs) != 3 || w2.Truncated != 0 {
		t.Fatalf("after repair: %d records, Truncated=%d", len(*recs), w2.Truncated)
	}
	_ = w2.Close()

	// Interior damage: RepairTail refuses; Quarantine moves the file.
	data, _ := vfs.ReadFile(m, "/state/log.jsonl")
	mut := append([]byte(nil), data...)
	mut[8] ^= 0x01
	f, _ = m.OpenFile("/state/log.jsonl", os.O_WRONLY|os.O_TRUNC, 0o644)
	_, _ = f.Write(mut)
	_ = f.Sync()
	_ = f.Close()
	rep, err = Scrub(m, "/state/log.jsonl", nil)
	if err != nil || !rep.Interior {
		t.Fatalf("interior scrub: %+v, %v", rep, err)
	}
	if _, err := RepairTail(m, "/state/log.jsonl", "/q", nil); !errors.Is(err, simerr.ErrCorrupt) {
		t.Fatalf("RepairTail accepted interior damage: %v", err)
	}
	dst, err := Quarantine(m, "/state/log.jsonl", "/q", nil)
	if err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if moved, err := vfs.ReadFile(m, dst); err != nil || string(moved) != string(mut) {
		t.Fatalf("quarantined bytes differ: %v", err)
	}
	if _, err := m.Stat("/state/log.jsonl"); err == nil {
		t.Fatalf("damaged file still in place after quarantine")
	}
}
