package wal_test

// Crash-simulation harness: run each durable store's workload with a
// crash injected at EVERY counted syscall boundary in turn, flip the
// in-memory disk to its durable state (exactly what power loss leaves),
// re-open the store, and assert the recovery contract:
//
//   - the store opens (a crash can never make state unreadable),
//   - every acknowledged record is present (acks are durability),
//   - nothing that was never written appears (no invented state).
//
// There is no "silent wrong answer" outcome: any deviation fails the
// test with the crash point that produced it.

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/exp"
	"rvpsim/internal/fleet"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/server"
	"rvpsim/internal/vfs"
)

// crashScenario is one store's workload + post-crash verifier.
type crashScenario struct {
	name string
	// run opens the store on fsys, performs its mutations, and calls
	// ack(key) after each acknowledged one. It returns the first error
	// (the crash) and stops there, like a dying process would.
	run func(fsys vfs.FS, ack func(string)) error
	// verify re-opens on the post-crash fsys and checks the contract
	// given the acknowledged keys.
	verify func(t *testing.T, fsys vfs.FS, acked []string)
}

func TestCrashAtEveryOp(t *testing.T) {
	scenarios := []crashScenario{
		{
			name: "jobstore",
			run: func(fsys vfs.FS, ack func(string)) error {
				s, err := server.OpenStoreFS("/state/jobs.jsonl", fsys, nil)
				if err != nil {
					return err
				}
				for i := 0; i < 3; i++ {
					id := fmt.Sprintf("job-%d", i)
					if err := s.Append(server.JobStatus{ID: id, State: server.StateQueued}); err != nil {
						return err
					}
					ack(id)
				}
				return s.Close()
			},
			verify: func(t *testing.T, fsys vfs.FS, acked []string) {
				s, err := server.OpenStoreFS("/state/jobs.jsonl", fsys, nil)
				if err != nil {
					t.Fatalf("post-crash open: %v", err)
				}
				defer s.Close()
				if s.Len() > 3 {
					t.Fatalf("recovered %d jobs, only 3 ever written", s.Len())
				}
				for _, id := range acked {
					if _, ok := s.Get(id); !ok {
						t.Fatalf("acknowledged job %s lost", id)
					}
				}
			},
		},
		{
			name: "journal",
			run: func(fsys vfs.FS, ack func(string)) error {
				j, err := exp.OpenJournalFS("/state/journal.jsonl", fsys, nil)
				if err != nil {
					return err
				}
				for i := 0; i < 3; i++ {
					key := fmt.Sprintf("cell-%d", i)
					if err := j.Record(key, pipeline.Stats{}); err != nil {
						return err
					}
					ack(key)
				}
				return j.Close()
			},
			verify: func(t *testing.T, fsys vfs.FS, acked []string) {
				j, err := exp.OpenJournalFS("/state/journal.jsonl", fsys, nil)
				if err != nil {
					t.Fatalf("post-crash open: %v", err)
				}
				defer j.Close()
				if j.Len() > 3 {
					t.Fatalf("recovered %d cells, only 3 ever written", j.Len())
				}
				for _, key := range acked {
					if _, ok := j.Lookup(key); !ok {
						t.Fatalf("acknowledged cell %s lost", key)
					}
				}
			},
		},
		{
			name: "ledger",
			run: func(fsys vfs.FS, ack func(string)) error {
				l, _, err := fleet.OpenLedgerFS("/state/cells.jsonl", fsys, nil)
				if err != nil {
					return err
				}
				spec := &fleet.SweepSpec{Workloads: []string{"go"}, Predictors: []string{"rvp"}, Insts: 5000}
				for i := 0; i < 3; i++ {
					id := fmt.Sprintf("sweep-%d", i)
					if err := l.Append(fleet.LedgerRecord{Kind: "sweep", Sweep: id, Spec: spec}); err != nil {
						return err
					}
					ack(id)
				}
				return l.Close()
			},
			verify: func(t *testing.T, fsys vfs.FS, acked []string) {
				l, rp, err := fleet.OpenLedgerFS("/state/cells.jsonl", fsys, nil)
				if err != nil {
					t.Fatalf("post-crash open: %v", err)
				}
				defer l.Close()
				if len(rp.Sweeps) > 3 {
					t.Fatalf("recovered %d sweeps, only 3 ever written", len(rp.Sweeps))
				}
				for _, id := range acked {
					if _, ok := rp.Sweeps[id]; !ok {
						t.Fatalf("acknowledged sweep %s lost", id)
					}
				}
			},
		},
		{
			name: "checkpoint",
			run: func(fsys vfs.FS, ack func(string)) error {
				for _, v := range []string{"v1", "v2"} {
					if err := checkpoint.SaveFS(fsys, "/state/ckpt/a.ckpt", &pipeline.Snapshot{Program: v}); err != nil {
						return err
					}
					ack(v)
				}
				return nil
			},
			verify: func(t *testing.T, fsys vfs.FS, acked []string) {
				snap, err := checkpoint.LoadFS(fsys, "/state/ckpt/a.ckpt")
				switch {
				case errors.Is(err, fs.ErrNotExist):
					if len(acked) > 0 {
						t.Fatalf("acknowledged checkpoint vanished (acked %v)", acked)
					}
					return
				case err != nil:
					// Old-or-new-never-torn: any other load error means the
					// atomic save left a damaged file behind.
					t.Fatalf("post-crash load: %v", err)
				}
				got := snap.Program
				if got != "v1" && got != "v2" {
					t.Fatalf("checkpoint holds %q, never written", got)
				}
				// Once v2 is acknowledged, v1 must be gone.
				for _, a := range acked {
					if a == "v2" && got != "v2" {
						t.Fatalf("acknowledged v2 rolled back to %q", got)
					}
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// Clean pass: count the op schedule this workload generates.
			probe := vfs.NewFault(vfs.NewMem())
			if err := sc.run(probe, func(string) {}); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			total := probe.Ops()
			if total < 5 {
				t.Fatalf("workload counted only %d ops — not exercising the disk", total)
			}

			for i := int64(0); i < total; i++ {
				m := vfs.NewMem()
				fault := vfs.NewFault(m)
				fault.CrashAt(i)
				var acked []string
				err := sc.run(fault, func(k string) { acked = append(acked, k) })
				if err == nil {
					t.Fatalf("crash at op %d (of %d, trace %v) went unnoticed", i, total, probe.Trace())
				}
				m.Crash()
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("crash at op %d: verify panicked: %v", i, r)
						}
					}()
					sc.verify(t, m, acked)
				}()
			}
		})
	}
}
