// Package waltest is the shared torn/corrupt-tail conformance matrix
// for every store built on internal/wal. The job store, sweep journal
// and cell ledger all claim the same recovery contract; this package
// makes that claim a single table-driven test each of them runs
// verbatim, so the three stores cannot quietly diverge again:
//
//   - truncation at EVERY byte position inside the final envelope line
//     must recover all earlier records and count exactly the torn one;
//   - a flipped CRC digit in the final record must be treated as tail
//     damage (recover n-1, truncate 1);
//   - a flipped payload byte in the final record likewise;
//   - the same flip applied to the FIRST record (valid records follow)
//     must refuse to open with a *wal.CorruptError wrapping
//     simerr.ErrCorrupt, leaving the file byte-identical.
package waltest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Store adapts one typed WAL user to the matrix.
type Store struct {
	// Records returns the n distinct payloads to seed the log with
	// (n >= 3). Each must be a JSON-marshalable value the store's replay
	// accepts, with a distinct identity (job ID, cell key, sweep ID) so
	// the recovered count equals the record count.
	Records func(n int) []any
	// Open opens the store under test at path on fsys and reports how
	// many distinct records it recovered and how many damaged tail
	// records it truncated. The error must be the store's open error,
	// unwrapped no further.
	Open func(fsys vfs.FS, path string) (records, truncated int, err error)
}

// Run executes the matrix against one store. path should carry the
// store's real filename (e.g. "/state/jobs.jsonl") so suffix-based
// tooling behaves as in production.
func Run(t *testing.T, path string, st Store) {
	t.Helper()
	const n = 4
	payloads := st.Records(n)
	if len(payloads) != n {
		t.Fatalf("Records(%d) returned %d payloads", n, len(payloads))
	}

	// Seed one clean log through the engine itself, then capture bytes.
	seedFS := vfs.NewMem()
	w, err := wal.Open(path, wal.Options{FS: seedFS}, nil)
	if err != nil {
		t.Fatalf("seeding: %v", err)
	}
	for i, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatalf("seeding append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := vfs.ReadFile(seedFS, path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := bytes.LastIndexByte(clean[:len(clean)-1], '\n') + 1

	// mount writes data at path on a fresh durable Mem.
	mount := func(t *testing.T, data []byte) *vfs.Mem {
		t.Helper()
		m := vfs.NewMem()
		if err := m.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := m.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		m.SyncAll()
		return m
	}

	t.Run("clean", func(t *testing.T) {
		recs, trunc, err := st.Open(mount(t, clean), path)
		if err != nil || recs != n || trunc != 0 {
			t.Fatalf("clean log: records=%d truncated=%d err=%v, want %d/0/nil", recs, trunc, err, n)
		}
	})

	// Truncation at every byte of the last envelope: from "nothing of
	// the final line" up to "all but its newline".
	t.Run("truncate-every-byte", func(t *testing.T) {
		for cut := lastStart + 1; cut < len(clean); cut++ {
			recs, trunc, err := st.Open(mount(t, clean[:cut]), path)
			if err != nil {
				t.Fatalf("cut at %d: open failed: %v", cut, err)
			}
			if recs != n-1 {
				t.Fatalf("cut at %d: recovered %d records, want %d", cut, recs, n-1)
			}
			if trunc != 1 {
				t.Fatalf("cut at %d: truncated=%d, want 1", cut, trunc)
			}
		}
		// Cutting exactly at the line boundary is not damage at all.
		recs, trunc, err := st.Open(mount(t, clean[:lastStart]), path)
		if err != nil || recs != n-1 || trunc != 0 {
			t.Fatalf("boundary cut: records=%d truncated=%d err=%v", recs, trunc, err)
		}
	})

	t.Run("flip-crc", func(t *testing.T) {
		mut := flipCRCDigit(t, clean, lastStart)
		recs, trunc, err := st.Open(mount(t, mut), path)
		if err != nil || recs != n-1 || trunc != 1 {
			t.Fatalf("flipped CRC: records=%d truncated=%d err=%v, want %d/1/nil", recs, trunc, err, n-1)
		}
	})

	t.Run("flip-payload", func(t *testing.T) {
		mut := flipPayloadByte(t, clean, lastStart, len(clean)-1)
		recs, trunc, err := st.Open(mount(t, mut), path)
		if err != nil || recs != n-1 || trunc != 1 {
			t.Fatalf("flipped payload: records=%d truncated=%d err=%v, want %d/1/nil", recs, trunc, err, n-1)
		}
	})

	t.Run("interior-refused", func(t *testing.T) {
		firstEnd := bytes.IndexByte(clean, '\n') + 1
		mut := flipPayloadByte(t, clean, 0, firstEnd-1)
		m := mount(t, mut)
		_, _, err := st.Open(m, path)
		if err == nil {
			t.Fatalf("interior damage opened silently")
		}
		var ce *wal.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("error %T (%v), want *wal.CorruptError", err, err)
		}
		if !errors.Is(err, simerr.ErrCorrupt) {
			t.Fatalf("error does not wrap simerr.ErrCorrupt: %v", err)
		}
		if ce.Line != 1 {
			t.Fatalf("damage reported at line %d, want 1", ce.Line)
		}
		after, err := vfs.ReadFile(m, path)
		if err != nil || !bytes.Equal(after, mut) {
			t.Fatalf("refused open modified the file (err=%v)", err)
		}
	})
}

// flipCRCDigit alters one digit of the final record's crc field,
// keeping the line valid JSON but failing the checksum.
func flipCRCDigit(t *testing.T, clean []byte, lineStart int) []byte {
	t.Helper()
	mut := append([]byte(nil), clean...)
	idx := bytes.Index(mut[lineStart:], []byte(`"crc":`))
	if idx < 0 {
		t.Fatalf("no crc field in final line")
	}
	p := lineStart + idx + len(`"crc":`)
	if mut[p] == '9' {
		mut[p] = '1'
	} else {
		mut[p]++
	}
	return mut
}

// flipPayloadByte flips one bit inside the rec field of the line in
// [lineStart, lineEnd): bad CRC or bad JSON, either way damage.
func flipPayloadByte(t *testing.T, clean []byte, lineStart, lineEnd int) []byte {
	t.Helper()
	mut := append([]byte(nil), clean...)
	idx := bytes.Index(mut[lineStart:lineEnd], []byte(`"rec":`))
	if idx < 0 {
		t.Fatalf("no rec field in line")
	}
	p := lineStart + idx + len(`"rec":`) + 2 // inside the payload object
	if p >= lineEnd {
		t.Fatalf("payload flip position %d past line end %d", p, lineEnd)
	}
	mut[p] ^= 0x08
	return mut
}

// Fmt labels a record deterministically for Records generators.
func Fmt(prefix string, i int) string { return fmt.Sprintf("%s-%03d", prefix, i) }
