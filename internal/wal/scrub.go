package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
)

// osWrFlag opens an existing log for in-place tail repair.
const osWrFlag = os.O_WRONLY

// Issue is one damaged record found by a scrub.
type Issue struct {
	Line   int    `json:"line"`   // 1-based
	Offset int64  `json:"offset"` // byte offset of the damaged line
	Reason string `json:"reason"` // "bad crc", "bad json", "blank line", "torn line"
}

// Report is a scrub's verdict on one log file.
type Report struct {
	Path string `json:"path"`
	// Records counts records a WAL replay would accept (the valid
	// prefix).
	Records int `json:"records"`
	// Shadowed counts valid records stranded AFTER the first damage —
	// acknowledged state a blind tail-truncation would destroy.
	Shadowed int `json:"shadowed,omitempty"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
	// Issues lists every damaged record in file order.
	Issues []Issue `json:"issues,omitempty"`
	// Interior is true when valid records follow damage: bitrot or an
	// outside writer, not a torn append. Repair refuses these; only
	// Quarantine handles them.
	Interior bool `json:"interior,omitempty"`
	// Quarantined is where the file (or its cut tail) was moved, when a
	// repair or quarantine ran.
	Quarantined string `json:"quarantined,omitempty"`
	// Repaired is true when a torn tail was truncated away.
	Repaired bool `json:"repaired,omitempty"`
}

// Clean reports whether the scrub found no damage.
func (r *Report) Clean() bool { return len(r.Issues) == 0 }

// TailDamage reports whether the damage (if any) is confined to the
// tail, i.e. safely repairable by truncation.
func (r *Report) TailDamage() bool { return !r.Clean() && !r.Interior }

// String renders a one-line operator summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d record(s), %d byte(s)", r.Path, r.Records, r.Bytes)
	switch {
	case r.Clean():
		b.WriteString(", clean")
	case r.Interior:
		fmt.Fprintf(&b, ", INTERIOR CORRUPTION: %d damaged record(s), %d acknowledged record(s) shadowed",
			len(r.Issues), r.Shadowed)
	default:
		fmt.Fprintf(&b, ", torn tail: %d damaged record(s)", len(r.Issues))
	}
	if r.Repaired {
		b.WriteString(" [repaired]")
	}
	if r.Quarantined != "" {
		fmt.Fprintf(&b, " [quarantined -> %s]", r.Quarantined)
	}
	return b.String()
}

// Scrub reads the whole log at path and classifies every record,
// without modifying anything. Unlike Open, it keeps scanning past
// damage, so the report covers interior holes and the valid records
// shadowed behind them.
func Scrub(fsys vfs.FS, path string, met *Metrics) (*Report, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, simerr.New("wal", err)
	}
	met.scrubbed(1)
	r := &Report{Path: path, Bytes: int64(len(data))}
	off, line := 0, 0
	damaged := false
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			line++
			r.Issues = append(r.Issues, Issue{Line: line, Offset: int64(off), Reason: "torn line"})
			break
		}
		line++
		_, reason := ParseEnvelope(data[off : off+nl])
		switch {
		case reason != "":
			r.Issues = append(r.Issues, Issue{Line: line, Offset: int64(off), Reason: reason})
			damaged = true
		case damaged:
			r.Shadowed++
			r.Interior = true
		default:
			r.Records++
		}
		off += nl + 1
	}
	met.scrubCorrupt(int64(len(r.Issues)))
	return r, nil
}

// RepairTail truncates a torn tail off the log, first preserving the
// cut bytes as <quarantineDir>/<base>.tail so nothing is destroyed
// unrecoverably. It refuses interior damage (returns the report with
// Repaired false and a non-nil error wrapping simerr.ErrCorrupt) —
// that's Quarantine's job. A clean file is a no-op.
func RepairTail(fsys vfs.FS, path, quarantineDir string, met *Metrics) (*Report, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	r, err := Scrub(fsys, path, met)
	if err != nil {
		return nil, err
	}
	if r.Clean() {
		return r, nil
	}
	if r.Interior {
		return r, &CorruptError{Path: path, Line: r.Issues[0].Line, Offset: r.Issues[0].Offset, Reason: r.Issues[0].Reason}
	}
	cut := r.Issues[0].Offset
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, simerr.New("wal", err)
	}
	if quarantineDir != "" {
		dst := filepath.Join(quarantineDir, filepath.Base(path)+".tail")
		if err := fsys.MkdirAll(quarantineDir, 0o755); err != nil {
			return nil, simerr.New("wal", err)
		}
		if err := vfs.WriteFileAtomic(fsys, dst, data[cut:], 0o644); err != nil {
			return nil, simerr.New("wal", err)
		}
		r.Quarantined = dst
	}
	f, err := fsys.OpenFile(path, osWrFlag, 0o644)
	if err != nil {
		return nil, simerr.New("wal", err)
	}
	if err := f.Truncate(cut); err != nil {
		_ = f.Close()
		return nil, simerr.New("wal", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, simerr.New("wal", err)
	}
	if err := f.Close(); err != nil {
		return nil, simerr.New("wal", err)
	}
	r.Repaired = true
	r.Bytes = cut
	return r, nil
}

// Quarantine moves the whole damaged log into quarantineDir (same
// filesystem rename) so the service starts fresh while an operator
// keeps the evidence. The move is directory-fsync'd on both ends.
func Quarantine(fsys vfs.FS, path, quarantineDir string, met *Metrics) (string, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	if err := fsys.MkdirAll(quarantineDir, 0o755); err != nil {
		return "", simerr.New("wal", err)
	}
	if err := fsys.SyncDir(quarantineDir); err != nil {
		return "", simerr.New("wal", err)
	}
	dst := filepath.Join(quarantineDir, filepath.Base(path)+".corrupt")
	if err := fsys.Rename(path, dst); err != nil {
		return "", simerr.New("wal", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return "", simerr.New("wal", err)
	}
	if err := fsys.SyncDir(quarantineDir); err != nil {
		return "", simerr.New("wal", err)
	}
	met.quarantined(1)
	return dst, nil
}
