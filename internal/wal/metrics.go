package wal

import (
	"time"

	"rvpsim/internal/obs"
)

// Metrics is the engine's shared instrument set. One Metrics typically
// serves every WAL in a process (the counters aggregate across logs);
// all methods are nil-safe so unwired code paths cost one branch.
type Metrics struct {
	mAppends      *obs.Counter
	mAppendErrors *obs.Counter
	mRepairs      *obs.Counter
	mReplayed     *obs.Counter
	mScrubbed     *obs.Counter
	mScrubCorrupt *obs.Counter
	mQuarantined  *obs.Counter
	hFsyncUS      *obs.Histogram
}

// NewMetrics registers the wal_* instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		mAppends:      reg.Counter("wal_appends_total", "records durably appended across all WALs"),
		mAppendErrors: reg.Counter("wal_append_errors_total", "appends failed (write, fsync, or rollback error); the record was not acknowledged"),
		mRepairs:      reg.Counter("wal_repairs_total", "torn-tail repairs performed on open"),
		mReplayed:     reg.Counter("wal_records_replayed_total", "records replayed from disk on open"),
		mScrubbed:     reg.Counter("wal_scrub_files_total", "log files scrubbed"),
		mScrubCorrupt: reg.Counter("wal_scrub_corrupt_records_total", "damaged records found by scrubs"),
		mQuarantined:  reg.Counter("wal_scrub_quarantined_total", "files quarantined by scrubs"),
		hFsyncUS:      reg.Histogram("wal_fsync_us", "append fsync latency, microseconds", obs.ExpBuckets(16, 2, 16)),
	}
}

func (m *Metrics) appends(n int64) {
	if m != nil {
		m.mAppends.Add(n)
	}
}

func (m *Metrics) appendErrors(n int64) {
	if m != nil {
		m.mAppendErrors.Add(n)
	}
}

func (m *Metrics) repairs(n int64) {
	if m != nil {
		m.mRepairs.Add(n)
	}
}

func (m *Metrics) replayed(n int64) {
	if m != nil {
		m.mReplayed.Add(n)
	}
}

func (m *Metrics) scrubbed(n int64) {
	if m != nil {
		m.mScrubbed.Add(n)
	}
}

func (m *Metrics) scrubCorrupt(n int64) {
	if m != nil {
		m.mScrubCorrupt.Add(n)
	}
}

func (m *Metrics) quarantined(n int64) {
	if m != nil {
		m.mQuarantined.Add(n)
	}
}

func (m *Metrics) fsync(d time.Duration) {
	if m != nil {
		m.hFsyncUS.Observe(d.Microseconds())
	}
}
