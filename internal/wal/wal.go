// Package wal is the one hardened write-ahead-log engine behind every
// durable log in the system: the server's job store, the experiment
// runner's sweep journal, and the fleet coordinator's cell ledger are
// typed record layers over this engine, where three hand-rolled copies
// of the same CRC/fsync/torn-tail logic used to live.
//
// # On-disk format
//
// One JSON line per record:
//
//	{"crc":<uint32>,"rec":<payload JSON>}\n
//
// The CRC-32 (IEEE) covers the payload's exact bytes, so a torn write
// or bit flip in either field fails validation. This is byte-identical
// to the format the three predecessor stores wrote, in both directions:
// the engine reads every pre-existing state directory, and files it
// writes remain readable by older binaries. ParseEnvelope is that
// compat decoder, exported for scrub tooling.
//
// # Damage model
//
// The engine distinguishes the two ways a log gets hurt, because they
// mean different things and deserve different answers:
//
//   - Tail damage — a torn or corrupt final region with no valid
//     record after it — is the signature of a crash mid-append. The
//     write never returned, so the record was never acknowledged;
//     truncating it away on Open is correct and automatic (counted in
//     Truncated, surfaced in wal_repairs_total).
//   - Interior damage — a record that fails validation while valid
//     records still follow it — cannot be a torn append. It is bitrot
//     or an outside writer, and records after the hole were
//     acknowledged. Open refuses with a typed *CorruptError (wrapping
//     simerr.ErrCorrupt) instead of silently discarding acknowledged
//     state; `rvpadmin fsck` reports and optionally quarantines the
//     file.
//
// Every append is fsync'd before it returns. After a failed append
// (ENOSPC, I/O error, failed fsync) the engine truncates the file back
// to the last durable record — immediately, or on the next append if
// the truncate itself fails — so a partially-landed line can never
// masquerade as interior damage later, and an engine that ran out of
// disk heals itself when space returns.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
)

// Envelope is one record line: Rec's exact bytes are CRC-protected.
type Envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// ParseEnvelope validates one line (without its trailing newline) and
// returns the payload bytes. It accepts exactly the historical formats
// of the job store, sweep journal, and cell ledger — which are one
// format — making it the compat decoder for pre-engine state dirs. The
// reason distinguishes structural damage ("bad json") from integrity
// damage ("bad crc"); blank lines are damage too (no writer emits
// them).
func ParseEnvelope(line []byte) (rec json.RawMessage, reason string) {
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, "blank line"
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, "bad json"
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return nil, "bad crc"
	}
	return env.Rec, ""
}

// EncodeRecord wraps payload bytes in the envelope line (with trailing
// newline) exactly as Append writes it.
func EncodeRecord(raw json.RawMessage) ([]byte, error) {
	line, err := json.Marshal(Envelope{CRC: crc32.ChecksumIEEE(raw), Rec: raw})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// CorruptError is the typed report of interior log damage: validation
// failed at a record that still has valid records after it, so
// acknowledged state would be lost by truncation. It wraps
// simerr.ErrCorrupt for errors.Is classification.
type CorruptError struct {
	Path   string
	Line   int    // 1-based line number of the first damaged record
	Offset int64  // byte offset where the damage starts
	Reason string // "bad crc", "bad json", "blank line"
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal %s: interior corruption at record %d (offset %d): %s; "+
		"acknowledged records follow the damage — refusing to truncate (run rvpadmin fsck)",
		e.Path, e.Line, e.Offset, e.Reason)
}

// Unwrap lets errors.Is(err, simerr.ErrCorrupt) classify the failure.
func (e *CorruptError) Unwrap() error { return simerr.ErrCorrupt }

// Options configures a WAL.
type Options struct {
	// FS is the filesystem seam (vfs.OS when nil).
	FS vfs.FS
	// Name labels errors ("jobstore", "journal", "fleet") — it becomes
	// the simerr stage, preserving each migrated store's historical
	// error identity.
	Name string
	// Metrics receives wal_* instrument updates when non-nil.
	Metrics *Metrics
}

// WAL is one open write-ahead log.
type WAL struct {
	fs   vfs.FS
	path string
	name string
	met  *Metrics

	// Guarded by the typed layers' locks? No — the engine owns its own
	// consistency: Append is safe for concurrent use.
	mu   sync.Mutex
	f    vfs.File
	size int64 // byte offset past the last durable record
	n    int   // records replayed + appended
	// pendingRepair is set when a failed append left bytes past size
	// and the immediate truncate failed too; the next Append retries.
	pendingRepair bool

	// Truncated reports how many damaged tail records were dropped on
	// open.
	Truncated int
}

// Open opens (creating if absent) the log at path and replays every
// valid record through the replay callback, in order, with the payload
// bytes of each. A replay error aborts the open. Tail damage is
// repaired (truncated, durably) and counted; interior damage returns a
// *CorruptError and leaves the file untouched.
func Open(path string, opts Options, replay func(rec json.RawMessage) error) (*WAL, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	name := opts.Name
	if name == "" {
		name = "wal"
	}
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, simerr.New(name, err)
	}
	_, statErr := fsys.Stat(path)
	created := statErr != nil
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, simerr.New(name, err)
	}
	w := &WAL{fs: fsys, path: path, name: name, met: opts.Metrics, f: f}
	fail := func(err error) (*WAL, error) {
		_ = f.Close() // already failing; the close error adds nothing
		return nil, err
	}
	if created {
		// A brand-new log's directory entry must survive a crash, or the
		// first acknowledged record vanishes with the whole file.
		if err := fsys.SyncDir(dir); err != nil {
			return fail(simerr.New(name, err))
		}
	}

	data, err := io.ReadAll(f)
	if err != nil {
		return fail(simerr.New(name, err))
	}
	valid, lineNo := 0, 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write by definition
		}
		lineNo++
		rec, reason := ParseEnvelope(data[valid : valid+nl])
		if reason != "" {
			// Damaged record: tail damage only if nothing valid follows.
			if line, _, ok := firstValidAfter(data[valid+nl+1:]); ok {
				_ = line
				return fail(&CorruptError{Path: path, Line: lineNo, Offset: int64(valid), Reason: reason})
			}
			break
		}
		if replay != nil {
			if rerr := replay(rec); rerr != nil {
				return fail(simerr.New(name, rerr))
			}
		}
		w.n++
		w.met.replayed(1)
		valid += nl + 1
	}
	if valid < len(data) {
		w.Truncated = 1 + bytes.Count(data[valid:], []byte{'\n'})
		if data[len(data)-1] == '\n' {
			w.Truncated--
		}
		if err := f.Truncate(int64(valid)); err != nil {
			return fail(simerr.New(name, err))
		}
		// The repair itself must be durable: a crash after ack'ing new
		// appends must not resurrect the old torn bytes past them.
		if err := f.Sync(); err != nil {
			return fail(simerr.New(name, err))
		}
		w.met.repairs(1)
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		return fail(simerr.New(name, err))
	}
	w.size = int64(valid)
	return w, nil
}

// firstValidAfter scans rest (starting at a line boundary) for a valid
// record, returning its line offset within rest.
func firstValidAfter(rest []byte) (line int, off int, ok bool) {
	for off < len(rest) {
		nl := bytes.IndexByte(rest[off:], '\n')
		if nl < 0 {
			return 0, 0, false
		}
		line++
		if _, reason := ParseEnvelope(rest[off : off+nl]); reason == "" {
			return line, off, true
		}
		off += nl + 1
	}
	return 0, 0, false
}

// Append marshals payload, envelopes it, writes and fsyncs it. The
// record is durable when Append returns nil; on any error the record
// is not acknowledged and the log is rolled back (now or on the next
// Append) to its last durable byte.
func (w *WAL) Append(payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return simerr.New(w.name, err)
	}
	return w.AppendRaw(raw)
}

// AppendRaw appends pre-marshaled payload bytes.
func (w *WAL) AppendRaw(raw json.RawMessage) error {
	line, err := EncodeRecord(raw)
	if err != nil {
		return simerr.New(w.name, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pendingRepair {
		if err := w.rollbackLocked(); err != nil {
			w.met.appendErrors(1)
			return simerr.New(w.name, fmt.Errorf("log tail still torn from an earlier failed append: %w", err))
		}
	}
	if _, err := w.f.Write(line); err != nil {
		w.met.appendErrors(1)
		w.failedAppendLocked()
		return simerr.New(w.name, err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		// Post-fsync-failure page-cache state is unknowable; the record
		// is not acknowledged and the tail is rolled back.
		w.met.appendErrors(1)
		w.failedAppendLocked()
		return simerr.New(w.name, err)
	}
	w.met.fsync(time.Since(start))
	w.size += int64(len(line))
	w.n++
	w.met.appends(1)
	return nil
}

// failedAppendLocked rolls the file back to the last durable record
// after a failed write or fsync, so partial bytes never linger. If the
// rollback itself fails (the disk is truly gone), the repair is
// re-attempted on the next append.
func (w *WAL) failedAppendLocked() {
	w.pendingRepair = true
	_ = w.rollbackLocked() // best effort now; retried on next Append
}

func (w *WAL) rollbackLocked() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	w.pendingRepair = false
	return nil
}

// Probe verifies the log's storage can still take durable writes by
// round-tripping a scratch file next to the log: write, fsync, remove.
// It is how a degraded service decides the disk has come back.
func (w *WAL) Probe() error {
	dir := filepath.Dir(w.path)
	probe := filepath.Join(dir, ".wal-probe")
	f, err := w.fs.OpenFile(probe, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return simerr.New(w.name, err)
	}
	if _, err := f.Write([]byte("probe\n")); err != nil {
		_ = f.Close()
		_ = w.fs.Remove(probe)
		return simerr.New(w.name, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = w.fs.Remove(probe)
		return simerr.New(w.name, err)
	}
	if err := f.Close(); err != nil {
		_ = w.fs.Remove(probe)
		return simerr.New(w.name, err)
	}
	return w.fs.Remove(probe)
}

// Records reports how many records the log holds (replayed + appended).
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Path returns the log's location.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
