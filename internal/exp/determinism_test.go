package exp

import (
	"testing"
)

// TestExperimentsDeterministic: the same driver run twice (including the
// parallel path) renders byte-identical tables — no map-iteration or
// scheduling dependence may leak into results.
func TestExperimentsDeterministic(t *testing.T) {
	opts := Options{Insts: 60_000, ProfileInsts: 30_000, Threshold: 0.80, Parallel: true}
	a, err := NewRunner(opts).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(opts).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("Figure5 not deterministic:\n%s\nvs\n%s", a, b)
	}

	c, err := NewRunner(opts).Figure1()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRunner(opts).Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != d.String() {
		t.Errorf("Figure1 not deterministic:\n%s\nvs\n%s", c, d)
	}
}

// TestSerialMatchesParallel: the Parallel option is purely a scheduling
// choice; results must be identical.
func TestSerialMatchesParallel(t *testing.T) {
	par := Options{Insts: 60_000, ProfileInsts: 30_000, Threshold: 0.80, Parallel: true}
	ser := par
	ser.Parallel = false
	a, err := NewRunner(par).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(ser).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("parallel vs serial differ:\n%s\nvs\n%s", a, b)
	}
}
