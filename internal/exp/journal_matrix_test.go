package exp

import (
	"testing"

	"rvpsim/internal/vfs"
	"rvpsim/internal/wal/waltest"
)

// TestJournalTornTailMatrix runs the shared torn/corrupt-tail
// conformance matrix against the sweep journal, identical to the job
// store's and cell ledger's runs.
func TestJournalTornTailMatrix(t *testing.T) {
	waltest.Run(t, "/state/journal.jsonl", waltest.Store{
		Records: func(n int) []any {
			out := make([]any, n)
			for i := range out {
				out[i] = journalRecord{Key: waltest.Fmt("cell", i)}
			}
			return out
		},
		Open: func(fsys vfs.FS, path string) (int, int, error) {
			j, err := OpenJournalFS(path, fsys, nil)
			if err != nil {
				return 0, 0, err
			}
			defer j.Close()
			return j.Len(), j.Truncated, nil
		},
	})
}
