package exp

import (
	"sync"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/profile"
	"rvpsim/internal/regalloc"
	"rvpsim/internal/stats"
)

// Figure1 reproduces the degree-of-register-value-reuse graph: for each
// workload, the fraction of dynamic loads whose value was already in the
// same register, a dead register, any register, or either a register or
// the load's last value; plus C-SPEC and F-SPEC averages.
func (r *Runner) Figure1() (*stats.Table, error) {
	names := allNames()
	cols := append(append([]string(nil), names...), "C avg", "F avg")
	t := stats.NewTable("Figure 1: register-value reuse for loads (%)", cols)
	rows := []string{"same register", "dead register", "any register", "register or lvp"}
	vals := map[string]map[string]float64{}
	for _, row := range rows {
		vals[row] = map[string]float64{}
	}
	var mu sync.Mutex
	fails, err := r.forEach(names, func(name string) error {
		pr, err := r.Profile(name)
		if err != nil {
			return err
		}
		s := pr.LoadReuseSummary()
		mu.Lock()
		defer mu.Unlock()
		vals["same register"][name] = 100 * s.Same
		vals["dead register"][name] = 100 * s.Dead
		vals["any register"][name] = 100 * s.Any
		vals["register or lvp"][name] = 100 * s.OrLV
		return nil
	})
	cint := []string{"go", "ijpeg", "li", "m88ksim", "perl"}
	cfp := []string{"hydro2d", "mgrid", "su2cor", "turb3d"}
	avg := func(row string, group []string) (float64, bool) {
		var vs []float64
		for _, n := range group {
			if v, ok := vals[row][n]; ok {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return 0, false
		}
		return stats.Mean(vs), true
	}
	for _, row := range rows {
		for _, n := range names {
			if _, ok := vals[row][n]; !ok {
				t.MarkFailed(row, n, failReason(fails, n))
			}
		}
		if v, ok := avg(row, cint); ok {
			vals[row]["C avg"] = v
		} else {
			t.MarkFailed(row, "C avg", "no successful runs")
		}
		if v, ok := avg(row, cfp); ok {
			vals[row]["F avg"] = v
		} else {
			t.MarkFailed(row, "F avg", "no successful runs")
		}
		t.AddRow(row, "%.1f", vals[row])
	}
	r.noteFailures(t, names, fails)
	return t, err
}

// Figure3 reproduces the static-RVP IPC comparison: no prediction, LVP,
// and static RVP at the four compiler-support levels, with selective
// reissue and the 80% profile threshold.
func (r *Runner) Figure3() (*stats.Table, error) {
	names := allNames()
	cfg := pipeline.BaselineConfig()
	cfg.Recovery = pipeline.RecoverSelective
	t := stats.NewTable("Figure 3: static RVP, IPC (selective reissue, 80% threshold)", names)
	type key struct{ row, wl string }
	vals := map[key]float64{}
	var mu sync.Mutex

	rows := []struct {
		label string
		mk    func(name string) (core.Predictor, error)
	}{
		{"no_predict", func(string) (core.Predictor, error) { return core.NoPredictor{}, nil }},
		{"lvp", func(string) (core.Predictor, error) { return lvpLoads(), nil }},
		{"srvp_same", func(n string) (core.Predictor, error) {
			return r.staticPredictor(n, profile.SupportNone, r.opts.Threshold)
		}},
		{"srvp_dead", func(n string) (core.Predictor, error) {
			return r.staticPredictor(n, profile.SupportDead, r.opts.Threshold)
		}},
		{"srvp_live", func(n string) (core.Predictor, error) {
			return r.staticPredictor(n, profile.SupportLive, r.opts.Threshold)
		}},
		{"srvp_live_lv", func(n string) (core.Predictor, error) {
			return r.staticPredictor(n, profile.SupportLiveLV, r.opts.Threshold)
		}},
	}
	fails, err := r.forEach(names, func(name string) error {
		for _, row := range rows {
			pred, err := row.mk(name)
			if err != nil {
				return err
			}
			st, err := r.run("fig3", name, cfg, pred)
			if err != nil {
				return err
			}
			mu.Lock()
			vals[key{row.label, name}] = st.IPC()
			mu.Unlock()
		}
		return nil
	})
	for _, row := range rows {
		m := map[string]float64{}
		for _, n := range names {
			if v, ok := vals[key{row.label, n}]; ok {
				m[n] = v
			} else {
				t.MarkFailed(row.label, n, failReason(fails, n))
			}
		}
		t.AddRow(row.label, "%.2f", m)
	}
	r.noteFailures(t, names, fails)
	return t, err
}

// Figure4 reproduces the recovery-mechanism comparison: static RVP with
// the dead optimisation under refetch, reissue, and selective reissue, at
// the more conservative 90% profile threshold.
func (r *Runner) Figure4() (*stats.Table, error) {
	names := allNames()
	t := stats.NewTable("Figure 4: recovery mechanisms, IPC (srvp_dead, 90% threshold)", names)
	type key struct{ row, wl string }
	vals := map[key]float64{}
	var mu sync.Mutex

	recoveries := []struct {
		label string
		rec   pipeline.Recovery
	}{
		{"srvp_refetch", pipeline.RecoverRefetch},
		{"srvp_reissue", pipeline.RecoverReissue},
		{"srvp_selective", pipeline.RecoverSelective},
	}
	fails, err := r.forEach(names, func(name string) error {
		base, err := r.run("fig4", name, pipeline.BaselineConfig(), core.NoPredictor{})
		if err != nil {
			return err
		}
		mu.Lock()
		vals[key{"no_predict", name}] = base.IPC()
		mu.Unlock()
		pred90, err := r.staticPredictor(name, profile.SupportDead, 0.90)
		if err != nil {
			return err
		}
		for _, rc := range recoveries {
			cfg := pipeline.BaselineConfig()
			cfg.Recovery = rc.rec
			st, err := r.run("fig4", name, cfg, pred90)
			if err != nil {
				return err
			}
			mu.Lock()
			vals[key{rc.label, name}] = st.IPC()
			mu.Unlock()
		}
		return nil
	})
	for _, label := range []string{"no_predict", "srvp_refetch", "srvp_reissue", "srvp_selective"} {
		m := map[string]float64{}
		for _, n := range names {
			if v, ok := vals[key{label, n}]; ok {
				m[n] = v
			} else {
				t.MarkFailed(label, n, failReason(fails, n))
			}
		}
		t.AddRow(label, "%.2f", m)
	}
	r.noteFailures(t, names, fails)
	return t, err
}

// Figure5 reproduces the dynamic-RVP-for-loads speedup graph: LVP, plain
// dynamic RVP, and dynamic RVP with dead and dead+LV compiler support,
// all restricted to load instructions; speedup over no prediction.
func (r *Runner) Figure5() (*stats.Table, error) {
	specs := []predictorSpec{
		{"lvp", func(*Runner, string) (core.Predictor, error) { return lvpLoads(), nil }},
		{"drvp", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportNone, true)
		}},
		{"drvp_dead", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDead, true)
		}},
		{"drvp_dead_lv", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDeadLV, true)
		}},
	}
	return r.speedupTable("fig5", "Figure 5: dynamic RVP for loads, speedup over no prediction",
		pipeline.BaselineConfig(), specs, allNames())
}

// Figure6 reproduces the dynamic-RVP-for-all-instructions speedup graph,
// including the Gabbay & Mendelson register predictor.
func (r *Runner) Figure6() (*stats.Table, error) {
	specs := []predictorSpec{
		{"lvp_all", func(*Runner, string) (core.Predictor, error) { return lvpAll(), nil }},
		{"Grp_all", func(*Runner, string) (core.Predictor, error) {
			return core.NewGabbayRVP(core.DefaultCounterConfig(), false)
		}},
		{"drvp_all", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportNone, false)
		}},
		{"drvp_all_dead", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDead, false)
		}},
		{"drvp_all_dead_lv", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDeadLV, false)
		}},
	}
	return r.speedupTable("fig6", "Figure 6: dynamic RVP for all instructions, speedup over no prediction",
		pipeline.BaselineConfig(), specs, allNames())
}

// Table2 reproduces the prediction coverage/accuracy table for dynamic
// RVP (dead and dead+LV), LVP, and the Gabbay & Mendelson register
// predictor, in the all-instruction configuration. Values are percent.
func (r *Runner) Table2() (*stats.Table, *stats.Table, error) {
	names := allNames()
	cov := stats.NewTable("Table 2a: % of instructions predicted", names)
	acc := stats.NewTable("Table 2b: prediction accuracy (%)", names)
	specs := []predictorSpec{
		{"drvp dead", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDead, false)
		}},
		{"dead_lv", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDeadLV, false)
		}},
		{"lvp", func(*Runner, string) (core.Predictor, error) { return lvpAll(), nil }},
		{"G&M RP", func(*Runner, string) (core.Predictor, error) {
			return core.NewGabbayRVP(core.DefaultCounterConfig(), false)
		}},
	}
	type key struct{ row, wl string }
	covV := map[key]float64{}
	accV := map[key]float64{}
	var mu sync.Mutex
	fails, err := r.forEach(names, func(name string) error {
		for _, sp := range specs {
			pred, err := sp.make(r, name)
			if err != nil {
				return err
			}
			st, err := r.run("tab2", name, pipeline.BaselineConfig(), pred)
			if err != nil {
				return err
			}
			mu.Lock()
			covV[key{sp.label, name}] = 100 * st.Coverage()
			accV[key{sp.label, name}] = 100 * st.Accuracy()
			mu.Unlock()
		}
		return nil
	})
	for _, sp := range specs {
		cm, am := map[string]float64{}, map[string]float64{}
		for _, n := range names {
			if v, ok := covV[key{sp.label, n}]; ok {
				cm[n] = v
				am[n] = accV[key{sp.label, n}]
			} else {
				cov.MarkFailed(sp.label, n, failReason(fails, n))
				acc.MarkFailed(sp.label, n, failReason(fails, n))
			}
		}
		cov.AddRow(sp.label, "%.1f", cm)
		acc.AddRow(sp.label, "%.1f", am)
	}
	r.noteFailures(cov, names, fails)
	r.noteFailures(acc, names, fails)
	return cov, acc, err
}

// Figure7Workloads are the four applications the paper shows (the ones
// where re-allocation mattered).
var Figure7Workloads = []string{"hydro2d", "li", "mgrid", "su2cor"}

// Figure7 reproduces the realistic register re-allocation study: LVP,
// dynamic RVP for all instructions with no re-allocation, with real
// Chaitin-colouring re-allocation (the rewritten program runs with plain
// same-register RVP), and with ideal (profile-list) re-allocation.
func (r *Runner) Figure7() (*stats.Table, error) {
	names := Figure7Workloads
	t := stats.NewTable("Figure 7: realistic register re-allocation, speedup over no prediction", names)
	type key struct{ row, wl string }
	vals := map[key]float64{}
	var mu sync.Mutex
	fails, err := r.forEach(names, func(name string) error {
		prog, err := r.Program(name)
		if err != nil {
			return err
		}
		base, err := r.run("fig7", name, pipeline.BaselineConfig(), core.NoPredictor{})
		if err != nil {
			return err
		}
		set := func(row string, cycles int64) {
			mu.Lock()
			vals[key{row, name}] = float64(base.Cycles) / float64(cycles)
			mu.Unlock()
		}
		// LVP (all instructions, as in Figure 6).
		st, err := r.run("fig7", name, pipeline.BaselineConfig(), lvpAll())
		if err != nil {
			return err
		}
		set("lvp", st.Cycles)
		// Plain dynamic RVP, no re-allocation.
		pred, err := r.dynamicPredictor(name, profile.SupportNone, false)
		if err != nil {
			return err
		}
		if st, err = r.run("fig7", name, pipeline.BaselineConfig(), pred); err != nil {
			return err
		}
		set("drvp_all_noreallocate", st.Cycles)
		// Realistic re-allocation: rewrite registers, run plain RVP.
		pr, err := r.Profile(name)
		if err != nil {
			return err
		}
		lists := pr.Lists(r.opts.Threshold, false, 0)
		res, err := regalloc.Reallocate(prog, pr, lists)
		if err != nil {
			return err
		}
		realloc := core.MustDynamicRVP(core.DefaultCounterConfig(), core.WithName("drvp_realloc"))
		if st, err = r.runOn("fig7", res.Prog, pipeline.BaselineConfig(), realloc); err != nil {
			return err
		}
		set("drvp_all_dead_lv_realloc", st.Cycles)
		// Ideal re-allocation (profile lists as hints).
		ideal, err := r.dynamicPredictor(name, profile.SupportDeadLV, false)
		if err != nil {
			return err
		}
		if st, err = r.run("fig7", name, pipeline.BaselineConfig(), ideal); err != nil {
			return err
		}
		set("drvp_all_dead_lv(ideal)", st.Cycles)
		return nil
	})
	for _, label := range []string{"lvp", "drvp_all_noreallocate", "drvp_all_dead_lv_realloc", "drvp_all_dead_lv(ideal)"} {
		m := map[string]float64{}
		for _, n := range names {
			if v, ok := vals[key{label, n}]; ok {
				m[n] = v
			} else {
				t.MarkFailed(label, n, failReason(fails, n))
			}
		}
		t.AddRow(label, "%.3f", m)
	}
	r.noteFailures(t, names, fails)
	return t, err
}

// Figure8 reproduces the aggressive 16-wide machine study: LVP and
// dynamic RVP for all instructions (plain and dead+LV), speedups over no
// prediction on the doubled machine.
func (r *Runner) Figure8() (*stats.Table, error) {
	specs := []predictorSpec{
		{"lvp_all", func(*Runner, string) (core.Predictor, error) { return lvpAll(), nil }},
		{"drvp_all", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportNone, false)
		}},
		{"drvp_all_dead_lv", func(rr *Runner, n string) (core.Predictor, error) {
			return rr.dynamicPredictor(n, profile.SupportDeadLV, false)
		}},
	}
	return r.speedupTable("fig8", "Figure 8: 16-wide processor, speedup over no prediction",
		pipeline.AggressiveConfig(), specs, allNames())
}

// Table1 renders the simulated machine configuration (the paper's
// Table 1), for completeness of the experiment index.
func (r *Runner) Table1() string {
	cfg := pipeline.BaselineConfig()
	t := stats.NewTable("Table 1: processor parameters", []string{"value"})
	t.AddRow("inst queue (int)", "%.0f", map[string]float64{"value": float64(cfg.IntIQ)})
	t.AddRow("inst queue (fp)", "%.0f", map[string]float64{"value": float64(cfg.FPIQ)})
	t.AddRow("integer units", "%.0f", map[string]float64{"value": float64(cfg.IntALUs)})
	t.AddRow("load/store units", "%.0f", map[string]float64{"value": float64(cfg.LoadStore)})
	t.AddRow("fp units", "%.0f", map[string]float64{"value": float64(cfg.FPUnits)})
	t.AddRow("fetch width", "%.0f", map[string]float64{"value": float64(cfg.FetchWidth)})
	t.AddRow("mispredict penalty", "%.0f", map[string]float64{"value": float64(cfg.MispredPenalty)})
	t.AddRow("window", "%.0f", map[string]float64{"value": float64(cfg.Window)})
	t.AddNote("L1I/L1D 32KB 4-way 64B lines, 20-cycle miss; L2 512KB 2-way, 80-cycle miss")
	t.AddNote("gshare 2K x 2-bit PHT, 256-entry BTB")
	return t.String()
}
