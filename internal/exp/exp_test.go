package exp

// Shape tests: each experiment driver must reproduce the qualitative
// relationships the paper reports (the match criteria DESIGN.md lists).
// Budgets are kept small; absolute values are not asserted, orderings are.

import (
	"testing"

	"rvpsim/internal/stats"
	"rvpsim/internal/workloads"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	return NewRunner(Options{Insts: 200_000, ProfileInsts: 100_000, Threshold: 0.80, Parallel: true})
}

func names() []string { return workloads.Names() }

func rowAvg(tab *stats.Table, label string, cols []string) float64 {
	row := tab.Row(label)
	var vs []float64
	for _, c := range cols {
		if v, ok := row[c]; ok {
			vs = append(vs, v)
		}
	}
	return stats.Mean(vs)
}

func TestFigure1Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone inclusion per workload: same <= dead <= any <= or-lvp.
	for _, n := range names() {
		same := tab.Row("same register")[n]
		dead := tab.Row("dead register")[n]
		any := tab.Row("any register")[n]
		orlv := tab.Row("register or lvp")[n]
		if !(same <= dead+1e-9 && dead <= any+1e-9 && any <= orlv+1e-9) {
			t.Errorf("%s: reuse bars not monotone: %.1f %.1f %.1f %.1f", n, same, dead, any, orlv)
		}
	}
	// The paper's headline: a large fraction of load values are already
	// in a register or were the last value.
	avg := (tab.Row("register or lvp")["C avg"] + tab.Row("register or lvp")["F avg"]) / 2
	if avg < 40 {
		t.Errorf("average register-or-lvp reuse = %.1f%%, want substantial", avg)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	base := rowAvg(tab, "no_predict", names())
	same := rowAvg(tab, "srvp_same", names())
	lv := rowAvg(tab, "srvp_live_lv", names())
	if same < base*0.99 {
		t.Errorf("srvp_same average IPC %.3f below no_predict %.3f", same, base)
	}
	if lv < same-1e-9 {
		t.Errorf("srvp_live_lv (%.3f) below srvp_same (%.3f)", lv, same)
	}
	// Static RVP must help where register reuse is plentiful.
	if tab.Row("srvp_same")["m88ksim"] <= tab.Row("no_predict")["m88ksim"] {
		t.Error("static RVP gained nothing on m88ksim")
	}
}

func TestFigure4Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// Selective reissue holds fewer instructions than reissue, so it is
	// never slower (the paper's conclusion).
	for _, n := range names() {
		sel := tab.Row("srvp_selective")[n]
		re := tab.Row("srvp_reissue")[n]
		if sel < re-0.01 {
			t.Errorf("%s: selective (%.2f) below reissue (%.2f)", n, sel, re)
		}
	}
	// Refetch performs well overall (often beats reissue somewhere).
	refetchWins := 0
	for _, n := range names() {
		if tab.Row("srvp_refetch")[n] >= tab.Row("srvp_reissue")[n]-1e-9 {
			refetchWins++
		}
	}
	if refetchWins == 0 {
		t.Error("refetch never competitive with reissue; paper reports it often is")
	}
}

func TestFigure5Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	deadLV := tab.Row("drvp_dead_lv")["average"]
	lvp := tab.Row("lvp")["average"]
	if deadLV < 1.01 {
		t.Errorf("drvp_dead_lv average speedup %.3f, want gain over no prediction", deadLV)
	}
	// The storageless predictor with compiler support matches or beats
	// the buffer-based LVP.
	if deadLV < lvp-0.01 {
		t.Errorf("drvp_dead_lv (%.3f) clearly below lvp (%.3f)", deadLV, lvp)
	}
}

func TestFigure6Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	deadLV := tab.Row("drvp_all_dead_lv")["average"]
	lvp := tab.Row("lvp_all")["average"]
	grp := tab.Row("Grp_all")["average"]
	drvp := tab.Row("drvp_all")["average"]
	if deadLV < 1.03 {
		t.Errorf("drvp_all_dead_lv average %.3f, want a solid gain", deadLV)
	}
	if deadLV < lvp-0.015 {
		t.Errorf("drvp_all_dead_lv (%.3f) clearly below lvp_all (%.3f)", deadLV, lvp)
	}
	// The Gabbay & Mendelson register predictor suffers counter
	// interference: it must not beat PC-indexed dynamic RVP.
	if grp > drvp+0.01 {
		t.Errorf("Grp_all (%.3f) above drvp_all (%.3f)", grp, drvp)
	}
}

func TestTable2Shape(t *testing.T) {
	r := testRunner(t)
	cov, acc, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Resetting counters with threshold 7 give high accuracy everywhere.
	for _, label := range []string{"drvp dead", "dead_lv", "lvp"} {
		if a := rowAvg(acc, label, names()); a < 90 {
			t.Errorf("%s average accuracy %.1f%%, want >= 90%%", label, a)
		}
	}
	// dead_lv coverage is a superset of dead coverage.
	if rowAvg(cov, "dead_lv", names()) < rowAvg(cov, "drvp dead", names())-0.5 {
		t.Error("dead_lv coverage below dead coverage")
	}
	// The register-indexed predictor covers fewer instructions.
	if rowAvg(cov, "G&M RP", names()) > rowAvg(cov, "drvp dead", names())+0.5 {
		t.Error("G&M coverage above drvp coverage; interference not modelled?")
	}
	// Coverage ordering: go at the bottom, m88ksim near the top.
	if cov.Row("drvp dead")["go"] >= cov.Row("drvp dead")["m88ksim"] {
		t.Error("go coverage not below m88ksim coverage")
	}
}

func TestFigure7Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	cols := Figure7Workloads
	realloc := rowAvg(tab, "drvp_all_dead_lv_realloc", cols)
	noalloc := rowAvg(tab, "drvp_all_noreallocate", cols)
	if realloc < noalloc-0.01 {
		t.Errorf("re-allocation (%.3f) lost performance vs none (%.3f)", realloc, noalloc)
	}
	// Where LVP beat plain DRVP, re-allocation must close most of the
	// gap on at least one workload (the paper's hydro2d case).
	closed := false
	for _, n := range cols {
		lvp := tab.Row("lvp")[n]
		no := tab.Row("drvp_all_noreallocate")[n]
		re := tab.Row("drvp_all_dead_lv_realloc")[n]
		if lvp > no+0.01 && re >= lvp-0.01 {
			closed = true
		}
	}
	if !closed {
		t.Log(tab)
		t.Error("re-allocation never recovered an LVP-ahead case")
	}
}

func TestFigure8Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if avg := tab.Row("drvp_all_dead_lv")["average"]; avg < 1.02 {
		t.Errorf("16-wide drvp_all_dead_lv average %.3f, want gains", avg)
	}
	// Plain RVP is competitive with LVP on the aggressive machine.
	if tab.Row("drvp_all")["average"] < tab.Row("lvp_all")["average"]-0.04 {
		t.Errorf("drvp_all (%.3f) far below lvp_all (%.3f) on 16-wide",
			tab.Row("drvp_all")["average"], tab.Row("lvp_all")["average"])
	}
}

func TestTable1Renders(t *testing.T) {
	r := testRunner(t)
	s := r.Table1()
	for _, want := range []string{"inst queue", "fetch width", "mispredict penalty"} {
		if !containsStr(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestRunnerMemoisation(t *testing.T) {
	r := testRunner(t)
	p1, err := r.Program("li")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := r.Program("li")
	if p1 != p2 {
		t.Error("Program not memoised")
	}
	pr1, err := r.Profile("li")
	if err != nil {
		t.Fatal(err)
	}
	pr2, _ := r.Profile("li")
	if pr1 != pr2 {
		t.Error("Profile not memoised")
	}
	if _, err := r.Program("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
