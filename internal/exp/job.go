package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/stats"
	"rvpsim/internal/workloads"
)

// JobSpec is the job-shaped entry into the experiment runner: one
// workload × predictor × recovery simulation run, or one whole figure
// sweep. It is the wire format the simulation service accepts, so every
// field is validated before any simulator state is touched, and a
// normalized spec has a stable digest that keys the job's crash-safe
// simulation state (journal + checkpoints) across process restarts.
type JobSpec struct {
	// Kind selects the job shape: "run" (one cell) or "figure" (a sweep).
	Kind string `json:"kind"`
	// Workload names the benchmark for "run" jobs (see workloads.Names).
	Workload string `json:"workload,omitempty"`
	// Predictor names the value predictor for "run" jobs (see
	// JobPredictors).
	Predictor string `json:"predictor,omitempty"`
	// Recovery selects the misprediction recovery scheme for "run" jobs:
	// refetch, reissue, or selective (the default).
	Recovery string `json:"recovery,omitempty"`
	// Figure names the sweep for "figure" jobs (see JobFigures).
	Figure string `json:"figure,omitempty"`
	// Insts is the committed-instruction budget per simulation run
	// (0 takes the server's default).
	Insts uint64 `json:"insts,omitempty"`
	// ProfileInsts is the profiling-pass budget (0 = Insts/4).
	ProfileInsts uint64 `json:"profile_insts,omitempty"`
	// Threshold is the profiler's predictability threshold (0 = 0.80).
	Threshold float64 `json:"threshold,omitempty"`
}

// MaxJobInsts bounds the per-run budget a job may request; admission
// control rejects anything larger before it can occupy a worker.
const MaxJobInsts = 100_000_000

// jobFigures maps figure names to their Runner drivers.
var jobFigures = map[string]func(*Runner) (*stats.Table, error){
	"fig1": (*Runner).Figure1,
	"fig3": (*Runner).Figure3,
	"fig4": (*Runner).Figure4,
	"fig5": (*Runner).Figure5,
	"fig6": (*Runner).Figure6,
	"fig7": (*Runner).Figure7,
	"fig8": (*Runner).Figure8,
}

// jobPredictors maps predictor names to constructors. Each build must
// return a fresh predictor: retries rebuild rather than reuse dirty
// predictor state.
var jobPredictors = map[string]func() core.Predictor{
	"none":      func() core.Predictor { return core.NoPredictor{} },
	"rvp":       func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) },
	"rvp_loads": func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig(), core.LoadsOnly()) },
	"lvp":       func() core.Predictor { return lvpLoads() },
	"lvp_all":   func() core.Predictor { return lvpAll() },
	"gabbay":    func() core.Predictor { return core.MustGabbayRVP(core.DefaultCounterConfig(), false) },
	"stride":    func() core.Predictor { return core.MustStridePredictor(core.DefaultStrideConfig()) },
	"context":   func() core.Predictor { return core.MustContextPredictor(core.DefaultContextConfig()) },
}

// JobFigures lists the figure names a "figure" job accepts, sorted.
func JobFigures() []string { return sortedKeys(jobFigures) }

// JobPredictors lists the predictor names a "run" job accepts, sorted.
func JobPredictors() []string { return sortedKeys(jobPredictors) }

// JobRecoveries lists the recovery-scheme names a "run" job accepts,
// sorted. Fleet sweeps use it to validate their recovery axis against
// the same vocabulary the job API enforces.
func JobRecoveries() []string { return sortedKeys(jobRecoveries) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// jobRecoveries maps wire names to recovery schemes.
var jobRecoveries = map[string]pipeline.Recovery{
	"refetch":   pipeline.RecoverRefetch,
	"reissue":   pipeline.RecoverReissue,
	"selective": pipeline.RecoverSelective,
}

// Normalize fills defaulted fields in place: recovery defaults to
// selective, a zero Insts takes defaultInsts (or the package default),
// ProfileInsts to Insts/4, Threshold to 0.80. Normalize before Digest so
// equivalent requests key the same simulation state.
func (s *JobSpec) Normalize(defaultInsts uint64) {
	if s.Kind == "run" && s.Recovery == "" {
		s.Recovery = "selective"
	}
	if s.Insts == 0 {
		s.Insts = defaultInsts
	}
	if s.Insts == 0 {
		s.Insts = DefaultOptions().Insts
	}
	if s.ProfileInsts == 0 {
		s.ProfileInsts = s.Insts / 4
	}
	if s.Threshold == 0 {
		s.Threshold = 0.80
	}
}

// Validate checks the spec against the known workloads, predictors,
// figures and recovery schemes. Violations are reported as errors
// wrapping simerr.ErrConfig, so the service maps them to 400s without
// string matching.
func (s JobSpec) Validate() error {
	bad := func(format string, args ...any) error {
		return simerr.New("job", fmt.Errorf(format+": %w", append(args, simerr.ErrConfig)...))
	}
	switch s.Kind {
	case "run":
		// Membership check only — building the workload's program is the
		// runner's job, not validation's.
		known := false
		for _, n := range workloads.Names() {
			if n == s.Workload {
				known = true
				break
			}
		}
		if !known {
			return bad("unknown workload %q (have %v)", s.Workload, workloads.Names())
		}
		if _, ok := jobPredictors[s.Predictor]; !ok {
			return bad("unknown predictor %q (have %v)", s.Predictor, JobPredictors())
		}
		if s.Recovery != "" {
			if _, ok := jobRecoveries[s.Recovery]; !ok {
				return bad("unknown recovery %q (refetch, reissue, selective)", s.Recovery)
			}
		}
		if s.Figure != "" {
			return bad("figure set on a run job")
		}
	case "figure":
		if _, ok := jobFigures[s.Figure]; !ok {
			return bad("unknown figure %q (have %v)", s.Figure, JobFigures())
		}
		if s.Workload != "" || s.Predictor != "" || s.Recovery != "" {
			return bad("workload/predictor/recovery set on a figure job")
		}
	case "":
		return bad("missing kind")
	default:
		return bad("unknown kind %q (run, figure)", s.Kind)
	}
	if s.Insts > MaxJobInsts {
		return bad("insts %d exceeds the %d limit", s.Insts, uint64(MaxJobInsts))
	}
	if s.ProfileInsts > MaxJobInsts {
		return bad("profile_insts %d exceeds the %d limit", s.ProfileInsts, uint64(MaxJobInsts))
	}
	if s.Threshold < 0 || s.Threshold > 1 {
		return bad("threshold %v outside [0,1]", s.Threshold)
	}
	return nil
}

// Digest returns a stable hex fingerprint of the spec. Normalize first:
// the digest of a normalized spec keys the job's on-disk simulation
// state, so a restarted daemon resumes the same journal and checkpoints.
func (s JobSpec) Digest() string {
	canon := fmt.Sprintf("kind=%s|wl=%s|pred=%s|rec=%s|fig=%s|n=%d|pn=%d|th=%.6f",
		s.Kind, s.Workload, s.Predictor, s.Recovery, s.Figure, s.Insts, s.ProfileInsts, s.Threshold)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:12])
}

// JobResult is the terminal payload of a successful job: Stats for a
// "run" job, a Table (plus its rendered text) for a "figure" job.
type JobResult struct {
	Stats *pipeline.Stats `json:"stats,omitempty"`
	Table *stats.Table    `json:"table,omitempty"`
	Text  string          `json:"text,omitempty"`
	// Digest is the envelope's integrity seal (Seal/Verify): a content
	// hash stamped by the producing daemon so a consumer — the fleet
	// coordinator above all — can detect a result corrupted in transit
	// before merging it.
	Digest string `json:"digest,omitempty"`
}

// contentDigest hashes the result's payload fields canonically: the
// fixed-order JSON encoding, which survives a wire round trip unchanged
// (Go's encoder is deterministic for a fixed struct shape, and float
// formatting round-trips exactly).
func (r *JobResult) contentDigest() string {
	body, err := json.Marshal(struct {
		Stats *pipeline.Stats
		Table *stats.Table
		Text  string
	}{r.Stats, r.Table, r.Text})
	if err != nil {
		// Only unmarshalable payloads fail, and JobResult holds none.
		panic("exp: marshaling JobResult for digest: " + err.Error())
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:16])
}

// Seal stamps the result with its content digest. The producing daemon
// seals just before persisting/serving the result.
func (r *JobResult) Seal() { r.Digest = r.contentDigest() }

// Verify reports whether the sealed digest matches the content. An
// unsealed result (no digest) verifies trivially — it carries no claim
// to check; every daemon in this tree seals, so fleet traffic is always
// covered.
func (r *JobResult) Verify() bool {
	if r == nil || r.Digest == "" {
		return true
	}
	return r.Digest == r.contentDigest()
}

// RunJob executes one job under the runner options. The spec's budgets
// and threshold override the corresponding options; ctx overrides
// opts.Context. With opts.StateDir set the job is crash-safe exactly
// like a -resume sweep: finished cells are journaled write-ahead,
// in-flight runs checkpoint on the opts.CheckpointEvery cadence, and a
// rerun of the same (normalized) spec against the same StateDir resumes
// instead of recomputing. A "run" job retries once on failures the
// simulator marks transient (simerr.IsTransient), matching the sweep
// drivers' retry policy; retries are counted on the registry as
// exp_transient_retries.
func RunJob(ctx context.Context, spec JobSpec, opts Options) (*JobResult, error) {
	spec.Normalize(opts.Insts)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts.Insts = spec.Insts
	opts.ProfileInsts = spec.ProfileInsts
	opts.Threshold = spec.Threshold
	if ctx != nil {
		opts.Context = ctx
	}
	// A job-level span groups the profiling passes and simulation runs
	// below it; the runner parents its spans under this one.
	jsp := opts.Tracer.Start(opts.TraceParent, "job:"+spec.Kind)
	jsp.SetAttr("digest", spec.Digest())
	if spec.Kind == "figure" {
		jsp.SetAttr("figure", spec.Figure)
	} else {
		jsp.SetAttr("workload", spec.Workload)
		jsp.SetAttr("predictor", spec.Predictor)
	}
	if jsp != nil {
		opts.TraceParent = jsp.Context()
	}
	r := NewRunner(opts)
	defer r.Close()
	if err := r.EnableResume(); err != nil {
		jsp.EndErr(err)
		return nil, err
	}

	switch spec.Kind {
	case "run":
		cfg := pipeline.BaselineConfig()
		cfg.Recovery = jobRecoveries[spec.Recovery]
		retries := opts.Retries
		if retries == 0 {
			retries = 1
		} else if retries < 0 {
			retries = 0
		}
		var st pipeline.Stats
		var err error
		for attempt := 0; ; attempt++ {
			// A fresh predictor per attempt: a failed run leaves dirty
			// predictor state behind.
			st, err = r.run("job", spec.Workload, cfg, jobPredictors[spec.Predictor]())
			if err == nil || attempt >= retries || !simerr.IsTransient(err) {
				break
			}
			r.count("exp_transient_retries", "job runs retried after a transient failure")
		}
		if err != nil {
			err = simerr.WithWorkload(spec.Workload, err)
			jsp.EndErr(err)
			return nil, err
		}
		jsp.End()
		return &JobResult{Stats: &st}, nil
	case "figure":
		t, err := jobFigures[spec.Figure](r)
		if err != nil {
			jsp.EndErr(err)
			return nil, err
		}
		jsp.End()
		return &JobResult{Table: t, Text: t.String()}, nil
	}
	// Unreachable: Validate accepted the kind.
	jsp.End()
	return nil, simerr.Newf("job", "unhandled kind %q", spec.Kind)
}
