// Package exp contains one driver per table and figure in the paper's
// evaluation section. Each driver runs the relevant workloads under the
// relevant predictor/machine configurations and returns a stats.Table
// whose rows mirror the paper's series, so the experiments binary and the
// benchmark harness can regenerate every result.
//
// Methodology notes (deviations from the paper are documented in
// DESIGN.md): runs are bounded by a committed-instruction budget rather
// than 300M instructions; profiling uses the same program with a separate
// (smaller) budget, standing in for the paper's train-vs-ref input split,
// which the paper itself reports to be stable across inputs.
package exp

import (
	"context"
	"errors"
	"io/fs"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rvpsim/internal/checkpoint"
	"rvpsim/internal/core"
	"rvpsim/internal/faultinject"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
	"rvpsim/internal/stats"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
	"rvpsim/internal/workloads"
)

// Options scales the experiments.
type Options struct {
	// Insts is the committed-instruction budget per measurement run.
	Insts uint64
	// WarmupInsts, when positive, fast-forwards each workload through
	// this many committed instructions on the architectural emulator
	// before the measured (timed) phase of every run. The warmup is paid
	// once per workload and its warmed state is forked copy-on-write
	// into every (predictor, config) cell — valid because the committed
	// stream is architecturally determined, so one functional warmup
	// serves any machine configuration. Microarchitectural state (caches,
	// predictors) still starts cold in each cell. Zero (the default)
	// keeps the historical cold-start methodology.
	WarmupInsts uint64
	// ProfileInsts is the budget for the profiling pass.
	ProfileInsts uint64
	// Threshold is the profiler's predictability threshold (paper: 0.80,
	// except Figure 4 which uses 0.90 internally).
	Threshold float64
	// Parallel runs workloads on multiple goroutines when true.
	Parallel bool
	// MaxWorkers bounds the worker pool when Parallel is set (default
	// GOMAXPROCS).
	MaxWorkers int
	// Retries is how many times a workload whose failure is marked
	// transient (simerr.IsTransient) is retried. 0 means the default of
	// one retry; negative disables retries.
	Retries int
	// Context, when non-nil, cancels in-flight sweeps: runs stop within
	// one commit batch of the context ending.
	Context context.Context
	// RunTimeout, when positive, bounds each individual simulation run.
	RunTimeout time.Duration
	// WatchdogCycles arms the pipeline's forward-progress watchdog for
	// every run (0 leaves it disabled).
	WatchdogCycles int
	// Faults maps workload name to a fault-injection configuration; the
	// injector for a workload is created once and persists across that
	// workload's runs and retries, so sticky faults stay stuck.
	Faults map[string]faultinject.Config
	// Registry, when non-nil, receives every simulation run's metrics
	// (the runs attach observers publishing into it; counters aggregate
	// across the whole sweep). Instruments are updated atomically, so
	// parallel workloads are safe.
	Registry *obs.Registry
	// OnRunDone, when non-nil, is called after every completed
	// simulation run with a short "workload/predictor" label. It must be
	// safe for concurrent calls; the experiments binary points it at a
	// progress heartbeat.
	OnRunDone func(label string)
	// StateDir, when set (and EnableResume is called), makes sweeps
	// crash-safe: every finished cell is fsync'd to a write-ahead
	// journal under this directory before table aggregation, a rerun
	// replays journaled cells instead of re-simulating them, and
	// half-finished runs resume from their latest checkpoint.
	StateDir string
	// CheckpointEvery is the auto-checkpoint cadence, in committed
	// instructions, for in-flight runs when StateDir is active. Zero
	// disables checkpointing (the journal still works).
	CheckpointEvery uint64
	// Tracer, when non-nil, collects a span per profiling pass and per
	// simulation run so a job's wall-clock time decomposes into its
	// pipeline stages. Spans parent under TraceParent.
	Tracer *obs.Tracer
	// TraceParent is the span context new spans parent under (zero
	// starts fresh traces).
	TraceParent obs.SpanContext
	// OnProgress, when non-nil, is a live heartbeat: it is called from
	// inside running simulations with a "workload/predictor" label, the
	// run's committed-instruction count and current cycle, every
	// ProgressEvery committed instructions. It must be safe for
	// concurrent calls (parallel workloads run simultaneously) and must
	// not block: it executes on simulation goroutines.
	OnProgress func(label string, committed uint64, cycles int64)
	// ProgressEvery is the OnProgress cadence in committed instructions
	// (default 100_000 when OnProgress is set).
	ProgressEvery uint64
	// FS is the filesystem seam all of the runner's durability I/O —
	// the sweep journal and run checkpoints — goes through. Nil means
	// the real filesystem; tests inject vfs.Mem/vfs.Fault to simulate
	// hostile storage.
	FS vfs.FS
	// WALMetrics, when non-nil, receives the journal's wal_* instrument
	// updates (appends, fsync latency, repairs).
	WALMetrics *wal.Metrics
	// OnCheckpoint, when non-nil, is called with a "workload/predictor"
	// label after each periodic checkpoint is durably saved. Same
	// concurrency contract as OnProgress.
	OnCheckpoint func(label string)
}

// DefaultOptions returns a laptop-scale configuration: large enough for
// stable warmed-up statistics, small enough to regenerate every figure in
// minutes.
func DefaultOptions() Options {
	return Options{Insts: 2_000_000, ProfileInsts: 500_000, Threshold: 0.80, Parallel: true}
}

// Runner memoises per-workload programs, profiles and baseline runs
// across experiments.
type Runner struct {
	opts Options

	mu        sync.Mutex
	programs  map[string]*program.Program
	profiles  map[string]*profile.Profile
	injectors map[string]*faultinject.Injector
	warmups   map[string]*pipeline.WarmState
	simPools  map[pipeline.Config]*sync.Pool
	journal   *Journal
	warnings  []string
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Insts == 0 {
		opts.Insts = DefaultOptions().Insts
	}
	if opts.ProfileInsts == 0 {
		opts.ProfileInsts = opts.Insts / 4
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.80
	}
	if opts.OnProgress != nil && opts.ProgressEvery == 0 {
		opts.ProgressEvery = 100_000
	}
	return &Runner{
		opts:      opts,
		programs:  map[string]*program.Program{},
		profiles:  map[string]*profile.Profile{},
		injectors: map[string]*faultinject.Injector{},
		warmups:   map[string]*pipeline.WarmState{},
		simPools:  map[pipeline.Config]*sync.Pool{},
	}
}

// simFor takes a simulator for cfg from the per-configuration pool,
// constructing one only when the pool is empty. A pooled Sim retains its
// run buffers (capacity rings, decode tables, the pendingPred pool —
// several MB), so a worker draining a sweep recycles them run after run
// instead of hammering the shared allocator; reuse is proven
// byte-identical to a fresh Sim by pipeline's TestSimReuseDeterminism.
// Callers must return the Sim with putSim and re-arm every hook they
// need: a pooled Sim's observer/fault/progress/checkpoint hooks are
// whatever the previous cell left behind.
func (r *Runner) simFor(cfg pipeline.Config) (*pipeline.Sim, error) {
	r.mu.Lock()
	pool, ok := r.simPools[cfg]
	if !ok {
		pool = &sync.Pool{}
		r.simPools[cfg] = pool
	}
	r.mu.Unlock()
	if sim, ok := pool.Get().(*pipeline.Sim); ok {
		return sim, nil
	}
	return pipeline.New(cfg)
}

// putSim returns a simulator taken with simFor to its pool.
func (r *Runner) putSim(cfg pipeline.Config, sim *pipeline.Sim) {
	if sim == nil {
		return
	}
	r.mu.Lock()
	pool := r.simPools[cfg]
	r.mu.Unlock()
	if pool != nil {
		pool.Put(sim)
	}
}

// fsys is the runner's filesystem seam (the real filesystem unless
// Options.FS injects another).
func (r *Runner) fsys() vfs.FS {
	if r.opts.FS != nil {
		return r.opts.FS
	}
	return vfs.OS
}

// removeQuiet deletes a redundant or rejected checkpoint; failure is
// harmless (the file is re-validated or overwritten on next use).
func removeQuiet(fsys vfs.FS, path string) { _ = fsys.Remove(path) }

// injector returns the memoised fault injector for a workload, nil when
// none is configured. One injector per workload persists across every
// run and retry of that workload, so sticky faults stay stuck.
func (r *Runner) injector(name string) *faultinject.Injector {
	fc, ok := r.opts.Faults[name]
	if !ok || !fc.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if inj, ok := r.injectors[name]; ok {
		return inj
	}
	inj := faultinject.New(fc)
	r.injectors[name] = inj
	return inj
}

// Program returns the (memoised) program for a workload.
func (r *Runner) Program(name string) (*program.Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.programs[name]; ok {
		return p, nil
	}
	p, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	r.programs[name] = p
	return p, nil
}

// Profile returns the (memoised) register-reuse profile for a workload.
func (r *Runner) Profile(name string) (*profile.Profile, error) {
	p, err := r.Program(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if pr, ok := r.profiles[name]; ok {
		r.mu.Unlock()
		return pr, nil
	}
	r.mu.Unlock()
	psp := r.opts.Tracer.Start(r.opts.TraceParent, "profile:"+name)
	pr, err := profile.Run(p, profile.Options{MaxInsts: r.opts.ProfileInsts})
	psp.EndErr(err)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.profiles[name] = pr
	r.mu.Unlock()
	return pr, nil
}

// EnableResume opens the write-ahead journal inside Options.StateDir,
// replaying completed cells from any previous (crashed or interrupted)
// sweep. A damaged journal tail is truncated with a footnoted warning,
// never fatal. No-op when StateDir is unset.
func (r *Runner) EnableResume() error {
	if r.opts.StateDir == "" {
		return nil
	}
	j, err := OpenJournalFS(JournalPath(r.opts.StateDir), r.opts.FS, r.opts.WALMetrics)
	if err != nil {
		return err
	}
	if j.Truncated > 0 {
		r.warn("journal: dropped %d damaged tail record(s); their cells will be re-simulated", j.Truncated)
		r.count("exp_journal_truncated", "journal records dropped as torn or corrupt")
	}
	r.mu.Lock()
	r.journal = j
	r.mu.Unlock()
	return nil
}

// Journaled reports how many completed cells the journal holds (0
// without EnableResume).
func (r *Runner) Journaled() int {
	r.mu.Lock()
	j := r.journal
	r.mu.Unlock()
	if j == nil {
		return 0
	}
	return j.Len()
}

// Close releases the journal, if open.
func (r *Runner) Close() error {
	r.mu.Lock()
	j := r.journal
	r.journal = nil
	r.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// count bumps a sweep-level observability counter when a registry is
// attached.
func (r *Runner) count(name, help string) {
	if r.opts.Registry != nil {
		r.opts.Registry.Counter(name, help).Inc()
	}
}

// warmState returns the memoised warm state for a workload, executing
// the functional warmup on first use. One warmup serves every cell
// (predictor × config) of that workload: the fast-forward is
// architectural only, so its result is valid for all of them. Nil when
// warmup is disabled.
func (r *Runner) warmState(p *program.Program) (*pipeline.WarmState, error) {
	if r.opts.WarmupInsts == 0 {
		return nil, nil
	}
	r.mu.Lock()
	if w, ok := r.warmups[p.Name]; ok {
		r.mu.Unlock()
		return w, nil
	}
	r.mu.Unlock()
	wsp := r.opts.Tracer.Start(r.opts.TraceParent, "warmup:"+p.Name)
	w, err := pipeline.Warmup(p, r.opts.WarmupInsts)
	wsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if prior, ok := r.warmups[p.Name]; ok {
		// Lost a race with a concurrent warmup of the same workload; keep
		// the first so every cell forks the identical state.
		r.mu.Unlock()
		return prior, nil
	}
	r.warmups[p.Name] = w
	r.mu.Unlock()
	r.count("exp_warmup_runs", "functional warmups executed (once per workload)")
	return w, nil
}

// run simulates one workload under one predictor and machine config.
// The scope names the experiment asking (see runKey).
func (r *Runner) run(scope, name string, cfg pipeline.Config, pred core.Predictor) (pipeline.Stats, error) {
	p, err := r.Program(name)
	if err != nil {
		return pipeline.Stats{}, err
	}
	return r.runOn(scope, p, cfg, pred)
}

// runOn simulates an explicit program (used for re-allocated programs).
// The runner's context, per-run timeout, watchdog and fault injection
// options all apply here. With a journal open, a cell that already
// completed is replayed from the journal; otherwise the run is
// periodically checkpointed, resumed from a prior checkpoint when one
// exists, and journaled (fsync'd) on completion before its result is
// returned to any aggregation.
func (r *Runner) runOn(scope string, p *program.Program, cfg pipeline.Config, pred core.Predictor) (pipeline.Stats, error) {
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = r.opts.WatchdogCycles
	}
	key := runKey(scope, p.Name, pred.Name(), cfg)
	if r.opts.WarmupInsts > 0 {
		// A warmed cell measures a different instruction window, so its
		// journal entries and checkpoints must not collide with cold runs
		// (or runs under a different warmup budget) of the same cell.
		key += "|warmup=" + strconv.FormatUint(r.opts.WarmupInsts, 10)
	}
	label := p.Name + "/" + pred.Name()
	r.mu.Lock()
	journal := r.journal
	r.mu.Unlock()
	if journal != nil {
		if st, ok := journal.Lookup(key); ok {
			r.count("exp_journal_replayed", "sweep cells served from the journal instead of re-simulated")
			rsp := r.opts.Tracer.Start(r.opts.TraceParent, "sim:"+label)
			rsp.SetAttr("journal", "replayed")
			rsp.End()
			if r.opts.OnRunDone != nil {
				r.opts.OnRunDone(label)
			}
			return st, nil
		}
	}

	inj := r.injector(p.Name)
	ctx := r.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if r.opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.RunTimeout)
		defer cancel()
	}
	// The cell's simulator comes from the per-config pool and goes back
	// when the cell finishes (any exit path). Every hook is set
	// unconditionally — a pooled Sim carries whatever the previous cell
	// armed, so "not configured" must be written as explicitly as
	// "configured". A failed checkpoint resume reuses the same Sim for
	// the from-scratch rerun.
	var sim *pipeline.Sim
	defer func() { r.putSim(cfg, sim) }()
	newSim := func() (*pipeline.Sim, error) {
		if sim == nil {
			s, err := r.simFor(cfg)
			if err != nil {
				return nil, err
			}
			sim = s
		}
		if r.opts.Registry != nil {
			sim.SetObserver(obs.NewObserverWith(r.opts.Registry))
		} else {
			sim.SetObserver(nil)
		}
		if inj != nil {
			sim.SetFaults(inj)
		} else {
			// A plain nil, not the typed-nil *Injector, so the pipeline's
			// `faults != nil` fast path stays off.
			sim.SetFaults(nil)
		}
		if r.opts.OnProgress != nil && r.opts.ProgressEvery > 0 {
			sim.SetProgress(r.opts.ProgressEvery, func(committed uint64, cycles int64) {
				r.opts.OnProgress(label, committed, cycles)
			})
		} else {
			sim.SetProgress(0, nil)
		}
		sim.SetCheckpoint(0, nil)
		return sim, nil
	}

	// Checkpointing applies only to unperturbed runs: a fault injector's
	// effects are not captured in a snapshot, so resuming an injected
	// run would not replay deterministically.
	ckptable, isCkptable := pred.(core.Checkpointable)
	canCkpt := journal != nil && r.opts.CheckpointEvery > 0 && inj == nil && isCkptable
	var ckptPath string
	var pristine core.PredictorState
	if canCkpt {
		ckptPath = ckptFile(r.opts.StateDir, key)
		pristine = ckptable.SnapshotState()
	}
	arm := func(sim *pipeline.Sim) {
		if !canCkpt {
			return
		}
		sim.SetCheckpoint(r.opts.CheckpointEvery, func(snap *pipeline.Snapshot) error {
			if err := checkpoint.SaveFS(r.fsys(), ckptPath, snap); err != nil {
				return err
			}
			r.count("exp_ckpt_saves", "periodic run checkpoints written")
			if r.opts.OnCheckpoint != nil {
				r.opts.OnCheckpoint(label)
			}
			return nil
		})
	}

	var st pipeline.Stats
	var err error
	sp := r.opts.Tracer.Start(r.opts.TraceParent, "sim:"+label)
	sp.SetAttr("workload", p.Name)
	sp.SetAttr("predictor", pred.Name())
	defer func() { sp.EndErr(err) }()
	ran := false
	if canCkpt {
		snap, lerr := checkpoint.LoadFS(r.fsys(), ckptPath)
		switch {
		case lerr == nil:
			if sim, err = newSim(); err != nil {
				return pipeline.Stats{}, err
			}
			arm(sim)
			st, err = sim.ResumeContext(ctx, snap, p, pred, r.opts.Insts)
			if err != nil && errors.Is(err, simerr.ErrCorrupt) {
				// The checkpoint does not belong to this cell as currently
				// configured (changed budget, predictor sizing, schema).
				// Discard it, restore the predictor's pristine state, and
				// run the cell from scratch.
				r.warn("checkpoint for %s rejected (%v); re-running cell from scratch", key, lerr2str(err))
				r.count("exp_ckpt_corrupt", "checkpoints discarded as damaged or mismatched")
				removeQuiet(r.fsys(), ckptPath)
				_ = ckptable.RestoreState(pristine)
			} else {
				ran = true
				r.count("exp_ckpt_restores", "runs resumed from a checkpoint")
			}
		case errors.Is(lerr, fs.ErrNotExist):
			// Nothing to resume.
		default:
			r.warn("checkpoint for %s unreadable (%v); re-running cell from scratch", key, lerr2str(lerr))
			r.count("exp_ckpt_corrupt", "checkpoints discarded as damaged or mismatched")
			removeQuiet(r.fsys(), ckptPath)
		}
	}
	if !ran {
		warm, werr := r.warmState(p)
		if werr != nil {
			err = werr
			return pipeline.Stats{}, err
		}
		if sim, err = newSim(); err != nil {
			return pipeline.Stats{}, err
		}
		arm(sim)
		if warm != nil {
			r.count("exp_warmup_forks", "measured runs started from a forked warm state")
			st, err = sim.RunWarmedContext(ctx, warm, p, pred, r.opts.Insts)
		} else {
			st, err = sim.RunContext(ctx, p, pred, r.opts.Insts)
		}
	}
	if err != nil {
		// Checkpoint-then-exit: a cancelled or timed-out run leaves its
		// latest coherent state behind so a -resume rerun picks the cell
		// up mid-stream instead of starting over.
		if canCkpt && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			if snap, serr := sim.Snapshot(); serr == nil {
				if werr := checkpoint.SaveFS(r.fsys(), ckptPath, snap); werr == nil {
					r.count("exp_ckpt_saves", "periodic run checkpoints written")
				}
			}
		}
		return st, err
	}
	// Write-ahead: the finished cell is durable in the journal before the
	// caller can aggregate it; its checkpoint is then redundant.
	if journal != nil {
		if err = journal.Record(key, st); err != nil {
			return st, err
		}
		r.count("exp_journal_appends", "sweep cells appended to the journal")
	}
	if canCkpt {
		removeQuiet(r.fsys(), ckptPath)
	}
	if r.opts.OnRunDone != nil {
		r.opts.OnRunDone(label)
	}
	return st, nil
}

// lerr2str compacts a load/validation error for a one-line footnote.
func lerr2str(err error) string {
	var se *simerr.SimError
	if errors.As(err, &se) {
		return se.Err.Error()
	}
	return err.Error()
}

// forEach runs f for every workload name on a bounded worker pool. Each
// invocation is isolated: panics are recovered into errors, failures the
// simulator marks transient get retried (Options.Retries), and every
// failure is attributed to its workload. The map carries one entry per
// failed workload so drivers can emit partial tables; the returned error
// joins all failures (nil when every workload succeeded).
func (r *Runner) forEach(names []string, f func(name string) error) (map[string]error, error) {
	retries := r.opts.Retries
	if retries == 0 {
		retries = 1
	} else if retries < 0 {
		retries = 0
	}
	one := func(name string) (err error) {
		for attempt := 0; ; attempt++ {
			err = func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = simerr.Newf("exp", "panic: %v", p)
					}
				}()
				return f(name)
			}()
			if err == nil || attempt >= retries || !simerr.IsTransient(err) {
				break
			}
		}
		return simerr.WithWorkload(name, err)
	}

	errs := make([]error, len(names))
	if !r.opts.Parallel {
		for i, n := range names {
			errs[i] = one(n)
		}
	} else {
		workers := r.opts.MaxWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(names) {
			workers = len(names)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, n := range names {
			wg.Add(1)
			go func(i int, n string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[i] = one(n)
			}(i, n)
		}
		wg.Wait()
	}
	fails := make(map[string]error, len(names))
	for i, n := range names {
		if errs[i] != nil {
			fails[n] = errs[i]
		}
	}
	return fails, errors.Join(errs...)
}

// failReason renders the failure attached to a workload for MarkFailed
// ("not measured" when the cell is missing for another reason, e.g. an
// earlier predictor in the same workload callback failed first).
func failReason(fails map[string]error, name string) string {
	if err := fails[name]; err != nil {
		return err.Error()
	}
	return "not measured"
}

// noteFailures appends one footnote per failed workload, in input order
// so table output stays deterministic, then drains any non-fatal
// recovery warnings (truncated journal tail, discarded checkpoints)
// accumulated since the last table into footnotes as well.
func (r *Runner) noteFailures(t *stats.Table, names []string, fails map[string]error) {
	for _, n := range names {
		if err := fails[n]; err != nil {
			t.AddNote("failed: " + err.Error())
		}
	}
	for _, w := range r.drainWarnings() {
		t.AddNote("warning: " + w)
	}
}

// predictorSpec names a predictor configuration for figure rows.
type predictorSpec struct {
	label string
	make  func(r *Runner, name string) (core.Predictor, error)
}

// lvpLoads builds the paper's load-only LVP baseline.
func lvpLoads() core.Predictor {
	cfg := core.DefaultLVPConfig()
	cfg.LoadOnly = true
	return core.MustLVP(cfg, "lvp")
}

// lvpAll builds the all-instruction LVP baseline.
func lvpAll() core.Predictor {
	return core.MustLVP(core.DefaultLVPConfig(), "lvp_all")
}

// staticPredictor builds a StaticRVP from a workload's profile at the
// runner's threshold with the given support level.
func (r *Runner) staticPredictor(name string, level profile.Support, threshold float64) (core.Predictor, error) {
	pr, err := r.Profile(name)
	if err != nil {
		return nil, err
	}
	lists := pr.Lists(threshold, true, 0)
	return core.NewStaticRVP("srvp_"+level.String(), lists.Marked(level), lists.Hints(level)), nil
}

// dynamicPredictor builds a DynamicRVP with hints at the given support
// level. loadsOnly restricts candidate instructions to loads.
func (r *Runner) dynamicPredictor(name string, level profile.Support, loadsOnly bool) (core.Predictor, error) {
	opts := []core.DynamicRVPOption{core.WithName("drvp_" + level.String())}
	if loadsOnly {
		opts = append(opts, core.LoadsOnly())
	}
	if level != profile.SupportNone {
		pr, err := r.Profile(name)
		if err != nil {
			return nil, err
		}
		lists := pr.Lists(r.opts.Threshold, loadsOnly, 0)
		opts = append(opts, core.WithHints(lists.Hints(level)))
	}
	return core.NewDynamicRVP(core.DefaultCounterConfig(), opts...)
}

// speedupTable runs the spec list over all workloads and renders speedups
// over no-prediction, plus a final "average" column. scope keys the
// journal cells for this experiment.
func (r *Runner) speedupTable(scope, title string, cfg pipeline.Config, specs []predictorSpec, names []string) (*stats.Table, error) {
	cols := append(append([]string(nil), names...), "average")
	t := stats.NewTable(title, cols)
	type key struct{ spec, wl string }
	results := make(map[key]float64)
	base := make(map[string]int64)
	var mu sync.Mutex

	fails, err := r.forEach(names, func(name string) error {
		st, err := r.run(scope, name, cfg, core.NoPredictor{})
		if err != nil {
			return err
		}
		mu.Lock()
		base[name] = st.Cycles
		mu.Unlock()
		for _, sp := range specs {
			pred, err := sp.make(r, name)
			if err != nil {
				return err
			}
			ps, err := r.run(scope, name, cfg, pred)
			if err != nil {
				return err
			}
			mu.Lock()
			results[key{sp.label, name}] = float64(st.Cycles) / float64(ps.Cycles)
			mu.Unlock()
		}
		return nil
	})
	for _, sp := range specs {
		vals := map[string]float64{}
		var all []float64
		for _, n := range names {
			if v, ok := results[key{sp.label, n}]; ok {
				vals[n] = v
				all = append(all, v)
			} else {
				t.MarkFailed(sp.label, n, failReason(fails, n))
			}
		}
		if len(all) > 0 {
			vals["average"] = stats.Mean(all)
		} else {
			t.MarkFailed(sp.label, "average", "no successful runs")
		}
		t.AddRow(sp.label, "%.3f", vals)
	}
	r.noteFailures(t, names, fails)
	_ = base
	return t, err
}

// allNames returns the nine workload names.
func allNames() []string { return workloads.Names() }
