// Package exp contains one driver per table and figure in the paper's
// evaluation section. Each driver runs the relevant workloads under the
// relevant predictor/machine configurations and returns a stats.Table
// whose rows mirror the paper's series, so the experiments binary and the
// benchmark harness can regenerate every result.
//
// Methodology notes (deviations from the paper are documented in
// DESIGN.md): runs are bounded by a committed-instruction budget rather
// than 300M instructions; profiling uses the same program with a separate
// (smaller) budget, standing in for the paper's train-vs-ref input split,
// which the paper itself reports to be stable across inputs.
package exp

import (
	"sync"

	"rvpsim/internal/core"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
	"rvpsim/internal/stats"
	"rvpsim/internal/workloads"
)

// Options scales the experiments.
type Options struct {
	// Insts is the committed-instruction budget per measurement run.
	Insts uint64
	// ProfileInsts is the budget for the profiling pass.
	ProfileInsts uint64
	// Threshold is the profiler's predictability threshold (paper: 0.80,
	// except Figure 4 which uses 0.90 internally).
	Threshold float64
	// Parallel runs workloads on multiple goroutines when true.
	Parallel bool
	// Registry, when non-nil, receives every simulation run's metrics
	// (the runs attach observers publishing into it; counters aggregate
	// across the whole sweep). Instruments are updated atomically, so
	// parallel workloads are safe.
	Registry *obs.Registry
	// OnRunDone, when non-nil, is called after every completed
	// simulation run with a short "workload/predictor" label. It must be
	// safe for concurrent calls; the experiments binary points it at a
	// progress heartbeat.
	OnRunDone func(label string)
}

// DefaultOptions returns a laptop-scale configuration: large enough for
// stable warmed-up statistics, small enough to regenerate every figure in
// minutes.
func DefaultOptions() Options {
	return Options{Insts: 2_000_000, ProfileInsts: 500_000, Threshold: 0.80, Parallel: true}
}

// Runner memoises per-workload programs, profiles and baseline runs
// across experiments.
type Runner struct {
	opts Options

	mu       sync.Mutex
	programs map[string]*program.Program
	profiles map[string]*profile.Profile
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Insts == 0 {
		opts.Insts = DefaultOptions().Insts
	}
	if opts.ProfileInsts == 0 {
		opts.ProfileInsts = opts.Insts / 4
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.80
	}
	return &Runner{
		opts:     opts,
		programs: map[string]*program.Program{},
		profiles: map[string]*profile.Profile{},
	}
}

// Program returns the (memoised) program for a workload.
func (r *Runner) Program(name string) (*program.Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.programs[name]; ok {
		return p, nil
	}
	p, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	r.programs[name] = p
	return p, nil
}

// Profile returns the (memoised) register-reuse profile for a workload.
func (r *Runner) Profile(name string) (*profile.Profile, error) {
	p, err := r.Program(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if pr, ok := r.profiles[name]; ok {
		r.mu.Unlock()
		return pr, nil
	}
	r.mu.Unlock()
	pr, err := profile.Run(p, profile.Options{MaxInsts: r.opts.ProfileInsts})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.profiles[name] = pr
	r.mu.Unlock()
	return pr, nil
}

// run simulates one workload under one predictor and machine config.
func (r *Runner) run(name string, cfg pipeline.Config, pred core.Predictor) (pipeline.Stats, error) {
	p, err := r.Program(name)
	if err != nil {
		return pipeline.Stats{}, err
	}
	return r.runOn(p, cfg, pred)
}

// runOn simulates an explicit program (used for re-allocated programs).
func (r *Runner) runOn(p *program.Program, cfg pipeline.Config, pred core.Predictor) (pipeline.Stats, error) {
	sim, err := pipeline.New(cfg)
	if err != nil {
		return pipeline.Stats{}, err
	}
	if r.opts.Registry != nil {
		sim.SetObserver(obs.NewObserverWith(r.opts.Registry))
	}
	st, err := sim.Run(p, pred, r.opts.Insts)
	if err == nil && r.opts.OnRunDone != nil {
		r.opts.OnRunDone(p.Name + "/" + pred.Name())
	}
	return st, err
}

// forEach runs f for every workload name, optionally in parallel, and
// aggregates the first error.
func (r *Runner) forEach(names []string, f func(name string) error) error {
	if !r.opts.Parallel {
		for _, n := range names {
			if err := f(n); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make(chan error, len(names))
	for _, n := range names {
		n := n
		go func() { errs <- f(n) }()
	}
	var first error
	for range names {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// predictorSpec names a predictor configuration for figure rows.
type predictorSpec struct {
	label string
	make  func(r *Runner, name string) (core.Predictor, error)
}

// lvpLoads builds the paper's load-only LVP baseline.
func lvpLoads() core.Predictor {
	cfg := core.DefaultLVPConfig()
	cfg.LoadOnly = true
	return core.NewLVP(cfg, "lvp")
}

// lvpAll builds the all-instruction LVP baseline.
func lvpAll() core.Predictor {
	return core.NewLVP(core.DefaultLVPConfig(), "lvp_all")
}

// staticPredictor builds a StaticRVP from a workload's profile at the
// runner's threshold with the given support level.
func (r *Runner) staticPredictor(name string, level profile.Support, threshold float64) (core.Predictor, error) {
	pr, err := r.Profile(name)
	if err != nil {
		return nil, err
	}
	lists := pr.Lists(threshold, true, 0)
	return core.NewStaticRVP("srvp_"+level.String(), lists.Marked(level), lists.Hints(level)), nil
}

// dynamicPredictor builds a DynamicRVP with hints at the given support
// level. loadsOnly restricts candidate instructions to loads.
func (r *Runner) dynamicPredictor(name string, level profile.Support, loadsOnly bool) (core.Predictor, error) {
	opts := []core.DynamicRVPOption{core.WithName("drvp_" + level.String())}
	if loadsOnly {
		opts = append(opts, core.LoadsOnly())
	}
	if level != profile.SupportNone {
		pr, err := r.Profile(name)
		if err != nil {
			return nil, err
		}
		lists := pr.Lists(r.opts.Threshold, loadsOnly, 0)
		opts = append(opts, core.WithHints(lists.Hints(level)))
	}
	return core.NewDynamicRVP(core.DefaultCounterConfig(), opts...), nil
}

// speedupTable runs the spec list over all workloads and renders speedups
// over no-prediction, plus a final "average" column.
func (r *Runner) speedupTable(title string, cfg pipeline.Config, specs []predictorSpec, names []string) (*stats.Table, error) {
	cols := append(append([]string(nil), names...), "average")
	t := stats.NewTable(title, cols)
	type key struct{ spec, wl string }
	results := make(map[key]float64)
	base := make(map[string]int64)
	var mu sync.Mutex

	err := r.forEach(names, func(name string) error {
		st, err := r.run(name, cfg, core.NoPredictor{})
		if err != nil {
			return err
		}
		mu.Lock()
		base[name] = st.Cycles
		mu.Unlock()
		for _, sp := range specs {
			pred, err := sp.make(r, name)
			if err != nil {
				return err
			}
			ps, err := r.run(name, cfg, pred)
			if err != nil {
				return err
			}
			mu.Lock()
			results[key{sp.label, name}] = float64(st.Cycles) / float64(ps.Cycles)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		vals := map[string]float64{}
		var all []float64
		for _, n := range names {
			v := results[key{sp.label, n}]
			vals[n] = v
			all = append(all, v)
		}
		vals["average"] = stats.Mean(all)
		t.AddRow(sp.label, "%.3f", vals)
	}
	_ = base
	return t, nil
}

// allNames returns the nine workload names.
func allNames() []string { return workloads.Names() }
