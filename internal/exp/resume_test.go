package exp_test

import (
	"context"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"rvpsim/internal/exp"
	"rvpsim/internal/obs"
)

// resumeOpts is the shared small-scale configuration for the crash-safe
// experiment tests.
func resumeOpts() exp.Options {
	return exp.Options{Insts: 30_000, ProfileInsts: 15_000, Threshold: 0.80, Parallel: true}
}

var refOnce sync.Once
var refTable string
var refErr error

// refFigure5 memoises the uninterrupted reference rendering of Figure 5
// at the test scale; every resume test compares against it.
func refFigure5(t *testing.T) string {
	t.Helper()
	refOnce.Do(func() {
		tab, err := exp.NewRunner(resumeOpts()).Figure5()
		if err != nil {
			refErr = err
			return
		}
		refTable = tab.String()
	})
	if refErr != nil {
		t.Fatalf("reference Figure5: %v", refErr)
	}
	return refTable
}

// stripNotes drops footnote lines so value grids can be compared when
// one side carries recovery warnings.
func stripNotes(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "  note:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// interrupt runs Figure 5 against dir, killing the sweep via kill after
// eight completed cells, and returns the (expected) run error.
func interrupt(t *testing.T, dir string, ctx context.Context, kill func()) error {
	t.Helper()
	opts := resumeOpts()
	opts.StateDir = dir
	opts.CheckpointEvery = 8_000
	opts.Context = ctx
	var done atomic.Int32
	opts.OnRunDone = func(string) {
		if done.Add(1) == 8 {
			kill()
		}
	}
	r := exp.NewRunner(opts)
	if err := r.EnableResume(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err := r.Figure5()
	return err
}

// resumeAndCheck re-runs Figure 5 from dir and asserts the final table
// matches the uninterrupted reference (modulo footnotes when wantNotes
// is set, byte-identical otherwise).
func resumeAndCheck(t *testing.T, dir string, wantNote string) *obs.Registry {
	t.Helper()
	opts := resumeOpts()
	opts.StateDir = dir
	opts.CheckpointEvery = 8_000
	reg := obs.NewRegistry()
	opts.Registry = reg
	r := exp.NewRunner(opts)
	if err := r.EnableResume(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Journaled() == 0 {
		t.Fatal("no journaled cells survived the interruption")
	}
	tab, err := r.Figure5()
	if err != nil {
		t.Fatalf("resumed Figure5: %v", err)
	}
	got := tab.String()
	want := refFigure5(t)
	if wantNote == "" {
		if got != want {
			t.Errorf("resumed table is not byte-identical to uninterrupted run:\n--- got\n%s--- want\n%s", got, want)
		}
	} else {
		if stripNotes(got) != stripNotes(want) {
			t.Errorf("resumed table values differ from uninterrupted run:\n--- got\n%s--- want\n%s", got, want)
		}
		if !strings.Contains(got, wantNote) {
			t.Errorf("resumed table is missing the recovery footnote %q:\n%s", wantNote, got)
		}
	}
	if reg.Counter("exp_journal_replayed", "").Value() == 0 {
		t.Error("resume did not replay any journaled cells")
	}
	return reg
}

// TestKillAndResumeContextCancel is the end-to-end acceptance check:
// cancel a sweep mid-run, rerun with resume enabled, and the final table
// must be byte-identical to an uninterrupted run, with completed cells
// replayed from the journal and in-flight runs re-entered from their
// checkpoints.
func TestKillAndResumeContextCancel(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := interrupt(t, dir, ctx, cancel); err == nil {
		t.Fatal("interrupted sweep reported no error")
	}
	reg := resumeAndCheck(t, dir, "")
	if matches, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*.ckpt")); len(matches) > 0 {
		// Finished cells must clean their checkpoints up.
		t.Errorf("stale checkpoints left after a completed resume: %v", matches)
	}
	_ = reg
}

// TestKillAndResumeSIGTERM drives the same path through a real signal:
// the sweep's context comes from signal.NotifyContext and the "kill" is
// a SIGTERM to our own process.
func TestKillAndResumeSIGTERM(t *testing.T) {
	dir := t.TempDir()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	err := interrupt(t, dir, ctx, func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	})
	if err == nil {
		t.Fatal("SIGTERM'd sweep reported no error")
	}
	stop()
	resumeAndCheck(t, dir, "")
}

// TestResumeCorruptJournalTail damages the journal's tail — a torn
// final record plus trailing garbage — and asserts the rerun recovers:
// the damaged records are truncated with a footnoted warning, their
// cells re-simulated, and the values identical to the reference.
func TestResumeCorruptJournalTail(t *testing.T) {
	dir := t.TempDir()
	opts := resumeOpts()
	opts.StateDir = dir
	r := exp.NewRunner(opts)
	if err := r.EnableResume(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Figure5(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Tear the last record and append garbage after it.
	path := exp.JournalPath(dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n{\"crc\":1,\"rec\":{\"key\":\"bogus")
	f.Close()

	resumeAndCheck(t, dir, "warning: journal")
}

// TestResumeTruncatedCheckpoint truncates every checkpoint left by an
// interrupted sweep and asserts the rerun treats them as corrupt:
// footnoted warning, cells recomputed from scratch, values identical.
func TestResumeTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := interrupt(t, dir, ctx, cancel); err == nil {
		t.Fatal("interrupted sweep reported no error")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("interrupted sweep left no checkpoints to damage")
	}
	for _, m := range matches {
		if err := os.Truncate(m, 10); err != nil {
			t.Fatal(err)
		}
	}
	reg := resumeAndCheck(t, dir, "warning: checkpoint")
	if reg.Counter("exp_ckpt_corrupt", "").Value() == 0 {
		t.Error("no corrupt-checkpoint recovery counted")
	}
}
