package exp

// Tests for the sweep-level warmup sharing: one functional warmup per
// workload, forked into every cell, with results identical to driving
// the pipeline's warmed path by hand — plus the machine-saturation
// guard that a parallel sweep's run loop never serializes on a shared
// lock in the simulator packages.

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"rvpsim/internal/core"
	"rvpsim/internal/obs"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/workloads"
)

// TestWarmupSharedAcrossCells: a sweep of three predictors over one
// workload pays exactly one warmup, forks it three times, and each cell
// reports the stats the pipeline's warmed path produces directly.
func TestWarmupSharedAcrossCells(t *testing.T) {
	const (
		warmN  = 30_000
		budget = 50_000
	)
	reg := obs.NewRegistry()
	r := NewRunner(Options{
		Insts:       budget,
		WarmupInsts: warmN,
		Registry:    reg,
	})
	cfg := pipeline.BaselineConfig()
	preds := []core.Predictor{
		core.NoPredictor{},
		core.MustDynamicRVP(core.DefaultCounterConfig()),
		core.MustLVP(core.DefaultLVPConfig(), "lvp"),
	}

	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pipeline.Warmup(prog, warmN)
	if err != nil {
		t.Fatal(err)
	}

	for _, pred := range preds {
		got, err := r.run("warmtest", "li", cfg, pred)
		if err != nil {
			t.Fatalf("%s: %v", pred.Name(), err)
		}
		// Reference: the same cell driven through the pipeline directly,
		// with a private fork of an identical warm state.
		var ref core.Predictor
		switch pred.Name() {
		case core.NoPredictor{}.Name():
			ref = core.NoPredictor{}
		case "lvp":
			ref = core.MustLVP(core.DefaultLVPConfig(), "lvp")
		default:
			ref = core.MustDynamicRVP(core.DefaultCounterConfig())
		}
		want, err := pipeline.MustNew(cfg).RunWarmedContext(t.Context(), warm, prog, ref, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: sweep cell stats diverge from direct warmed run:\n got %+v\nwant %+v",
				pred.Name(), got, want)
		}
		if got.Committed != budget {
			t.Fatalf("%s: measured phase committed %d, want %d", pred.Name(), got.Committed, budget)
		}
	}

	if v := reg.Counter("exp_warmup_runs", "").Value(); v != 1 {
		t.Fatalf("exp_warmup_runs = %d, want 1 (one warmup per workload)", v)
	}
	if v := reg.Counter("exp_warmup_forks", "").Value(); v != int64(len(preds)) {
		t.Fatalf("exp_warmup_forks = %d, want %d (one fork per cell)", v, len(preds))
	}
}

// TestWarmupDisabledByDefault: WarmupInsts zero keeps the historical
// cold-start methodology — no warmups, no forks, identical stats to a
// cold pipeline run.
func TestWarmupDisabledByDefault(t *testing.T) {
	const budget = 50_000
	reg := obs.NewRegistry()
	r := NewRunner(Options{Insts: budget, Registry: reg})
	cfg := pipeline.BaselineConfig()
	got, err := r.run("coldtest", "li", cfg, core.MustDynamicRVP(core.DefaultCounterConfig()))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipeline.MustNew(cfg).Run(prog, core.MustDynamicRVP(core.DefaultCounterConfig()), budget)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cold sweep cell diverges from direct run:\n got %+v\nwant %+v", got, want)
	}
	if v := reg.Counter("exp_warmup_runs", "").Value(); v != 0 {
		t.Fatalf("exp_warmup_runs = %d, want 0 with warmup disabled", v)
	}
	if v := reg.Counter("exp_warmup_forks", "").Value(); v != 0 {
		t.Fatalf("exp_warmup_forks = %d, want 0 with warmup disabled", v)
	}
}

// BenchmarkWarmupSharing quantifies the copy-on-write fork win on a
// multi-config single-workload sweep: six cells (three predictors under
// two machine configs), each needing the same 1.5M-instruction warmup
// before a 200k measured phase. "shared" pays the warmup once through
// the Runner and forks it into every cell; "percell" is the methodology
// it replaces, where every cell fast-forwards privately. The gap is the
// wall time the sweep no longer spends re-executing identical prefixes.
func BenchmarkWarmupSharing(b *testing.B) {
	const (
		warmN  = 1_500_000
		budget = 200_000
	)
	prog, err := workloads.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	cfgs := []pipeline.Config{pipeline.BaselineConfig(), pipeline.AggressiveConfig()}
	mkPreds := func() []core.Predictor {
		return []core.Predictor{
			core.NoPredictor{},
			core.MustDynamicRVP(core.DefaultCounterConfig()),
			core.MustLVP(core.DefaultLVPConfig(), "lvp"),
		}
	}

	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewRunner(Options{Insts: budget, WarmupInsts: warmN})
			for _, cfg := range cfgs {
				for _, pred := range mkPreds() {
					if _, err := r.run("bench", "li", cfg, pred); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("percell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				for _, pred := range mkPreds() {
					warm, err := pipeline.Warmup(prog, warmN)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := pipeline.MustNew(cfg).RunWarmedContext(b.Context(), warm, prog, pred, budget); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// TestParallelSweepContentionFree is the lock audit for the saturation
// path: with mutex profiling at full fidelity, a parallel sweep (several
// workers, shared registry, shared warm states) must produce zero
// contention events inside the simulator's hot packages — pipeline, mem,
// core, emu, bpred. Coordination locks (the runner's own memoization,
// the metrics registry's name table) are allowed; the run loop itself
// must never serialize workers.
func TestParallelSweepContentionFree(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates ~1M instructions; skipped with -short")
	}
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	reg := obs.NewRegistry()
	r := NewRunner(Options{
		Insts:       150_000,
		WarmupInsts: 20_000,
		Parallel:    true,
		MaxWorkers:  4,
		Registry:    reg,
	})
	// Two predictors per workload so workers overlap on the same warm
	// state and the same per-config simulator pool.
	fails, err := r.forEach(workloads.Names(), func(name string) error {
		if _, err := r.run("contention", name, pipeline.BaselineConfig(), core.MustDynamicRVP(core.DefaultCounterConfig())); err != nil {
			return err
		}
		_, err := r.run("contention", name, pipeline.BaselineConfig(), core.MustLVP(core.DefaultLVPConfig(), "lvp"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, ferr := range fails {
		t.Fatalf("%s: %v", name, ferr)
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	profile := buf.String()
	var offending []string
	for _, block := range strings.Split(profile, "\n\n") {
		for _, pkg := range []string{
			"rvpsim/internal/pipeline.",
			"rvpsim/internal/mem.",
			"rvpsim/internal/core.",
			"rvpsim/internal/emu.",
			"rvpsim/internal/bpred.",
		} {
			if strings.Contains(block, pkg) {
				offending = append(offending, fmt.Sprintf("%s:\n%s", pkg, block))
			}
		}
	}
	if len(offending) > 0 {
		t.Fatalf("parallel sweep contends on locks in simulator hot packages:\n%s",
			strings.Join(offending, "\n---\n"))
	}
}
