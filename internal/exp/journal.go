package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/vfs"
	"rvpsim/internal/wal"
)

// Journal is the write-ahead results log for a sweep: every finished
// cell (one workload × predictor × experiment simulation run) is
// appended — and fsync'd — before its result enters any table, so a
// crash can lose at most the in-flight runs. Completed cells found in
// the journal are replayed from it instead of re-simulated.
//
// The durability mechanics — CRC envelope, fsync-per-append, torn-tail
// repair on open, interior-corruption refusal — live in internal/wal;
// this type is the sweep-shaped layer on top. The on-disk format is
// unchanged from the pre-engine journal, so old state dirs resume.
type Journal struct {
	mu   sync.Mutex
	w    *wal.WAL
	done map[string]pipeline.Stats

	// Truncated reports how many damaged tail records were dropped when
	// the journal was opened.
	Truncated int
}

// journalRecord is the payload: which cell finished and its result.
type journalRecord struct {
	Key   string         `json:"key"`
	Stats pipeline.Stats `json:"stats"`
}

// OpenJournal opens (creating if absent) the journal at path and
// replays every valid record, via the real filesystem. A torn tail is
// repaired and counted in Journal.Truncated; interior damage is a typed
// error (see internal/wal).
func OpenJournal(path string) (*Journal, error) { return OpenJournalFS(path, nil, nil) }

// OpenJournalFS is OpenJournal through an explicit filesystem seam (nil
// means vfs.OS) with optional wal metrics.
func OpenJournalFS(path string, fsys vfs.FS, met *wal.Metrics) (*Journal, error) {
	j := &Journal{done: map[string]pipeline.Stats{}}
	w, err := wal.Open(path, wal.Options{FS: fsys, Name: "journal", Metrics: met}, func(raw json.RawMessage) error {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		if rec.Key == "" {
			return simerr.Newf("journal", "record with empty cell key")
		}
		j.done[rec.Key] = rec.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	j.w = w
	j.Truncated = w.Truncated
	return j, nil
}

// Lookup reports the journaled result for a cell, if present.
func (j *Journal) Lookup(key string) (pipeline.Stats, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, ok := j.done[key]
	return st, ok
}

// Len reports how many completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one finished cell and fsyncs before returning, making
// the write-ahead guarantee: the result is durable before any table
// aggregation sees it.
func (j *Journal) Record(key string, st pipeline.Stats) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Append(journalRecord{Key: key, Stats: st}); err != nil {
		return err
	}
	j.done[key] = st
	return nil
}

// Close closes the underlying log.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}

// runKey names one sweep cell: scope, workload, predictor, and a digest
// of the machine configuration. The scope disambiguates cells that share
// all three of the others but differ in how the predictor was trained
// (Figure 3's 80% profile threshold vs Figure 4's 90%, the extended
// sweep's four counter thresholds); the config digest separates the same
// predictor run under different machines (Figure 4's three recovery
// schemes, Figure 8's 16-wide core).
func runKey(scope, workload, predictor string, cfg pipeline.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", cfg)))
	return scope + "/" + workload + "/" + predictor + "@" + hex.EncodeToString(sum[:4])
}

// ckptFile maps a cell key to its checkpoint path under dir: a digest
// keeps arbitrary key characters out of the filesystem namespace.
func ckptFile(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "ckpt", hex.EncodeToString(sum[:8])+".ckpt")
}

// JournalPath is the journal's location inside a state directory.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// warning records a non-fatal recovery event (corrupt journal tail
// truncated, damaged checkpoint discarded) destined for a table
// footnote.
func (r *Runner) warn(format string, args ...any) {
	r.mu.Lock()
	r.warnings = append(r.warnings, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// drainWarnings returns and clears accumulated warnings.
func (r *Runner) drainWarnings() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.warnings
	r.warnings = nil
	return w
}
