package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
)

// Journal is the write-ahead results log for a sweep: every finished
// cell (one workload × predictor × experiment simulation run) is
// appended — and fsync'd — before its result enters any table, so a
// crash can lose at most the in-flight runs. Records are JSON lines,
// each wrapped in a checksum envelope; on open, a torn or corrupt tail
// (the signature of a crash mid-append) is detected and truncated away,
// never fatal. Completed cells found in the journal are replayed from it
// instead of re-simulated.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]pipeline.Stats

	// Truncated reports how many damaged tail records were dropped when
	// the journal was opened.
	Truncated int
}

// journalEnvelope is one line on disk: Rec's exact bytes are protected
// by CRC-32 (IEEE), so a torn write or bit flip in either field fails
// validation.
type journalEnvelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// journalRecord is the payload: which cell finished and its result.
type journalRecord struct {
	Key   string         `json:"key"`
	Stats pipeline.Stats `json:"stats"`
}

// OpenJournal opens (creating if absent) the journal at path and replays
// every valid record. The first damaged record and everything after it
// are truncated from the file; the count of dropped records is available
// as Journal.Truncated.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, simerr.New("journal", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, simerr.New("journal", err)
	}
	j := &Journal{f: f, done: map[string]pipeline.Stats{}}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, simerr.New("journal", err)
	}
	// Writers always terminate records with '\n', so an unterminated
	// final line is by definition a torn write.
	valid := 0 // byte offset past the last valid record
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break
		}
		rec, ok := parseJournalLine(data[valid : valid+nl])
		if !ok {
			break
		}
		j.done[rec.Key] = rec.Stats
		valid += nl + 1
	}
	if valid < len(data) {
		// Count what is being dropped: the bad record plus anything after
		// it (replay must not resume past a hole in the log).
		j.Truncated = 1 + bytes.Count(data[valid:], []byte{'\n'})
		if data[len(data)-1] == '\n' {
			j.Truncated--
		}
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, simerr.New("journal", err)
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, simerr.New("journal", err)
	}
	return j, nil
}

// parseJournalLine validates one envelope line.
func parseJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	if len(bytes.TrimSpace(line)) == 0 {
		return rec, false
	}
	var env journalEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return rec, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return rec, false
	}
	if err := json.Unmarshal(env.Rec, &rec); err != nil || rec.Key == "" {
		return rec, false
	}
	return rec, true
}

// Lookup reports the journaled result for a cell, if present.
func (j *Journal) Lookup(key string) (pipeline.Stats, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, ok := j.done[key]
	return st, ok
}

// Len reports how many completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one finished cell and fsyncs before returning, making
// the write-ahead guarantee: the result is durable before any table
// aggregation sees it.
func (j *Journal) Record(key string, st pipeline.Stats) error {
	rec, err := json.Marshal(journalRecord{Key: key, Stats: st})
	if err != nil {
		return simerr.New("journal", err)
	}
	line, err := json.Marshal(journalEnvelope{CRC: crc32.ChecksumIEEE(rec), Rec: rec})
	if err != nil {
		return simerr.New("journal", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return simerr.New("journal", err)
	}
	if err := j.f.Sync(); err != nil {
		return simerr.New("journal", err)
	}
	j.done[key] = st
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// runKey names one sweep cell: scope, workload, predictor, and a digest
// of the machine configuration. The scope disambiguates cells that share
// all three of the others but differ in how the predictor was trained
// (Figure 3's 80% profile threshold vs Figure 4's 90%, the extended
// sweep's four counter thresholds); the config digest separates the same
// predictor run under different machines (Figure 4's three recovery
// schemes, Figure 8's 16-wide core).
func runKey(scope, workload, predictor string, cfg pipeline.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", cfg)))
	return scope + "/" + workload + "/" + predictor + "@" + hex.EncodeToString(sum[:4])
}

// ckptFile maps a cell key to its checkpoint path under dir: a digest
// keeps arbitrary key characters out of the filesystem namespace.
func ckptFile(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "ckpt", hex.EncodeToString(sum[:8])+".ckpt")
}

// JournalPath is the journal's location inside a state directory.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// warning records a non-fatal recovery event (corrupt journal tail
// truncated, damaged checkpoint discarded) destined for a table
// footnote.
func (r *Runner) warn(format string, args ...any) {
	r.mu.Lock()
	r.warnings = append(r.warnings, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// drainWarnings returns and clears accumulated warnings.
func (r *Runner) drainWarnings() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.warnings
	r.warnings = nil
	return w
}
