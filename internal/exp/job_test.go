package exp

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"rvpsim/internal/faultinject"
	"rvpsim/internal/obs"
	"rvpsim/internal/simerr"
)

func TestJobSpecValidate(t *testing.T) {
	good := []JobSpec{
		{Kind: "run", Workload: "go", Predictor: "rvp"},
		{Kind: "run", Workload: "hydro2d", Predictor: "none", Recovery: "refetch"},
		{Kind: "run", Workload: "perl", Predictor: "lvp", Recovery: "reissue", Insts: 1000},
		{Kind: "figure", Figure: "fig5"},
		{Kind: "figure", Figure: "fig1", Insts: 5000},
	}
	for _, s := range good {
		s.Normalize(0)
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []JobSpec{
		{},
		{Kind: "nope"},
		{Kind: "run", Workload: "nonesuch", Predictor: "rvp"},
		{Kind: "run", Workload: "go", Predictor: "nonesuch"},
		{Kind: "run", Workload: "go", Predictor: "rvp", Recovery: "nonesuch"},
		{Kind: "run", Workload: "go", Predictor: "rvp", Figure: "fig5"},
		{Kind: "figure", Figure: "fig2"},
		{Kind: "figure", Figure: "fig5", Workload: "go"},
		{Kind: "run", Workload: "go", Predictor: "rvp", Insts: MaxJobInsts + 1},
		{Kind: "run", Workload: "go", Predictor: "rvp", Threshold: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		} else if !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("Validate(%+v) = %v, want ErrConfig", s, err)
		}
	}
}

func TestJobSpecDigestStable(t *testing.T) {
	a := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp"}
	b := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp"}
	a.Normalize(50_000)
	b.Normalize(50_000)
	if a.Digest() != b.Digest() {
		t.Fatalf("equal normalized specs digest differently: %s vs %s", a.Digest(), b.Digest())
	}
	// Normalization itself must be what makes explicit and defaulted
	// equivalents collide.
	c := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Recovery: "selective",
		Insts: 50_000, ProfileInsts: 12_500, Threshold: 0.80}
	if c.Digest() != a.Digest() {
		t.Fatalf("explicit spec digests differently from normalized default")
	}
	d := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Recovery: "refetch"}
	d.Normalize(50_000)
	if d.Digest() == a.Digest() {
		t.Fatalf("different recovery, same digest")
	}
}

func TestRunJobRun(t *testing.T) {
	spec := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 20_000}
	res, err := RunJob(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if res.Stats == nil || res.Table != nil {
		t.Fatalf("run job result shape wrong: %+v", res)
	}
	if res.Stats.Committed == 0 {
		t.Fatalf("run job committed nothing")
	}
}

func TestRunJobFigure(t *testing.T) {
	spec := JobSpec{Kind: "figure", Figure: "fig1", Insts: 20_000}
	res, err := RunJob(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if res.Table == nil || res.Text == "" {
		t.Fatalf("figure job result shape wrong: %+v", res)
	}
}

func TestRunJobInvalidSpec(t *testing.T) {
	if _, err := RunJob(context.Background(), JobSpec{Kind: "bogus"}, Options{}); !errors.Is(err, simerr.ErrConfig) {
		t.Fatalf("invalid spec error = %v, want ErrConfig", err)
	}
}

// TestRunJobTransientRetry proves the job entry retries once on a
// failure the simulator marks transient: one injected transient
// checkpoint fault fails the first attempt, and the retry (same
// injector, counters past the fault) succeeds.
func TestRunJobTransientRetry(t *testing.T) {
	reg := obs.NewRegistry()
	opts := Options{
		Faults:   map[string]faultinject.Config{"go": {Transient: 1}},
		Registry: reg,
	}
	spec := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 20_000}
	res, err := RunJob(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("RunJob with transient fault: %v", err)
	}
	if res.Stats == nil {
		t.Fatalf("no stats after retry")
	}
	if got := reg.Counter("exp_transient_retries", "").Value(); got != 1 {
		t.Fatalf("exp_transient_retries = %d, want 1", got)
	}
}

// TestRunJobResumesFromStateDir proves the crash-safe path: a job
// interrupted by context cancellation leaves journal/checkpoint state
// behind, and rerunning the same spec against the same StateDir
// produces a result identical to an uninterrupted run.
func TestRunJobResumesFromStateDir(t *testing.T) {
	spec := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 60_000}

	ref, err := RunJob(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "state")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // run is canceled before the first commit batch completes
	if _, err := RunJob(ctx, spec, Options{StateDir: dir, CheckpointEvery: 5_000}); err == nil {
		t.Fatalf("canceled run reported no error")
	}

	res, err := RunJob(context.Background(), spec, Options{StateDir: dir, CheckpointEvery: 5_000})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if *res.Stats != *ref.Stats {
		t.Fatalf("resumed stats differ from uninterrupted run:\n got %+v\nwant %+v", *res.Stats, *ref.Stats)
	}
}

// TestRunJobTracedWithProgress proves the observability plumbing end to
// end at the exp layer: a traced run job emits a connected span tree
// (job root -> sim run) parented under the caller's span, fires the
// progress heartbeat on the requested cadence with monotonically
// increasing committed counts, and reports a checkpoint callback for
// each periodic checkpoint.
func TestRunJobTracedWithProgress(t *testing.T) {
	tr := obs.NewTracer("test", 64)
	root := tr.Start(obs.SpanContext{}, "root")

	var mu sync.Mutex
	var progress []uint64
	var ckpts, progLabels []string
	opts := Options{
		Tracer:        tr,
		TraceParent:   root.Context(),
		ProgressEvery: 5_000,
		OnProgress: func(label string, committed uint64, cycles int64) {
			mu.Lock()
			progress = append(progress, committed)
			progLabels = append(progLabels, label)
			mu.Unlock()
			if cycles <= 0 {
				t.Errorf("progress cycles = %d, want > 0", cycles)
			}
		},
		OnCheckpoint: func(label string) {
			mu.Lock()
			ckpts = append(ckpts, label)
			mu.Unlock()
		},
		StateDir:        filepath.Join(t.TempDir(), "state"),
		CheckpointEvery: 10_000,
	}
	spec := JobSpec{Kind: "run", Workload: "go", Predictor: "rvp", Insts: 30_000}
	if _, err := RunJob(context.Background(), spec, opts); err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	root.End()

	mu.Lock()
	defer mu.Unlock()
	if len(progress) < 3 {
		t.Fatalf("progress fired %d times over 30k insts at 5k cadence, want >= 3", len(progress))
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] <= progress[i-1] {
			t.Fatalf("progress not monotonic: %v", progress)
		}
	}
	for _, l := range progLabels {
		if l != "go/drvp" {
			t.Fatalf("progress label = %q, want go/drvp", l)
		}
	}
	if len(ckpts) == 0 {
		t.Fatalf("no checkpoint callbacks over 30k insts at 10k cadence")
	}

	spans := tr.Spans()
	if !obs.ConnectedTrace(spans) {
		t.Fatalf("trace not connected: %+v", spans)
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		if s.Trace != root.Context().Trace {
			t.Fatalf("span %q on trace %q, want %q", s.Name, s.Trace, root.Context().Trace)
		}
	}
	for _, want := range []string{"root", "job:run", "sim:go/drvp"} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
}
