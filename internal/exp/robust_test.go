package exp

// Robustness e2e tests: a sweep where some workloads are forced (via
// fault injection) to error, panic, or hang past the watchdog must still
// complete and emit a partial table with the failed cells annotated,
// rather than sinking the whole experiment.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rvpsim/internal/faultinject"
	"rvpsim/internal/simerr"
	"rvpsim/internal/stats"
)

func robustRunner(t *testing.T, faults map[string]faultinject.Config) *Runner {
	t.Helper()
	return NewRunner(Options{
		Insts:          100_000,
		ProfileInsts:   50_000,
		Parallel:       true,
		WatchdogCycles: 200_000,
		Faults:         faults,
	})
}

// requireFailed asserts every row of the table marks the workload's
// column failed, and no other workload column is marked.
func requireFailed(t *testing.T, tab *stats.Table, wl string) {
	t.Helper()
	for _, label := range tab.RowLabels() {
		if _, ok := tab.Failed(label, wl); !ok {
			t.Errorf("row %q: column %q not marked failed", label, wl)
		}
		for _, n := range names() {
			if n == wl {
				continue
			}
			if reason, ok := tab.Failed(label, n); ok {
				t.Errorf("row %q: healthy workload %q marked failed: %s", label, n, reason)
			}
		}
	}
}

// TestPartialSweepOnError forces one workload's runs to fail at the
// first fault checkpoint: the sweep reports the failure but the other
// eight workloads' results survive.
func TestPartialSweepOnError(t *testing.T) {
	r := robustRunner(t, map[string]faultinject.Config{
		"li": {FailAfter: 1},
	})
	tab, err := r.Figure5()
	if err == nil {
		t.Fatal("sweep with an injected failure returned no error")
	}
	if !errors.Is(err, simerr.ErrInjected) {
		t.Fatalf("want ErrInjected in joined error, got %v", err)
	}
	if !strings.Contains(err.Error(), "li") {
		t.Fatalf("error does not name the failed workload: %v", err)
	}
	if tab == nil {
		t.Fatal("no partial table returned")
	}
	requireFailed(t, tab, "li")
	for _, label := range tab.RowLabels() {
		row := tab.Row(label)
		for _, n := range names() {
			if n == "li" {
				continue
			}
			if row[n] <= 0 {
				t.Errorf("row %q: healthy workload %q has no result", label, n)
			}
		}
		if row["average"] <= 0 {
			t.Errorf("row %q: average over surviving workloads missing", label)
		}
	}
	if len(tab.Notes) == 0 || !strings.Contains(strings.Join(tab.Notes, "\n"), "li") {
		t.Errorf("failure footnote missing: %v", tab.Notes)
	}
	if !strings.Contains(tab.String(), "ERR") {
		t.Error("rendered table does not show ERR for failed cells")
	}
}

// TestPartialSweepOnPanic forces one workload to panic inside the run:
// the runner's recover turns it into an attributed error and the sweep
// still completes.
func TestPartialSweepOnPanic(t *testing.T) {
	r := robustRunner(t, map[string]faultinject.Config{
		"mgrid": {PanicAfter: 1},
	})
	tab, err := r.Figure5()
	if err == nil {
		t.Fatal("sweep with an injected panic returned no error")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "mgrid") {
		t.Fatalf("panic not converted to an attributed error: %v", err)
	}
	if tab == nil {
		t.Fatal("no partial table returned")
	}
	requireFailed(t, tab, "mgrid")
}

// TestPartialSweepOnHang forces one workload's memory accesses to stall
// past the watchdog: the run aborts with ErrNoProgress instead of
// hanging, and the sweep completes with the cell marked.
func TestPartialSweepOnHang(t *testing.T) {
	r := robustRunner(t, map[string]faultinject.Config{
		"perl": {MemEvery: 10, MemExtra: 1_000_000},
	})
	tab, err := r.Figure5()
	if err == nil {
		t.Fatal("sweep with a hung workload returned no error")
	}
	if !errors.Is(err, simerr.ErrNoProgress) {
		t.Fatalf("want ErrNoProgress in joined error, got %v", err)
	}
	if tab == nil {
		t.Fatal("no partial table returned")
	}
	requireFailed(t, tab, "perl")
}

// TestTransientFaultRetried checks a fault marked transient is retried
// by forEach and the sweep succeeds end to end: the same injector keeps
// counting, so the retry's checkpoints pass.
func TestTransientFaultRetried(t *testing.T) {
	r := robustRunner(t, map[string]faultinject.Config{
		"su2cor": {Transient: 1},
	})
	tab, err := r.Figure5()
	if err != nil {
		t.Fatalf("transient fault not absorbed by retry: %v", err)
	}
	if cells := tab.FailedCells(); len(cells) != 0 {
		t.Fatalf("cells marked failed after successful retry: %v", cells)
	}
}

// TestSweepContextCanceled checks a canceled runner context aborts the
// whole sweep with context.Canceled and still yields the partial table.
func TestSweepContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Options{
		Insts:        100_000,
		ProfileInsts: 50_000,
		Parallel:     true,
		Context:      ctx,
	})
	tab, err := r.Figure5()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if tab == nil {
		t.Fatal("no partial table returned")
	}
	for _, label := range tab.RowLabels() {
		for _, n := range names() {
			if _, ok := tab.Failed(label, n); !ok {
				t.Errorf("row %q column %q not marked failed after cancellation", label, n)
			}
		}
	}
}
