package exp

import (
	"errors"
	"fmt"
	"sync"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/stats"
)

// StorageTable is an extension beyond the paper's figures: the cost/benefit
// comparison its introduction argues in prose. For each predictor it
// reports the average speedup across the nine workloads next to the
// value-prediction storage the scheme needs (in Kbits). RVP's storage is
// three orders of magnitude below the context predictor's.
func (r *Runner) StorageTable() (*stats.Table, error) {
	names := allNames()
	t := stats.NewTable("Extension: predictor cost/benefit (avg speedup vs storage)",
		[]string{"storage Kbit", "avg speedup"})

	specs := []struct {
		label string
		bits  int
		mk    func() core.Predictor
	}{
		{"drvp (storageless)", core.RVPStorageBits(core.DefaultCounterConfig()),
			func() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) }},
		{"G&M register pred", 64 * 3,
			func() core.Predictor { return core.MustGabbayRVP(core.DefaultCounterConfig(), false) }},
		{"lvp", core.MustLVP(core.DefaultLVPConfig(), "x").StorageBits(),
			lvpAll},
		{"stride", core.MustStridePredictor(core.DefaultStrideConfig()).StorageBits(),
			func() core.Predictor { return core.MustStridePredictor(core.DefaultStrideConfig()) }},
		{"context (order 2)", core.MustContextPredictor(core.DefaultContextConfig()).StorageBits(),
			func() core.Predictor { return core.MustContextPredictor(core.DefaultContextConfig()) }},
	}

	type key struct{ spec, wl string }
	speed := map[key]float64{}
	var mu sync.Mutex
	fails, err := r.forEach(names, func(name string) error {
		base, err := r.run("ext_storage", name, pipeline.BaselineConfig(), core.NoPredictor{})
		if err != nil {
			return err
		}
		for _, sp := range specs {
			st, err := r.run("ext_storage", name, pipeline.BaselineConfig(), sp.mk())
			if err != nil {
				return err
			}
			mu.Lock()
			speed[key{sp.label, name}] = float64(base.Cycles) / float64(st.Cycles)
			mu.Unlock()
		}
		return nil
	})
	for _, sp := range specs {
		var all []float64
		for _, n := range names {
			if v, ok := speed[key{sp.label, n}]; ok {
				all = append(all, v)
			}
		}
		row := map[string]float64{"storage Kbit": float64(sp.bits) / 1024}
		if len(all) > 0 {
			row["avg speedup"] = stats.Mean(all)
		} else {
			t.MarkFailed(sp.label, "avg speedup", "no successful runs")
		}
		t.AddRow(sp.label, "%.3f", row)
	}
	r.noteFailures(t, names, fails)
	t.AddNote("storage counts value-prediction state only (values, tags, strides, histories, counters)")
	return t, err
}

// ThresholdTable is a second extension: the confidence-threshold sweep
// across the whole suite, showing the accuracy/coverage trade the paper's
// resetting counters make at threshold 7.
func (r *Runner) ThresholdTable() (*stats.Table, error) {
	names := allNames()
	t := stats.NewTable("Extension: confidence threshold sweep (dynamic RVP, all instructions)",
		[]string{"avg speedup", "coverage %", "accuracy %"})
	allFails := map[string]error{}
	var errs []error
	for _, th := range []uint8{1, 3, 5, 7} {
		scope := fmt.Sprintf("ext_threshold_%d", th)
		cc := core.DefaultCounterConfig()
		cc.Threshold = th
		type acc struct{ spd, cov, accy float64 }
		var mu sync.Mutex
		var rows []acc
		fails, err := r.forEach(names, func(name string) error {
			base, err := r.run(scope, name, pipeline.BaselineConfig(), core.NoPredictor{})
			if err != nil {
				return err
			}
			pred, err := core.NewDynamicRVP(cc)
			if err != nil {
				return err
			}
			st, err := r.run(scope, name, pipeline.BaselineConfig(), pred)
			if err != nil {
				return err
			}
			mu.Lock()
			rows = append(rows, acc{
				spd:  float64(base.Cycles) / float64(st.Cycles),
				cov:  100 * st.Coverage(),
				accy: 100 * st.Accuracy(),
			})
			mu.Unlock()
			return nil
		})
		if err != nil {
			errs = append(errs, err)
		}
		for n, e := range fails {
			allFails[n] = e
		}
		label := "threshold " + string('0'+th)
		if len(rows) == 0 {
			for _, c := range []string{"avg speedup", "coverage %", "accuracy %"} {
				t.MarkFailed(label, c, "no successful runs")
			}
			t.AddRow(label, "%.3f", map[string]float64{})
			continue
		}
		var spd, cov, accy []float64
		for _, x := range rows {
			spd = append(spd, x.spd)
			cov = append(cov, x.cov)
			accy = append(accy, x.accy)
		}
		t.AddRow(label, "%.3f", map[string]float64{
			"avg speedup": stats.Mean(spd),
			"coverage %":  stats.Mean(cov),
			"accuracy %":  stats.Mean(accy),
		})
	}
	r.noteFailures(t, names, allFails)
	return t, errors.Join(errs...)
}
