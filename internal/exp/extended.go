package exp

import (
	"sync"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/stats"
)

// StorageTable is an extension beyond the paper's figures: the cost/benefit
// comparison its introduction argues in prose. For each predictor it
// reports the average speedup across the nine workloads next to the
// value-prediction storage the scheme needs (in Kbits). RVP's storage is
// three orders of magnitude below the context predictor's.
func (r *Runner) StorageTable() (*stats.Table, error) {
	names := allNames()
	t := stats.NewTable("Extension: predictor cost/benefit (avg speedup vs storage)",
		[]string{"storage Kbit", "avg speedup"})

	specs := []struct {
		label string
		bits  int
		mk    func() core.Predictor
	}{
		{"drvp (storageless)", core.RVPStorageBits(core.DefaultCounterConfig()),
			func() core.Predictor { return core.NewDynamicRVP(core.DefaultCounterConfig()) }},
		{"G&M register pred", 64 * 3,
			func() core.Predictor { return core.NewGabbayRVP(core.DefaultCounterConfig(), false) }},
		{"lvp", core.NewLVP(core.DefaultLVPConfig(), "x").StorageBits(),
			lvpAll},
		{"stride", core.NewStridePredictor(core.DefaultStrideConfig()).StorageBits(),
			func() core.Predictor { return core.NewStridePredictor(core.DefaultStrideConfig()) }},
		{"context (order 2)", core.NewContextPredictor(core.DefaultContextConfig()).StorageBits(),
			func() core.Predictor { return core.NewContextPredictor(core.DefaultContextConfig()) }},
	}

	type key struct{ spec, wl string }
	speed := map[key]float64{}
	var mu sync.Mutex
	err := r.forEach(names, func(name string) error {
		base, err := r.run(name, pipeline.BaselineConfig(), core.NoPredictor{})
		if err != nil {
			return err
		}
		for _, sp := range specs {
			st, err := r.run(name, pipeline.BaselineConfig(), sp.mk())
			if err != nil {
				return err
			}
			mu.Lock()
			speed[key{sp.label, name}] = float64(base.Cycles) / float64(st.Cycles)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		var all []float64
		for _, n := range names {
			all = append(all, speed[key{sp.label, n}])
		}
		t.AddRow(sp.label, "%.3f", map[string]float64{
			"storage Kbit": float64(sp.bits) / 1024,
			"avg speedup":  stats.Mean(all),
		})
	}
	t.AddNote("storage counts value-prediction state only (values, tags, strides, histories, counters)")
	return t, nil
}

// ThresholdTable is a second extension: the confidence-threshold sweep
// across the whole suite, showing the accuracy/coverage trade the paper's
// resetting counters make at threshold 7.
func (r *Runner) ThresholdTable() (*stats.Table, error) {
	names := allNames()
	t := stats.NewTable("Extension: confidence threshold sweep (dynamic RVP, all instructions)",
		[]string{"avg speedup", "coverage %", "accuracy %"})
	for _, th := range []uint8{1, 3, 5, 7} {
		cc := core.DefaultCounterConfig()
		cc.Threshold = th
		type acc struct{ spd, cov, accy float64 }
		var mu sync.Mutex
		var rows []acc
		err := r.forEach(names, func(name string) error {
			base, err := r.run(name, pipeline.BaselineConfig(), core.NoPredictor{})
			if err != nil {
				return err
			}
			st, err := r.run(name, pipeline.BaselineConfig(), core.NewDynamicRVP(cc))
			if err != nil {
				return err
			}
			mu.Lock()
			rows = append(rows, acc{
				spd:  float64(base.Cycles) / float64(st.Cycles),
				cov:  100 * st.Coverage(),
				accy: 100 * st.Accuracy(),
			})
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var spd, cov, accy []float64
		for _, x := range rows {
			spd = append(spd, x.spd)
			cov = append(cov, x.cov)
			accy = append(accy, x.accy)
		}
		t.AddRow("threshold "+string('0'+th), "%.3f", map[string]float64{
			"avg speedup": stats.Mean(spd),
			"coverage %":  stats.Mean(cov),
			"accuracy %":  stats.Mean(accy),
		})
	}
	return t, nil
}
