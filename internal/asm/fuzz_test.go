package asm_test

import (
	"errors"
	"strings"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/workloads"
)

// TestAssembleRejectsUnencodable checks an immediate that does not fit
// the 38-bit encoding is reported as a structured assembler error at
// assembly time, not a late panic inside the emulator's loader.
func TestAssembleRejectsUnencodable(t *testing.T) {
	srcs := []string{
		".text\nmain:\n        li r1, 0x8000000000\n        halt\n",
		".text\nmain:\n        lda r1, 0x7fffffffff0\n        halt\n",
	}
	for i, src := range srcs {
		_, err := asm.Assemble("t", src, asm.Options{})
		if err == nil {
			t.Errorf("case %d: out-of-range immediate assembled", i)
			continue
		}
		var ae *asm.Error
		if !errors.As(err, &ae) {
			t.Errorf("case %d: error %T is not an *asm.Error: %v", i, err, err)
		}
	}
}

// FuzzAssemble feeds arbitrary source to the assembler, seeded with the
// nine workload kernels. The assembler must either return a structured
// error or produce a program the emulator can load and step a bounded
// number of times — it must never panic or hang.
func FuzzAssemble(f *testing.F) {
	for _, src := range workloads.Sources() {
		f.Add(src)
	}
	f.Add(".text\nmain:\n        li r1, 3\nloop:\n        subi r1, r1, 1\n        bne r1, loop\n        halt\n")
	f.Add(".text\n.proc main\nmain:\n        lda r2, table\n        ldq r3, 0(r2)\n        halt\n.endproc\n.data\n.org 0x100000\ntable: .quad 1, 2, 3\n")
	f.Add(".text\nmain:\n        li r1, 0x8000000000\n        halt\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep individual cases cheap
		}
		p, err := asm.Assemble("fuzz", src, asm.Options{})
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz") {
				t.Errorf("assembler error does not name the file: %v", err)
			}
			return
		}
		st, err := emu.New(p)
		if err != nil {
			return // assembled but not runnable (e.g. empty .text)
		}
		for i := 0; i < 10_000; i++ {
			if _, ok := st.Step(); !ok {
				break
			}
		}
	})
}
