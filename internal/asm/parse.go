package asm

import (
	"strconv"
	"strings"

	"rvpsim/internal/isa"
)

// stripComment removes ';' and '#' comments.
func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "op a, b, c" into ["op","a","b","c"].
func splitOperands(line string) []string {
	var fields []string
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	fields = append(fields, line[:i])
	for _, part := range strings.Split(line[i:], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			fields = append(fields, part)
		}
	}
	return fields
}

var regAliases = map[string]isa.Reg{
	"sp": isa.RSP, "ra": isa.RRA, "zero": isa.RZero, "fzero": isa.FZero,
}

// parseReg parses r0..r31, f0..f31 and aliases.
func parseReg(s string) (isa.Reg, bool) {
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, false
	}
	switch s[0] {
	case 'r':
		return isa.IntReg(n), true
	case 'f':
		return isa.FPReg(n), true
	}
	return 0, false
}

// evalConst evaluates an integer constant or SYMBOL+offset expression
// against the data symbol table.
func (a *assembler) evalConst(s string, ln int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(ln, "empty constant")
	}
	// SYMBOL+offset / SYMBOL-offset
	if !isDigitStart(s) && s[0] != '-' && s[0] != '\'' {
		sym, off := s, int64(0)
		if i := strings.IndexAny(s[1:], "+-"); i >= 0 {
			sym = s[:i+1]
			rest := s[i+1:]
			v, err := parseInt(rest)
			if err != nil {
				return 0, a.errf(ln, "bad offset in %q", s)
			}
			off = v
		}
		addr, ok := a.dataSyms[sym]
		if !ok {
			// Code labels resolve to their simulated-memory address so
			// that "lda rX, proc" + "jsr (rX)" works.
			if idx, isLabel := a.labels[sym]; isLabel {
				return int64(a.codeBase()) + int64(idx)*8, nil
			}
			if a.passNum == 1 {
				// Data symbols may be defined later in the file; pass 2
				// resolves them for real.
				return 0, nil
			}
			return 0, a.errf(ln, "undefined symbol %q", sym)
		}
		return int64(addr) + off, nil
	}
	if s[0] == '\'' {
		if len(s) >= 3 && s[len(s)-1] == '\'' {
			return int64(s[1]), nil
		}
		return 0, a.errf(ln, "bad character literal %q", s)
	}
	v, err := parseInt(s)
	if err != nil {
		return 0, a.errf(ln, "bad constant %q", s)
	}
	return v, nil
}

func isDigitStart(s string) bool { return s[0] >= '0' && s[0] <= '9' }

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseMem parses "disp(reg)" | "(reg)" | "SYMBOL" | "SYMBOL+off(reg)" into
// a base register and displacement. A bare symbol or constant uses r31.
func (a *assembler) parseMem(s string, ln int) (base isa.Reg, disp int64, err error) {
	base = isa.RZero
	open := strings.IndexByte(s, '(')
	if open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return 0, 0, a.errf(ln, "bad memory operand %q", s)
		}
		r, ok := parseReg(s[open+1 : len(s)-1])
		if !ok {
			return 0, 0, a.errf(ln, "bad base register in %q", s)
		}
		base = r
		s = strings.TrimSpace(s[:open])
		if s == "" {
			return base, 0, nil
		}
	}
	disp, err = a.evalConst(s, ln)
	return base, disp, err
}

// instruction parses and emits one instruction (pass independent; labels
// are resolved on pass 2, and pass 1 tolerates unresolved ones).
func (a *assembler) instruction(line string, ln, pass int) error {
	f := splitOperands(line)
	mn := strings.ToLower(f[0])
	args := f[1:]

	resolveLabel := func(s string) (int64, error) {
		if idx, ok := a.labels[s]; ok {
			return int64(idx), nil
		}
		if pass == 1 {
			return 0, nil // not yet defined; fine on pass 1
		}
		return 0, a.errf(ln, "undefined label %q", s)
	}
	wantArgs := func(n int) error {
		if len(args) != n {
			return a.errf(ln, "%s wants %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	reg := func(s string) (isa.Reg, error) {
		r, ok := parseReg(s)
		if !ok {
			return 0, a.errf(ln, "bad register %q", s)
		}
		return r, nil
	}

	// Pseudo-instructions.
	switch mn {
	case "mov": // mov rd, ra  ->  add rd, ra, zero  (or fadd for FP)
		if err := wantArgs(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		ra, err := reg(args[1])
		if err != nil {
			return err
		}
		if rd.IsFP() != ra.IsFP() {
			return a.errf(ln, "mov between register files; use itof/ftoi")
		}
		if rd.IsFP() {
			a.emit(isa.Inst{Op: isa.FADD, Rd: rd, Ra: ra, Rb: isa.FZero})
		} else {
			a.emit(isa.Inst{Op: isa.ADD, Rd: rd, Ra: ra, Rb: isa.RZero})
		}
		return nil
	case "li": // li rd, imm  ->  lda rd, imm(zero)
		if err := wantArgs(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := a.evalConst(args[1], ln)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.LDA, Rd: rd, Ra: isa.RZero, Imm: v})
		return nil
	case "clr": // clr rd -> add rd, zero, zero
		if err := wantArgs(1); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		if rd.IsFP() {
			a.emit(isa.Inst{Op: isa.FADD, Rd: rd, Ra: isa.FZero, Rb: isa.FZero})
		} else {
			a.emit(isa.Inst{Op: isa.ADD, Rd: rd, Ra: isa.RZero, Rb: isa.RZero})
		}
		return nil
	case "call": // call label  ->  li at+jsr via BR-with-link: br-style direct call
		// Direct call: BR with link register ra: we encode as BR rd=r26
		// target label.
		if err := wantArgs(1); err != nil {
			return err
		}
		t, err := resolveLabel(args[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.BR, Rd: isa.RRA, Imm: t})
		return nil
	case "jmp": // jmp label -> br without link
		if err := wantArgs(1); err != nil {
			return err
		}
		t, err := resolveLabel(args[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.BR, Rd: isa.RZero, Imm: t})
		return nil
	case "ret":
		switch len(args) {
		case 0:
			a.emit(isa.Inst{Op: isa.RET, Ra: isa.RRA})
			return nil
		case 1:
			s := strings.Trim(args[0], "()")
			r, err := reg(s)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.RET, Ra: r})
			return nil
		default:
			return a.errf(ln, "ret wants 0 or 1 operands")
		}
	case "jsr": // jsr (ra) | jsr rd, (ra)
		switch len(args) {
		case 1:
			r, err := reg(strings.Trim(args[0], "()"))
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.JSR, Rd: isa.RRA, Ra: r})
			return nil
		case 2:
			rd, err := reg(args[0])
			if err != nil {
				return err
			}
			r, err := reg(strings.Trim(args[1], "()"))
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.JSR, Rd: rd, Ra: r})
			return nil
		default:
			return a.errf(ln, "jsr wants 1 or 2 operands")
		}
	}

	op, ok := isa.OpByName[mn]
	if !ok {
		return a.errf(ln, "unknown mnemonic %q", mn)
	}

	switch isa.Classify(op) {
	case isa.ClassNop, isa.ClassHalt:
		if err := wantArgs(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op})
		return nil

	case isa.ClassLoad, isa.ClassStore:
		if err := wantArgs(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		base, disp, err := a.parseMem(args[1], ln)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: disp})
		return nil

	case isa.ClassBranch:
		switch op {
		case isa.BR:
			if err := wantArgs(1); err != nil {
				return err
			}
			t, err := resolveLabel(args[0])
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rd: isa.RZero, Imm: t})
			return nil
		default: // conditional
			if err := wantArgs(2); err != nil {
				return err
			}
			ra, err := reg(args[0])
			if err != nil {
				return err
			}
			t, err := resolveLabel(args[1])
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Ra: ra, Imm: t})
			return nil
		}
	}

	// ALU / FP forms.
	switch op {
	case isa.LDA, isa.LDAH:
		if err := wantArgs(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		base, disp, err := a.parseMem(args[1], ln)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: disp})
		return nil
	case isa.ITOF, isa.FTOI, isa.CVTQT, isa.CVTTQ:
		if err := wantArgs(2); err != nil {
			return err
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		ra, err := reg(args[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Ra: ra})
		return nil
	}

	if err := wantArgs(3); err != nil {
		return err
	}
	rd, err := reg(args[0])
	if err != nil {
		return err
	}
	ra, err := reg(args[1])
	if err != nil {
		return err
	}
	if isa.HasImm(op) {
		v, err := a.evalConst(args[2], ln)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: v})
		return nil
	}
	rb, err := reg(args[2])
	if err != nil {
		return err
	}
	a.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
	return nil
}
