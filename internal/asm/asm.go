// Package asm implements a two-pass assembler for the simulator's ISA.
//
// Source syntax, by example:
//
//	; comments run to end of line (also '#')
//	.text
//	.proc main
//	main:
//	        li      r1, 100         ; pseudo: lda r1, 100(r31)
//	        lda     r2, table       ; data symbol reference
//	loop:
//	        ldq     r3, 0(r2)
//	        add     r4, r4, r3
//	        addi    r2, r2, 8
//	        subi    r1, r1, 1
//	        bne     r1, loop
//	        halt
//	.endproc
//
//	.data
//	.org 0x100000
//	table:
//	        .quad 1, 2, 3, 4
//	        .double 3.5, -1.25
//	        .space 16               ; 16 zero words
//
// Registers are r0..r31 (aliases: sp=r30, ra=r26, zero=r31) and f0..f31
// (alias fzero=f31). Branch targets are labels; the assembler resolves them
// to absolute instruction indices. Immediates may be decimal, hex (0x...),
// character ('c'), or SYMBOL+offset where SYMBOL is a data symbol.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rvpsim/internal/isa"
	"rvpsim/internal/program"
)

// Options configures assembly.
type Options struct {
	// CodeBase overrides the default code base address.
	CodeBase uint64
	// StackTop overrides the default initial stack pointer.
	StackTop uint64
	// ExternalSyms provides data symbols defined outside the source text
	// (e.g. data segments generated programmatically).
	ExternalSyms map[string]uint64
}

// Error describes an assembly error with its source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type assembler struct {
	name string
	opts Options

	labels   map[string]int
	dataSyms map[string]uint64

	insts []isa.Inst
	procs []program.Procedure
	data  []program.DataChunk

	// pass-2 state
	curProc   int // index into procs, -1 when outside a .proc
	dataAddr  uint64
	curChunk  *program.DataChunk
	inData    bool
	entryName string
	passNum   int
}

// Assemble assembles src into a runnable program.
func Assemble(name, src string, opts Options) (*program.Program, error) {
	a := &assembler{
		name:     name,
		opts:     opts,
		labels:   map[string]int{},
		dataSyms: map[string]uint64{},
		curProc:  -1,
	}
	for s, addr := range opts.ExternalSyms {
		a.dataSyms[s] = addr
	}
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	a.insts = a.insts[:0]
	a.procs = a.procs[:0]
	a.data = a.data[:0]
	a.curProc = -1
	a.dataAddr = 0
	a.curChunk = nil
	a.inData = false
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	p := &program.Program{
		Name:     name,
		Insts:    a.insts,
		Procs:    a.procs,
		Data:     a.data,
		Labels:   a.labels,
		DataSyms: a.dataSyms,
		CodeBase: program.DefaultCodeBase,
		StackTop: program.DefaultStackTop,
	}
	if opts.CodeBase != 0 {
		p.CodeBase = opts.CodeBase
	}
	if opts.StackTop != 0 {
		p.StackTop = opts.StackTop
	}
	entry := a.entryName
	if entry == "" {
		entry = "main"
	}
	if idx, ok := a.labels[entry]; ok {
		p.Entry = idx
	} else {
		p.Entry = 0
	}
	// Every emitted instruction must have a machine encoding: rejecting
	// an out-of-range immediate here, with the assembler's error type,
	// beats a late encode failure (or panic) inside the emulator.
	for i, in := range a.insts {
		if _, err := isa.Encode(in); err != nil {
			return nil, &Error{File: a.name, Msg: fmt.Sprintf("instruction %d not encodable: %v", i, err)}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble assembles src and panics on error; for workloads and tests.
func MustAssemble(name, src string, opts Options) *program.Program {
	p, err := Assemble(name, src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{File: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) pass(src string, pass int) error {
	a.passNum = pass
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if !isIdent(head) {
				break
			}
			if err := a.defineLabel(head, ln+1, pass); err != nil {
				return err
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line, ln+1, pass); err != nil {
				return err
			}
			continue
		}
		if a.inData {
			return a.errf(ln+1, "instruction %q inside .data section", line)
		}
		if err := a.instruction(line, ln+1, pass); err != nil {
			return err
		}
	}
	if a.curProc != -1 {
		a.procs[a.curProc].End = len(a.insts)
		a.curProc = -1
	}
	a.closeChunk()
	return nil
}

func (a *assembler) defineLabel(name string, line, pass int) error {
	if a.inData {
		if pass == 1 {
			if _, dup := a.dataSyms[name]; dup {
				return a.errf(line, "duplicate data symbol %q", name)
			}
			a.dataSyms[name] = a.dataAddr
		}
		return nil
	}
	if pass == 1 {
		if _, dup := a.labels[name]; dup {
			return a.errf(line, "duplicate label %q", name)
		}
		a.labels[name] = len(a.insts)
	}
	return nil
}

func (a *assembler) directive(line string, ln, pass int) error {
	fields := splitOperands(line)
	dir := fields[0]
	args := fields[1:]
	switch dir {
	case ".text":
		a.closeChunk()
		a.inData = false
	case ".data":
		if a.curProc != -1 {
			a.procs[a.curProc].End = len(a.insts)
			a.curProc = -1
		}
		a.inData = true
	case ".org":
		if len(args) != 1 {
			return a.errf(ln, ".org wants one address")
		}
		v, err := a.evalConst(args[0], ln)
		if err != nil {
			return err
		}
		a.closeChunk()
		a.dataAddr = uint64(v)
	case ".entry":
		if len(args) != 1 {
			return a.errf(ln, ".entry wants one label")
		}
		a.entryName = args[0]
	case ".proc":
		if a.inData {
			return a.errf(ln, ".proc inside .data")
		}
		if len(args) != 1 {
			return a.errf(ln, ".proc wants one name")
		}
		if a.curProc != -1 {
			a.procs[a.curProc].End = len(a.insts)
		}
		a.procs = append(a.procs, program.Procedure{Name: args[0], Start: len(a.insts)})
		a.curProc = len(a.procs) - 1
	case ".endproc":
		if a.curProc == -1 {
			return a.errf(ln, ".endproc without .proc")
		}
		a.procs[a.curProc].End = len(a.insts)
		a.curProc = -1
	case ".quad":
		if !a.inData {
			return a.errf(ln, ".quad outside .data")
		}
		for _, arg := range args {
			v, err := a.evalConst(arg, ln)
			if err != nil {
				return err
			}
			a.emitWord(uint64(v))
		}
	case ".double":
		if !a.inData {
			return a.errf(ln, ".double outside .data")
		}
		for _, arg := range args {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return a.errf(ln, "bad float %q", arg)
			}
			a.emitWord(math.Float64bits(f))
		}
	case ".space":
		if !a.inData {
			return a.errf(ln, ".space outside .data")
		}
		if len(args) != 1 {
			return a.errf(ln, ".space wants one count")
		}
		n, err := a.evalConst(args[0], ln)
		if err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			a.emitWord(0)
		}
	default:
		return a.errf(ln, "unknown directive %q", dir)
	}
	return nil
}

func (a *assembler) closeChunk() {
	if a.curChunk != nil {
		a.data = append(a.data, *a.curChunk)
		a.curChunk = nil
	}
}

func (a *assembler) emitWord(w uint64) {
	if a.curChunk == nil {
		a.curChunk = &program.DataChunk{Addr: a.dataAddr}
	}
	a.curChunk.Words = append(a.curChunk.Words, w)
	a.dataAddr += 8
}

func (a *assembler) emit(in isa.Inst) { a.insts = append(a.insts, in) }

// codeBase returns the code base address the assembled program will use.
func (a *assembler) codeBase() uint64 {
	if a.opts.CodeBase != 0 {
		return a.opts.CodeBase
	}
	return program.DefaultCodeBase
}
