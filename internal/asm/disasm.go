package asm

import (
	"fmt"
	"sort"
	"strings"

	"rvpsim/internal/isa"
	"rvpsim/internal/program"
)

// Disassemble renders a program back into assembler-like text: one line
// per instruction with its index, labels reconstructed from branch
// targets and procedure boundaries, and data symbols for reference.
// The output is for humans (reports, debugging); it is also accepted by
// the assembler for all label-free instruction forms.
func Disassemble(p *program.Program) string {
	var b strings.Builder
	labels := reconstructLabels(p)

	fmt.Fprintf(&b, "; program %q: %d instructions, entry %d\n", p.Name, len(p.Insts), p.Entry)
	curProc := ""
	for i, in := range p.Insts {
		if pr := p.ProcAt(i); pr != nil && pr.Start == i && pr.Name != curProc {
			fmt.Fprintf(&b, ".proc %s\n", pr.Name)
			curProc = pr.Name
		}
		if l, ok := labels[i]; ok {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d: %s", i, formatInst(in, labels))
		b.WriteByte('\n')
		if pr := p.ProcAt(i); pr != nil && pr.End == i+1 {
			fmt.Fprintf(&b, ".endproc\n")
		}
	}
	if len(p.DataSyms) > 0 {
		b.WriteString("; data symbols:\n")
		names := make([]string, 0, len(p.DataSyms))
		for n := range p.DataSyms {
			names = append(names, n)
		}
		sort.Slice(names, func(a, c int) bool { return p.DataSyms[names[a]] < p.DataSyms[names[c]] })
		for _, n := range names {
			fmt.Fprintf(&b, ";   %-16s %#x\n", n, p.DataSyms[n])
		}
	}
	return b.String()
}

// DisassembleInst renders one instruction, resolving branch targets to a
// label map when provided.
func DisassembleInst(in isa.Inst, labels map[int]string) string {
	return formatInst(in, labels)
}

func formatInst(in isa.Inst, labels map[int]string) string {
	if isa.IsCondBranch(in.Op) || in.Op == isa.BR {
		if l, ok := labels[int(in.Imm)]; ok {
			if in.Op == isa.BR {
				return fmt.Sprintf("%s %s", in.Op, l)
			}
			return fmt.Sprintf("%s %s, %s", in.Op, in.Ra, l)
		}
	}
	return in.String()
}

// reconstructLabels invents a label for every branch target (and the
// entry point), reusing procedure names where the target is a procedure
// start.
func reconstructLabels(p *program.Program) map[int]string {
	labels := map[int]string{}
	for i := range p.Procs {
		labels[p.Procs[i].Start] = p.Procs[i].Name
	}
	if _, ok := labels[p.Entry]; !ok {
		labels[p.Entry] = "main"
	}
	// Prefer original label names where the program still carries them.
	byIndex := map[int][]string{}
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	for idx, names := range byIndex {
		sort.Strings(names)
		if _, ok := labels[idx]; !ok {
			labels[idx] = names[0]
		}
	}
	n := 0
	for _, in := range p.Insts {
		if isa.IsCondBranch(in.Op) || in.Op == isa.BR {
			t := int(in.Imm)
			if _, ok := labels[t]; !ok {
				labels[t] = fmt.Sprintf("L%d", n)
				n++
			}
		}
	}
	return labels
}
