package asm

import (
	"strings"
	"testing"

	"rvpsim/internal/isa"
)

const sumSrc = `
; sum the table
.text
.proc main
main:
        lda     r2, table
        li      r1, 4
        clr     r4
loop:
        ldq     r3, 0(r2)
        add     r4, r4, r3
        addi    r2, r2, 8
        subi    r1, r1, 1
        bne     r1, loop
        mov     r0, r4
        halt
.endproc

.data
.org 0x100000
table:
        .quad 1, 2, 3, 4
`

func TestAssembleSum(t *testing.T) {
	p, err := Assemble("sum", sumSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 10 {
		t.Fatalf("got %d instructions, want 10", len(p.Insts))
	}
	if p.Entry != p.Labels["main"] {
		t.Errorf("entry = %d, want label main (%d)", p.Entry, p.Labels["main"])
	}
	if got := p.DataSyms["table"]; got != 0x100000 {
		t.Errorf("table = %#x, want 0x100000", got)
	}
	// lda r2, table resolves to the data address.
	if p.Insts[0].Op != isa.LDA || p.Insts[0].Imm != 0x100000 {
		t.Errorf("inst 0 = %v, want lda r2, 0x100000", p.Insts[0])
	}
	// bne targets the loop label.
	bne := p.Insts[7]
	if bne.Op != isa.BNE || int(bne.Imm) != p.Labels["loop"] {
		t.Errorf("inst 7 = %v, want bne to loop (%d)", bne, p.Labels["loop"])
	}
	if len(p.Data) != 1 || len(p.Data[0].Words) != 4 || p.Data[0].Words[2] != 3 {
		t.Errorf("data = %+v, want one chunk of [1 2 3 4]", p.Data)
	}
	if len(p.Procs) != 1 || p.Procs[0].Name != "main" || p.Procs[0].Start != 0 || p.Procs[0].End != 10 {
		t.Errorf("procs = %+v", p.Procs)
	}
}

func TestAssembleMemOperands(t *testing.T) {
	src := `
.text
main:
        ldq r1, 16(r2)
        ldq r1, (r2)
        stq r1, -8(sp)
        ldq r1, buf+24
        rvp_ldq r5, 8(r6)
        halt
.data
.org 0x2000
buf:    .quad 0
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Inst{
		{Op: isa.LDQ, Rd: 1, Ra: 2, Imm: 16},
		{Op: isa.LDQ, Rd: 1, Ra: 2, Imm: 0},
		{Op: isa.STQ, Rd: 1, Ra: isa.RSP, Imm: -8},
		{Op: isa.LDQ, Rd: 1, Ra: isa.RZero, Imm: 0x2000 + 24},
		{Op: isa.RVPLDQ, Rd: 5, Ra: 6, Imm: 8},
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %v, want %v", i, p.Insts[i], w)
		}
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	src := `
.text
main:
        call    f
        jmp     end
f:
        ret
end:
        halt
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.BR || p.Insts[0].Rd != isa.RRA || int(p.Insts[0].Imm) != p.Labels["f"] {
		t.Errorf("call = %v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.BR || p.Insts[1].Rd != isa.RZero {
		t.Errorf("jmp = %v", p.Insts[1])
	}
	if p.Insts[2].Op != isa.RET || p.Insts[2].Ra != isa.RRA {
		t.Errorf("ret = %v", p.Insts[2])
	}
}

func TestAssembleFP(t *testing.T) {
	src := `
.text
main:
        ldt f1, v
        fadd f2, f1, f1
        fmul f3, f2, f1
        fcmplt f4, f3, f1
        fbne f4, main
        halt
.data
.org 0x3000
v:      .double 2.5
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.LDT || !p.Insts[0].Rd.IsFP() {
		t.Errorf("ldt = %v", p.Insts[0])
	}
	if p.Insts[1] != (isa.Inst{Op: isa.FADD, Rd: isa.FPReg(2), Ra: isa.FPReg(1), Rb: isa.FPReg(1)}) {
		t.Errorf("fadd = %v", p.Insts[1])
	}
	if p.Data[0].Words[0] != 0x4004000000000000 { // bits of 2.5
		t.Errorf("double 2.5 = %#x", p.Data[0].Words[0])
	}
}

func TestAssembleExternalSyms(t *testing.T) {
	src := `
.text
main:
        lda r1, ext
        ldq r2, ext+8(r31)
        halt
`
	p, err := Assemble("t", src, Options{ExternalSyms: map[string]uint64{"ext": 0x40000}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 0x40000 {
		t.Errorf("lda imm = %#x", p.Insts[0].Imm)
	}
	if p.Insts[1].Imm != 0x40008 {
		t.Errorf("ldq imm = %#x", p.Insts[1].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main:\n frob r1, r2, r3\n halt", "unknown mnemonic"},
		{"undefined label", "main:\n br nowhere\n halt", "undefined label"},
		{"undefined symbol", "main:\n lda r1, nosym\n halt", "undefined symbol"},
		{"duplicate label", "main:\nmain:\n halt", "duplicate label"},
		{"bad register", "main:\n add r1, r2, r99\n halt", "bad register"},
		{"wrong arity", "main:\n add r1, r2\n halt", "wants 3 operands"},
		{"no halt", "main:\n nop", "no HALT"},
		{"inst in data", ".data\n.org 0x100\n add r1, r2, r3", "inside .data"},
		{"bad directive", ".frobnicate\nmain:\n halt", "unknown directive"},
		{"quad outside data", ".text\n.quad 4\nmain:\n halt", "outside .data"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src, Options{})
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestAssembleErrorHasLine(t *testing.T) {
	_, err := Assemble("file", "main:\n nop\n frob r1\n halt", Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "file:3:") {
		t.Errorf("error %q lacks file:line", err)
	}
}

func TestAssembleCharAndHex(t *testing.T) {
	src := `
.text
main:
        li r1, 'A'
        li r2, 0x10
        li r3, -5
        halt
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 65 || p.Insts[1].Imm != 16 || p.Insts[2].Imm != -5 {
		t.Errorf("imms = %d %d %d", p.Insts[0].Imm, p.Insts[1].Imm, p.Insts[2].Imm)
	}
}

func TestAssembleSpaceDirective(t *testing.T) {
	src := `
.text
main:
        halt
.data
.org 0x1000
a:      .space 3
b:      .quad 7
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.DataSyms["b"] != 0x1000+24 {
		t.Errorf("b = %#x, want %#x", p.DataSyms["b"], 0x1000+24)
	}
	if n := len(p.Data[0].Words); n != 4 {
		t.Errorf("chunk has %d words, want 4", n)
	}
}

func TestAssembleMultipleOrgChunks(t *testing.T) {
	src := `
.text
main:
        halt
.data
.org 0x1000
a:      .quad 1
.org 0x2000
b:      .quad 2
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 2 {
		t.Fatalf("chunks = %d, want 2", len(p.Data))
	}
	if p.Data[0].Addr != 0x1000 || p.Data[1].Addr != 0x2000 {
		t.Errorf("chunk addrs = %#x %#x", p.Data[0].Addr, p.Data[1].Addr)
	}
}
