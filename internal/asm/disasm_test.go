package asm

import (
	"strings"
	"testing"

	"rvpsim/internal/isa"
)

func TestDisassembleRoundTrips(t *testing.T) {
	p, err := Assemble("t", sumSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p)
	for _, want := range []string{".proc main", "main:", "loop:", "bne r1, loop", "halt", "table"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleInventedLabels(t *testing.T) {
	src := `
.text
main:
        beq r1, skip
        nop
skip:
        halt
`
	p, err := Assemble("t", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the original label table to force reconstruction.
	p.Labels = map[string]int{}
	out := Disassemble(p)
	if !strings.Contains(out, "L0:") {
		t.Errorf("no invented label in:\n%s", out)
	}
	if !strings.Contains(out, "beq r1, L0") {
		t.Errorf("branch not resolved to invented label:\n%s", out)
	}
}

func TestDisassembleInst(t *testing.T) {
	in := isa.Inst{Op: isa.BNE, Ra: 3, Imm: 7}
	if got := DisassembleInst(in, map[int]string{7: "top"}); got != "bne r3, top" {
		t.Errorf("got %q", got)
	}
	if got := DisassembleInst(in, nil); got != "bne r3, 7" {
		t.Errorf("got %q", got)
	}
}

// TestDisassembleAllWorkloadOps ensures every opcode that appears in the
// test corpus formats without panicking and mentions its mnemonic.
func TestDisassembleEveryOpcode(t *testing.T) {
	for op := 0; op < isa.NumOps; op++ {
		in := isa.Inst{Op: isa.Op(op), Rd: 1, Ra: 2, Rb: 3, Imm: 4}
		s := DisassembleInst(in, nil)
		if s == "" {
			t.Errorf("opcode %v produced empty disassembly", isa.Op(op))
		}
	}
}
