package lockstep

import (
	"errors"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/simerr"
	"rvpsim/internal/workloads"
)

func dynRVP() core.Predictor { return core.MustDynamicRVP(core.DefaultCounterConfig()) }

// TestLockstepAllWorkloads is the acceptance check: the pipeline commits
// the identical (PC, dest-reg, value) stream and architectural state as
// the reference emulator on every workload under every recovery scheme.
func TestLockstepAllWorkloads(t *testing.T) {
	recoveries := []pipeline.Recovery{pipeline.RecoverRefetch, pipeline.RecoverReissue, pipeline.RecoverSelective}
	for _, w := range workloads.All() {
		for _, rec := range recoveries {
			t.Run(w.Name+"/"+rec.String(), func(t *testing.T) {
				t.Parallel()
				prog, err := workloads.ByName(w.Name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := pipeline.BaselineConfig()
				cfg.Recovery = rec
				res, err := Run(prog, cfg, dynRVP, Options{MaxInsts: 40_000, CheckEvery: 10_000})
				if err != nil {
					t.Fatalf("divergence: %v", err)
				}
				if res.Committed == 0 {
					t.Fatal("no instructions compared")
				}
				if res.StateChecks == 0 {
					t.Fatal("no architectural state comparisons performed")
				}
			})
		}
	}
}

// TestStreamDivergence forces a commit-stream divergence by validating
// one workload against a different reference program; the harness must
// report it as a typed lockstep error at the first divergent commit.
func TestStreamDivergence(t *testing.T) {
	prog, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	refProg, err := workloads.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	_, err = run(prog, refProg, pipeline.BaselineConfig(), dynRVP, Options{MaxInsts: 10_000})
	if !errors.Is(err, simerr.ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
	var d *Divergence
	if !errors.As(err, &d) {
		t.Fatalf("error does not carry *Divergence: %v", err)
	}
	var se *simerr.SimError
	if !errors.As(err, &se) || se.Stage != "lockstep" {
		t.Fatalf("error is not a lockstep-stage SimError: %v", err)
	}
}

// TestStateDivergenceBisection: two programs whose commit streams are
// identical (stores write no destination register) but whose memory
// images diverge at the store. Only the boundary state comparison can
// see this, and the bisection must pin the exact commit.
func TestStateDivergenceBisection(t *testing.T) {
	srcA := `
.text
main:
        lda r2, d
        li  r1, 5
        stq r1, 0(r2)
        li  r3, 1
        halt
.data
.org 0x200000
d:      .quad 0, 0
`
	// Identical except the store lands 8 bytes over.
	srcB := `
.text
main:
        lda r2, d
        li  r1, 5
        stq r1, 8(r2)
        li  r3, 1
        halt
.data
.org 0x200000
d:      .quad 0, 0
`
	progA, err := asm.Assemble("t", srcA, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progB, err := asm.Assemble("t", srcB, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = run(progA, progB, pipeline.BaselineConfig(), dynRVP, Options{MaxInsts: 1_000})
	if !errors.Is(err, simerr.ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
	var d *Divergence
	if !errors.As(err, &d) {
		t.Fatalf("error does not carry *Divergence: %v", err)
	}
	if d.Field != "memory" {
		t.Errorf("divergent field = %q, want %q", d.Field, "memory")
	}
	// The two code images differ (the store encodes a different offset),
	// so the memory divergence exists from the initial image: the
	// harness must pin it at commit 0 rather than blaming a later one.
	if d.Commit != 0 {
		t.Errorf("bisected first divergent commit = %d, want 0", d.Commit)
	}
}

// TestNoStateChecks: with boundary comparisons disabled the
// state-only divergence above goes (by design) undetected.
func TestNoStateChecks(t *testing.T) {
	prog, err := workloads.ByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, pipeline.BaselineConfig(), dynRVP, Options{MaxInsts: 5_000, NoStateChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.StateChecks != 0 {
		t.Errorf("StateChecks = %d with checks disabled", res.StateChecks)
	}
}

// TestFirstDivergent checks the bisection over a synthetic oracle.
func TestFirstDivergent(t *testing.T) {
	for _, tc := range []struct{ lo, hi, first uint64 }{
		{0, 100, 37},
		{0, 1, 1},
		{36, 37, 37},
		{0, 1 << 20, 999_999},
	} {
		calls := 0
		got, err := firstDivergent(tc.lo, tc.hi, func(n uint64) (bool, error) {
			calls++
			return n < tc.first, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.first {
			t.Errorf("firstDivergent(%d, %d) = %d, want %d", tc.lo, tc.hi, got, tc.first)
		}
		if calls > 64 {
			t.Errorf("bisection took %d probes for range (%d, %d]", calls, tc.lo, tc.hi)
		}
	}
	wantErr := errors.New("probe failed")
	if _, err := firstDivergent(0, 100, func(uint64) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("probe error not propagated: %v", err)
	}
}
