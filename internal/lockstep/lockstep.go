// Package lockstep is the differential validation harness: it runs the
// timing pipeline and the architectural reference emulator side by side
// over the same program and asserts they commit the identical
// instruction stream. Every committed instruction's (PC, dest register,
// written value) is compared as it retires; at periodic boundaries the
// full architectural state — register file and memory image — is
// compared too, which catches divergences the commit stream cannot see
// (a store writing the wrong data, for example). On a state-only
// divergence the harness bisects over the commit index to find the first
// commit after which the states disagree.
//
// All divergences are reported as a *simerr.SimError with Stage
// "lockstep" wrapping both simerr.ErrDivergence and a *Divergence
// carrying the first divergent commit and the mismatched field.
package lockstep

import (
	"context"
	"fmt"

	"rvpsim/internal/core"
	"rvpsim/internal/emu"
	"rvpsim/internal/mem"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// Options configures one lockstep run.
type Options struct {
	// MaxInsts bounds the instruction budget (default 100_000).
	MaxInsts uint64
	// CheckEvery is the architectural-state comparison cadence in
	// commits (default 10_000). Zero-after-defaulting is not possible;
	// set NoStateChecks to disable boundary comparisons entirely.
	CheckEvery uint64
	// NoStateChecks disables the periodic register/memory comparison,
	// leaving only the per-commit stream comparison.
	NoStateChecks bool
}

func (o Options) withDefaults() Options {
	if o.MaxInsts == 0 {
		o.MaxInsts = 100_000
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 10_000
	}
	return o
}

// Result summarizes a divergence-free run.
type Result struct {
	Workload    string
	Committed   uint64 // instructions compared in commit order
	StateChecks uint64 // boundary register/memory comparisons performed
	Stats       pipeline.Stats
}

// Divergence pinpoints the first disagreement between the pipeline and
// the reference emulator. It unwraps to simerr.ErrDivergence.
type Divergence struct {
	Commit uint64 // 0-based index of the first divergent commit
	Field  string // "pc", "wrote-rd", "rd", "value", "stream-length", "regs", "pc-state", "memory"
	Got    string // what the pipeline committed / holds
	Want   string // what the reference emulator executed / holds
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("first divergent commit %d: %s: pipeline has %s, reference has %s: %v",
		d.Commit, d.Field, d.Got, d.Want, simerr.ErrDivergence)
}

// Unwrap exposes the sentinel to errors.Is.
func (d *Divergence) Unwrap() error { return simerr.ErrDivergence }

// Run executes prog on the pipeline under cfg while stepping the
// reference emulator in lockstep, comparing every committed instruction
// and (periodically) the full architectural state. mkPred builds a fresh
// predictor; it is called once for the main run and again for each
// bisection replay after a state-only divergence.
func Run(prog *program.Program, cfg pipeline.Config, mkPred func() core.Predictor, opts Options) (Result, error) {
	return run(prog, prog, cfg, mkPred, opts)
}

// run is the internal harness taking a separate reference program so
// tests can force divergence; production callers always pass the same
// program twice.
func run(prog, refProg *program.Program, cfg pipeline.Config, mkPred func() core.Predictor, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Workload: prog.Name}

	sim, err := pipeline.New(cfg)
	if err != nil {
		return res, err
	}
	ref, err := emu.New(refProg)
	if err != nil {
		return res, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var derr error // first divergence (or bisection failure); wins over the cancel error
	fail := func(pc uint64, cycle int64, d *Divergence) {
		if derr == nil {
			derr = simerr.At("lockstep", prog.Name, pc, cycle, d)
			cancel()
		}
	}

	n := uint64(0) // commits compared so far == next commit's 0-based index
	sim.SetTracer(func(tr pipeline.TraceRecord) {
		if derr != nil {
			return
		}
		e, ok := ref.Step()
		if !ok {
			if rerr := ref.Err(); rerr != nil {
				derr = simerr.New("lockstep", fmt.Errorf("reference emulator failed at commit %d: %w", n, rerr))
				cancel()
				return
			}
			fail(tr.PC, tr.CommitAt, &Divergence{
				Commit: n, Field: "stream-length",
				Got:  fmt.Sprintf("commit of pc %#x", tr.PC),
				Want: fmt.Sprintf("halt after %d instructions", ref.Count),
			})
			return
		}
		switch {
		case e.PC != tr.PC:
			fail(tr.PC, tr.CommitAt, &Divergence{
				Commit: n, Field: "pc",
				Got: fmt.Sprintf("%#x", tr.PC), Want: fmt.Sprintf("%#x", e.PC),
			})
		case e.WroteRd != tr.WroteRd:
			fail(tr.PC, tr.CommitAt, &Divergence{
				Commit: n, Field: "wrote-rd",
				Got: fmt.Sprintf("%v", tr.WroteRd), Want: fmt.Sprintf("%v", e.WroteRd),
			})
		case e.WroteRd && e.Inst.Rd != tr.Rd:
			fail(tr.PC, tr.CommitAt, &Divergence{
				Commit: n, Field: "rd",
				Got: fmt.Sprintf("r%d", tr.Rd), Want: fmt.Sprintf("r%d", e.Inst.Rd),
			})
		case e.WroteRd && e.NewDest != tr.Value:
			fail(tr.PC, tr.CommitAt, &Divergence{
				Commit: n, Field: "value",
				Got: fmt.Sprintf("%#x", tr.Value), Want: fmt.Sprintf("%#x", e.NewDest),
			})
		default:
			n++
		}
	})

	lastGood := uint64(0)
	if !opts.NoStateChecks {
		sim.SetCheckpoint(opts.CheckEvery, func(snap *pipeline.Snapshot) error {
			if derr != nil {
				return nil
			}
			d := compareArch(&snap.Emu, ref)
			if d == nil {
				lastGood = snap.Stats.Committed
				res.StateChecks++
				return nil
			}
			// The commit streams agreed up to here but the architectural
			// states do not: bisect to the first commit count at which
			// replayed states disagree.
			c, berr := bisectDivergence(prog, refProg, cfg, mkPred, lastGood, snap.Stats.Committed)
			if berr != nil {
				derr = berr
				cancel()
				return nil
			}
			d.Commit = c
			fail(prog.PC(snap.Emu.PC), snap.Stats.Cycles, d)
			return nil
		})
	}

	stats, rerr := sim.RunContext(ctx, prog, mkPred(), opts.MaxInsts)
	res.Stats = stats
	res.Committed = n
	if derr != nil {
		return res, derr
	}
	if rerr != nil {
		return res, rerr
	}

	// Final boundary: compare the end-of-run architectural state too.
	if !opts.NoStateChecks {
		snap, serr := sim.Snapshot()
		if serr != nil {
			return res, serr
		}
		if d := compareArch(&snap.Emu, ref); d != nil {
			c, berr := bisectDivergence(prog, refProg, cfg, mkPred, lastGood, snap.Stats.Committed)
			if berr != nil {
				return res, berr
			}
			d.Commit = c
			return res, simerr.At("lockstep", prog.Name, prog.PC(snap.Emu.PC), snap.Stats.Cycles, d)
		}
		res.StateChecks++
	}
	return res, nil
}

// compareArch compares a pipeline emulator snapshot against the live
// reference state. Returns nil when identical; Commit is left zero for
// the caller (bisection) to fill in.
func compareArch(got *emu.Snapshot, ref *emu.State) *Divergence {
	if got.Count != ref.Count {
		return &Divergence{Field: "regs",
			Got: fmt.Sprintf("count %d", got.Count), Want: fmt.Sprintf("count %d", ref.Count)}
	}
	if got.Regs != ref.Regs {
		for i := range got.Regs {
			if got.Regs[i] != ref.Regs[i] {
				return &Divergence{Field: "regs",
					Got:  fmt.Sprintf("r%d=%#x", i, got.Regs[i]),
					Want: fmt.Sprintf("r%d=%#x", i, ref.Regs[i])}
			}
		}
	}
	if got.PC != ref.PC {
		return &Divergence{Field: "pc-state",
			Got: fmt.Sprintf("index %d", got.PC), Want: fmt.Sprintf("index %d", ref.PC)}
	}
	if d := compareMem(got.Mem, ref.Mem.Snapshot()); d != nil {
		return d
	}
	return nil
}

// compareMem compares two memory images. A page absent on one side is
// equal to an all-zero page on the other (pages materialize on write,
// and a write of zero still materializes one).
func compareMem(a, b mem.MemoryState) *Divergence {
	word := func(p []uint64, i int) uint64 {
		if i < len(p) {
			return p[i]
		}
		return 0
	}
	diff := func(base uint64, pa, pb []uint64, n int) *Divergence {
		for i := 0; i < n; i++ {
			if va, vb := word(pa, i), word(pb, i); va != vb {
				addr := base + uint64(i)*8
				return &Divergence{Field: "memory",
					Got:  fmt.Sprintf("[%#x]=%#x", addr, va),
					Want: fmt.Sprintf("[%#x]=%#x", addr, vb)}
			}
		}
		return nil
	}
	for base, pa := range a.Pages {
		if d := diff(base, pa, b.Pages[base], len(pa)); d != nil {
			return d
		}
	}
	for base, pb := range b.Pages {
		if _, ok := a.Pages[base]; ok {
			continue
		}
		if d := diff(base, nil, pb, len(pb)); d != nil {
			return d
		}
	}
	return nil
}

// bisectDivergence finds the first commit count in [lastGood, upTo] at
// which replayed architectural states disagree. The last-good boundary
// is re-probed first: firstDivergent requires agree(lo) to hold, and
// while a live boundary check already passed there for same-program
// runs, a differential run against a distinct reference can disagree
// from the very start (different code or data image).
func bisectDivergence(prog, refProg *program.Program, cfg pipeline.Config, mkPred func() core.Predictor, lastGood, upTo uint64) (uint64, error) {
	ok, err := stateAgreesAt(prog, refProg, cfg, mkPred, lastGood)
	if err != nil {
		return 0, err
	}
	if !ok {
		return lastGood, nil
	}
	return firstDivergent(lastGood, upTo, func(k uint64) (bool, error) {
		return stateAgreesAt(prog, refProg, cfg, mkPred, k)
	})
}

// stateAgreesAt replays both machines to exactly k commits and reports
// whether their architectural states agree there.
func stateAgreesAt(prog, refProg *program.Program, cfg pipeline.Config, mkPred func() core.Predictor, k uint64) (bool, error) {
	if k == 0 {
		// A budget of zero would mean "run to HALT" to the pipeline, so
		// compare the two initial images directly.
		a, err := emu.New(prog)
		if err != nil {
			return false, err
		}
		b, err := emu.New(refProg)
		if err != nil {
			return false, err
		}
		snap := a.Snapshot()
		return compareArch(&snap, b) == nil, nil
	}
	sim, err := pipeline.New(cfg)
	if err != nil {
		return false, err
	}
	if _, err := sim.Run(prog, mkPred(), k); err != nil {
		return false, err
	}
	snap, err := sim.Snapshot()
	if err != nil {
		return false, err
	}
	ref, err := emu.New(refProg)
	if err != nil {
		return false, err
	}
	ref.Run(k)
	return compareArch(&snap.Emu, ref) == nil, nil
}

// firstDivergent binary-searches for the smallest commit count in
// (lo, hi] at which agree reports false, given agree(lo) is known true
// and agree(hi) is known false.
func firstDivergent(lo, hi uint64, agree func(uint64) (bool, error)) (uint64, error) {
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := agree(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
