package vfs

import (
	"errors"
	"io/fs"
	"os"
	"testing"
)

// writeAll is a test helper: create/truncate path and write data.
func writeAll(t *testing.T, fsys FS, path string, data string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return f
}

func readAll(t *testing.T, fsys FS, path string) (string, error) {
	t.Helper()
	b, err := ReadFile(fsys, path)
	return string(b), err
}

// TestMemUnsyncedContentLostOnCrash pins the core durability rule: file
// content survives a crash only up to the last successful Sync.
func TestMemUnsyncedContentLostOnCrash(t *testing.T) {
	m := NewMem()
	f := writeAll(t, m, "/a.txt", "durable")
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if _, err := f.Write([]byte(" lost")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Live view sees everything; the crash rolls back to the sync.
	if got, _ := readAll(t, m, "/a.txt"); got != "durable lost" {
		t.Fatalf("live content = %q", got)
	}
	m.Crash()
	if got, err := readAll(t, m, "/a.txt"); err != nil || got != "durable" {
		t.Fatalf("post-crash content = %q, %v; want %q", got, err, "durable")
	}
}

// TestMemNeverSyncedFileVanishesOnCrash: a file created and written but
// never fsync'd has no durable existence at all.
func TestMemNeverSyncedFileVanishesOnCrash(t *testing.T) {
	m := NewMem()
	f := writeAll(t, m, "/ghost.txt", "boo")
	_ = f.Close()
	m.Crash()
	if _, err := readAll(t, m, "/ghost.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ghost file survived the crash: err=%v", err)
	}
}

// TestMemFileSyncPersistsOwnDirEntry: like a journaling filesystem,
// fsync of a fresh file persists the file's own directory entry, so a
// brand-new WAL's first record counts without a separate SyncDir.
func TestMemFileSyncPersistsOwnDirEntry(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/state", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeAll(t, m, "/state/log", "rec1\n")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	m.Crash()
	if got, err := readAll(t, m, "/state/log"); err != nil || got != "rec1\n" {
		t.Fatalf("post-crash = %q, %v", got, err)
	}
}

// TestMemRenameNeedsSyncDir: a rename is immediately visible live but
// survives a crash only after SyncDir on the directory.
func TestMemRenameNeedsSyncDir(t *testing.T) {
	for _, synced := range []bool{false, true} {
		m := NewMem()
		f := writeAll(t, m, "/old", "v1")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
		if err := m.Rename("/old", "/new"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if synced {
			if err := m.SyncDir("/"); err != nil {
				t.Fatalf("syncdir: %v", err)
			}
		}
		m.Crash()
		_, errNew := readAll(t, m, "/new")
		_, errOld := readAll(t, m, "/old")
		if synced && (errNew != nil || errOld == nil) {
			t.Fatalf("synced rename did not survive: new=%v old=%v", errNew, errOld)
		}
		if !synced && errOld != nil {
			t.Fatalf("un-synced rename destroyed the old durable entry: old=%v", errOld)
		}
	}
}

// TestMemRemoveNeedsSyncDir: an un-directory-synced remove resurrects
// the file on crash.
func TestMemRemoveNeedsSyncDir(t *testing.T) {
	m := NewMem()
	f := writeAll(t, m, "/doomed", "v1")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := m.Remove("/doomed"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	m.Crash()
	if got, err := readAll(t, m, "/doomed"); err != nil || got != "v1" {
		t.Fatalf("un-synced remove should roll back on crash: %q, %v", got, err)
	}

	// And with the SyncDir, the removal is final.
	if err := m.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := readAll(t, m, "/doomed"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("synced remove rolled back: err=%v", err)
	}
}

// TestMemTruncateAndSeek exercises the in-place update paths WALs use
// for tail repair.
func TestMemTruncateAndSeek(t *testing.T) {
	m := NewMem()
	f := writeAll(t, m, "/log", "aaaa\nbbbb\ntorn")
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	m.Crash()
	if got, _ := readAll(t, m, "/log"); got != "aaaa\nbbbb\n" {
		t.Fatalf("after truncate+sync+crash: %q", got)
	}
}

// TestWriteFileAtomicMem: the atomic-write helper leaves either nothing
// (pre-rename crash has no durable target) or the complete new content.
func TestWriteFileAtomicMem(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(m, "/d/ckpt", []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	m.Crash()
	if got, err := readAll(t, m, "/d/ckpt"); err != nil || got != "v1" {
		t.Fatalf("atomic write not durable: %q, %v", got, err)
	}
	// No temp file lingers.
	if _, err := m.Stat("/d/ckpt.tmp"); err == nil {
		t.Fatalf("temp file left behind")
	}
}
