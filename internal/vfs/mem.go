package vfs

import (
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mem is an in-memory FS that models the durability contract of a real
// POSIX filesystem, not the convenient fiction of one:
//
//   - File content written but never fsync'd is lost on Crash. Content
//     up to the last successful Sync survives.
//   - Namespace operations — create, rename, remove — take effect
//     immediately in the live view but survive a crash only once the
//     parent directory has been fsync'd (SyncDir) after them. A rename
//     without a directory sync can roll back to the old file.
//   - Everything is path-keyed and deterministic; there is no
//     background writeback, so a given operation sequence always leaves
//     the same post-crash state.
//
// This is deliberately the strict reading of POSIX (the one ext4 in
// its default mode mostly spares you, and a power loss does not): code
// that recovers correctly on Mem recovers correctly anywhere. Crash
// flips the live state back to the durable state; the same Mem is then
// re-opened by the recovery path under test, exactly like a process
// restarting on the disk its predecessor died on.
type Mem struct {
	mu sync.Mutex
	// live is the view syscalls see; durable is what a crash leaves.
	live    map[string]*memNode
	durable map[string]*memNode
	// liveDirs / durableDirs are the directory namespaces.
	liveDirs    map[string]bool
	durableDirs map[string]bool
}

// memNode is one file's content. data is the live content; synced is
// the content as of the last successful Sync. A node can be referenced
// from both namespaces (live and durable) under different names during
// an un-fsync'd rename.
type memNode struct {
	data   []byte
	synced []byte
}

// NewMem returns an empty Mem with "/" durable.
func NewMem() *Mem {
	return &Mem{
		live:        map[string]*memNode{},
		durable:     map[string]*memNode{},
		liveDirs:    map[string]bool{"/": true},
		durableDirs: map[string]bool{"/": true},
	}
}

// clean canonicalizes a path ("a//b/../c" and "a/c" must collide).
func clean(p string) string {
	p = path.Clean("/" + filepath.ToSlash(p))
	return p
}

// Crash reverts the live state to the durable state: unsynced file
// content and un-directory-synced namespace changes vanish, exactly as
// on power loss. The Mem remains usable — recovery code then re-opens
// it.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*memNode, len(m.durable))
	for p, n := range m.durable {
		// The surviving content is the synced content.
		m.live[p] = &memNode{data: append([]byte(nil), n.synced...), synced: append([]byte(nil), n.synced...)}
	}
	m.durable = make(map[string]*memNode, len(m.live))
	for p, n := range m.live {
		m.durable[p] = n
	}
	m.liveDirs = map[string]bool{}
	for d := range m.durableDirs {
		m.liveDirs[d] = true
	}
}

// SyncAll makes the entire current live state durable (content and
// namespace). Tests use it to establish a known-good baseline before
// the faulty region of a scenario.
func (m *Mem) SyncAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = make(map[string]*memNode, len(m.live))
	for p, n := range m.live {
		n.synced = append([]byte(nil), n.data...)
		m.durable[p] = n
	}
	m.durableDirs = map[string]bool{}
	for d := range m.liveDirs {
		m.durableDirs[d] = true
	}
}

func (m *Mem) dirExists(dir string) bool {
	return m.liveDirs[dir]
}

func (m *Mem) pathErr(op, name string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// OpenFile implements FS.
func (m *Mem) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.liveDirs[p] {
		return nil, m.pathErr("open", name, errIsDir)
	}
	n, ok := m.live[p]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, m.pathErr("open", name, fs.ErrNotExist)
	case !ok:
		if !m.dirExists(path.Dir(p)) {
			return nil, m.pathErr("open", name, fs.ErrNotExist)
		}
		n = &memNode{}
		m.live[p] = n
		// Deliberately NOT added to durable: the entry survives a crash
		// only after SyncDir on the parent (or Sync on the file, which
		// on journaling filesystems also persists the inode's linkage —
		// modeled in memFile.Sync).
	}
	if flag&os.O_TRUNC != 0 {
		n.data = nil
	}
	f := &memFile{m: m, node: n, path: p, name: name, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}
	if flag&os.O_APPEND != 0 {
		f.off = int64(len(n.data))
	}
	return f, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

// MkdirAll implements FS. Directories become durable on SyncDir of the
// parent; MkdirAll itself only updates the live namespace.
func (m *Mem) MkdirAll(dir string, perm os.FileMode) error {
	p := clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, isFile := m.live[p]; isFile {
		return m.pathErr("mkdir", dir, errNotDir)
	}
	for cur := p; ; cur = path.Dir(cur) {
		m.liveDirs[cur] = true
		if cur == "/" {
			break
		}
	}
	return nil
}

// Rename implements FS. The live namespace changes immediately; the
// durable namespace changes only on SyncDir.
func (m *Mem) Rename(oldpath, newpath string) error {
	op, np := clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.live[op]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	if !m.dirExists(path.Dir(np)) {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	delete(m.live, op)
	m.live[np] = n
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.liveDirs[p] {
		for other := range m.live {
			if strings.HasPrefix(other, p+"/") {
				return m.pathErr("remove", name, errNotEmpty)
			}
		}
		delete(m.liveDirs, p)
		return nil
	}
	if _, ok := m.live[p]; !ok {
		return m.pathErr("remove", name, fs.ErrNotExist)
	}
	delete(m.live, p)
	return nil
}

// Stat implements FS.
func (m *Mem) Stat(name string) (fs.FileInfo, error) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.liveDirs[p] {
		return memInfo{name: path.Base(p), dir: true}, nil
	}
	if n, ok := m.live[p]; ok {
		return memInfo{name: path.Base(p), size: int64(len(n.data))}, nil
	}
	return nil, m.pathErr("stat", name, fs.ErrNotExist)
}

// ReadDir implements FS.
func (m *Mem) ReadDir(name string) ([]fs.DirEntry, error) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.liveDirs[p] {
		return nil, m.pathErr("readdir", name, fs.ErrNotExist)
	}
	var out []fs.DirEntry
	seen := map[string]bool{}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	for fp, n := range m.live {
		if !strings.HasPrefix(fp, prefix) {
			continue
		}
		rest := strings.TrimPrefix(fp, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			continue // deeper than one level; the dir entry covers it
		}
		if !seen[rest] {
			seen[rest] = true
			out = append(out, memEntry{memInfo{name: rest, size: int64(len(n.data))}})
		}
	}
	for dp := range m.liveDirs {
		if !strings.HasPrefix(dp, prefix) || dp == p {
			continue
		}
		rest := strings.TrimPrefix(dp, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if !seen[rest] {
			seen[rest] = true
			out = append(out, memEntry{memInfo{name: rest, dir: true}})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// SyncDir implements FS: every live namespace fact one level under dir
// (file entries, renames, removals, child directories) becomes durable.
func (m *Mem) SyncDir(dir string) error {
	p := clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.liveDirs[p] {
		return m.pathErr("syncdir", dir, fs.ErrNotExist)
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	direct := func(fp string) bool {
		return strings.HasPrefix(fp, prefix) && !strings.Contains(strings.TrimPrefix(fp, prefix), "/")
	}
	// Removals and renames-away first: durable entries directly under
	// dir that no longer exist live.
	for fp := range m.durable {
		if direct(fp) {
			if _, ok := m.live[fp]; !ok {
				delete(m.durable, fp)
			}
		}
	}
	for dp := range m.durableDirs {
		if direct(dp) && !m.liveDirs[dp] {
			delete(m.durableDirs, dp)
		}
	}
	// Creations and renames-in.
	for fp, n := range m.live {
		if direct(fp) {
			m.durable[fp] = n
		}
	}
	for dp := range m.liveDirs {
		if direct(dp) {
			m.durableDirs[dp] = true
		}
	}
	return nil
}

// memFile is one open handle.
type memFile struct {
	m        *Mem
	node     *memNode
	path     string
	name     string
	off      int64
	writable bool
	closed   bool
}

func (f *memFile) Read(b []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(b, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(b []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if !f.writable {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: errReadOnly}
	}
	for int64(len(f.node.data)) < f.off {
		f.node.data = append(f.node.data, 0)
	}
	f.node.data = append(f.node.data[:f.off], append(append([]byte(nil), b...), f.node.data[min64(f.off+int64(len(b)), int64(len(f.node.data))):]...)...)
	f.off += int64(len(b))
	return len(b), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.node.data)) + offset
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

// Sync makes the file's current content durable. Like a journaling
// filesystem's fsync, it also persists the file's own directory entry
// (but not renames of other files, and not entries elsewhere in the
// tree) — without this, a brand-new WAL file would need a separate
// directory sync before its very first record counted, which matches no
// deployed filesystem and would make every historical state dir
// "unrecoverable" retroactively.
func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	if cur, ok := f.m.live[f.path]; ok && cur == f.node {
		f.m.durable[f.path] = f.node
		for d := path.Dir(f.path); ; d = path.Dir(d) {
			f.m.durableDirs[d] = true
			if d == "/" {
				break
			}
		}
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	if !f.writable {
		return &fs.PathError{Op: "truncate", Path: f.name, Err: errReadOnly}
	}
	for int64(len(f.node.data)) < size {
		f.node.data = append(f.node.data, 0)
	}
	f.node.data = f.node.data[:size]
	return nil
}

func (f *memFile) Close() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

func (f *memFile) Name() string { return f.name }

// memInfo / memEntry implement fs.FileInfo / fs.DirEntry.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

type memEntry struct{ memInfo }

func (e memEntry) Type() fs.FileMode          { return e.Mode().Type() }
func (e memEntry) Info() (fs.FileInfo, error) { return e.memInfo, nil }

var (
	errIsDir    = fs.ErrInvalid
	errNotDir   = fs.ErrInvalid
	errNotEmpty = fs.ErrInvalid
	errReadOnly = fs.ErrPermission
)
