// Package vfs is the filesystem seam under every durability artifact in
// the system — the write-ahead logs (internal/wal) and the checkpoint
// container (internal/checkpoint) perform all their I/O through an FS
// value instead of the os package. Production code passes OS, the thin
// passthrough; tests pass a Mem (an in-memory filesystem that models
// what actually survives a crash: fsync'd file content and
// directory-fsync'd namespace entries, nothing else) and wrap either in
// a Fault injector that fails, shortens, or corrupts individual
// syscalls on a deterministic schedule.
//
// The seam exists because "crash-safe" is not a property a disk that
// works can ever test: proving that a store survives ENOSPC, a failed
// fsync, a torn write, or a crash between any two syscalls requires
// injecting exactly those outcomes at exactly those boundaries, and
// re-opening the store on what a real kernel would have left behind.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the slice of *os.File the durability layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's content to stable storage (fsync).
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam. Implementations: OS (the real kernel), Mem
// (in-memory with crash semantics), Fault (deterministic fault wrapper
// around either).
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open is os.Open (read-only).
	Open(name string) (File, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, making its entries (creations,
	// renames, removals) durable. The atomic-rename idiom is not atomic
	// against power loss without it.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by the real kernel.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync failure is the story; closing is cleanup
		return err
	}
	return d.Close()
}

// ReadFile reads the whole file at path through fsys.
func ReadFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// WriteFileAtomic writes data to path through fsys with the full
// crash-safe discipline: temp file in the same directory, write, fsync,
// close, rename over path, fsync the directory. On any error the temp
// file is removed and the previous content of path is untouched. This
// is the one canonical implementation of the atomic-replace idiom; the
// checkpoint container and quarantine moves both use it.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = fsys.Remove(tmp) // leave no litter behind a failed write
		}
	}()
	if _, err = f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	// The rename is not durable until the directory entry is: a crash
	// before this fsync may resurrect the old file.
	return fsys.SyncDir(dir)
}
