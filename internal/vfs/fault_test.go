package vfs

import (
	"errors"
	"os"
	"testing"
)

// TestFaultErrAt: a planned error fails exactly the scheduled op and
// nothing else, and the error is recognizably injected.
func TestFaultErrAt(t *testing.T) {
	f := NewFault(NewMem())
	// Op 0 is the open; op 1 the first write.
	f.FailAt(Plan{At: 1, Kind: KindErr})
	h, err := f.OpenFile("/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := h.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 1: err=%v, want injected", err)
	}
	if _, err := h.Write([]byte("b")); err != nil {
		t.Fatalf("write 2 should pass: %v", err)
	}
	if got := f.Ops(); got != 3 {
		t.Fatalf("ops=%d, want 3 (open, write, write)", got)
	}
}

// TestFaultShortWrite: only a prefix lands, and the op still errors —
// the torn-write signature a WAL must repair.
func TestFaultShortWrite(t *testing.T) {
	m := NewMem()
	f := NewFault(m)
	f.FailAt(Plan{At: 1, Kind: KindShortWrite})
	h, _ := f.OpenFile("/x", os.O_RDWR|os.O_CREATE, 0o644)
	n, err := h.Write([]byte("abcdef"))
	if err == nil {
		t.Fatalf("short write reported success")
	}
	if n != 3 {
		t.Fatalf("short write landed %d bytes, want 3", n)
	}
	got, _ := ReadFile(m, "/x")
	if string(got) != "abc" {
		t.Fatalf("on-disk after short write: %q", got)
	}
}

// TestFaultFlip: the write "succeeds" but the stored bytes lie — the
// silent-corruption case CRC envelopes exist for.
func TestFaultFlip(t *testing.T) {
	m := NewMem()
	f := NewFault(m)
	f.FailAt(Plan{At: 1, Kind: KindFlip})
	h, _ := f.OpenFile("/x", os.O_RDWR|os.O_CREATE, 0o644)
	payload := []byte("abcdef")
	if _, err := h.Write(payload); err != nil {
		t.Fatalf("flip write must report success: %v", err)
	}
	got, _ := ReadFile(m, "/x")
	if string(got) == "abcdef" {
		t.Fatalf("flip wrote clean bytes")
	}
	if len(got) != len(payload) {
		t.Fatalf("flip changed length: %d", len(got))
	}
}

// TestFaultPersistentENOSPC: every mutation fails while the mode is on;
// reads keep working; clearing heals.
func TestFaultPersistentENOSPC(t *testing.T) {
	m := NewMem()
	h0, _ := m.OpenFile("/pre", os.O_RDWR|os.O_CREATE, 0o644)
	_, _ = h0.Write([]byte("pre"))
	_ = h0.Sync()
	_ = h0.Close()

	f := NewFault(m)
	f.SetPersistent(ENOSPC)
	if _, err := f.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ENOSPC) {
		t.Fatalf("create under ENOSPC: %v", err)
	}
	// Reads still work: a full disk serves status queries.
	if got, err := ReadFile(f, "/pre"); err != nil || string(got) != "pre" {
		t.Fatalf("read under ENOSPC: %q, %v", got, err)
	}
	f.SetPersistent(nil)
	if _, err := f.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644); err != nil {
		t.Fatalf("after clearing ENOSPC: %v", err)
	}
}

// TestFaultCrashIsTerminal: from the crash point on, every operation
// fails with ErrCrashed — nothing further reaches the inner FS.
func TestFaultCrashIsTerminal(t *testing.T) {
	m := NewMem()
	f := NewFault(m)
	f.CrashAt(1)
	h, err := f.OpenFile("/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := h.Write([]byte("a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: %v", err)
	}
	if _, err := h.Write([]byte("b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := h.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if err := f.MkdirAll("/d", 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("mkdir after crash: %v", err)
	}
	if got, _ := ReadFile(m, "/x"); len(got) != 0 {
		t.Fatalf("bytes leaked past the crash: %q", got)
	}
}

// TestFaultCountsOnlyMutations: read-only opens, Stat and ReadDir are
// not counted, so crash-at-op-i schedules line up with the mutation
// sequence a store actually performs.
func TestFaultCountsOnlyMutations(t *testing.T) {
	m := NewMem()
	h, _ := m.OpenFile("/x", os.O_RDWR|os.O_CREATE, 0o644)
	_, _ = h.Write([]byte("hello"))
	_ = h.Sync()
	_ = h.Close()

	f := NewFault(m)
	if _, err := f.Open("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadDir("/"); err != nil {
		t.Fatal(err)
	}
	if got := f.Ops(); got != 0 {
		t.Fatalf("read path counted %d ops (trace %v), want 0", got, f.Trace())
	}
}
