package vfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// Op names one syscall class the injector can target.
type Op string

const (
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpSyncDir  Op = "syncdir"
)

// ErrCrashed is what every operation returns once a Fault has crashed:
// the process is "dead", nothing further reaches the disk.
var ErrCrashed = errors.New("vfs: simulated crash")

// ErrInjected marks every injected failure so tests can tell a planted
// error from a real one.
var ErrInjected = errors.New("vfs: injected fault")

// Kind is what an injection does to its operation.
type Kind int

const (
	// KindErr fails the operation with the planned error; nothing
	// reaches the inner FS.
	KindErr Kind = iota
	// KindShortWrite applies only a prefix of a write, then fails — the
	// torn-write signature. On non-write operations it degrades to
	// KindErr.
	KindShortWrite
	// KindFlip applies the operation with one bit flipped in the written
	// data and reports success — silent media corruption. On non-write
	// operations it degrades to KindErr.
	KindFlip
	// KindCrash fails this operation and every operation after it with
	// ErrCrashed: the crash point of a crash-simulation run.
	KindCrash
)

// Plan is one scheduled injection.
type Plan struct {
	// At is the 0-based index (over counted operations) to inject at.
	At int64
	// Kind is what happens there.
	Kind Kind
	// Err is the error to return (default ErrInjected wrapped in a
	// PathError-ish message). For KindFlip it is ignored.
	Err error
}

// Fault wraps an FS and injects failures on a deterministic per-op
// schedule. Operations are counted in call order across the whole FS
// (reads are not counted by default — recovery-path reads are exercised
// separately — so op indices line up with the mutation sequence a WAL
// actually performs).
type Fault struct {
	inner FS

	mu         sync.Mutex
	n          int64
	plans      map[int64]Plan
	crashed    bool
	persistent error // every mutating op fails with this until cleared
	countReads bool
	ops        []Op // audit trail of counted ops, for harness messages
}

// NewFault wraps inner with an empty schedule.
func NewFault(inner FS) *Fault {
	return &Fault{inner: inner, plans: map[int64]Plan{}}
}

// FailAt schedules plan p (replacing any previous plan at the same
// index).
func (f *Fault) FailAt(p Plan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[p.At] = p
}

// CrashAt schedules a crash at op index i.
func (f *Fault) CrashAt(i int64) { f.FailAt(Plan{At: i, Kind: KindCrash}) }

// SetPersistent makes every subsequent mutating operation fail with err
// — the "disk is full / pulled" mode. Clear with SetPersistent(nil).
// Reads still succeed: a full disk still serves status queries.
func (f *Fault) SetPersistent(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.persistent = err
}

// ENOSPC is the canonical persistent-failure error tests inject.
var ENOSPC error = syscall.ENOSPC

// Ops returns the count of operations observed so far (the schedule
// domain for a crash-at-every-point loop).
func (f *Fault) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Trace returns the op kinds counted so far, in order.
func (f *Fault) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.ops...)
}

// step counts one operation and returns the plan to apply, if any.
func (f *Fault) step(op Op) (Plan, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Plan{}, false, ErrCrashed
	}
	i := f.n
	f.n++
	f.ops = append(f.ops, op)
	if p, ok := f.plans[i]; ok {
		if p.Kind == KindCrash {
			f.crashed = true
			return Plan{}, false, ErrCrashed
		}
		if p.Err == nil {
			p.Err = &fs.PathError{Op: string(op), Path: "<injected>", Err: ErrInjected}
		}
		return p, true, nil
	}
	if f.persistent != nil {
		return Plan{}, false, &fs.PathError{Op: string(op), Path: "<injected>", Err: f.persistent}
	}
	return Plan{}, false, nil
}

// OpenFile implements FS. Opens that can create or truncate count as
// mutations; read-only opens count only with countReads.
func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	writable := flag&(os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0
	if writable {
		p, ok, err := f.step(OpOpen)
		if err != nil {
			return nil, err
		}
		if ok && p.Kind != KindFlip {
			return nil, p.Err
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner, writable: writable}, nil
}

// Open implements FS. Read-only opens are not counted.
func (f *Fault) Open(name string) (File, error) {
	f.mu.Lock()
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner}, nil
}

func (f *Fault) mutate(op Op, fn func() error) error {
	p, ok, err := f.step(op)
	if err != nil {
		return err
	}
	if ok && p.Kind != KindFlip {
		return p.Err
	}
	return fn()
}

// MkdirAll implements FS.
func (f *Fault) MkdirAll(path string, perm os.FileMode) error {
	return f.mutate(OpMkdir, func() error { return f.inner.MkdirAll(path, perm) })
}

// Rename implements FS.
func (f *Fault) Rename(oldpath, newpath string) error {
	return f.mutate(OpRename, func() error { return f.inner.Rename(oldpath, newpath) })
}

// Remove implements FS.
func (f *Fault) Remove(name string) error {
	return f.mutate(OpRemove, func() error { return f.inner.Remove(name) })
}

// Stat implements FS (never counted or failed: metadata reads are not
// on the durability path).
func (f *Fault) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

// ReadDir implements FS (never counted or failed).
func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// SyncDir implements FS.
func (f *Fault) SyncDir(dir string) error {
	return f.mutate(OpSyncDir, func() error { return f.inner.SyncDir(dir) })
}

// faultFile threads file operations back through the schedule.
type faultFile struct {
	f     *Fault
	inner File
	// writable marks handles whose close can lose buffered data;
	// read-only closes are not counted or failed.
	writable bool
}

func (ff *faultFile) Read(b []byte) (int, error) {
	ff.f.mu.Lock()
	dead := ff.f.crashed
	ff.f.mu.Unlock()
	if dead {
		return 0, ErrCrashed
	}
	return ff.inner.Read(b)
}

func (ff *faultFile) Write(b []byte) (int, error) {
	p, ok, err := ff.f.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if ok {
		switch p.Kind {
		case KindShortWrite:
			// Deterministic torn write: half the payload lands (at least
			// one byte, so "torn" differs from "failed before writing").
			k := len(b) / 2
			if k == 0 && len(b) > 0 {
				k = 1
			}
			if _, werr := ff.inner.Write(b[:k]); werr != nil {
				return 0, werr
			}
			return k, p.Err
		case KindFlip:
			// Silent corruption: the write "succeeds" but one bit lies.
			mut := append([]byte(nil), b...)
			if len(mut) > 0 {
				mut[len(mut)/2] ^= 0x40
			}
			if n, werr := ff.inner.Write(mut); werr != nil {
				return n, werr
			}
			return len(b), nil
		default:
			return 0, p.Err
		}
	}
	return ff.inner.Write(b)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Sync() error {
	return ff.f.mutate(OpSync, ff.inner.Sync)
}

func (ff *faultFile) Truncate(size int64) error {
	return ff.f.mutate(OpTruncate, func() error { return ff.inner.Truncate(size) })
}

func (ff *faultFile) Close() error {
	// Close is counted (a failed close can lose buffered data on real
	// kernels) but a crashed FS still releases handles without error
	// spam: the data-loss story is told by Crash itself.
	ff.f.mu.Lock()
	dead := ff.f.crashed
	ff.f.mu.Unlock()
	if dead {
		_ = ff.inner.Close()
		return ErrCrashed
	}
	if !ff.writable {
		return ff.inner.Close()
	}
	return ff.f.mutate(OpClose, ff.inner.Close)
}

func (ff *faultFile) Name() string { return ff.inner.Name() }
