// Package leak is a test helper that fails a test when it leaks
// goroutines. It exists because every long-lived component in this repo
// (the daemon's worker pool, the fleet coordinator's dispatch loops and
// janitor) promises that Close/Stop tears down everything it started —
// a promise only a counter can keep honest.
package leak

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count now and registers a cleanup that
// requires the count to return to within slack of the snapshot before
// deadline-ish (5s), GC-ing and re-polling in between: goroutine exits
// are asynchronous even after a clean Close. On failure it dumps all
// stacks so the leaked goroutine is named, not guessed.
//
// Call it first in the test, before starting the component under test,
// so its cleanup runs after the component's own t.Cleanup teardown.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutines leaked: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	})
}
