// Package simerr defines the simulator's typed error taxonomy. Every
// structured failure on the library path — invalid configurations,
// emulator faults, watchdog aborts, injected faults, cancelled runs — is
// reported as a *SimError carrying the failing subsystem plus whatever
// run coordinates (workload, PC, cycle) were known at the failure site.
// Sentinel errors (ErrNoProgress, ErrConfig, ErrInjected) thread through
// the wrapping so callers classify failures with errors.Is without
// string-matching.
package simerr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors, matched with errors.Is through any SimError wrapping.
var (
	// ErrNoProgress reports a forward-progress watchdog abort: no
	// instruction committed for the configured number of cycles.
	ErrNoProgress = errors.New("no forward progress")
	// ErrConfig reports an invalid configuration (cache geometry,
	// counter sizing, machine widths).
	ErrConfig = errors.New("invalid configuration")
	// ErrInjected reports a deliberately injected fault (see
	// internal/faultinject).
	ErrInjected = errors.New("injected fault")
	// ErrCorrupt reports a damaged durability artifact: a checkpoint
	// file or journal record whose checksum, header, or geometry does
	// not validate. Corruption is recoverable — callers discard the
	// artifact and recompute — so this is never fatal to a sweep.
	ErrCorrupt = errors.New("corrupt checkpoint or journal data")
	// ErrDivergence reports that the lockstep differential harness
	// found the timing pipeline committing a different (PC, dest-reg,
	// value) stream or architectural state than the reference emulator.
	ErrDivergence = errors.New("pipeline diverged from reference emulator")
)

// SimError is the simulator's structured error: which subsystem failed
// and, when known, where in the run. Zero-valued coordinate fields mean
// "unknown", not "cycle/PC zero"; HasPC/HasCycle disambiguate.
type SimError struct {
	Stage    string // failing subsystem: "pipeline", "mem", "core", "emu", "exp", "faultinject", "checkpoint", "journal", "lockstep"
	Workload string // workload / program name, when known
	PC       uint64 // simulated-memory address of the faulting instruction
	Cycle    int64  // simulated cycle of the failure
	HasPC    bool
	HasCycle bool
	Err      error // underlying cause (never nil)
}

// Error implements error.
func (e *SimError) Error() string {
	var b strings.Builder
	if e.Stage != "" {
		b.WriteString(e.Stage)
	} else {
		b.WriteString("sim")
	}
	if e.Workload != "" {
		fmt.Fprintf(&b, " [%s]", e.Workload)
	}
	if e.HasPC {
		fmt.Fprintf(&b, " pc=%#x", e.PC)
	}
	if e.HasCycle {
		fmt.Fprintf(&b, " cycle=%d", e.Cycle)
	}
	b.WriteString(": ")
	b.WriteString(e.Err.Error())
	return b.String()
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *SimError) Unwrap() error { return e.Err }

// New wraps err as a SimError for the given stage. It returns nil for a
// nil err so call sites can wrap unconditionally.
func New(stage string, err error) error {
	if err == nil {
		return nil
	}
	return &SimError{Stage: stage, Err: err}
}

// Newf wraps a fresh formatted error for the stage.
func Newf(stage, format string, args ...any) error {
	return &SimError{Stage: stage, Err: fmt.Errorf(format, args...)}
}

// At wraps err with full run coordinates.
func At(stage, workload string, pc uint64, cycle int64, err error) error {
	if err == nil {
		return nil
	}
	return &SimError{
		Stage: stage, Workload: workload,
		PC: pc, Cycle: cycle, HasPC: true, HasCycle: true,
		Err: err,
	}
}

// WithWorkload attributes err to a workload: if err already is (or
// wraps) a SimError missing its workload, a copy of the outermost
// SimError is re-issued with the name filled in; otherwise err is
// wrapped in a fresh one. Nil stays nil.
func WithWorkload(workload string, err error) error {
	if err == nil {
		return nil
	}
	var se *SimError
	if errors.As(err, &se) && err == error(se) {
		if se.Workload != "" {
			return err
		}
		cp := *se
		cp.Workload = workload
		return &cp
	}
	return &SimError{Stage: "exp", Workload: workload, Err: err}
}

// transientErr marks an error as transient (worth one retry).
type transientErr struct{ err error }

func (t *transientErr) Error() string { return "transient: " + t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient marks err as transient: a retry of the same run may
// succeed (injected soft faults, resource exhaustion). Nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or any error it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}
