package simerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSimErrorFormatting(t *testing.T) {
	err := At("pipeline", "li", 0x1000, 420, ErrNoProgress)
	msg := err.Error()
	for _, want := range []string{"pipeline", "[li]", "pc=0x1000", "cycle=420", "no forward progress"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Error("errors.Is lost the sentinel through SimError")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Cycle != 420 || !se.HasCycle {
		t.Errorf("errors.As did not recover coordinates: %+v", se)
	}
}

func TestNewNilPassthrough(t *testing.T) {
	if New("mem", nil) != nil || At("mem", "x", 0, 0, nil) != nil || WithWorkload("x", nil) != nil || Transient(nil) != nil {
		t.Error("nil error must stay nil through every wrapper")
	}
}

func TestWithWorkload(t *testing.T) {
	// Plain error: wrapped fresh.
	err := WithWorkload("go", errors.New("boom"))
	var se *SimError
	if !errors.As(err, &se) || se.Workload != "go" {
		t.Fatalf("plain error not attributed: %v", err)
	}
	// SimError missing workload: filled in, cause preserved.
	err = WithWorkload("perl", New("mem", ErrConfig))
	if !errors.As(err, &se) || se.Workload != "perl" || se.Stage != "mem" {
		t.Fatalf("stage/workload wrong: %v", err)
	}
	if !errors.Is(err, ErrConfig) {
		t.Error("sentinel lost")
	}
	// SimError that already names a workload keeps it.
	orig := &SimError{Stage: "emu", Workload: "li", Err: ErrInjected}
	if got := WithWorkload("go", orig); got != error(orig) {
		t.Errorf("existing workload overwritten: %v", got)
	}
	// A wrapped SimError is not mutated; the new context wraps outside.
	wrapped := fmt.Errorf("outer: %w", New("core", ErrConfig))
	err = WithWorkload("ijpeg", wrapped)
	if !strings.Contains(err.Error(), "outer") || !errors.Is(err, ErrConfig) {
		t.Errorf("wrapped cause lost: %v", err)
	}
}

func TestTransient(t *testing.T) {
	base := New("faultinject", ErrInjected)
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Error("marked error not reported transient")
	}
	if !errors.Is(tr, ErrInjected) {
		t.Error("transient wrapper hides the cause")
	}
	// Marking survives further wrapping.
	if !IsTransient(fmt.Errorf("run: %w", tr)) {
		t.Error("transient lost through wrapping")
	}
}
