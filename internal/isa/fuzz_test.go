package isa

import "testing"

// FuzzEncodeDecode checks that the 64-bit machine encoding is a
// bijection on its valid domain, from both directions:
//
//   - any word Decode accepts must re-encode to the identical word
//     (every bit of a valid encoding is meaningful — the register
//     fields are total over the 0..63 name space and the immediate
//     sign-extension is exact), and
//   - any instruction Encode accepts must decode back to the identical
//     instruction.
//
// The fuzzed input doubles as both a raw machine word and raw
// instruction fields, so the corpus explores invalid opcodes,
// out-of-range immediates, and boundary sign bits for free.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0), uint8(0), int64(0))
	f.Add(uint64(0xFFFFFFFFFFFFFFFF), uint8(HALT), uint8(63), uint8(31), ImmMax)
	f.Add(uint64(1)<<56, uint8(numOps-1), uint8(1), uint8(2), ImmMin)
	f.Add(uint64(LDQ)<<56|1<<37, uint8(STQ), uint8(33), uint8(200), int64(-1))

	f.Fuzz(func(t *testing.T, w uint64, op, rd, ra uint8, imm int64) {
		// Word direction: Decode(w) ok => Encode(Decode(w)) == w.
		if in, err := Decode(w); err == nil {
			back, eerr := Encode(in)
			if eerr != nil {
				t.Fatalf("Decode(%#x) = %+v, but Encode rejects it: %v", w, in, eerr)
			}
			if back != w {
				t.Fatalf("round trip changed the word: %#x -> %+v -> %#x", w, in, back)
			}
		}

		// Instruction direction: Encode(in) ok => Decode(Encode(in)) == in.
		in := Inst{Op: Op(op), Rd: Reg(rd), Ra: Reg(ra), Rb: Reg(rd ^ ra), Imm: imm}
		word, err := Encode(in)
		if err != nil {
			return // invalid field; rejection is the correct behavior
		}
		got, derr := Decode(word)
		if derr != nil {
			t.Fatalf("Encode(%+v) = %#x, but Decode rejects it: %v", in, word, derr)
		}
		if got != in {
			t.Fatalf("round trip changed the instruction: %+v -> %#x -> %+v", in, word, got)
		}
	})
}
