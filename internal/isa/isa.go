// Package isa defines the instruction set architecture of the simulated
// machine: a 64-bit, Alpha-like, load/store RISC with 32 integer and 32
// floating-point architectural registers.
//
// The ISA exists to reproduce Tullsen & Seng's register value prediction
// (RVP) study, so it includes the paper's small ISA extension: rvp-marked
// load opcodes (RVPLDQ, RVPLDT) that tell the hardware to predict the
// load's result with the value already present in the destination
// register.
//
// Registers follow Alpha conventions where it matters to the study:
// integer register 31 (RZero) and FP register 31 (FZero) read as zero and
// ignore writes, R30 is the stack pointer by convention, and R26 is the
// conventional return-address register used by JSR/RET.
package isa

import "fmt"

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumRegs is the total architectural register name space. Registers
	// 0..31 are the integer file, 32..63 the floating-point file.
	NumRegs = NumIntRegs + NumFPRegs
)

// Reg names an architectural register in the unified 0..63 name space.
type Reg uint8

// Conventional integer registers.
const (
	RV    Reg = 0  // value return
	RSP   Reg = 30 // stack pointer
	RRA   Reg = 26 // return address
	RZero Reg = 31 // integer zero register
	FZero Reg = 63 // floating-point zero register
)

// FPBase is the unified-name-space index of FP register f0.
const FPBase Reg = 32

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// IsZero reports whether r is one of the hardwired zero registers.
func (r Reg) IsZero() bool { return r == RZero || r == FZero }

// String renders the register in assembler syntax (r0..r31, f0..f31).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-FPBase))
	}
	return fmt.Sprintf("r%d", int(r))
}

// IntReg returns the unified register name for integer register n.
func IntReg(n int) Reg { return Reg(n) }

// FPReg returns the unified register name for FP register n.
func FPReg(n int) Reg { return Reg(n) + FPBase }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The set is deliberately Alpha-flavoured: three-operand integer
// and FP arithmetic, displacement-mode loads and stores, compare-and-branch
// conditional branches, and the two RVP-marked load opcodes from the paper.
const (
	NOP Op = iota

	// Integer arithmetic, register and immediate forms.
	ADD  // rd <- ra + rb
	ADDI // rd <- ra + imm
	SUB  // rd <- ra - rb
	SUBI // rd <- ra - imm
	MUL  // rd <- ra * rb
	MULI // rd <- ra * imm
	DIV  // rd <- ra / rb (signed; 0 if rb == 0)
	REM  // rd <- ra % rb (signed; 0 if rb == 0)
	AND  // rd <- ra & rb
	ANDI // rd <- ra & imm
	OR   // rd <- ra | rb
	ORI  // rd <- ra | imm
	XOR  // rd <- ra ^ rb
	XORI // rd <- ra ^ imm
	SLL  // rd <- ra << (rb & 63)
	SLLI // rd <- ra << (imm & 63)
	SRL  // rd <- uint64(ra) >> (rb & 63)
	SRLI // rd <- uint64(ra) >> (imm & 63)
	SRA  // rd <- ra >> (rb & 63)
	SRAI // rd <- ra >> (imm & 63)

	// Comparisons produce 0/1 in rd.
	CMPEQ  // rd <- ra == rb
	CMPEQI // rd <- ra == imm
	CMPLT  // rd <- ra < rb (signed)
	CMPLTI // rd <- ra < imm (signed)
	CMPLE  // rd <- ra <= rb (signed)
	CMPLEI // rd <- ra <= imm (signed)
	CMPULT // rd <- ra < rb (unsigned)

	// LDA materialises ra + imm into rd (load address / load immediate).
	LDA
	// LDAH materialises ra + imm<<16 into rd.
	LDAH

	// Memory. Effective address is ra + imm. LDQ/STQ move 64-bit integer
	// register data; LDT/STT move 64-bit FP register data.
	LDQ
	STQ
	LDT
	STT

	// RVP-marked loads: architecturally identical to LDQ/LDT, but the
	// opcode tells the pipeline to predict the result with the previous
	// value of the destination register (static RVP, Section 4.1).
	RVPLDQ
	RVPLDT

	// Control. Branches compare ra against zero; the target is in Imm
	// (absolute instruction index after assembly).
	BEQ // taken if ra == 0
	BNE // taken if ra != 0
	BLT // taken if ra < 0
	BGE // taken if ra >= 0
	BGT // taken if ra > 0
	BLE // taken if ra <= 0
	BR  // unconditional; also writes return address to rd if rd != RZero
	JSR // jump to subroutine: rd <- return address, pc <- ra
	RET // pc <- ra

	// Floating point (operands are FP registers; values are IEEE-754
	// doubles carried in 64-bit registers).
	FADD
	FSUB
	FMUL
	FDIV
	FCMPEQ // rd <- 1.0 if ra == rb else 0.0
	FCMPLT // rd <- 1.0 if ra < rb else 0.0
	FCMPLE // rd <- 1.0 if ra <= rb else 0.0
	FBEQ   // taken if ra == +0.0
	FBNE   // taken if ra != +0.0
	CVTQT  // FP rd <- float64(int64 ra) (ra is an FP reg holding int bits)
	CVTTQ  // FP rd <- int64(float64 ra) stored as int bits
	ITOF   // FP rd <- raw bits of integer ra
	FTOI   // integer rd <- raw bits of FP ra

	// HALT stops the program.
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop",
	ADD: "add", ADDI: "addi", SUB: "sub", SUBI: "subi",
	MUL: "mul", MULI: "muli", DIV: "div", REM: "rem",
	AND: "and", ANDI: "andi", OR: "or", ORI: "ori", XOR: "xor", XORI: "xori",
	SLL: "sll", SLLI: "slli", SRL: "srl", SRLI: "srli", SRA: "sra", SRAI: "srai",
	CMPEQ: "cmpeq", CMPEQI: "cmpeqi", CMPLT: "cmplt", CMPLTI: "cmplti",
	CMPLE: "cmple", CMPLEI: "cmplei", CMPULT: "cmpult",
	LDA: "lda", LDAH: "ldah",
	LDQ: "ldq", STQ: "stq", LDT: "ldt", STT: "stt",
	RVPLDQ: "rvp_ldq", RVPLDT: "rvp_ldt",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BGT: "bgt", BLE: "ble",
	BR: "br", JSR: "jsr", RET: "ret",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FCMPEQ: "fcmpeq", FCMPLT: "fcmplt", FCMPLE: "fcmple",
	FBEQ: "fbeq", FBNE: "fbne",
	CVTQT: "cvtqt", CVTTQ: "cvttq", ITOF: "itof", FTOI: "ftoi",
	HALT: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps assembler mnemonics back to opcodes.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Class partitions opcodes by the functional unit they need and by the
// pipeline bookkeeping they require.
type Class uint8

// Functional-unit / scheduling classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional and unconditional control transfer
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassHalt
)

// Classify returns the scheduling class of op.
func Classify(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case MUL, MULI:
		return ClassIntMul
	case DIV, REM:
		return ClassIntDiv
	case LDQ, LDT, RVPLDQ, RVPLDT:
		return ClassLoad
	case STQ, STT:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BGT, BLE, BR, JSR, RET, FBEQ, FBNE:
		return ClassBranch
	case FADD, FSUB, FCMPEQ, FCMPLT, FCMPLE, CVTQT, CVTTQ, ITOF, FTOI:
		return ClassFPAdd
	case FMUL:
		return ClassFPMul
	case FDIV:
		return ClassFPDiv
	case HALT:
		return ClassHalt
	default:
		return ClassIntALU
	}
}

// Latency returns the execution latency, in cycles, of the class, not
// counting memory-hierarchy time for loads (the cache model adds that).
func (c Class) Latency() int {
	switch c {
	case ClassIntALU, ClassNop, ClassBranch, ClassStore:
		return 1
	case ClassIntMul:
		return 3
	case ClassIntDiv:
		return 20
	case ClassLoad:
		return 1 // address generation; cache adds access time
	case ClassFPAdd:
		return 4
	case ClassFPMul:
		return 4
	case ClassFPDiv:
		return 16
	default:
		return 1
	}
}

// Inst is one decoded instruction. Imm is a displacement for memory
// operations, an immediate operand for ALU-immediate forms, and an
// absolute instruction index for control transfers (the assembler resolves
// labels to indices).
type Inst struct {
	Op  Op
	Rd  Reg   // destination register (RZero/FZero when none)
	Ra  Reg   // first source
	Rb  Reg   // second source (register forms)
	Imm int64 // immediate / displacement / branch target
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch Classify(in.Op) {
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Ra)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Ra)
	case ClassBranch:
		switch in.Op {
		case BR:
			return fmt.Sprintf("%s %d", in.Op, in.Imm)
		case JSR:
			return fmt.Sprintf("%s %s, (%s)", in.Op, in.Rd, in.Ra)
		case RET:
			return fmt.Sprintf("%s (%s)", in.Op, in.Ra)
		default:
			return fmt.Sprintf("%s %s, %d", in.Op, in.Ra, in.Imm)
		}
	case ClassNop, ClassHalt:
		return in.Op.String()
	default:
		if HasImm(in.Op) {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Ra, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
	}
}

// HasImm reports whether op's second operand is the immediate field rather
// than register Rb.
func HasImm(op Op) bool {
	switch op {
	case ADDI, SUBI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI,
		CMPEQI, CMPLTI, CMPLEI, LDA, LDAH,
		LDQ, STQ, LDT, STT, RVPLDQ, RVPLDT,
		BEQ, BNE, BLT, BGE, BGT, BLE, BR, FBEQ, FBNE:
		return true
	}
	return false
}

// IsLoad reports whether op reads memory.
func IsLoad(op Op) bool { return Classify(op) == ClassLoad }

// IsStore reports whether op writes memory.
func IsStore(op Op) bool { return Classify(op) == ClassStore }

// IsRVPMarked reports whether op is one of the static-RVP load opcodes.
func IsRVPMarked(op Op) bool { return op == RVPLDQ || op == RVPLDT }

// RVPVariant returns the rvp-marked twin of a plain load opcode, and ok ==
// false when op has no rvp form.
func RVPVariant(op Op) (Op, bool) {
	switch op {
	case LDQ:
		return RVPLDQ, true
	case LDT:
		return RVPLDT, true
	}
	return op, false
}

// PlainVariant undoes RVPVariant: it maps rvp-marked loads back to their
// ordinary opcodes and leaves every other opcode unchanged.
func PlainVariant(op Op) Op {
	switch op {
	case RVPLDQ:
		return LDQ
	case RVPLDT:
		return LDT
	}
	return op
}

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BGT, BLE, FBEQ, FBNE:
		return true
	}
	return false
}

// IsUncondCTI reports whether op is an unconditional control transfer.
func IsUncondCTI(op Op) bool {
	switch op {
	case BR, JSR, RET:
		return true
	}
	return false
}

// WritesReg reports whether the instruction architecturally writes Rd.
// Stores, branches (other than BR/JSR link writes), NOP and HALT do not.
func (in Inst) WritesReg() bool {
	switch Classify(in.Op) {
	case ClassStore, ClassNop, ClassHalt:
		return false
	case ClassBranch:
		// BR and JSR may write a link register.
		if in.Op == BR || in.Op == JSR {
			return !in.Rd.IsZero()
		}
		return false
	}
	return !in.Rd.IsZero()
}

// Dest returns the written register and ok == false when none is written.
func (in Inst) Dest() (Reg, bool) {
	if in.WritesReg() {
		return in.Rd, true
	}
	return RZero, false
}

// Sources appends the architecturally read registers of in to dst and
// returns the extended slice. Zero registers are included (they read as
// zero but create no dependence; callers filter as needed).
func (in Inst) Sources(dst []Reg) []Reg {
	switch in.Op {
	case NOP, HALT:
		return dst
	case LDA, LDAH:
		return append(dst, in.Ra)
	case LDQ, LDT, RVPLDQ, RVPLDT:
		return append(dst, in.Ra)
	case STQ, STT:
		// Rd holds the stored data; Ra the base address.
		return append(dst, in.Rd, in.Ra)
	case BEQ, BNE, BLT, BGE, BGT, BLE, FBEQ, FBNE:
		return append(dst, in.Ra)
	case BR:
		return dst
	case JSR, RET:
		return append(dst, in.Ra)
	case ITOF:
		return append(dst, in.Ra)
	case FTOI:
		return append(dst, in.Ra)
	default:
		if HasImm(in.Op) {
			return append(dst, in.Ra)
		}
		return append(dst, in.Ra, in.Rb)
	}
}
