package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{IntReg(0), "r0"},
		{IntReg(31), "r31"},
		{FPReg(0), "f0"},
		{FPReg(31), "f31"},
		{RSP, "r30"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegPredicates(t *testing.T) {
	if !RZero.IsZero() || !FZero.IsZero() {
		t.Error("zero registers not recognised")
	}
	if IntReg(5).IsZero() || FPReg(5).IsZero() {
		t.Error("non-zero register reported zero")
	}
	if IntReg(7).IsFP() {
		t.Error("r7 reported FP")
	}
	if !FPReg(7).IsFP() {
		t.Error("f7 not reported FP")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		name := Op(op).String()
		got, ok := OpByName[name]
		if !ok {
			t.Fatalf("opcode %d (%s) missing from OpByName", op, name)
		}
		if got != Op(op) {
			t.Fatalf("OpByName[%q] = %v, want %v", name, got, Op(op))
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassIntALU},
		{ADDI, ClassIntALU},
		{MUL, ClassIntMul},
		{DIV, ClassIntDiv},
		{LDQ, ClassLoad},
		{RVPLDQ, ClassLoad},
		{LDT, ClassLoad},
		{STQ, ClassStore},
		{STT, ClassStore},
		{BEQ, ClassBranch},
		{BR, ClassBranch},
		{JSR, ClassBranch},
		{RET, ClassBranch},
		{FADD, ClassFPAdd},
		{FMUL, ClassFPMul},
		{FDIV, ClassFPDiv},
		{CVTQT, ClassFPAdd},
		{HALT, ClassHalt},
		{NOP, ClassNop},
		{LDA, ClassIntALU},
	}
	for _, c := range cases {
		if got := Classify(c.op); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		if l := Classify(Op(op)).Latency(); l < 1 {
			t.Errorf("latency of %v is %d, want >= 1", Op(op), l)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: ADD, Rd: 3, Ra: 4, Rb: 5},
		{Op: ADDI, Rd: 3, Ra: 4, Imm: -1},
		{Op: LDQ, Rd: 7, Ra: RSP, Imm: 1 << 20},
		{Op: STQ, Rd: 9, Ra: 2, Imm: -(1 << 20)},
		{Op: BEQ, Ra: 1, Imm: 123456},
		{Op: RVPLDQ, Rd: 12, Ra: 13, Imm: 64},
		{Op: FADD, Rd: FPReg(1), Ra: FPReg(2), Rb: FPReg(3)},
		{Op: HALT},
		{Op: LDA, Rd: 1, Ra: RZero, Imm: ImmMax},
		{Op: LDA, Rd: 1, Ra: RZero, Imm: ImmMin},
	}
	for _, in := range insts {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#x): %v", w, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := Encode(Inst{Op: LDA, Rd: 1, Imm: ImmMax + 1}); err == nil {
		t.Error("Encode accepted an immediate above ImmMax")
	}
	if _, err := Encode(Inst{Op: LDA, Rd: 1, Imm: ImmMin - 1}); err == nil {
		t.Error("Encode accepted an immediate below ImmMin")
	}
	if _, err := Encode(Inst{Op: Op(200), Rd: 1}); err == nil {
		t.Error("Encode accepted an invalid opcode")
	}
	if _, err := Decode(uint64(200) << 56); err == nil {
		t.Error("Decode accepted an invalid opcode")
	}
}

// TestEncodeDecodeProperty drives the round trip with randomly generated
// valid instructions.
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		in := Inst{
			Op:  Op(rng.Intn(NumOps)),
			Rd:  Reg(rng.Intn(NumRegs)),
			Ra:  Reg(rng.Intn(NumRegs)),
			Rb:  Reg(rng.Intn(NumRegs)),
			Imm: rng.Int63n(ImmMax-ImmMin+1) + ImmMin,
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSourcesAndDest(t *testing.T) {
	cases := []struct {
		in      Inst
		srcs    []Reg
		dest    Reg
		writes  bool
		example string
	}{
		{Inst{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, []Reg{2, 3}, 1, true, "add"},
		{Inst{Op: ADDI, Rd: 1, Ra: 2, Imm: 5}, []Reg{2}, 1, true, "addi"},
		{Inst{Op: LDQ, Rd: 1, Ra: 2}, []Reg{2}, 1, true, "ldq"},
		{Inst{Op: STQ, Rd: 1, Ra: 2}, []Reg{1, 2}, RZero, false, "stq"},
		{Inst{Op: BEQ, Ra: 4, Imm: 10}, []Reg{4}, RZero, false, "beq"},
		{Inst{Op: BR, Rd: RZero, Imm: 10}, nil, RZero, false, "br"},
		{Inst{Op: JSR, Rd: RRA, Ra: 5}, []Reg{5}, RRA, true, "jsr"},
		{Inst{Op: RET, Ra: RRA}, []Reg{RRA}, RZero, false, "ret"},
		{Inst{Op: ADD, Rd: RZero, Ra: 1, Rb: 2}, []Reg{1, 2}, RZero, false, "add->r31"},
		{Inst{Op: HALT}, nil, RZero, false, "halt"},
		{Inst{Op: FADD, Rd: FPReg(1), Ra: FPReg(2), Rb: FPReg(3)}, []Reg{FPReg(2), FPReg(3)}, FPReg(1), true, "fadd"},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%s: Sources = %v, want %v", c.example, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%s: Sources = %v, want %v", c.example, got, c.srcs)
				break
			}
		}
		d, ok := c.in.Dest()
		if ok != c.writes {
			t.Errorf("%s: WritesReg = %v, want %v", c.example, ok, c.writes)
		}
		if ok && d != c.dest {
			t.Errorf("%s: Dest = %v, want %v", c.example, d, c.dest)
		}
	}
}

func TestRVPVariants(t *testing.T) {
	if v, ok := RVPVariant(LDQ); !ok || v != RVPLDQ {
		t.Errorf("RVPVariant(LDQ) = %v, %v", v, ok)
	}
	if v, ok := RVPVariant(LDT); !ok || v != RVPLDT {
		t.Errorf("RVPVariant(LDT) = %v, %v", v, ok)
	}
	if _, ok := RVPVariant(ADD); ok {
		t.Error("RVPVariant(ADD) should not exist")
	}
	if PlainVariant(RVPLDQ) != LDQ || PlainVariant(RVPLDT) != LDT {
		t.Error("PlainVariant of rvp loads wrong")
	}
	if PlainVariant(ADD) != ADD {
		t.Error("PlainVariant changed a non-rvp op")
	}
	if !IsRVPMarked(RVPLDQ) || IsRVPMarked(LDQ) {
		t.Error("IsRVPMarked wrong")
	}
}

func TestBranchPredicates(t *testing.T) {
	for _, op := range []Op{BEQ, BNE, BLT, BGE, BGT, BLE, FBEQ, FBNE} {
		if !IsCondBranch(op) {
			t.Errorf("IsCondBranch(%v) = false", op)
		}
		if IsUncondCTI(op) {
			t.Errorf("IsUncondCTI(%v) = true", op)
		}
	}
	for _, op := range []Op{BR, JSR, RET} {
		if IsCondBranch(op) {
			t.Errorf("IsCondBranch(%v) = true", op)
		}
		if !IsUncondCTI(op) {
			t.Errorf("IsUncondCTI(%v) = false", op)
		}
	}
	if IsCondBranch(ADD) || IsUncondCTI(ADD) {
		t.Error("ADD classified as branch")
	}
}

func TestDisassemblyForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Ra: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LDQ, Rd: 1, Ra: 2, Imm: 16}, "ldq r1, 16(r2)"},
		{Inst{Op: STQ, Rd: 1, Ra: 2, Imm: 8}, "stq r1, 8(r2)"},
		{Inst{Op: BEQ, Ra: 3, Imm: 42}, "beq r3, 42"},
		{Inst{Op: BR, Imm: 7}, "br 7"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: RVPLDQ, Rd: 4, Ra: 5, Imm: 0}, "rvp_ldq r4, 0(r5)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
