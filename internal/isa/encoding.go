package isa

import "fmt"

// Instructions have a fixed 64-bit machine encoding so that programs can be
// stored in simulated memory and fetched through the I-cache model like
// real code. The layout, from the most significant bits down:
//
//	bits 63..56  opcode (8 bits)
//	bits 55..50  rd     (6 bits)
//	bits 49..44  ra     (6 bits)
//	bits 43..38  rb     (6 bits)
//	bits 37..0   imm    (38-bit two's-complement immediate)
//
// 38 bits of immediate comfortably covers data-segment displacements and
// absolute branch targets for the workloads in this repository.
const (
	immBits = 38
	immMask = (uint64(1) << immBits) - 1
	// ImmMax and ImmMin bound the encodable immediate.
	ImmMax = int64(1)<<(immBits-1) - 1
	ImmMin = -(int64(1) << (immBits - 1))
)

// InstBytes is the size of one encoded instruction in simulated memory.
const InstBytes = 8

// Encode packs the instruction into its 64-bit machine form. It returns an
// error if the immediate does not fit or a field is out of range.
func Encode(in Inst) (uint64, error) {
	if int(in.Op) >= NumOps {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Ra >= NumRegs || in.Rb >= NumRegs {
		return 0, fmt.Errorf("isa: encode: register out of range in %v", in)
	}
	if in.Imm > ImmMax || in.Imm < ImmMin {
		return 0, fmt.Errorf("isa: encode: immediate %d out of range in %v", in.Imm, in)
	}
	w := uint64(in.Op) << 56
	w |= uint64(in.Rd) << 50
	w |= uint64(in.Ra) << 44
	w |= uint64(in.Rb) << 38
	w |= uint64(in.Imm) & immMask
	return w, nil
}

// MustEncode is Encode for instructions known to be valid; it panics on
// error. It is intended for tests and hand-built fixtures only — library
// code (the assembler validates at emit, the emulator at load) uses
// Encode and returns the error to its caller.
func MustEncode(in Inst) uint64 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 64-bit machine word into an instruction.
func Decode(w uint64) (Inst, error) {
	op := Op(w >> 56)
	if int(op) >= NumOps {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d in %#x", op, w)
	}
	imm := int64(w & immMask)
	// Sign-extend the 38-bit immediate.
	if imm&(1<<(immBits-1)) != 0 {
		imm -= 1 << immBits
	}
	return Inst{
		Op:  op,
		Rd:  Reg(w >> 50 & 63),
		Ra:  Reg(w >> 44 & 63),
		Rb:  Reg(w >> 38 & 63),
		Imm: imm,
	}, nil
}
