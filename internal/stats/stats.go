// Package stats provides small result-table utilities shared by the
// experiment drivers and CLIs: aggregation helpers and fixed-width text
// rendering of labelled series, mirroring the rows/series of the paper's
// tables and figures.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// GeoMean returns the geometric mean of vs (0 for empty input; values
// must be positive).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		p *= v
	}
	return math.Pow(p, 1/float64(len(vs)))
}

// Table is a labelled grid: one row per series, one column per item.
// Cells can be marked failed (MarkFailed) when the run that would have
// produced them errored; failed cells render as "ERR" and carry their
// failure reason through JSON round-trips.
type Table struct {
	Title   string
	Columns []string
	rows    []row
	Notes   []string
	failed  map[cellKey]string
}

type cellKey struct{ Row, Col string }

type row struct {
	label  string
	values map[string]float64
	format string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, columns []string) *Table {
	return &Table{Title: title, Columns: append([]string(nil), columns...)}
}

// AddRow appends a series. format is the fmt verb for values (e.g.
// "%.2f", "%5.1f%%").
func (t *Table) AddRow(label, format string, values map[string]float64) {
	cp := make(map[string]float64, len(values))
	for k, v := range values {
		cp[k] = v
	}
	t.rows = append(t.rows, row{label: label, values: cp, format: format})
}

// AddNote appends a footnote line.
func (t *Table) AddNote(note string) { t.Notes = append(t.Notes, note) }

// MarkFailed marks one cell as failed with a reason. The row need not
// exist yet (a failed run usually produced no row at all); rendering
// shows "ERR" wherever a failed cell would have held a value.
func (t *Table) MarkFailed(label, col, reason string) {
	if t.failed == nil {
		t.failed = make(map[cellKey]string)
	}
	t.failed[cellKey{label, col}] = reason
}

// Failed returns the failure reason for a cell ("" when the cell
// succeeded) and whether the cell was marked failed.
func (t *Table) Failed(label, col string) (string, bool) {
	r, ok := t.failed[cellKey{label, col}]
	return r, ok
}

// FailedCells returns the failed cells in deterministic (row, column)
// order as "row/col: reason" strings.
func (t *Table) FailedCells() []string {
	if len(t.failed) == 0 {
		return nil
	}
	keys := make([]cellKey, 0, len(t.failed))
	for k := range t.failed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Row != keys[j].Row {
			return keys[i].Row < keys[j].Row
		}
		return keys[i].Col < keys[j].Col
	})
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s/%s: %s", k.Row, k.Col, t.failed[k]))
	}
	return out
}

// Row returns the values of the labelled row (nil when absent).
func (t *Table) Row(label string) map[string]float64 {
	for _, r := range t.rows {
		if r.label == label {
			return r.values
		}
	}
	return nil
}

// RowLabels returns the labels in insertion order.
func (t *Table) RowLabels() []string {
	var out []string
	for _, r := range t.rows {
		out = append(out, r.label)
	}
	return out
}

// String renders the table as fixed-width text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	labelW := 12
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.rows))
	for ri, r := range t.rows {
		cells[ri] = make([]string, len(t.Columns))
		for ci, c := range t.Columns {
			v, ok := r.values[c]
			s := "-"
			if _, bad := t.failed[cellKey{r.label, c}]; bad {
				s = "ERR"
			} else if ok {
				s = fmt.Sprintf(r.format, v)
			}
			cells[ri][ci] = s
			if len(s) > colW[ci] {
				colW[ci] = len(s)
			}
		}
	}
	for ci, c := range t.Columns {
		if len(c) > colW[ci] {
			colW[ci] = len(c)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for ci, c := range t.Columns {
		fmt.Fprintf(&b, " %*s", colW[ci], c)
	}
	b.WriteByte('\n')
	for ri, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.label)
		for ci := range t.Columns {
			fmt.Fprintf(&b, " %*s", colW[ci], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table with
// the title as a heading and notes as a trailing paragraph.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "| %s |", r.label)
		for _, c := range t.Columns {
			if _, bad := t.failed[cellKey{r.label, c}]; bad {
				b.WriteString(" ERR |")
			} else if v, ok := r.values[c]; ok {
				fmt.Fprintf(&b, " "+r.format+" |", v)
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// tableJSON is the machine-readable shape of a Table: rows carry their
// labels and values explicitly so run manifests round-trip cleanly.
type tableJSON struct {
	Title   string       `json:"title"`
	Columns []string     `json:"columns"`
	Rows    []rowJSON    `json:"rows"`
	Notes   []string     `json:"notes,omitempty"`
	Failed  []failedJSON `json:"failed,omitempty"`
}

type rowJSON struct {
	Label  string             `json:"label"`
	Values map[string]float64 `json:"values"`
}

type failedJSON struct {
	Row    string `json:"row"`
	Col    string `json:"col"`
	Reason string `json:"reason"`
}

// MarshalJSON renders the table as a structured object (title, columns,
// labelled rows, notes) for machine-readable run reports.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Columns: t.Columns, Notes: t.Notes, Rows: make([]rowJSON, 0, len(t.rows))}
	for _, r := range t.rows {
		cp := make(map[string]float64, len(r.values))
		for k, v := range r.values {
			cp[k] = v
		}
		out.Rows = append(out.Rows, rowJSON{Label: r.label, Values: cp})
	}
	if len(t.failed) > 0 {
		keys := make([]cellKey, 0, len(t.failed))
		for k := range t.failed {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Row != keys[j].Row {
				return keys[i].Row < keys[j].Row
			}
			return keys[i].Col < keys[j].Col
		})
		for _, k := range keys {
			out.Failed = append(out.Failed, failedJSON{Row: k.Row, Col: k.Col, Reason: t.failed[k]})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a table marshalled by MarshalJSON (row formats
// default to "%.3f").
func (t *Table) UnmarshalJSON(b []byte) error {
	var in tableJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	t.Title = in.Title
	t.Columns = in.Columns
	t.Notes = in.Notes
	t.rows = nil
	t.failed = nil
	for _, r := range in.Rows {
		t.AddRow(r.Label, "%.3f", r.Values)
	}
	for _, f := range in.Failed {
		t.MarkFailed(f.Row, f.Col, f.Reason)
	}
	return nil
}

// SortedKeys returns the map's keys in sorted order (test helper).
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
