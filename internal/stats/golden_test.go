package stats

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with current output")

// goldenTable builds the fixture exercised by every golden rendering:
// a partial grid (one absent cell), two failed cells — one of which has
// no row at all — and recovery-style footnotes.
func goldenTable() *Table {
	t := NewTable("Figure N. Speedup over no prediction", []string{"go", "li", "mgrid"})
	t.AddRow("lvp_loads", "%.3f", map[string]float64{"go": 1.021, "li": 1.048, "mgrid": 1.012})
	t.AddRow("drvp_loads", "%.3f", map[string]float64{"go": 1.035, "li": 1.062})
	t.AddRow("drvp", "%.3f", map[string]float64{"go": 1.044, "li": 1.071, "mgrid": 1.009})
	t.MarkFailed("drvp_loads", "mgrid", "simulated fault: oracle mismatch at pc 0x1040")
	t.MarkFailed("grp", "go", "predictor construction failed")
	t.AddNote("warning: journal: dropped 1 damaged tail record(s); affected cells re-run")
	t.AddNote("failed: drvp_loads/mgrid: simulated fault: oracle mismatch at pc 0x1040")
	return t
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/stats -update` to create it): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s does not match golden file:\n--- got\n%s--- want\n%s", name, got, want)
	}
}

// TestGoldenText locks the fixed-width rendering: ERR markers in failed
// cells, "-" in absent ones, and footnotes at the end.
func TestGoldenText(t *testing.T) {
	checkGolden(t, "table.txt", []byte(goldenTable().String()))
}

// TestGoldenMarkdown locks the markdown rendering of the same fixture.
func TestGoldenMarkdown(t *testing.T) {
	checkGolden(t, "table.md", []byte(goldenTable().Markdown()))
}

// TestGoldenJSON locks the machine-readable shape, including the sorted
// failed-cell list and the row-less failed cell.
func TestGoldenJSON(t *testing.T) {
	b, err := json.MarshalIndent(goldenTable(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.json", append(b, '\n'))
}

// TestGoldenJSONRoundTrip: unmarshalling the golden JSON reproduces the
// failure markers and notes (formats reset to the documented default).
func TestGoldenJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(goldenTable())
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if reason, ok := got.Failed("drvp_loads", "mgrid"); !ok || reason != "simulated fault: oracle mismatch at pc 0x1040" {
		t.Errorf("failed cell lost in round trip: %q, %v", reason, ok)
	}
	if reason, ok := got.Failed("grp", "go"); !ok || reason != "predictor construction failed" {
		t.Errorf("row-less failed cell lost in round trip: %q, %v", reason, ok)
	}
	if len(got.Notes) != 2 {
		t.Errorf("notes lost in round trip: %v", got.Notes)
	}
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(b) {
		t.Errorf("JSON is not a fixed point of the round trip:\n%s\nvs\n%s", b, b2)
	}
}
