package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", []string{"a", "b"})
	tab.AddRow("row1", "%.2f", map[string]float64{"a": 1.5, "b": 2.25})
	tab.AddRow("row2", "%.2f", map[string]float64{"a": 3})
	tab.AddNote("a note")
	s := tab.String()
	for _, want := range []string{"Title", "row1", "1.50", "2.25", "row2", "3.00", "-", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestTableRowAccess(t *testing.T) {
	tab := NewTable("", []string{"x"})
	tab.AddRow("r", "%.1f", map[string]float64{"x": 9})
	if got := tab.Row("r")["x"]; got != 9 {
		t.Errorf("Row = %v", got)
	}
	if tab.Row("missing") != nil {
		t.Error("missing row not nil")
	}
	labels := tab.RowLabels()
	if len(labels) != 1 || labels[0] != "r" {
		t.Errorf("labels = %v", labels)
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("T", []string{"a", "b"})
	tab.AddRow("r1", "%.1f", map[string]float64{"a": 1, "b": 2})
	tab.AddNote("n")
	md := tab.Markdown()
	for _, want := range []string{"### T", "| r1 | 1.0 | 2.0 |", "|---|---|---|", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// Missing cells render as dashes.
	tab.AddRow("r2", "%.1f", map[string]float64{"a": 3})
	if !strings.Contains(tab.Markdown(), "| r2 | 3.0 | - |") {
		t.Error("missing cell not dashed")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2}
	ks := SortedKeys(m)
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Errorf("SortedKeys = %v", ks)
	}
}
