package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", []string{"a", "b"})
	tab.AddRow("row1", "%.2f", map[string]float64{"a": 1.5, "b": 2.25})
	tab.AddRow("row2", "%.2f", map[string]float64{"a": 3})
	tab.AddNote("a note")
	s := tab.String()
	for _, want := range []string{"Title", "row1", "1.50", "2.25", "row2", "3.00", "-", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestTableRowAccess(t *testing.T) {
	tab := NewTable("", []string{"x"})
	tab.AddRow("r", "%.1f", map[string]float64{"x": 9})
	if got := tab.Row("r")["x"]; got != 9 {
		t.Errorf("Row = %v", got)
	}
	if tab.Row("missing") != nil {
		t.Error("missing row not nil")
	}
	labels := tab.RowLabels()
	if len(labels) != 1 || labels[0] != "r" {
		t.Errorf("labels = %v", labels)
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("T", []string{"a", "b"})
	tab.AddRow("r1", "%.1f", map[string]float64{"a": 1, "b": 2})
	tab.AddNote("n")
	md := tab.Markdown()
	for _, want := range []string{"### T", "| r1 | 1.0 | 2.0 |", "|---|---|---|", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// Missing cells render as dashes.
	tab.AddRow("r2", "%.1f", map[string]float64{"a": 3})
	if !strings.Contains(tab.Markdown(), "| r2 | 3.0 | - |") {
		t.Error("missing cell not dashed")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2}
	ks := SortedKeys(m)
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Errorf("SortedKeys = %v", ks)
	}
}

func TestFailedCells(t *testing.T) {
	tab := NewTable("T", []string{"a", "b"})
	tab.AddRow("r1", "%.1f", map[string]float64{"a": 1})
	tab.MarkFailed("r1", "b", "watchdog: no forward progress")
	if reason, ok := tab.Failed("r1", "b"); !ok || !strings.Contains(reason, "watchdog") {
		t.Fatalf("Failed = %q, %v", reason, ok)
	}
	if _, ok := tab.Failed("r1", "a"); ok {
		t.Error("healthy cell marked failed")
	}
	cells := tab.FailedCells()
	if len(cells) != 1 || !strings.Contains(cells[0], "r1/b") {
		t.Errorf("FailedCells = %v", cells)
	}
	if !strings.Contains(tab.String(), "ERR") || !strings.Contains(tab.Markdown(), " ERR |") {
		t.Error("failed cell not rendered as ERR")
	}
}

func TestFailedCellsJSONRoundTrip(t *testing.T) {
	tab := NewTable("T", []string{"a", "b"})
	tab.AddRow("r1", "%.1f", map[string]float64{"a": 1})
	tab.MarkFailed("r1", "b", "boom")
	tab.MarkFailed("r0", "a", "earlier row")
	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if reason, ok := back.Failed("r1", "b"); !ok || reason != "boom" {
		t.Errorf("round trip lost failure: %q, %v", reason, ok)
	}
	got := back.FailedCells()
	want := []string{"r0/a: earlier row", "r1/b: boom"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FailedCells after round trip = %v", got)
	}
}
