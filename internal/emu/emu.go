// Package emu implements the architectural (functional) emulator for the
// simulator's ISA. It executes programs in order along the correct path
// and produces per-instruction execution records; both the register-reuse
// profiler and the timing pipeline's oracle execution are built on it.
package emu

import (
	"fmt"
	"math"

	"rvpsim/internal/isa"
	"rvpsim/internal/mem"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// Exec describes one executed (committed) instruction. OldDest is the
// value the destination register held *before* the write — the value
// register value prediction would have used.
type Exec struct {
	Index   int      // static instruction index
	Inst    isa.Inst // the instruction
	PC      uint64   // simulated-memory address of the instruction
	Next    int      // index of the next instruction executed
	WroteRd bool     // instruction architecturally wrote Rd
	OldDest uint64   // prior value of Rd (valid when WroteRd)
	NewDest uint64   // value written to Rd (valid when WroteRd)
	EA      uint64   // effective address (loads/stores)
	IsMem   bool     // load or store
	Taken   bool     // branch outcome (control transfers)
	IsCTI   bool     // control-transfer instruction
}

// State is the architectural machine state.
type State struct {
	Prog   *program.Program
	Mem    *mem.Memory
	Regs   [isa.NumRegs]uint64
	PC     int // instruction index
	Halted bool
	Count  uint64 // committed instructions

	err error
}

// New creates an architectural state for prog: memory is populated with
// the encoded code image and all data chunks, the stack pointer is set,
// and the PC points at the entry instruction. Structurally broken
// programs (empty, entry out of range) are rejected up front; errors
// wrap simerr.ErrConfig.
func New(prog *program.Program) (*State, error) {
	if prog == nil || len(prog.Insts) == 0 {
		return nil, fmt.Errorf("emu: empty program: %w", simerr.ErrConfig)
	}
	if prog.Entry < 0 || prog.Entry >= len(prog.Insts) {
		return nil, fmt.Errorf("emu: program %q entry %d out of range [0,%d): %w",
			prog.Name, prog.Entry, len(prog.Insts), simerr.ErrConfig)
	}
	s := &State{Prog: prog, Mem: mem.NewMemory(), PC: prog.Entry}
	for i, in := range prog.Insts {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("emu: instruction %d: %w", i, err)
		}
		s.Mem.WriteWord(prog.PC(i), w)
	}
	for _, c := range prog.Data {
		for i, w := range c.Words {
			s.Mem.WriteWord(c.Addr+uint64(i)*8, w)
		}
	}
	s.Regs[isa.RSP] = prog.StackTop
	return s, nil
}

// MustNew is New, panicking on error (for assembler-validated programs).
func MustNew(prog *program.Program) *State {
	s, err := New(prog)
	if err != nil {
		panic(err)
	}
	return s
}

// Err returns the first execution error (bad PC, bad JSR target).
func (s *State) Err() error { return s.err }

func (s *State) read(r isa.Reg) uint64 {
	if r.IsZero() {
		return 0
	}
	return s.Regs[r]
}

func (s *State) write(r isa.Reg, v uint64) {
	if !r.IsZero() {
		s.Regs[r] = v
	}
}

func f(v uint64) float64  { return math.Float64frombits(v) }
func fb(v float64) uint64 { return math.Float64bits(v) }
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
func fb2u(b bool) uint64 {
	if b {
		return fb(1.0)
	}
	return fb(0.0)
}

// Step executes one instruction and returns its execution record. After
// HALT (or an error), Step returns ok == false.
func (s *State) Step() (Exec, bool) {
	var e Exec
	ok := s.StepInto(&e)
	return e, ok
}

// StepInto is Step writing the execution record into *e instead of
// returning it, so a caller-owned record can be reused across the hot
// loop without copying the (large) Exec struct every instruction. On
// ok == false, *e is zeroed.
func (s *State) StepInto(e *Exec) bool {
	if s.Halted || s.err != nil {
		*e = Exec{}
		return false
	}
	if s.PC < 0 || s.PC >= len(s.Prog.Insts) {
		s.err = fmt.Errorf("emu: pc %d out of range", s.PC)
		*e = Exec{}
		return false
	}
	i := s.PC
	in := s.Prog.Insts[i]
	// Field-by-field reset instead of a composite-literal assignment: the
	// latter compiles to a stack temporary plus duffcopy of the whole
	// struct, which profiling shows at ~15% of simulation time.
	e.Index = i
	e.Inst = in
	e.PC = s.Prog.PC(i)
	e.Next = i + 1
	e.WroteRd = false
	e.OldDest = 0
	e.NewDest = 0
	e.EA = 0
	e.IsMem = false
	e.Taken = false
	e.IsCTI = false

	a := s.read(in.Ra)
	b := s.read(in.Rb)
	var result uint64
	writes := in.WritesReg()

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		result = a + b
	case isa.ADDI:
		result = a + uint64(in.Imm)
	case isa.SUB:
		result = a - b
	case isa.SUBI:
		result = a - uint64(in.Imm)
	case isa.MUL:
		result = a * b
	case isa.MULI:
		result = a * uint64(in.Imm)
	case isa.DIV:
		if b != 0 {
			result = uint64(int64(a) / int64(b))
		}
	case isa.REM:
		if b != 0 {
			result = uint64(int64(a) % int64(b))
		}
	case isa.AND:
		result = a & b
	case isa.ANDI:
		result = a & uint64(in.Imm)
	case isa.OR:
		result = a | b
	case isa.ORI:
		result = a | uint64(in.Imm)
	case isa.XOR:
		result = a ^ b
	case isa.XORI:
		result = a ^ uint64(in.Imm)
	case isa.SLL:
		result = a << (b & 63)
	case isa.SLLI:
		result = a << (uint64(in.Imm) & 63)
	case isa.SRL:
		result = a >> (b & 63)
	case isa.SRLI:
		result = a >> (uint64(in.Imm) & 63)
	case isa.SRA:
		result = uint64(int64(a) >> (b & 63))
	case isa.SRAI:
		result = uint64(int64(a) >> (uint64(in.Imm) & 63))
	case isa.CMPEQ:
		result = b2u(a == b)
	case isa.CMPEQI:
		result = b2u(int64(a) == in.Imm)
	case isa.CMPLT:
		result = b2u(int64(a) < int64(b))
	case isa.CMPLTI:
		result = b2u(int64(a) < in.Imm)
	case isa.CMPLE:
		result = b2u(int64(a) <= int64(b))
	case isa.CMPLEI:
		result = b2u(int64(a) <= in.Imm)
	case isa.CMPULT:
		result = b2u(a < b)
	case isa.LDA:
		result = a + uint64(in.Imm)
	case isa.LDAH:
		result = a + uint64(in.Imm)<<16
	case isa.LDQ, isa.RVPLDQ, isa.LDT, isa.RVPLDT:
		e.EA = a + uint64(in.Imm)
		e.IsMem = true
		result = s.Mem.ReadWord(e.EA)
	case isa.STQ, isa.STT:
		e.EA = a + uint64(in.Imm)
		e.IsMem = true
		s.Mem.WriteWord(e.EA, s.read(in.Rd))
	case isa.BEQ:
		e.IsCTI = true
		e.Taken = int64(a) == 0
	case isa.BNE:
		e.IsCTI = true
		e.Taken = int64(a) != 0
	case isa.BLT:
		e.IsCTI = true
		e.Taken = int64(a) < 0
	case isa.BGE:
		e.IsCTI = true
		e.Taken = int64(a) >= 0
	case isa.BGT:
		e.IsCTI = true
		e.Taken = int64(a) > 0
	case isa.BLE:
		e.IsCTI = true
		e.Taken = int64(a) <= 0
	case isa.FBEQ:
		e.IsCTI = true
		e.Taken = f(a) == 0
	case isa.FBNE:
		e.IsCTI = true
		e.Taken = f(a) != 0
	case isa.BR:
		e.IsCTI = true
		e.Taken = true
		if writes {
			result = s.Prog.PC(i + 1)
		}
		e.Next = int(in.Imm)
	case isa.JSR:
		e.IsCTI = true
		e.Taken = true
		result = s.Prog.PC(i + 1)
		e.Next = s.Prog.Index(a)
	case isa.RET:
		e.IsCTI = true
		e.Taken = true
		e.Next = s.Prog.Index(a)
	case isa.FADD:
		result = fb(f(a) + f(b))
	case isa.FSUB:
		result = fb(f(a) - f(b))
	case isa.FMUL:
		result = fb(f(a) * f(b))
	case isa.FDIV:
		if f(b) != 0 {
			result = fb(f(a) / f(b))
		} else {
			result = fb(0)
		}
	case isa.FCMPEQ:
		result = fb2u(f(a) == f(b))
	case isa.FCMPLT:
		result = fb2u(f(a) < f(b))
	case isa.FCMPLE:
		result = fb2u(f(a) <= f(b))
	case isa.CVTQT:
		result = fb(float64(int64(a)))
	case isa.CVTTQ:
		result = uint64(int64(f(a)))
	case isa.ITOF, isa.FTOI:
		result = a
	case isa.HALT:
		s.Halted = true
		s.Count++
		return true
	default:
		s.err = fmt.Errorf("emu: unimplemented opcode %v at %d", in.Op, i)
		*e = Exec{}
		return false
	}

	if isa.IsCondBranch(in.Op) && e.Taken {
		e.Next = int(in.Imm)
	}
	if writes {
		e.WroteRd = true
		e.OldDest = s.read(in.Rd)
		e.NewDest = result
		s.write(in.Rd, result)
	}
	if e.Next < 0 || e.Next >= len(s.Prog.Insts) {
		s.err = fmt.Errorf("emu: control transfer from %d to invalid index %d", i, e.Next)
		*e = Exec{}
		return false
	}
	s.PC = e.Next
	s.Count++
	return true
}

// Run executes until HALT, an error, or max committed instructions
// (max <= 0 means unlimited). It returns the number executed.
func (s *State) Run(max uint64) uint64 {
	start := s.Count
	for !s.Halted && s.err == nil {
		if max > 0 && s.Count-start >= max {
			break
		}
		if _, ok := s.Step(); !ok {
			break
		}
	}
	return s.Count - start
}
