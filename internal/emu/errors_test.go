package emu_test

import (
	"errors"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/faultinject"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

const tinySrc = `
.text
main:
        li      r1, 3
loop:
        addi    r2, r2, 1
        subi    r1, r1, 1
        bne     r1, loop
        halt
`

// TestNewRejectsBadPrograms checks nil, empty, and out-of-range-entry
// programs are rejected up front with ErrConfig instead of crashing
// later inside the step loop.
func TestNewRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog *program.Program
	}{
		{"nil", nil},
		{"empty", &program.Program{Name: "empty"}},
		{"entry out of range", func() *program.Program {
			p := asm.MustAssemble("t", tinySrc, asm.Options{})
			q := p.Clone()
			q.Entry = len(q.Insts) + 5
			return q
		}()},
	}
	for _, c := range cases {
		if _, err := emu.New(c.prog); !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: want ErrConfig, got %v", c.name, err)
		}
	}
}

// TestTruncatedProgramErrors checks a program whose tail (including the
// HALT) was cut off terminates with a step error rather than silently
// succeeding or running forever.
func TestTruncatedProgramErrors(t *testing.T) {
	p := asm.MustAssemble("t", tinySrc, asm.Options{})
	tr := faultinject.Truncate(p, 2) // loses the branch and the halt
	st, err := emu.New(tr)
	if err != nil {
		t.Fatalf("truncated program rejected up front: %v", err)
	}
	steps := 0
	for {
		if _, ok := st.Step(); !ok {
			break
		}
		if steps++; steps > 1000 {
			t.Fatal("truncated program still running after 1000 steps")
		}
	}
	if st.Err() == nil {
		t.Fatal("truncated program terminated without an error")
	}
}
