package emu_test

import (
	"math"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
)

func run(t *testing.T, src string, max uint64) *emu.State {
	t.Helper()
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	s.Run(max)
	if s.Err() != nil {
		t.Fatalf("execution error: %v", s.Err())
	}
	return s
}

func TestSumLoop(t *testing.T) {
	s := run(t, `
.text
main:
        lda     r2, table
        li      r1, 4
        clr     r4
loop:
        ldq     r3, 0(r2)
        add     r4, r4, r3
        addi    r2, r2, 8
        subi    r1, r1, 1
        bne     r1, loop
        mov     r0, r4
        halt
.data
.org 0x100000
table:  .quad 10, 20, 30, 40
`, 0)
	if !s.Halted {
		t.Fatal("did not halt")
	}
	if got := s.Regs[0]; got != 100 {
		t.Errorf("r0 = %d, want 100", got)
	}
}

func TestArithmeticOps(t *testing.T) {
	s := run(t, `
.text
main:
        li   r1, 7
        li   r2, 3
        mul  r3, r1, r2     ; 21
        div  r4, r3, r2     ; 7
        rem  r5, r1, r2     ; 1
        sub  r6, r1, r2     ; 4
        and  r7, r1, r2     ; 3
        or   r8, r1, r2     ; 7
        xor  r9, r1, r2     ; 4
        slli r10, r1, 4     ; 112
        srai r11, r10, 2    ; 28
        cmplt r12, r2, r1   ; 1
        cmpeq r13, r1, r2   ; 0
        li   r14, -8
        srai r15, r14, 1    ; -4 (arithmetic)
        srli r16, r14, 60   ; high bits of two's complement
        halt
`, 0)
	want := map[int]int64{3: 21, 4: 7, 5: 1, 6: 4, 7: 3, 8: 7, 9: 4, 10: 112, 11: 28, 12: 1, 13: 0, 15: -4, 16: 15}
	for r, v := range want {
		if got := int64(s.Regs[r]); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	s := run(t, `
.text
main:
        li  r1, 5
        clr r2
        div r3, r1, r2
        rem r4, r1, r2
        halt
`, 0)
	if s.Regs[3] != 0 || s.Regs[4] != 0 {
		t.Errorf("div/rem by zero: r3=%d r4=%d, want 0 0", s.Regs[3], s.Regs[4])
	}
}

func TestZeroRegisterIgnoresWrites(t *testing.T) {
	s := run(t, `
.text
main:
        li  r31, 42
        add r1, r31, r31
        halt
`, 0)
	if s.Regs[31] != 0 {
		t.Errorf("r31 = %d, want 0", s.Regs[31])
	}
	if s.Regs[1] != 0 {
		t.Errorf("r1 = %d, want 0", s.Regs[1])
	}
}

func TestCallReturn(t *testing.T) {
	s := run(t, `
.text
.proc main
main:
        li   r16, 5
        call square
        mov  r9, r0
        li   r16, 9
        lda  r5, square
        jsr  (r5)
        add  r0, r0, r9
        halt
.endproc
.proc square
square:
        mul r0, r16, r16
        ret
.endproc
`, 0)
	if got := s.Regs[0]; got != 25+81 {
		t.Errorf("r0 = %d, want 106", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	s := run(t, `
.text
main:
        ldt  f1, a
        ldt  f2, b
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f1, f2
        fsub f6, f1, f2
        li   r1, 3
        itof f7, r1
        cvtqt f8, f7
        halt
.data
.org 0x100000
a:      .double 1.5
b:      .double 0.5
`, 0)
	checks := map[int]float64{3: 2.0, 4: 0.75, 5: 3.0, 6: 1.0, 8: 3.0}
	for fr, want := range checks {
		got := math.Float64frombits(s.Regs[int(isa.FPReg(fr))])
		if got != want {
			t.Errorf("f%d = %g, want %g", fr, got, want)
		}
	}
}

func TestExecRecordOldDest(t *testing.T) {
	p, err := asm.Assemble("t", `
.text
main:
        li  r1, 7
        li  r1, 7
        li  r1, 9
        halt
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	e0, _ := s.Step()
	e1, _ := s.Step()
	e2, _ := s.Step()
	if !e0.WroteRd || e0.OldDest != 0 || e0.NewDest != 7 {
		t.Errorf("e0 = %+v", e0)
	}
	// Second write of the same value: register-value reuse.
	if e1.OldDest != 7 || e1.NewDest != 7 {
		t.Errorf("e1 old=%d new=%d, want 7 7", e1.OldDest, e1.NewDest)
	}
	if e2.OldDest != 7 || e2.NewDest != 9 {
		t.Errorf("e2 old=%d new=%d, want 7 9", e2.OldDest, e2.NewDest)
	}
}

func TestExecRecordMemAndBranch(t *testing.T) {
	p, err := asm.Assemble("t", `
.text
main:
        lda r2, d
        ldq r1, 8(r2)
        beq r31, target
        nop
target:
        stq r1, 16(r2)
        halt
.data
.org 0x200000
d:      .quad 11, 22, 0
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	s.Step() // lda
	ld, _ := s.Step()
	if !ld.IsMem || ld.EA != 0x200008 || ld.NewDest != 22 {
		t.Errorf("load exec = %+v", ld)
	}
	br, _ := s.Step()
	if !br.IsCTI || !br.Taken || br.Next != p.Labels["target"] {
		t.Errorf("branch exec = %+v", br)
	}
	st, _ := s.Step()
	if !st.IsMem || st.EA != 0x200010 || st.WroteRd {
		t.Errorf("store exec = %+v", st)
	}
	if got := s.Mem.ReadWord(0x200010); got != 22 {
		t.Errorf("stored word = %d, want 22", got)
	}
}

func TestRunMaxStopsEarly(t *testing.T) {
	p, err := asm.Assemble("t", `
.text
main:
        br main
        halt
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	n := s.Run(1000)
	if n != 1000 {
		t.Errorf("ran %d, want 1000", n)
	}
	if s.Halted {
		t.Error("halted on infinite loop")
	}
}

func TestStepAfterHalt(t *testing.T) {
	p, err := asm.Assemble("t", ".text\nmain:\n halt\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	if _, ok := s.Step(); !ok {
		t.Fatal("halt step failed")
	}
	if _, ok := s.Step(); ok {
		t.Error("step after halt succeeded")
	}
	if s.Count != 1 {
		t.Errorf("count = %d, want 1", s.Count)
	}
}

func TestRVPLoadsBehaveLikeLoads(t *testing.T) {
	s := run(t, `
.text
main:
        lda r2, d
        rvp_ldq r1, 0(r2)
        halt
.data
.org 0x300000
d:      .quad 123
`, 0)
	if s.Regs[1] != 123 {
		t.Errorf("rvp_ldq r1 = %d, want 123", s.Regs[1])
	}
}

func TestBadJSRTargetSetsErr(t *testing.T) {
	p, err := asm.Assemble("t", `
.text
main:
        li r1, 0x7000000
        jsr (r1)
        halt
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := emu.MustNew(p)
	s.Run(10)
	if s.Err() == nil {
		t.Error("expected control-transfer error")
	}
}
