package emu

import (
	"fmt"

	"rvpsim/internal/isa"
	"rvpsim/internal/mem"
	"rvpsim/internal/program"
	"rvpsim/internal/simerr"
)

// Snapshot is the full architectural machine state at an instruction
// boundary: registers, PC, halt flag, commit count, and the complete
// memory image (which includes the code image New wrote, so Restore does
// not re-encode the program).
type Snapshot struct {
	Regs   [isa.NumRegs]uint64
	PC     int
	Halted bool
	Count  uint64
	Mem    mem.MemoryState
}

// Snapshot captures the architectural state. It must be taken at an
// instruction boundary (between Step calls), which is the only place
// callers can observe the state anyway.
func (s *State) Snapshot() Snapshot {
	return Snapshot{
		Regs:   s.Regs,
		PC:     s.PC,
		Halted: s.Halted,
		Count:  s.Count,
		Mem:    s.Mem.Snapshot(),
	}
}

// Restore rebuilds an architectural state for prog from a snapshot.
// The snapshot must come from a run of the same program; a PC outside
// the program is rejected with an error wrapping simerr.ErrCorrupt.
func Restore(prog *program.Program, snap Snapshot) (*State, error) {
	if prog == nil || len(prog.Insts) == 0 {
		return nil, fmt.Errorf("emu: restore into empty program: %w", simerr.ErrConfig)
	}
	if snap.PC < 0 || snap.PC >= len(prog.Insts) {
		return nil, fmt.Errorf("emu: snapshot pc %d out of range [0,%d): %w",
			snap.PC, len(prog.Insts), simerr.ErrCorrupt)
	}
	m, err := mem.RestoreMemory(snap.Mem)
	if err != nil {
		return nil, err
	}
	s := &State{Prog: prog, Mem: m, Regs: snap.Regs, PC: snap.PC, Halted: snap.Halted, Count: snap.Count}
	return s, nil
}

// Fork is Restore with copy-on-write memory: the snapshot's pages are
// shared read-only with the forked state until it first writes them (see
// mem.ForkMemory), so N runs forked from one warmed snapshot share one
// image instead of each paying a deep copy. The snapshot must outlive
// every fork unmodified; concurrent forks from one snapshot are safe.
func Fork(prog *program.Program, snap Snapshot) (*State, error) {
	if prog == nil || len(prog.Insts) == 0 {
		return nil, fmt.Errorf("emu: fork into empty program: %w", simerr.ErrConfig)
	}
	if snap.PC < 0 || snap.PC >= len(prog.Insts) {
		return nil, fmt.Errorf("emu: snapshot pc %d out of range [0,%d): %w",
			snap.PC, len(prog.Insts), simerr.ErrCorrupt)
	}
	m, err := mem.ForkMemory(snap.Mem)
	if err != nil {
		return nil, err
	}
	s := &State{Prog: prog, Mem: m, Regs: snap.Regs, PC: snap.PC, Halted: snap.Halted, Count: snap.Count}
	return s, nil
}
