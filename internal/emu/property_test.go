package emu_test

import (
	"testing"

	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/progtest"
)

// TestEmulatorInvariants drives random programs and checks architectural
// invariants at every step: hardwired zeros stay zero, control stays in
// range, loads return exactly what memory holds, and execution records
// are self-consistent.
func TestEmulatorInvariants(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 1; seed <= seeds; seed++ {
		p := progtest.Random(uint64(seed))
		s := emu.MustNew(p)
		for i := 0; i < 30_000; i++ {
			prevMemVal := uint64(0)
			peekLoad := false
			if pc := s.PC; pc >= 0 && pc < len(p.Insts) && isa.IsLoad(p.Insts[pc].Op) {
				// Pre-compute what the load must return.
				in := p.Insts[pc]
				ea := s.Regs[in.Ra] + uint64(in.Imm)
				if in.Ra.IsZero() {
					ea = uint64(in.Imm)
				}
				prevMemVal = s.Mem.ReadWord(ea)
				peekLoad = true
			}
			e, ok := s.Step()
			if !ok {
				break
			}
			if s.Regs[isa.RZero] != 0 || s.Regs[isa.FZero] != 0 {
				t.Fatalf("seed %d: zero register written", seed)
			}
			if e.Inst.Op == isa.HALT {
				break // Next is unused after HALT
			}
			if e.Next < 0 || e.Next >= len(p.Insts) {
				t.Fatalf("seed %d: control left the program", seed)
			}
			if peekLoad && e.WroteRd && e.NewDest != prevMemVal {
				t.Fatalf("seed %d: load returned %d, memory held %d", seed, e.NewDest, prevMemVal)
			}
			if e.WroteRd && !e.Inst.Rd.IsZero() && s.Regs[e.Inst.Rd] != e.NewDest {
				t.Fatalf("seed %d: exec record NewDest disagrees with register file", seed)
			}
		}
		if s.Err() != nil {
			t.Fatalf("seed %d: %v", seed, s.Err())
		}
	}
}

// TestCodeImageRoundTrip: the encoded code image in simulated memory
// decodes back to exactly the program's instructions.
func TestCodeImageRoundTrip(t *testing.T) {
	p := progtest.Random(3)
	s := emu.MustNew(p)
	for i, want := range p.Insts {
		w := s.Mem.ReadWord(p.PC(i))
		got, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("inst %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("inst %d: decoded %v, want %v", i, got, want)
		}
	}
}

// TestDeterministicReplay: two emulations of the same program produce
// identical execution traces.
func TestDeterministicReplay(t *testing.T) {
	p := progtest.Random(9)
	a, b := emu.MustNew(p), emu.MustNew(p)
	for i := 0; i < 20_000; i++ {
		ea, oka := a.Step()
		eb, okb := b.Step()
		if oka != okb || ea != eb {
			t.Fatalf("step %d: traces diverge", i)
		}
		if !oka {
			break
		}
	}
}
