package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", []int64{2, 4, 8})
	// Bounds are inclusive upper bounds; one overflow bucket follows.
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 0}, {2, 0},
		{3, 1}, {4, 1},
		{5, 2}, {8, 2},
		{9, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		if got := h.bucket(c.v); got != c.want {
			t.Errorf("bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	wantCounts := []int64{4, 2, 2, 2}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("snapshot counts[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 10 {
		t.Errorf("snapshot count = %d, want 10", s.Count)
	}
	var wantSum int64
	for _, c := range cases {
		wantSum += c.v
	}
	if s.Sum != wantSum {
		t.Errorf("snapshot sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramPow2FastPathMatchesScan(t *testing.T) {
	h := NewRegistry().Histogram("h", "", ExpBuckets(2, 2, 14))
	if !h.pow2 {
		t.Fatal("ExpBuckets(2,2,14) should take the power-of-two fast path")
	}
	for v := int64(-3); v < 70_000; v++ {
		if got, want := h.bucket(v), h.bucketScan(v); got != want {
			t.Fatalf("bucket(%d) = %d, scan gives %d", v, got, want)
		}
	}
	for _, v := range []int64{1 << 32, 1 << 62} {
		if got, want := h.bucket(v), h.bucketScan(v); got != want {
			t.Fatalf("bucket(%d) = %d, scan gives %d", v, got, want)
		}
	}
	if NewRegistry().Histogram("g", "", []int64{2, 4, 9}).pow2 {
		t.Error("non-power-of-two bounds must use the scan path")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewRegistry().Histogram("h", "", []int64{1, 10})
	b := NewRegistry().Histogram("h", "", []int64{1, 10})
	a.Observe(1)
	a.Observe(5)
	b.Observe(100)
	b.Observe(5)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := a.Snapshot()
	if got, want := s.Counts[0], int64(1); got != want {
		t.Errorf("counts[0] = %d, want %d", got, want)
	}
	if got, want := s.Counts[1], int64(2); got != want {
		t.Errorf("counts[1] = %d, want %d", got, want)
	}
	if got, want := s.Counts[2], int64(1); got != want {
		t.Errorf("counts[2] = %d, want %d", got, want)
	}
	if got, want := s.Sum, int64(111); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}

	mismatch := NewRegistry().Histogram("h", "", []int64{1, 10, 100})
	if err := a.Merge(mismatch); err == nil {
		t.Error("merge with mismatched bounds should fail")
	}
	if err := a.AddCounts([]int64{1, 2}, 3); err == nil {
		t.Error("AddCounts with wrong bucket count should fail")
	}
}

func TestLocalHistogramFlush(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []int64{4, 16})
	l := h.Local()
	for v := int64(1); v <= 20; v++ {
		l.Observe(v)
	}
	if h.Snapshot().Count != 0 {
		t.Error("shared histogram should be empty before flush")
	}
	if l.Pending() != 20 {
		t.Errorf("pending = %d, want 20", l.Pending())
	}
	l.Flush()
	if l.Pending() != 0 {
		t.Errorf("pending after flush = %d, want 0", l.Pending())
	}
	s := h.Snapshot()
	if s.Count != 20 || s.Sum != 210 {
		t.Errorf("after flush count=%d sum=%d, want 20, 210", s.Count, s.Sum)
	}
	// Flushing twice must not double-count.
	l.Flush()
	if got := h.Snapshot().Count; got != 20 {
		t.Errorf("after second flush count = %d, want 20", got)
	}
}

func TestExpBucketsDistinctAscending(t *testing.T) {
	b := ExpBuckets(1, 1.3, 12)
	if len(b) != 12 {
		t.Fatalf("len = %d, want 12", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	lin := LinearBuckets(10, 5, 4)
	want := []int64{10, 15, 20, 25}
	for i, w := range want {
		if lin[i] != w {
			t.Errorf("LinearBuckets[%d] = %d, want %d", i, lin[i], w)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", "help")
	c2 := r.Counter("c", "ignored on re-register")
	if c1 != c2 {
		t.Error("re-registering a counter should return the same instrument")
	}
	h1 := r.Histogram("h", "", []int64{1, 2})
	h2 := r.Histogram("h", "", []int64{1, 2})
	if h1 != h2 {
		t.Error("re-registering a histogram should return the same instrument")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering histogram with different bounds should panic")
			}
		}()
		r.Histogram("h", "", []int64{1, 3})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering a counter name as a gauge should panic")
			}
		}()
		r.Gauge("c", "")
	}()
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "", []int64{8, 64})
			g := r.Gauge("shared_gauge", "")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
				g.Set(int64(i))
			}
		}()
	}
	// Concurrent readers exercise Snapshot and the exporter while
	// writers are active; the race detector checks safety.
	for i := 0; i < 10; i++ {
		r.Snapshot()
		_ = r.WritePrometheus(&strings.Builder{})
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist", "", []int64{8, 64}).Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c", "").Add(5)
	b.Counter("c", "").Add(7)
	b.Counter("only_b", "").Add(1)
	b.Gauge("g", "").Set(42)
	b.Histogram("h", "", []int64{10}).Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := a.Snapshot()
	if s.Counters["c"] != 12 {
		t.Errorf("merged counter = %d, want 12", s.Counters["c"])
	}
	if s.Counters["only_b"] != 1 {
		t.Errorf("merged new counter = %d, want 1", s.Counters["only_b"])
	}
	if s.Gauges["g"] != 42 {
		t.Errorf("merged gauge = %d, want 42", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("merged histogram count = %d, want 1", s.Histograms["h"].Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "number of runs").Add(3)
	r.Gauge("occupancy", "").Set(-2)
	h := r.Histogram("lat", "latency", []int64{1, 4})
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP runs_total number of runs\n",
		"# TYPE runs_total counter\nruns_total 3\n",
		"# TYPE occupancy gauge\noccupancy -2\n",
		"# TYPE lat histogram\n",
		"lat_bucket{le=\"1\"} 1\n",
		"lat_bucket{le=\"4\"} 2\n",
		"lat_bucket{le=\"+Inf\"} 3\n",
		"lat_sum 12\n",
		"lat_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}
	// Registration order is stable: counter before gauge before histogram.
	if strings.Index(got, "runs_total") > strings.Index(got, "occupancy") {
		t.Error("exposition should preserve registration order")
	}
}

func TestObserverSeqAndSinks(t *testing.T) {
	o := NewObserver()
	if o.HasSinks() {
		t.Error("fresh observer should have no sinks")
	}
	var nilObs *Observer
	if nilObs.HasSinks() {
		t.Error("nil observer must report no sinks")
	}
	var got []uint64
	o.AddSink(sinkFunc(func(e *Event) error {
		got = append(got, e.Seq)
		return nil
	}))
	for i := 0; i < 5; i++ {
		o.Emit(&Event{Index: i})
	}
	if o.Events() != 5 {
		t.Errorf("events = %d, want 5", o.Events())
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Errorf("seq[%d] = %d, want %d", i, s, i)
		}
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}

// sinkFunc adapts a function into an EventSink.
type sinkFunc func(*Event) error

func (f sinkFunc) Emit(e *Event) error { return f(e) }
func (sinkFunc) Close() error          { return nil }
