package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONLTrace is an EventSink writing one JSON object per event per line
// (JSON Lines). It is the machine-readable stream for ad-hoc scripting:
// every field of Event appears verbatim.
type JSONLTrace struct {
	w      *bufio.Writer
	enc    *json.Encoder
	closed bool
}

// NewJSONLTrace returns a sink writing JSON lines to w.
func NewJSONLTrace(w io.Writer) *JSONLTrace {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLTrace{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements EventSink.
func (t *JSONLTrace) Emit(e *Event) error { return t.enc.Encode(e) }

// Close flushes buffered lines.
func (t *JSONLTrace) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	return t.w.Flush()
}
