package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentageAndTiming(t *testing.T) {
	tr := NewTracer("test", 16)
	root := tr.Start(SpanContext{}, "root")
	if root.Context().Trace == "" {
		t.Fatalf("root span has no trace ID")
	}
	child := tr.Start(root.Context(), "child")
	child.SetAttr("k", "v")
	child.End()
	child.End() // idempotent
	root.EndErr(nil)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: child ended first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %q, want %q", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatalf("trace IDs differ: %q vs %q", spans[0].Trace, spans[1].Trace)
	}
	if spans[0].Attrs["k"] != "v" {
		t.Fatalf("child attrs = %v", spans[0].Attrs)
	}
	if !ConnectedTrace(spans) {
		t.Fatalf("two-span parent/child trace not connected")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, "x")
	sp.SetAttr("a", "b")
	sp.End()
	sp.EndErr(fmt.Errorf("boom"))
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer returned spans: %v", got)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Service() != "" {
		t.Fatalf("nil tracer not inert")
	}
}

func TestTracerCapacityBound(t *testing.T) {
	tr := NewTracer("svc", 4)
	parent := SpanContext{Trace: NewTraceID()}
	for i := 0; i < 10; i++ {
		tr.Start(parent, fmt.Sprintf("s%d", i)).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("retained %d spans, want cap 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestTracerConcurrentEmit hammers one tracer from many goroutines (the
// worker pool + HTTP handler shape) under -race: emission, attribute
// writes, and concurrent snapshot reads must all be safe.
func TestTracerConcurrentEmit(t *testing.T) {
	const goroutines, perG = 16, 200
	tr := NewTracer("race", goroutines*perG)
	root := tr.Start(SpanContext{}, "root")
	ctx := root.Context()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG-1; i++ {
				sp := tr.Start(ctx, fmt.Sprintf("g%d-%d", g, i))
				sp.SetAttr("g", fmt.Sprint(g))
				if i%2 == 0 {
					sp.EndErr(fmt.Errorf("e%d", i))
				} else {
					sp.End()
				}
			}
		}(g)
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Spans()
			_ = tr.Len()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	root.End()

	spans := tr.Spans()
	want := goroutines*(perG-1) + 1
	if len(spans)+tr.Dropped() != want {
		t.Fatalf("spans %d + dropped %d != emitted %d", len(spans), tr.Dropped(), want)
	}
	ids := map[string]bool{}
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %q", s.ID)
		}
		ids[s.ID] = true
		if s.Trace != ctx.Trace {
			t.Fatalf("span %q on trace %q, want %q", s.ID, s.Trace, ctx.Trace)
		}
	}
}

func TestConnectedTrace(t *testing.T) {
	mk := func(id, parent string) Span { return Span{Trace: "t1", ID: id, Parent: parent} }
	cases := []struct {
		name  string
		spans []Span
		want  bool
	}{
		{"empty", nil, false},
		{"single root", []Span{mk("a", "")}, true},
		{"chain", []Span{mk("a", ""), mk("b", "a"), mk("c", "b")}, true},
		{"two roots", []Span{mk("a", ""), mk("b", "")}, false},
		{"dangling parent", []Span{mk("a", ""), mk("b", "zz")}, false},
	}
	for _, c := range cases {
		if got := ConnectedTrace(c.spans); got != c.want {
			t.Errorf("%s: ConnectedTrace = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWriteChromeSpansLoadable(t *testing.T) {
	tr := NewTracer("rvpc", 64)
	root := tr.Start(SpanContext{}, "submit")
	time.Sleep(time.Millisecond)
	root.End()
	srv := NewTracer("rvpd", 64)
	// Two overlapping daemon spans force a second lane.
	now := time.Now()
	srv.Record(root.Context(), "worker", now, 10*time.Millisecond, map[string]string{"job": "j1"})
	srv.Record(root.Context(), "worker", now.Add(time.Millisecond), 10*time.Millisecond, nil)

	all := append(tr.Spans(), srv.Spans()...)
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, all); err != nil {
		t.Fatalf("WriteChromeSpans: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	var metas, xs int
	tids := map[string]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			xs++
			tids[fmt.Sprint(e["pid"], "/", e["tid"])] = true
		}
	}
	if metas != 2 { // one process_name per service
		t.Fatalf("meta events = %d, want 2", metas)
	}
	if xs != 3 {
		t.Fatalf("span events = %d, want 3", xs)
	}
	// The two overlapping rvpd spans must land on distinct lanes.
	if len(tids) != 3 {
		t.Fatalf("lanes used = %d, want 3 (%v)", len(tids), tids)
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	tr := NewTracer("svc", 8)
	tr.Start(SpanContext{Trace: "t42"}, "a").End()
	tr.Start(SpanContext{Trace: "t42"}, "b").End()
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, tr.Spans()); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var sp Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if sp.Trace != "t42" {
			t.Fatalf("line %q trace = %q", line, sp.Trace)
		}
	}
}
