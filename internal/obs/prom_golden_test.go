package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestPrometheusExpositionGolden pins the exact text exposition the
// /metrics endpoint serves — one instrument of every kind, including a
// labeled gauge family — so an accidental format change (spacing, label
// quoting, bucket cumulation) is caught byte-for-byte.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("srv_jobs_submitted_total", "jobs accepted into the queue")
	c.Add(7)
	g := r.Gauge("srv_queue_depth", "jobs currently queued")
	g.Set(3)
	v := r.GaugeVec("srv_breaker_state", "per-workload breaker state (0 closed, 1 half-open, 2 open)", "key")
	v.With("go").Set(2)
	v.With("figure:fig5").Set(0)
	v.With(`quoted"key`).Set(1)
	h := r.Histogram("srv_queue_wait_ms", "queue wait per job, milliseconds", []int64{2, 4, 8})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), string(want))
	}
}
