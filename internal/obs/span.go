package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the job-tracing half of the observability layer: spans
// with trace/parent identity and monotonic durations, a bounded
// concurrent-safe collector (Tracer), and exporters to Chrome
// trace_event JSON and JSON Lines. The per-instruction Event stream
// (event.go) answers "what did one simulated instruction do"; spans
// answer "where did one job's wall-clock time go" — admission, queue
// wait, worker, profiling pass, simulation run — across the client and
// daemon processes that share one trace ID.

// SpanContext names a position in a trace: the trace ID plus the span
// that new children should parent under. The zero value means "no
// trace"; spans started under it become trace roots.
type SpanContext struct {
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// Span is one finished, timed operation within a trace. StartUS is
// wall-clock microseconds since the Unix epoch (the only reference two
// processes share); DurUS is measured against the monotonic clock, so
// a span's duration is immune to wall-clock steps.
type Span struct {
	Trace   string            `json:"trace"`
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Service string            `json:"service"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// NewTraceID returns a fresh random 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand cannot fail on supported platforms.
		panic("obs: crypto/rand: " + err.Error())
	}
	return "t" + hex.EncodeToString(b[:])
}

// Tracer is a bounded, concurrent-safe span collector for one service
// ("rvpc", "rvpd"). Spans past the capacity are dropped (and counted)
// rather than growing without bound: a Tracer can sit on a daemon's hot
// serve path for the life of a job without becoming a memory leak.
// A nil *Tracer is a valid no-op collector.
type Tracer struct {
	service string
	cap     int
	prefix  string // random per-tracer prefix keeping span IDs unique across restarts
	seq     atomic.Uint64

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTracer builds a collector for service retaining at most capacity
// spans (capacity <= 0 takes 512).
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 512
	}
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand: " + err.Error())
	}
	return &Tracer{service: service, cap: capacity, prefix: hex.EncodeToString(b[:])}
}

// Service returns the tracer's service name ("" on nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

func (t *Tracer) nextID() string {
	return fmt.Sprintf("s%s-%d", t.prefix, t.seq.Add(1))
}

// Start opens a span under parent (zero SpanContext starts a new trace
// root with a fresh trace ID). The returned ActiveSpan must be End()ed
// to be recorded; nil Tracers return nil, and every ActiveSpan method
// is nil-safe, so call sites need no tracing-enabled branches.
func (t *Tracer) Start(parent SpanContext, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	trace := parent.Trace
	if trace == "" {
		trace = NewTraceID()
	}
	return &ActiveSpan{
		t:     t,
		start: time.Now(),
		span: Span{
			Trace:   trace,
			ID:      t.nextID(),
			Parent:  parent.Span,
			Service: t.service,
			Name:    name,
		},
	}
}

// Record adds an already-timed span (an operation whose start predates
// the decision to trace it, e.g. a queue wait measured from an enqueue
// timestamp). It returns the recorded span's context for children.
func (t *Tracer) Record(parent SpanContext, name string, start time.Time, dur time.Duration, attrs map[string]string) SpanContext {
	if t == nil {
		return parent
	}
	sp := Span{
		Trace:   parent.Trace,
		ID:      t.nextID(),
		Parent:  parent.Span,
		Service: t.service,
		Name:    name,
		StartUS: start.UnixMicro(),
		DurUS:   dur.Microseconds(),
		Attrs:   attrs,
	}
	if sp.Trace == "" {
		sp.Trace = NewTraceID()
	}
	t.add(sp)
	return SpanContext{Trace: sp.Trace, Span: sp.ID}
}

func (t *Tracer) add(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, sp)
}

// Spans returns a copy of the collected spans, in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans the capacity bound discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// ActiveSpan is a span in progress. It is owned by the goroutine that
// started it; SetAttr/End are not for concurrent use on one span
// (distinct spans are independent). All methods are nil-receiver-safe.
type ActiveSpan struct {
	t     *Tracer
	start time.Time
	span  Span
	ended bool
}

// Context returns the span's position for parenting children.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID}
}

// SetAttr attaches a key/value attribute.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[k] = v
}

// End closes the span and hands it to the tracer (idempotent).
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.StartUS = a.start.UnixMicro()
	a.span.DurUS = time.Since(a.start).Microseconds()
	a.t.add(a.span)
}

// EndErr closes the span, attaching err (when non-nil) as an "error"
// attribute first.
func (a *ActiveSpan) EndErr(err error) {
	if a == nil {
		return
	}
	if err != nil {
		a.SetAttr("error", err.Error())
	}
	a.End()
}

// ConnectedTrace reports whether spans form one connected tree: exactly
// one root (empty parent) and every other span's parent present in the
// set. An empty slice is not connected.
func ConnectedTrace(spans []Span) bool {
	if len(spans) == 0 {
		return false
	}
	ids := make(map[string]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == "" {
			roots++
		} else if !ids[s.Parent] {
			return false
		}
	}
	return roots == 1
}

// WriteSpansJSONL writes one span per line (JSON Lines): the flight
// recorder / scripting format.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeSpanEvent is one complete ("X") trace_event.
type chromeSpanEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMetaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeSpans renders spans as a Chrome trace_event JSON array
// loadable in chrome://tracing or https://ui.perfetto.dev. Each service
// becomes one "process"; within a service, overlapping spans are packed
// greedily onto non-overlapping lanes ("threads") so concurrent jobs
// render side by side. Timestamps are the spans' wall-clock
// microseconds, which is what lets client and daemon spans of one trace
// line up on a shared axis.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := func(v any, first bool) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(data)
		return err
	}

	// Stable service -> pid mapping in first-seen order.
	var services []string
	pids := map[string]int{}
	for _, s := range spans {
		if _, ok := pids[s.Service]; !ok {
			pids[s.Service] = len(services) + 1
			services = append(services, s.Service)
		}
	}

	first := true
	for _, svc := range services {
		if err := enc(chromeMetaEvent{
			Name: "process_name", Ph: "M", PID: pids[svc], TID: 0,
			Args: map[string]string{"name": svc},
		}, first); err != nil {
			return err
		}
		first = false
	}

	// Greedy lane packing per service: sort by start, place each span on
	// the first lane whose previous span has ended.
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return spans[order[a]].StartUS < spans[order[b]].StartUS })
	laneEnds := map[string][]int64{} // service -> per-lane last end time
	for _, i := range order {
		s := spans[i]
		lanes := laneEnds[s.Service]
		lane := -1
		for l, end := range lanes {
			if s.StartUS >= end {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(lanes)
			lanes = append(lanes, 0)
		}
		end := s.StartUS + s.DurUS
		if end == s.StartUS {
			end++ // zero-length spans still occupy their lane slot
		}
		lanes[lane] = end
		laneEnds[s.Service] = lanes

		args := map[string]string{"id": s.ID, "trace": s.Trace}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if err := enc(chromeSpanEvent{
			Name: s.Name, Cat: s.Service, Ph: "X",
			PID: pids[s.Service], TID: lane,
			TS: s.StartUS, Dur: s.DurUS, Args: args,
		}, first); err != nil {
			return err
		}
		first = false
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
