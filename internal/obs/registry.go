// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms), a structured event-trace
// sink chain, and exporters for three formats — Prometheus text
// exposition, Chrome trace_event JSON (chrome://tracing / Perfetto), and
// JSONL event streams — plus run manifests, a progress heartbeat, and
// pprof capture helpers for the experiment harness.
//
// Design for the hot path: instruments are updated with single atomic
// adds and allocate nothing after registration. Single-writer loops (the
// timing simulator commits ~10M instructions/s) should batch through the
// Local* views, which accumulate in plain ints and flush deltas into the
// shared instruments every few thousand observations; a flush is a
// handful of atomic adds, so the amortised hot-path cost is near zero
// while concurrent readers (heartbeats, exporters) still see live,
// race-free values.
//
// Concurrency contract: every instrument method and Registry lookup is
// safe for concurrent use. Counters and histograms are monotone; values
// accumulate across runs that share a Registry. Snapshots are internally
// consistent per instrument but are not a cross-instrument atomic cut.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64

	// Pad the struct to one 64-byte cache line. Counters are individually
	// heap-allocated and hit with atomic adds from every parallel
	// simulator's batched flush; at 40 bytes two hot counters can share a
	// line and false-share across cores. The padding costs nothing and
	// removes that coupling.
	_ [24]byte
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	help string
	v    atomic.Int64

	// Cache-line padding, for the same false-sharing reason as Counter.
	_ [24]byte
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc raises the gauge by one (a resource came up).
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by one (a resource went away).
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a family of gauges distinguished by one label ("which
// workload's breaker", "which worker"). Member gauges register lazily on
// first With and render as `name{label="value"} v` lines in Prometheus
// exposition. Safe for concurrent use.
type GaugeVec struct {
	name  string
	help  string
	label string

	mu     sync.Mutex
	gauges map[string]*Gauge
}

// Name returns the family name.
func (v *GaugeVec) Name() string { return v.name }

// With returns (registering if needed) the member gauge for the label
// value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.gauges[value]
	if !ok {
		g = &Gauge{name: v.name, help: v.help}
		v.gauges[value] = g
	}
	return g
}

// Values returns a copy of the current per-label values.
func (v *GaugeVec) Values() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.gauges))
	for label, g := range v.gauges {
		out[label] = g.Value()
	}
	return out
}

// CounterVec is a family of counters distinguished by one label ("which
// tenant", "which workload"). Member counters register lazily on first
// With and render as `name{label="value"} v` lines in Prometheus
// exposition. Safe for concurrent use.
type CounterVec struct {
	name  string
	help  string
	label string

	mu   sync.Mutex
	ctrs map[string]*Counter
}

// Name returns the family name.
func (v *CounterVec) Name() string { return v.name }

// With returns (registering if needed) the member counter for the label
// value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.ctrs[value]
	if !ok {
		c = &Counter{name: v.name, help: v.help}
		v.ctrs[value] = c
	}
	return c
}

// Values returns a copy of the current per-label values.
func (v *CounterVec) Values() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.ctrs))
	for label, c := range v.ctrs {
		out[label] = c.Value()
	}
	return out
}

// Histogram is a fixed-bucket cumulative histogram. Bounds are inclusive
// upper bounds in ascending order; one extra overflow bucket (+Inf) is
// implicit. Buckets never change after registration, so observations are
// a bucket search plus two atomic adds.
type Histogram struct {
	name   string
	help   string
	bounds []int64
	pow2   bool           // bounds are 2,4,8,...: bucket via bit length
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the bucket upper bounds (not to be mutated).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// bucket returns the index of the bucket v falls into. The hot-path
// bounds (ExpBuckets(2, 2, n)) are consecutive powers of two, for which
// the index is the bit length of v-1; that case is branch-free and keeps
// this function inlinable into LocalHistogram.Observe.
func (h *Histogram) bucket(v int64) int {
	if h.pow2 {
		if v <= 2 {
			return 0
		}
		i := bits.Len64(uint64(v-1)) - 1
		if i > len(h.bounds) {
			i = len(h.bounds)
		}
		return i
	}
	return h.bucketScan(v)
}

// bucketScan is the general-bounds fallback.
func (h *Histogram) bucketScan(v int64) int {
	// Latencies cluster in the low buckets; a linear scan beats binary
	// search for the common case and is branch-predictor friendly.
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// isPow2Bounds reports whether b is exactly 2, 4, 8, ..., 2^len(b).
func isPow2Bounds(b []int64) bool {
	v := int64(2)
	for _, x := range b {
		if x != v {
			return false
		}
		v <<= 1
	}
	return len(b) > 0
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucket(v)].Add(1)
	h.sum.Add(v)
}

// AddCounts merges pre-aggregated per-bucket counts (len(bounds)+1
// entries) and a value sum into the histogram. It is the bulk form used
// by LocalHistogram flushes and cross-run merges.
func (h *Histogram) AddCounts(counts []int64, sum int64) error {
	if len(counts) != len(h.counts) {
		return fmt.Errorf("obs: histogram %s: merging %d buckets into %d", h.name, len(counts), len(h.counts))
	}
	for i, n := range counts {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	if sum != 0 {
		h.sum.Add(sum)
	}
	return nil
}

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) error {
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("obs: histogram %s: bound count mismatch with %s", h.name, o.name)
	}
	for i, b := range o.bounds {
		if h.bounds[i] != b {
			return fmt.Errorf("obs: histogram %s: bound %d differs from %s", h.name, i, o.name)
		}
	}
	counts := make([]int64, len(o.counts))
	for i := range o.counts {
		counts[i] = o.counts[i].Load()
	}
	return h.AddCounts(counts, o.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// LocalHistogram is a single-writer, non-atomic accumulator bound to a
// shared Histogram. Observe is a plain bucket search and two integer
// increments; Flush pushes the accumulated deltas into the shared
// instrument. It is the zero-overhead path for tight simulation loops.
type LocalHistogram struct {
	h      *Histogram
	counts []int64
	sum    int64
	n      int
}

// Local returns a new local accumulator for the histogram.
func (h *Histogram) Local() *LocalHistogram {
	return &LocalHistogram{h: h, counts: make([]int64, len(h.counts))}
}

// Observe records one value locally.
func (l *LocalHistogram) Observe(v int64) {
	l.counts[l.h.bucket(v)]++
	l.sum += v
	l.n++
}

// Pending returns the number of observations not yet flushed.
func (l *LocalHistogram) Pending() int { return l.n }

// Flush merges the accumulated deltas into the shared histogram and
// clears the local state.
func (l *LocalHistogram) Flush() {
	if l.n == 0 {
		return
	}
	// Bounds match by construction; AddCounts cannot fail.
	_ = l.h.AddCounts(l.counts, l.sum)
	for i := range l.counts {
		l.counts[i] = 0
	}
	l.sum = 0
	l.n = 0
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// ... rounded up to distinct integers.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	out := make([]int64, 0, n)
	v := float64(start)
	last := int64(0)
	for len(out) < n {
		b := int64(v)
		if b <= last {
			b = last + 1
		}
		out = append(out, b)
		last = b
		v *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket bounds: start, start+width, ...
func LinearBuckets(start, width int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// Registry holds named instruments. Registration is idempotent: asking
// for an existing name returns the existing instrument (histograms must
// re-state identical bounds). Lookups take a mutex; hold the returned
// instrument, not the registry, in hot code.
type Registry struct {
	mu    sync.Mutex
	order []string
	kinds map[string]string // name -> counter|gauge|countervec|gaugevec|histogram
	ctrs  map[string]*Counter
	gaus  map[string]*Gauge
	cvecs map[string]*CounterVec
	gvecs map[string]*GaugeVec
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds: map[string]string{},
		ctrs:  map[string]*Counter{},
		gaus:  map[string]*Gauge{},
		cvecs: map[string]*CounterVec{},
		gvecs: map[string]*GaugeVec{},
		hists: map[string]*Histogram{},
	}
}

func (r *Registry) claim(name, kind string) {
	if have, ok := r.kinds[name]; ok {
		if have != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, have, kind))
		}
		return
	}
	r.kinds[name] = kind
	r.order = append(r.order, name)
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g, ok := r.gaus[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gaus[name] = g
	}
	return g
}

// CounterVec returns (registering if needed) the named labeled counter
// family. A second registration must use the same label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "countervec")
	v, ok := r.cvecs[name]
	if !ok {
		v = &CounterVec{name: name, help: help, label: label, ctrs: map[string]*Counter{}}
		r.cvecs[name] = v
		return v
	}
	if v.label != label {
		panic(fmt.Sprintf("obs: counter vec %q registered with labels %q and %q", name, v.label, label))
	}
	return v
}

// GaugeVec returns (registering if needed) the named labeled gauge
// family. A second registration must use the same label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gaugevec")
	v, ok := r.gvecs[name]
	if !ok {
		v = &GaugeVec{name: name, help: help, label: label, gauges: map[string]*Gauge{}}
		r.gvecs[name] = v
		return v
	}
	if v.label != label {
		panic(fmt.Sprintf("obs: gauge vec %q registered with labels %q and %q", name, v.label, label))
	}
	return v
}

// Histogram returns (registering if needed) the named histogram. A
// second registration must use the same bounds.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("obs: histogram %s: bounds not strictly ascending", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			name:   name,
			help:   help,
			bounds: append([]int64(nil), bounds...),
			pow2:   isPow2Bounds(bounds),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different bounds", name))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different bounds", name))
		}
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	CounterVecs map[string]map[string]int64  `json:"counter_vecs,omitempty"`
	GaugeVecs   map[string]map[string]int64  `json:"gauge_vecs,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Gauges:     make(map[string]int64, len(r.gaus)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.ctrs {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gaus {
		s.Gauges[n] = g.Value()
	}
	if len(r.cvecs) > 0 {
		s.CounterVecs = make(map[string]map[string]int64, len(r.cvecs))
		for n, v := range r.cvecs {
			s.CounterVecs[n] = v.Values()
		}
	}
	if len(r.gvecs) > 0 {
		s.GaugeVecs = make(map[string]map[string]int64, len(r.gvecs))
		for n, v := range r.gvecs {
			s.GaugeVecs[n] = v.Values()
		}
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Merge folds another registry's instruments into r, registering any
// missing names. Counter values add, gauges take the other's value, and
// histograms merge per bucket (bounds must match).
func (r *Registry) Merge(o *Registry) error {
	o.mu.Lock()
	names := append([]string(nil), o.order...)
	kinds := make(map[string]string, len(o.kinds))
	for k, v := range o.kinds {
		kinds[k] = v
	}
	o.mu.Unlock()
	for _, name := range names {
		switch kinds[name] {
		case "counter":
			o.mu.Lock()
			v := o.ctrs[name].Value()
			help := o.ctrs[name].help
			o.mu.Unlock()
			r.Counter(name, help).Add(v)
		case "gauge":
			o.mu.Lock()
			v := o.gaus[name].Value()
			help := o.gaus[name].help
			o.mu.Unlock()
			r.Gauge(name, help).Set(v)
		case "countervec":
			o.mu.Lock()
			ov := o.cvecs[name]
			o.mu.Unlock()
			v := r.CounterVec(name, ov.help, ov.label)
			for label, val := range ov.Values() {
				v.With(label).Add(val)
			}
		case "gaugevec":
			o.mu.Lock()
			ov := o.gvecs[name]
			o.mu.Unlock()
			v := r.GaugeVec(name, ov.help, ov.label)
			for label, val := range ov.Values() {
				v.With(label).Set(val)
			}
		case "histogram":
			o.mu.Lock()
			oh := o.hists[name]
			o.mu.Unlock()
			h := r.Histogram(name, oh.help, oh.bounds)
			if err := h.Merge(oh); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()
	for _, name := range order {
		switch kinds[name] {
		case "counter":
			r.mu.Lock()
			c := r.ctrs[name]
			r.mu.Unlock()
			if c.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, c.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
				return err
			}
		case "gauge":
			r.mu.Lock()
			g := r.gaus[name]
			r.mu.Unlock()
			if g.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, g.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value()); err != nil {
				return err
			}
		case "countervec":
			r.mu.Lock()
			v := r.cvecs[name]
			r.mu.Unlock()
			if v.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, v.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
				return err
			}
			vals := v.Values()
			labels := make([]string, 0, len(vals))
			for label := range vals {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			for _, label := range labels {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, label, vals[label]); err != nil {
					return err
				}
			}
		case "gaugevec":
			r.mu.Lock()
			v := r.gvecs[name]
			r.mu.Unlock()
			if v.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, v.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			vals := v.Values()
			labels := make([]string, 0, len(vals))
			for label := range vals {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			for _, label := range labels {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, label, vals[label]); err != nil {
					return err
				}
			}
		case "histogram":
			r.mu.Lock()
			h := r.hists[name]
			r.mu.Unlock()
			s := h.Snapshot()
			if h.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
					return err
				}
			}
			cum += s.Counts[len(s.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, cum, name, s.Sum, name, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// Publisher is implemented by subsystems that can publish their internal
// counters into a registry at the end of a run (memory hierarchy, branch
// predictor, value predictors).
type Publisher interface {
	PublishMetrics(*Registry)
}
