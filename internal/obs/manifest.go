package obs

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// Manifest is the machine-readable record of one experiment run: what
// was run, on what configuration and code revision, how long it took,
// and what it produced. The experiments binary writes one per figure so
// regenerated results can be audited and diffed.
type Manifest struct {
	Name      string    `json:"name"`
	StartedAt time.Time `json:"started_at"`
	WallClock float64   `json:"wall_clock_seconds"`
	Git       string    `json:"git,omitempty"`
	GoVersion string    `json:"go_version,omitempty"`
	Hostname  string    `json:"hostname,omitempty"`
	Config    any       `json:"config,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	Results   any       `json:"results,omitempty"`
	Metrics   *Snapshot `json:"metrics,omitempty"`
	Notes     []string  `json:"notes,omitempty"`
}

// GitDescribe returns `git describe --always --dirty --tags` for dir
// ("" = current directory), or "" when git or the repository is
// unavailable — manifests degrade gracefully outside a checkout.
func GitDescribe(dir string) string {
	cmd := exec.Command("git", "describe", "--always", "--dirty", "--tags")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// WriteManifest writes m as indented JSON to path, creating parent
// directories as needed.
func WriteManifest(path string, m *Manifest) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
