package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTrace is an EventSink that renders the run in the Chrome
// trace_event JSON array format, loadable in chrome://tracing or
// https://ui.perfetto.dev. One simulated cycle maps to one microsecond
// of trace time. Each committed instruction becomes four complete
// ("ph":"X") spans — fetch, dispatch, execute, commit — placed on one of
// Lanes round-robin threads so concurrently in-flight instructions
// render side by side instead of overlapping.
type ChromeTrace struct {
	// Lanes is the number of trace rows instructions are spread over.
	// Set it before the first event; it should exceed the maximum
	// number of in-flight instructions (the instruction window).
	Lanes int

	w       *bufio.Writer
	started bool
	n       uint64
	closed  bool
}

// NewChromeTrace returns a sink writing the trace_event array to w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	return &ChromeTrace{Lanes: 64, w: bufio.NewWriterSize(w, 1<<16)}
}

func (t *ChromeTrace) sep() error {
	if t.n == 0 {
		return nil
	}
	_, err := t.w.WriteString(",\n")
	return err
}

func (t *ChromeTrace) meta() error {
	if _, err := t.w.WriteString("[\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(t.w,
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rvpsim pipeline"}}`); err != nil {
		return err
	}
	t.n++
	for lane := 0; lane < t.Lanes; lane++ {
		if err := t.sep(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(t.w,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"lane %02d"}}`,
			lane, lane); err != nil {
			return err
		}
		t.n++
	}
	return nil
}

func (t *ChromeTrace) span(name string, tid int64, ts, dur int64, args string) error {
	if err := t.sep(); err != nil {
		return err
	}
	if dur < 0 {
		dur = 0
	}
	var err error
	if args == "" {
		_, err = fmt.Fprintf(t.w, `{"name":"%s","ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d}`,
			name, tid, ts, dur)
	} else {
		_, err = fmt.Fprintf(t.w, `{"name":"%s","ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"args":%s}`,
			name, tid, ts, dur, args)
	}
	t.n++
	return err
}

// Emit implements EventSink.
func (t *ChromeTrace) Emit(e *Event) error {
	if !t.started {
		if t.Lanes <= 0 {
			t.Lanes = 64
		}
		if err := t.meta(); err != nil {
			return err
		}
		t.started = true
	}
	lane := int64(e.Seq % uint64(t.Lanes))
	args := fmt.Sprintf(`{"index":%d,"seq":%d,"predicted":%t,"correct":%t}`,
		e.Index, e.Seq, e.Predicted, e.Correct)
	if err := t.span("fetch", lane, e.Fetch, e.Dispatch-e.Fetch, args); err != nil {
		return err
	}
	if err := t.span("dispatch", lane, e.Dispatch, e.Issue-e.Dispatch, ""); err != nil {
		return err
	}
	exec := "execute"
	if e.Predicted {
		if e.Correct {
			exec = "execute (pred ok)"
		} else {
			exec = "execute (pred wrong)"
		}
	}
	if err := t.span(exec, lane, e.Issue, e.Done-e.Issue, ""); err != nil {
		return err
	}
	return t.span("commit", lane, e.Done, e.Commit-e.Done, "")
}

// Close terminates the JSON array and flushes.
func (t *ChromeTrace) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if !t.started {
		if t.Lanes <= 0 {
			t.Lanes = 64
		}
		if err := t.meta(); err != nil {
			return err
		}
	}
	if _, err := t.w.WriteString("\n]\n"); err != nil {
		return err
	}
	return t.w.Flush()
}
