package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a small deterministic trace: three instructions with
// distinct timing shapes (plain, predicted-correct, predicted-wrong).
func goldenEvents() []Event {
	return []Event{
		{Index: 0, Fetch: 0, Dispatch: 2, Issue: 3, Done: 5, Commit: 6},
		{Index: 1, Fetch: 0, Dispatch: 2, Issue: 2, Done: 4, Commit: 7, Predicted: true, Correct: true},
		{Index: 2, Fetch: 1, Dispatch: 3, Issue: 6, Done: 9, Commit: 12, Predicted: true, Correct: false},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	ct.Lanes = 2
	o := NewObserver()
	o.AddSink(ct)
	events := goldenEvents()
	for i := range events {
		o.Emit(&events[i])
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file %s (run with -update to regenerate)\ngot:\n%s", golden, got)
	}
}

// TestChromeTraceWellFormed checks the structural contract consumers
// rely on: the output is a JSON array of trace events where every
// non-metadata event is a complete ("ph":"X") span with pid, tid, ts
// and a non-negative dur.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	ct.Lanes = 3
	o := NewObserver()
	o.AddSink(ct)
	events := goldenEvents()
	for i := range events {
		o.Emit(&events[i])
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	type traceEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  *int           `json:"pid"`
		Tid  *int64         `json:"tid"`
		Ts   *int64         `json:"ts"`
		Dur  *int64         `json:"dur"`
		Args map[string]any `json:"args"`
	}
	var parsed []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	var spans, meta int
	for i, e := range parsed {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Pid == nil || e.Tid == nil || e.Ts == nil || e.Dur == nil {
				t.Errorf("event %d (%s) missing pid/tid/ts/dur", i, e.Name)
				continue
			}
			if *e.Dur < 0 {
				t.Errorf("event %d (%s) has negative dur %d", i, e.Name, *e.Dur)
			}
			if *e.Tid < 0 || *e.Tid >= int64(ct.Lanes) {
				t.Errorf("event %d (%s) tid %d outside [0,%d)", i, e.Name, *e.Tid, ct.Lanes)
			}
		default:
			t.Errorf("event %d has unexpected phase %q", i, e.Ph)
		}
	}
	// Four spans per instruction; one process plus Lanes thread names.
	if want := 4 * len(events); spans != want {
		t.Errorf("spans = %d, want %d", spans, want)
	}
	if want := 1 + ct.Lanes; meta != want {
		t.Errorf("metadata events = %d, want %d", meta, want)
	}
}

// TestChromeTraceEmpty checks that a trace with no events is still a
// valid JSON array (metadata only).
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	ct.Lanes = 1
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(parsed) != 2 {
		t.Errorf("empty trace has %d events, want 2 metadata events", len(parsed))
	}
}
