package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a heartbeat reporter for long sweeps. Workers call Step as
// units of work finish; a background goroutine prints a one-line status
// to the writer at a fixed interval (and only then, so per-step cost is
// two atomic operations). Safe for concurrent Step calls.
type Progress struct {
	w     io.Writer
	every time.Duration
	total int64

	done  atomic.Int64
	label atomic.Value // string: most recent unit label

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
	start   time.Time
}

// NewProgress builds a reporter writing to w every interval (minimum one
// second). total is the expected number of steps (0 = unknown).
func NewProgress(w io.Writer, every time.Duration, total int) *Progress {
	if every < time.Second {
		every = time.Second
	}
	p := &Progress{w: w, every: every, total: int64(total)}
	p.label.Store("")
	return p
}

// Start launches the heartbeat goroutine.
func (p *Progress) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.start = time.Now()
	p.stop = make(chan struct{})
	p.stopped = make(chan struct{})
	go p.loop(p.stop, p.stopped)
}

func (p *Progress) loop(stop, stopped chan struct{}) {
	t := time.NewTicker(p.every)
	defer t.Stop()
	defer close(stopped)
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.beat()
		}
	}
}

func (p *Progress) beat() {
	done := p.done.Load()
	label, _ := p.label.Load().(string)
	elapsed := time.Since(p.start).Round(time.Second)
	if p.total > 0 {
		fmt.Fprintf(p.w, "heartbeat: %d/%d runs done, last=%s, elapsed=%s\n", done, p.total, label, elapsed)
	} else {
		fmt.Fprintf(p.w, "heartbeat: %d runs done, last=%s, elapsed=%s\n", done, label, elapsed)
	}
}

// Step records one finished unit of work.
func (p *Progress) Step(label string) {
	p.done.Add(1)
	p.label.Store(label)
}

// Done returns the number of completed steps.
func (p *Progress) Done() int64 { return p.done.Load() }

// Stop halts the heartbeat goroutine (idempotent).
func (p *Progress) Stop() {
	p.mu.Lock()
	stop, stopped := p.stop, p.stopped
	p.stop, p.stopped = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
}
