package obs

// Quantile estimates the q-quantile (0 < q <= 1) of the observations in
// the snapshot from its cumulative buckets, interpolating linearly
// inside the bucket the quantile falls into. The estimate is clamped to
// the histogram's range: quantiles landing in the overflow bucket
// return the largest finite bound (the histogram cannot see past it).
// An empty snapshot returns 0. Queue admission and readiness reporting
// use this to turn the service's wait histograms into a p99.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, b := range s.Bounds {
		n := s.Counts[i]
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			// Interpolate inside [lo, b]; lo is the previous bound (or 0).
			var lo int64
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			v := float64(lo) + frac*float64(b-lo)
			if v < float64(lo) {
				v = float64(lo)
			}
			if v > float64(b) {
				v = float64(b)
			}
			return int64(v)
		}
		cum += n
	}
	// The quantile lands in the +Inf overflow bucket.
	return s.Bounds[len(s.Bounds)-1]
}
