package obs

// Event is one structured trace event: the lifetime of one committed
// instruction through the pipeline, in cycles. The producer emits events
// in commit order and reuses the Event value between calls — sinks that
// retain an event must copy it.
type Event struct {
	Seq       uint64 `json:"seq"`   // commit sequence number (0-based)
	Index     int    `json:"index"` // static instruction index
	Fetch     int64  `json:"fetch"`
	Dispatch  int64  `json:"dispatch"`
	Issue     int64  `json:"issue"`
	Done      int64  `json:"done"`
	Commit    int64  `json:"commit"`
	Predicted bool   `json:"predicted"`
	Correct   bool   `json:"correct"`
}

// EventSink consumes trace events. Emit is called in commit order from
// the simulation goroutine; sinks need not be safe for concurrent use.
// Close flushes buffered output and releases resources.
type EventSink interface {
	Emit(e *Event) error
	Close() error
}

// Observer bundles what one observed run publishes into: a metrics
// registry and a chain of event sinks. A zero-sink observer costs the
// simulator only batched counter flushes; event serialisation happens
// only when sinks are attached.
type Observer struct {
	reg   *Registry
	sinks []EventSink
	seq   uint64
	err   error
}

// NewObserver returns an observer with a fresh registry and no sinks.
func NewObserver() *Observer { return &Observer{reg: NewRegistry()} }

// NewObserverWith returns an observer publishing into an existing
// registry (for aggregating several runs).
func NewObserverWith(reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{reg: reg}
}

// Registry returns the observer's metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// AddSink appends an event sink.
func (o *Observer) AddSink(s EventSink) { o.sinks = append(o.sinks, s) }

// HasSinks reports whether any event sink is attached. Producers use it
// to skip event assembly entirely on unobserved-event runs.
func (o *Observer) HasSinks() bool { return o != nil && len(o.sinks) > 0 }

// Emit assigns the next sequence number and forwards the event to every
// sink. The first sink error is retained (see Err) and that sink is not
// called again.
func (o *Observer) Emit(e *Event) {
	e.Seq = o.seq
	o.seq++
	for i := 0; i < len(o.sinks); i++ {
		if err := o.sinks[i].Emit(e); err != nil {
			if o.err == nil {
				o.err = err
			}
			o.sinks = append(o.sinks[:i], o.sinks[i+1:]...)
			i--
		}
	}
}

// Events returns how many events have been emitted.
func (o *Observer) Events() uint64 { return o.seq }

// Err returns the first sink error, if any.
func (o *Observer) Err() error { return o.err }

// Close closes every sink and returns the first error (including any
// earlier Emit error).
func (o *Observer) Close() error {
	err := o.err
	for _, s := range o.sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	o.sinks = nil
	return err
}
