package obs

import "testing"

func TestQuantileEmpty(t *testing.T) {
	h := NewRegistry().Histogram("q_empty", "", []int64{1, 10, 100})
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewRegistry().Histogram("q_single", "", []int64{10, 100})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	// All mass in [0,10]: the median interpolates to the bucket middle.
	got := h.Snapshot().Quantile(0.5)
	if got < 1 || got > 10 {
		t.Fatalf("median of uniform-in-first-bucket = %d, want in [1,10]", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewRegistry().Histogram("q_interp", "", []int64{10, 20, 30})
	// 10 obs in (10,20], 10 in (20,30].
	for i := 0; i < 10; i++ {
		h.Observe(15)
		h.Observe(25)
	}
	s := h.Snapshot()
	// p50 falls exactly at the top of the second bucket's range.
	if got := s.Quantile(0.5); got < 15 || got > 20 {
		t.Fatalf("p50 = %d, want in [15,20]", got)
	}
	if got := s.Quantile(0.99); got < 25 || got > 30 {
		t.Fatalf("p99 = %d, want in [25,30]", got)
	}
	// p50 must not exceed p99.
	if s.Quantile(0.5) > s.Quantile(0.99) {
		t.Fatalf("quantiles not monotone: p50 %d > p99 %d", s.Quantile(0.5), s.Quantile(0.99))
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	h := NewRegistry().Histogram("q_over", "", []int64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(1000) // all land in the +Inf overflow bucket
	}
	if got := h.Snapshot().Quantile(0.99); got != 20 {
		t.Fatalf("overflow Quantile = %d, want clamp to 20", got)
	}
}

func TestQuantileBoundsClamped(t *testing.T) {
	h := NewRegistry().Histogram("q_range", "", []int64{10})
	h.Observe(5)
	s := h.Snapshot()
	if got := s.Quantile(-1); got < 0 || got > 10 {
		t.Fatalf("Quantile(-1) = %d, want within histogram range", got)
	}
	if got := s.Quantile(2); got < 0 || got > 10 {
		t.Fatalf("Quantile(2) = %d, want within histogram range", got)
	}
}
