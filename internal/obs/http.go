package obs

import "net/http"

// Handler serves the registry in Prometheus text exposition format.
// This is the /metrics endpoint of the simulation service: scrapes see
// live values because instruments are read atomically at render time.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures to a disconnected
		// scraper; there is nothing useful to do with them.
		_ = r.WritePrometheus(w)
	})
}
