package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// ProfileCapture holds an in-flight pprof capture: a running CPU profile
// plus a heap snapshot written on Stop.
type ProfileCapture struct {
	dir string
	cpu *os.File
}

// StartProfiles creates dir if needed, starts a CPU profile writing to
// dir/cpu.pprof, and returns the capture handle.
func StartProfiles(dir string) (*ProfileCapture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &ProfileCapture{dir: dir, cpu: f}, nil
}

// Stop ends the CPU profile and writes a heap profile to
// dir/heap.pprof. Safe to call once.
func (p *ProfileCapture) Stop() error {
	pprof.StopCPUProfile()
	err := p.cpu.Close()
	hf, herr := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if herr != nil {
		if err == nil {
			err = herr
		}
		return err
	}
	runtime.GC()
	if werr := pprof.Lookup("heap").WriteTo(hf, 0); werr != nil && err == nil {
		err = werr
	}
	if cerr := hf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
