package mem

import (
	"reflect"
	"testing"
)

// The two-level flat page table plus last-page cache is an internal
// layout choice: snapshots, clones, and restores must behave exactly as
// they did with the old map-backed memory, including for pages in the
// sparse overflow region beyond the flat root span. These addresses are
// chosen to land in distinct leaves of every level: same leaf directory,
// different root entries, and past the flat span (>= 512 GiB) into the
// overflow map.
var flatPageProbes = []uint64{
	0x1000,                                      // root entry 0
	0x1000 + pageSize,                           // same leaf, next page
	1 << (pageBits + dirBits),                   // next root entry
	5 << (pageBits + dirBits),                   // a farther root entry
	1 << (pageBits + dirBits + rootBits),        // first overflow leaf
	1<<(pageBits+dirBits+rootBits) + 7*pageSize, // same overflow leaf
	1 << 45, // a farther overflow leaf
}

func writeProbes(m *Memory) {
	for i, addr := range flatPageProbes {
		m.WriteWord(addr, uint64(i)+1)
	}
}

func checkProbes(t *testing.T, m *Memory, label string) {
	t.Helper()
	for i, addr := range flatPageProbes {
		if got := m.ReadWord(addr); got != uint64(i)+1 {
			t.Errorf("%s: [%#x] = %d, want %d", label, addr, got, i+1)
		}
	}
}

// TestMemorySnapshotAcrossFlatAndOverflow: snapshot/restore round-trips
// pages from both the flat root and the overflow map, and the restored
// image re-snapshots identically (checkpoint byte-determinism).
func TestMemorySnapshotAcrossFlatAndOverflow(t *testing.T) {
	m := NewMemory()
	writeProbes(m)
	if m.Footprint() != len(flatPageProbes) {
		t.Fatalf("footprint = %d, want %d distinct pages", m.Footprint(), len(flatPageProbes))
	}
	snap := m.Snapshot()
	r, err := RestoreMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	checkProbes(t, r, "restored")
	if r.Footprint() != m.Footprint() {
		t.Errorf("restored footprint = %d, want %d", r.Footprint(), m.Footprint())
	}
	if !reflect.DeepEqual(r.Snapshot(), snap) {
		t.Error("re-snapshot of restored memory differs from original snapshot")
	}
}

// TestMemoryCloneAcrossFlatAndOverflow: clones are independent deep
// copies in every region, and the last-page cache of either side never
// leaks writes into the other.
func TestMemoryCloneAcrossFlatAndOverflow(t *testing.T) {
	m := NewMemory()
	writeProbes(m)
	c := m.Clone()
	checkProbes(t, c, "clone")
	// Overwrite through the clone (warming its last-page cache on each
	// page); the original must be unaffected, and vice versa.
	for _, addr := range flatPageProbes {
		c.WriteWord(addr, 0xdead)
	}
	checkProbes(t, m, "original after clone writes")
	m.WriteWord(flatPageProbes[0], 0xbeef)
	if got := c.ReadWord(flatPageProbes[0]); got != 0xdead {
		t.Errorf("clone sees original's write: %#x", got)
	}
	if !reflect.DeepEqual(m.Snapshot(), m.Clone().Snapshot()) {
		t.Error("clone snapshot differs from source snapshot")
	}
}
