package mem

import "rvpsim/internal/obs"

// PublishMetrics folds the hierarchy's access counters into the
// registry. The hierarchy is per-run state, so publishing once at the
// end of a run adds exactly that run's totals; registries shared across
// runs accumulate monotonically.
func (h *Hierarchy) PublishMetrics(reg *obs.Registry) {
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2} {
		c.PublishMetrics(reg)
	}
	reg.Counter("rvpsim_itlb_hits_total", "ITLB hits").Add(int64(h.ITLB.Hits))
	reg.Counter("rvpsim_itlb_misses_total", "ITLB misses").Add(int64(h.ITLB.Misses))
	reg.Counter("rvpsim_dtlb_hits_total", "DTLB hits").Add(int64(h.DTLB.Hits))
	reg.Counter("rvpsim_dtlb_misses_total", "DTLB misses").Add(int64(h.DTLB.Misses))
}

// PublishMetrics folds the cache's counters into the registry under
// names derived from the cache's configured name (l1i/l1d/l2).
func (c *Cache) PublishMetrics(reg *obs.Registry) {
	prefix := "rvpsim_" + lowerName(c.cfg.Name)
	reg.Counter(prefix+"_hits_total", c.cfg.Name+" hits").Add(int64(c.Hits))
	reg.Counter(prefix+"_misses_total", c.cfg.Name+" misses").Add(int64(c.Misses))
	reg.Counter(prefix+"_fill_stalls_total", c.cfg.Name+" hits that waited on an in-flight fill").Add(int64(c.FillStalls))
}

// lowerName lowercases an ASCII cache name for metric identifiers.
func lowerName(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + 'a' - 'A'
		}
	}
	return string(b)
}
