package mem

import (
	"errors"
	"sync"
	"testing"

	"rvpsim/internal/simerr"
)

// Tests for the copy-on-write fork path: ForkMemory must read through to
// the shared image, privatize pages on first write without disturbing
// the image or sibling forks, include shared pages in snapshots and
// Footprint, and tolerate any number of concurrent forks.

// cowImage builds a snapshot with two resident pages: word 0 of page 0
// holds 11, word 0 of page 1 holds 22.
func cowImage(t *testing.T) MemoryState {
	t.Helper()
	m := NewMemory()
	m.WriteWord(0, 11)
	m.WriteWord(pageWords*8, 22) // word addresses are byte-scaled by 8
	return m.Snapshot()
}

func TestForkMemoryReadsThrough(t *testing.T) {
	snap := cowImage(t)
	f, err := ForkMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ReadWord(0); got != 11 {
		t.Fatalf("fork read page0 = %d, want 11", got)
	}
	if got := f.ReadWord(pageWords * 8); got != 22 {
		t.Fatalf("fork read page1 = %d, want 22", got)
	}
	// Reads alone must not privatize: the fork still owns zero pages.
	if f.resident != 0 {
		t.Fatalf("read-only fork has %d resident pages, want 0", f.resident)
	}
	if got := f.Footprint(); got != 2 {
		t.Fatalf("Footprint() = %d, want 2 (both shared pages counted)", got)
	}
}

func TestForkMemoryCopyOnWriteIsolation(t *testing.T) {
	snap := cowImage(t)
	a, err := ForkMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForkMemory(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Writing through fork A privatizes the page for A only.
	a.WriteWord(8, 33) // word 1 of page 0
	if got := a.ReadWord(0); got != 11 {
		t.Fatalf("fork A lost shared word after COW copy: got %d, want 11", got)
	}
	if got := a.ReadWord(8); got != 33 {
		t.Fatalf("fork A write not visible: got %d, want 33", got)
	}
	if got := b.ReadWord(8); got != 0 {
		t.Fatalf("fork A's write leaked into fork B: got %d, want 0", got)
	}
	if snap.Pages[0][1] != 0 {
		t.Fatalf("fork A's write mutated the shared image: got %d, want 0", snap.Pages[0][1])
	}
	if a.resident != 1 {
		t.Fatalf("fork A resident = %d, want 1 (only the dirtied page)", a.resident)
	}
	// Footprint counts the private copy once, not private+shared double.
	if got := a.Footprint(); got != 2 {
		t.Fatalf("fork A Footprint() = %d, want 2", got)
	}

	// Writing the SAME value as the shared image must still privatize
	// (the fast path may not silently alias), and a fresh page outside
	// the image works as usual.
	b.WriteWord(pageWords*8, 22)
	if b.resident != 1 {
		t.Fatalf("fork B resident = %d, want 1", b.resident)
	}
	b.WriteWord(pageWords*2*8, 44)
	if got := b.ReadWord(pageWords * 2 * 8); got != 44 {
		t.Fatalf("fork B new page read = %d, want 44", got)
	}
}

func TestForkMemorySnapshotIncludesShared(t *testing.T) {
	snap := cowImage(t)
	f, err := ForkMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteWord(8, 33) // privatize page 0; page 1 stays shared-only
	got := f.Snapshot()
	if len(got.Pages) != 2 {
		t.Fatalf("fork snapshot has %d pages, want 2 (private + shared)", len(got.Pages))
	}
	if got.Pages[0][0] != 11 || got.Pages[0][1] != 33 {
		t.Fatalf("fork snapshot page0 = [%d %d ...], want [11 33 ...]",
			got.Pages[0][0], got.Pages[0][1])
	}
	if got.Pages[1][0] != 22 {
		t.Fatalf("fork snapshot page1[0] = %d, want 22", got.Pages[1][0])
	}
	// The snapshot must be a deep copy, not an alias of the shared image.
	got.Pages[1][0] = 99
	if snap.Pages[1][0] != 22 {
		t.Fatal("fork snapshot aliases the shared image")
	}
}

func TestForkMemoryValidatesGeometry(t *testing.T) {
	_, err := ForkMemory(MemoryState{Pages: map[uint64][]uint64{0: make([]uint64, 3)}})
	if !errors.Is(err, simerr.ErrCorrupt) {
		t.Fatalf("ForkMemory(bad page) = %v, want ErrCorrupt", err)
	}
}

func TestForkMemoryConcurrentForks(t *testing.T) {
	snap := cowImage(t)
	const forks = 8
	var wg sync.WaitGroup
	errs := make([]error, forks)
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := ForkMemory(snap)
			if err != nil {
				errs[i] = err
				return
			}
			// Interleave shared reads with privatizing writes.
			for j := 0; j < 1000; j++ {
				if got := f.ReadWord(pageWords * 8); got != 22 {
					t.Errorf("fork %d: shared read = %d, want 22", i, got)
					return
				}
				f.WriteWord(0, uint64(i*1000+j))
			}
			if got := f.ReadWord(0); got != uint64(i*1000+999) {
				t.Errorf("fork %d: private read = %d", i, got)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if snap.Pages[0][0] != 11 {
		t.Fatalf("concurrent forks mutated the shared image: %d", snap.Pages[0][0])
	}
}
