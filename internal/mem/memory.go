// Package mem provides the simulated memory hierarchy: a sparse 64-bit
// flat memory, set-associative write-back caches with LRU replacement, and
// a TLB model. Cache geometry and miss penalties default to Table 1 of the
// paper (32KB 4-way L1I and L1D, 512KB 2-way L2, 64-byte lines, 20-cycle
// L1 miss penalty, 80-cycle L2 miss penalty).
package mem

import (
	"fmt"

	"rvpsim/internal/simerr"
)

// pageBits selects the sparse-memory page size (64 KiB pages).
const pageBits = 16
const pageSize = 1 << pageBits
const pageWords = pageSize / 8

// Two-level split of the 48-bit page number: the flat root directory is
// indexed by the page number's high bits and each leaf directory covers
// dirSize contiguous pages. The flat root spans the low
// 1<<(pageBits+dirBits+rootBits) bytes (512 GiB) of the address space,
// which covers every address the workloads, the default code/stack
// layout, and any realistic program touch; the rare page beyond it (a
// wrapped or garbage effective address) falls back to a sparse overflow
// map keyed by root index, so semantics over the full 64-bit space are
// unchanged.
const dirBits = 10
const dirSize = 1 << dirBits // pages per leaf; one leaf spans 64 MiB
const rootBits = 13
const rootSize = 1 << rootBits // flat root entries

// pageDir is one leaf directory of the two-level page table.
type pageDir [dirSize][]uint64

// Memory is a sparse, paged, 64-bit-word-addressable flat memory. All
// accesses used by the ISA are aligned 64-bit words. Lookups go through
// a one-entry last-page cache and then a two-level flat page table, so
// the read/write hot path performs no map or hash operations.
type Memory struct {
	root     []*pageDir          // flat root directory (low 512 GiB)
	high     map[uint64]*pageDir // overflow leaves beyond the flat span
	resident int                 // allocated (owned) pages

	// Last-page cache: the page most recently touched. lastPage == nil
	// means the cache is empty (page number 0 is valid, so the page
	// pointer, not the number, is the validity flag). lastRO marks a
	// cached page that aliases the shared copy-on-write image: reads may
	// use it, writes must not (they go through ensure, which copies).
	lastPN   uint64
	lastPage []uint64
	lastRO   bool

	// shared is the copy-on-write backing image installed by ForkMemory.
	// Pages are served from it read-only until first written, when ensure
	// copies them into this Memory (shadowing the shared page). Neither
	// the map nor its pages are ever mutated here, so any number of forks
	// on any goroutines can share one image.
	shared map[uint64][]uint64
}

// NewMemory returns an empty memory; unwritten locations read as zero.
func NewMemory() *Memory {
	return &Memory{root: make([]*pageDir, rootSize)}
}

// lookup returns the page for page number pn, nil when not resident.
func (m *Memory) lookup(pn uint64) []uint64 {
	di := pn >> dirBits
	var d *pageDir
	if di < rootSize {
		d = m.root[di]
	} else {
		d = m.high[di]
	}
	if d == nil {
		return nil
	}
	return d[pn&(dirSize-1)]
}

// ensure returns the page for page number pn, allocating the leaf
// directory and the page as needed.
func (m *Memory) ensure(pn uint64) []uint64 {
	di := pn >> dirBits
	var d *pageDir
	if di < rootSize {
		if d = m.root[di]; d == nil {
			d = new(pageDir)
			m.root[di] = d
		}
	} else {
		if d = m.high[di]; d == nil {
			if m.high == nil {
				m.high = make(map[uint64]*pageDir)
			}
			d = new(pageDir)
			m.high[di] = d
		}
	}
	page := d[pn&(dirSize-1)]
	if page == nil {
		page = make([]uint64, pageWords)
		if sp, ok := m.shared[pn]; ok {
			// First write to a copy-on-write page: materialize a private
			// copy; the shared image stays untouched for sibling forks.
			copy(page, sp)
		}
		d[pn&(dirSize-1)] = page
		m.resident++
	}
	return page
}

// forEachPage visits every resident page (order unspecified): owned
// pages first, then shared copy-on-write pages not shadowed by an owned
// copy. Snapshots and clones of a forked memory are therefore complete
// images, indistinguishable from those of a deep-copied memory.
func (m *Memory) forEachPage(fn func(pn uint64, page []uint64)) {
	for di, d := range m.root {
		if d == nil {
			continue
		}
		for i, page := range d {
			if page != nil {
				fn(uint64(di)<<dirBits|uint64(i), page)
			}
		}
	}
	for di, d := range m.high {
		for i, page := range d {
			if page != nil {
				fn(di<<dirBits|uint64(i), page)
			}
		}
	}
	for pn, page := range m.shared {
		if m.lookup(pn) == nil {
			fn(pn, page)
		}
	}
}

// ReadWord reads the aligned 64-bit word at addr (low 3 bits ignored).
func (m *Memory) ReadWord(addr uint64) uint64 {
	pn := addr >> pageBits
	if pn == m.lastPN && m.lastPage != nil {
		return m.lastPage[addr>>3&(pageWords-1)]
	}
	page := m.lookup(pn)
	if page == nil {
		if sp, ok := m.shared[pn]; ok {
			m.lastPN, m.lastPage, m.lastRO = pn, sp, true
			return sp[addr>>3&(pageWords-1)]
		}
		return 0
	}
	m.lastPN, m.lastPage, m.lastRO = pn, page, false
	return page[addr>>3&(pageWords-1)]
}

// WriteWord writes the aligned 64-bit word at addr.
func (m *Memory) WriteWord(addr uint64, v uint64) {
	pn := addr >> pageBits
	if pn == m.lastPN && m.lastPage != nil && !m.lastRO {
		m.lastPage[addr>>3&(pageWords-1)] = v
		return
	}
	page := m.ensure(pn)
	m.lastPN, m.lastPage, m.lastRO = pn, page, false
	page[addr>>3&(pageWords-1)] = v
}

// Footprint returns the number of resident simulated pages: pages this
// memory owns plus copy-on-write pages it still serves from a shared
// image (a forked memory's footprint equals its deep-copied twin's).
func (m *Memory) Footprint() int {
	n := m.resident
	for pn := range m.shared {
		if m.lookup(pn) == nil {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	m.forEachPage(func(pn uint64, page []uint64) {
		copy(c.ensure(pn), page)
	})
	return c
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name        string
	SizeBytes   int
	Assoc       int
	LineBytes   int
	MissPenalty int // cycles added on a miss at this level
	HitLatency  int // cycles for a hit (access time)
}

// Validate checks the geometry. Errors wrap simerr.ErrConfig.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache %s: nonpositive geometry: %w", c.Name, simerr.ErrConfig)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %s: size %d not divisible by assoc*line: %w", c.Name, c.SizeBytes, simerr.ErrConfig)
	}
	sets := c.SizeBytes / (c.Assoc * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %s: set count %d not a power of two: %w", c.Name, sets, simerr.ErrConfig)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %s: line size %d not a power of two: %w", c.Name, c.LineBytes, simerr.ErrConfig)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement. It models
// only tags and timing; data flows through the flat Memory.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	setBits  uint // log2(sets), precomputed off the probe path
	setMask  uint64
	tags     []uint64 // sets*assoc entries
	valid    []bool
	lru      []uint8 // per-entry LRU stamp; lower = older
	fillAt   []int64 // cycle the line's fill completes (MSHR-style)

	Hits       uint64
	Misses     uint64
	FillStalls uint64 // hits that waited on an in-flight fill
}

// NewCache builds a cache from cfg. Invalid geometry is reported as an
// error wrapping simerr.ErrConfig rather than a panic, so misconfigured
// experiment points fail cleanly instead of sinking a whole sweep.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lb,
		setBits:  uint(log2(sets)),
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Assoc),
		valid:    make([]bool, sets*cfg.Assoc),
		lru:      make([]uint8, sets*cfg.Assoc),
		fillAt:   make([]int64, sets*cfg.Assoc),
	}, nil
}

// MustNewCache is NewCache, panicking on error (tests and known-valid
// defaults).
func MustNewCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access touches addr and reports whether it hit, ignoring fill timing.
// The line is installed (with an instant fill) on a miss.
func (c *Cache) Access(addr uint64) bool {
	hit, _ := c.Probe(addr, 0)
	if !hit {
		c.Install(addr, 0)
	}
	return hit
}

// Probe looks addr up at cycle now. It returns whether the line is
// present and, for a present line whose fill is still in flight, the
// remaining wait in cycles (MSHR-style secondary-miss behaviour). A miss
// does not install the line; callers follow up with Install.
func (c *Cache) Probe(addr uint64, now int64) (bool, int64) {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line >> c.setBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(base, w)
			c.Hits++
			if wait := c.fillAt[base+w] - now; wait > 0 {
				c.FillStalls++
				return true, wait
			}
			return true, 0
		}
	}
	c.Misses++
	return false, 0
}

// Install places addr's line in the cache with the given fill-completion
// cycle, evicting the LRU way if needed.
func (c *Cache) Install(addr uint64, fillDone int64) {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line >> c.setBits
	base := set * c.cfg.Assoc
	victim := 0
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.fillAt[base+victim] = fillDone
	c.touch(base, victim)
}

// touch makes way w the most recently used in its set.
func (c *Cache) touch(base, w int) {
	old := c.lru[base+w]
	if int(old) == c.cfg.Assoc-1 {
		// Already MRU: the demotion loop below would find nothing above
		// old, so skipping it is exact. Hits are overwhelmingly to the
		// MRU way, so this removes the per-hit way scan.
		return
	}
	for i := 0; i < c.cfg.Assoc; i++ {
		if c.lru[base+i] > old {
			c.lru[base+i]--
		}
	}
	c.lru[base+w] = uint8(c.cfg.Assoc - 1)
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
		c.fillAt[i] = 0
	}
	c.Hits, c.Misses, c.FillStalls = 0, 0, 0
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// TLBConfig describes a TLB.
type TLBConfig struct {
	Entries     int
	PageBytes   int
	MissPenalty int
}

// TLB is a fully-associative, LRU translation buffer. The simulator uses a
// flat address space, so the TLB contributes only timing.
type TLB struct {
	cfg      TLBConfig
	pageBits uint
	entries  []uint64
	valid    []bool
	stamp    []uint64
	clock    uint64
	lastHit  int // way of the most recent hit (fast path; -1 = none)

	Hits   uint64
	Misses uint64
}

// Validate checks the TLB configuration. Errors wrap simerr.ErrConfig.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("mem: tlb: nonpositive entry count %d: %w", c.Entries, simerr.ErrConfig)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("mem: tlb: page size %d not a positive power of two: %w", c.PageBytes, simerr.ErrConfig)
	}
	return nil
}

// NewTLB builds a TLB; invalid configurations are errors, not panics.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pb := uint(0)
	for 1<<pb < cfg.PageBytes {
		pb++
	}
	return &TLB{
		cfg:      cfg,
		pageBits: pb,
		entries:  make([]uint64, cfg.Entries),
		valid:    make([]bool, cfg.Entries),
		stamp:    make([]uint64, cfg.Entries),
		lastHit:  -1,
	}, nil
}

// MustNewTLB is NewTLB, panicking on error.
func MustNewTLB(cfg TLBConfig) *TLB {
	t, err := NewTLB(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Access touches the page of addr and reports a hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	t.clock++
	// Fast path: consecutive accesses overwhelmingly touch the page that
	// hit last time. Identical replacement state to the scan below — the
	// same entry gets the same LRU stamp — just without the scan.
	if h := t.lastHit; h >= 0 && t.valid[h] && t.entries[h] == page {
		t.stamp[h] = t.clock
		t.Hits++
		return true
	}
	for i := range t.entries {
		if t.valid[i] && t.entries[i] == page {
			t.stamp[i] = t.clock
			t.Hits++
			t.lastHit = i
			return true
		}
	}
	t.Misses++
	victim := 0
	for i := range t.entries {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.stamp[i] < t.stamp[victim] {
			victim = i
		}
	}
	t.entries[victim] = page
	t.valid[victim] = true
	t.stamp[victim] = t.clock
	return false
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Reset clears contents and statistics, as if freshly built.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = 0
		t.valid[i] = false
		t.stamp[i] = 0
	}
	t.clock = 0
	t.lastHit = -1
	t.Hits, t.Misses = 0, 0
}

// Hierarchy bundles the Table 1 memory system: split L1, unified L2, and
// TLBs. AccessData/AccessInst return the access latency in cycles.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
}

// HierarchyConfig configures NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 CacheConfig
	ITLB, DTLB   TLBConfig
}

// DefaultHierarchyConfig returns the paper's Table 1 memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, MissPenalty: 20, HitLatency: 1},
		L1D:  CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, MissPenalty: 20, HitLatency: 1},
		L2:   CacheConfig{Name: "L2", SizeBytes: 512 << 10, Assoc: 2, LineBytes: 64, MissPenalty: 80, HitLatency: 0},
		ITLB: TLBConfig{Entries: 64, PageBytes: 8 << 10, MissPenalty: 30},
		DTLB: TLBConfig{Entries: 64, PageBytes: 8 << 10, MissPenalty: 30},
	}
}

// Validate checks every level of the hierarchy configuration.
func (c HierarchyConfig) Validate() error {
	for _, cc := range []CacheConfig{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	return c.DTLB.Validate()
}

// NewHierarchy builds the hierarchy; the first invalid level is
// reported as an error wrapping simerr.ErrConfig.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	itlb, err := NewTLB(cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := NewTLB(cfg.DTLB)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, ITLB: itlb, DTLB: dtlb}, nil
}

// MustNewHierarchy is NewHierarchy, panicking on error (tests and the
// known-valid default configuration).
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Reset clears every level's contents and statistics. Geometry is fixed
// at construction, so a reset hierarchy is interchangeable with a newly
// built one; simulators reuse theirs across runs instead of reallocating
// ~100KB of tag arrays per run.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
}

// AccessData returns the latency, in cycles, of a data access to addr.
// Timing-unaware form of AccessDataAt.
func (h *Hierarchy) AccessData(addr uint64) int { return h.AccessDataAt(addr, 0) }

// AccessDataAt returns the latency, in cycles, of a data access issued at
// cycle now. Misses install lines with their fill-completion times, so
// subsequent accesses to an in-flight line wait for the fill rather than
// hitting for free (MSHR-style secondary-miss behaviour).
func (h *Hierarchy) AccessDataAt(addr uint64, now int64) int {
	lat := int64(h.L1D.Config().HitLatency)
	if !h.DTLB.Access(addr) {
		lat += int64(h.DTLB.Config().MissPenalty)
	}
	if hit, wait := h.L1D.Probe(addr, now); hit {
		return int(lat + wait)
	}
	fill := int64(h.L1D.Config().MissPenalty)
	l2Hit, l2Wait := h.L2.Probe(addr, now)
	if l2Hit {
		fill += l2Wait
	} else {
		fill += int64(h.L2.Config().MissPenalty)
		h.L2.Install(addr, now+fill)
	}
	h.L1D.Install(addr, now+fill)
	return int(lat + fill)
}

// AccessInst returns the latency, in cycles, of an instruction fetch from
// addr beyond the pipelined fetch (0 means "hit, no stall").
// Timing-unaware form of AccessInstAt.
func (h *Hierarchy) AccessInst(addr uint64) int { return h.AccessInstAt(addr, 0) }

// AccessInstAt is AccessInst with fill-time modelling at cycle now.
func (h *Hierarchy) AccessInstAt(addr uint64, now int64) int {
	lat := int64(0)
	if !h.ITLB.Access(addr) {
		lat += int64(h.ITLB.Config().MissPenalty)
	}
	if hit, wait := h.L1I.Probe(addr, now); hit {
		return int(lat + wait)
	}
	fill := int64(h.L1I.Config().MissPenalty)
	l2Hit, l2Wait := h.L2.Probe(addr, now)
	if l2Hit {
		fill += l2Wait
	} else {
		fill += int64(h.L2.Config().MissPenalty)
		h.L2.Install(addr, now+fill)
	}
	h.L1I.Install(addr, now+fill)
	return int(lat + fill)
}
