package mem

import (
	"fmt"

	"rvpsim/internal/simerr"
)

// This file implements checkpoint serialization for the memory system.
// Snapshot methods produce plain exported-field structs (gob/JSON
// friendly); Restore methods load them back into a freshly constructed
// object of the same configuration, validating geometry so a checkpoint
// taken under one config cannot be silently restored under another.
// Restore errors wrap simerr.ErrCorrupt.

// MemoryState is a deep copy of a sparse Memory image.
type MemoryState struct {
	Pages map[uint64][]uint64
}

// Snapshot returns a deep copy of the memory image.
func (m *Memory) Snapshot() MemoryState {
	s := MemoryState{Pages: make(map[uint64][]uint64, m.resident+len(m.shared))}
	m.forEachPage(func(pn uint64, page []uint64) {
		s.Pages[pn] = append([]uint64(nil), page...)
	})
	return s
}

// RestoreMemory rebuilds a Memory from a snapshot.
func RestoreMemory(s MemoryState) (*Memory, error) {
	m := NewMemory()
	for k, p := range s.Pages {
		if len(p) != pageWords {
			return nil, fmt.Errorf("mem: snapshot page %#x has %d words, want %d: %w",
				k, len(p), pageWords, simerr.ErrCorrupt)
		}
		copy(m.ensure(k), p)
	}
	return m, nil
}

// ForkMemory builds a copy-on-write Memory over a snapshot: reads are
// served from the snapshot's pages, and a page is copied into the fork
// only on its first write. N forks of one warmed image therefore share
// a single copy of every page none of them dirties, instead of each
// paying RestoreMemory's deep copy. The snapshot (map and pages) is
// never mutated, so any number of forks — on any goroutines — may share
// it; it must stay unmodified while forks are alive. Geometry is
// validated up front exactly like RestoreMemory.
func ForkMemory(s MemoryState) (*Memory, error) {
	for k, p := range s.Pages {
		if len(p) != pageWords {
			return nil, fmt.Errorf("mem: snapshot page %#x has %d words, want %d: %w",
				k, len(p), pageWords, simerr.ErrCorrupt)
		}
	}
	m := NewMemory()
	if len(s.Pages) > 0 {
		m.shared = s.Pages
	}
	return m, nil
}

// CacheState is the restorable state of one Cache: contents and
// statistics, but not geometry (geometry comes from the config the
// restored run is built with).
type CacheState struct {
	Tags   []uint64
	Valid  []bool
	LRU    []uint8
	FillAt []int64

	Hits       uint64
	Misses     uint64
	FillStalls uint64
}

// Snapshot captures the cache contents and statistics.
func (c *Cache) Snapshot() CacheState {
	return CacheState{
		Tags:       append([]uint64(nil), c.tags...),
		Valid:      append([]bool(nil), c.valid...),
		LRU:        append([]uint8(nil), c.lru...),
		FillAt:     append([]int64(nil), c.fillAt...),
		Hits:       c.Hits,
		Misses:     c.Misses,
		FillStalls: c.FillStalls,
	}
}

// Restore loads a snapshot into the cache. The snapshot must have been
// taken from a cache of identical geometry.
func (c *Cache) Restore(s CacheState) error {
	if len(s.Tags) != len(c.tags) || len(s.Valid) != len(c.valid) ||
		len(s.LRU) != len(c.lru) || len(s.FillAt) != len(c.fillAt) {
		return fmt.Errorf("mem: cache %s: snapshot geometry mismatch (%d entries, want %d): %w",
			c.cfg.Name, len(s.Tags), len(c.tags), simerr.ErrCorrupt)
	}
	copy(c.tags, s.Tags)
	copy(c.valid, s.Valid)
	copy(c.lru, s.LRU)
	copy(c.fillAt, s.FillAt)
	c.Hits, c.Misses, c.FillStalls = s.Hits, s.Misses, s.FillStalls
	return nil
}

// TLBState is the restorable state of a TLB.
type TLBState struct {
	Entries []uint64
	Valid   []bool
	Stamp   []uint64
	Clock   uint64

	Hits   uint64
	Misses uint64
}

// Snapshot captures the TLB contents and statistics.
func (t *TLB) Snapshot() TLBState {
	return TLBState{
		Entries: append([]uint64(nil), t.entries...),
		Valid:   append([]bool(nil), t.valid...),
		Stamp:   append([]uint64(nil), t.stamp...),
		Clock:   t.clock,
		Hits:    t.Hits,
		Misses:  t.Misses,
	}
}

// Restore loads a snapshot into the TLB.
func (t *TLB) Restore(s TLBState) error {
	if len(s.Entries) != len(t.entries) || len(s.Valid) != len(t.valid) || len(s.Stamp) != len(t.stamp) {
		return fmt.Errorf("mem: tlb: snapshot geometry mismatch (%d entries, want %d): %w",
			len(s.Entries), len(t.entries), simerr.ErrCorrupt)
	}
	copy(t.entries, s.Entries)
	copy(t.valid, s.Valid)
	copy(t.stamp, s.Stamp)
	t.clock = s.Clock
	t.Hits, t.Misses = s.Hits, s.Misses
	return nil
}

// HierarchyState is the restorable state of the full memory hierarchy.
type HierarchyState struct {
	L1I, L1D, L2 CacheState
	ITLB, DTLB   TLBState
}

// Snapshot captures every level of the hierarchy.
func (h *Hierarchy) Snapshot() HierarchyState {
	return HierarchyState{
		L1I:  h.L1I.Snapshot(),
		L1D:  h.L1D.Snapshot(),
		L2:   h.L2.Snapshot(),
		ITLB: h.ITLB.Snapshot(),
		DTLB: h.DTLB.Snapshot(),
	}
}

// Restore loads a snapshot into every level of the hierarchy.
func (h *Hierarchy) Restore(s HierarchyState) error {
	if err := h.L1I.Restore(s.L1I); err != nil {
		return err
	}
	if err := h.L1D.Restore(s.L1D); err != nil {
		return err
	}
	if err := h.L2.Restore(s.L2); err != nil {
		return err
	}
	if err := h.ITLB.Restore(s.ITLB); err != nil {
		return err
	}
	return h.DTLB.Restore(s.DTLB)
}
