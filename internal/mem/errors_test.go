package mem

import (
	"errors"
	"testing"

	"rvpsim/internal/simerr"
)

// TestConfigErrors checks every memory constructor rejects invalid
// geometry with an error wrapping simerr.ErrConfig instead of panicking.
func TestConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"cache zero size", func() error {
			_, err := NewCache(CacheConfig{Name: "x", SizeBytes: 0, Assoc: 1, LineBytes: 64})
			return err
		}},
		{"cache non-pow2 line", func() error {
			_, err := NewCache(CacheConfig{Name: "x", SizeBytes: 1152, Assoc: 1, LineBytes: 48})
			return err
		}},
		{"cache non-pow2 sets", func() error {
			_, err := NewCache(CacheConfig{Name: "x", SizeBytes: 3 * 64, Assoc: 1, LineBytes: 64})
			return err
		}},
		{"cache indivisible size", func() error {
			_, err := NewCache(CacheConfig{Name: "x", SizeBytes: 1000, Assoc: 3, LineBytes: 64})
			return err
		}},
		{"tlb zero entries", func() error {
			_, err := NewTLB(TLBConfig{Entries: 0, PageBytes: 8 << 10})
			return err
		}},
		{"tlb non-pow2 page", func() error {
			_, err := NewTLB(TLBConfig{Entries: 64, PageBytes: 3000})
			return err
		}},
		{"hierarchy bad level", func() error {
			cfg := DefaultHierarchyConfig()
			cfg.L1D.Assoc = 0
			_, err := NewHierarchy(cfg)
			return err
		}},
		{"hierarchy bad tlb", func() error {
			cfg := DefaultHierarchyConfig()
			cfg.DTLB.Entries = -1
			_, err := NewHierarchy(cfg)
			return err
		}},
	}
	for _, c := range cases {
		err := c.err()
		if err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
			continue
		}
		if !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", c.name, err)
		}
	}
}

// TestMustNewCachePanics checks the Must wrapper still panics for tests
// that want fail-fast construction.
func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCache accepted invalid geometry")
		}
	}()
	MustNewCache(CacheConfig{Name: "x", SizeBytes: -1, Assoc: 1, LineBytes: 64})
}
