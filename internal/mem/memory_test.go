package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.ReadWord(0x1000) != 0 {
		t.Error("unwritten memory not zero")
	}
	m.WriteWord(0x1000, 0xdeadbeef)
	if got := m.ReadWord(0x1000); got != 0xdeadbeef {
		t.Errorf("read = %#x", got)
	}
	// Unaligned address maps to the containing word.
	if got := m.ReadWord(0x1003); got != 0xdeadbeef {
		t.Errorf("unaligned read = %#x", got)
	}
	// Distant addresses are independent pages.
	m.WriteWord(1<<40, 7)
	if m.ReadWord(1<<40) != 7 || m.ReadWord(0x1000) != 0xdeadbeef {
		t.Error("pages interfere")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2", m.Footprint())
	}
}

func TestMemoryProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint64) bool {
		addr &^= 7
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.WriteWord(64, 1)
	c := m.Clone()
	c.WriteWord(64, 2)
	if m.ReadWord(64) != 1 || c.ReadWord(64) != 2 {
		t.Error("clone shares pages")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64, MissPenalty: 10, HitLatency: 1})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next-line access hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way, 8 sets of 64B lines: addresses 0, 512, 1024 map to set 0.
	c := MustNewCache(CacheConfig{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	c.Access(0)    // miss, installs A
	c.Access(512)  // miss, installs B
	c.Access(0)    // hit A; B becomes LRU
	c.Access(1024) // miss, evicts B
	if !c.Access(0) {
		t.Error("A evicted though it was MRU")
	}
	if c.Access(512) {
		t.Error("B hit though it should have been evicted")
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", SizeBytes: 0, Assoc: 1, LineBytes: 64},
		{Name: "b", SizeBytes: 1000, Assoc: 2, LineBytes: 64},       // not divisible
		{Name: "c", SizeBytes: 64 * 2 * 3, Assoc: 2, LineBytes: 64}, // 3 sets
		{Name: "d", SizeBytes: 960, Assoc: 1, LineBytes: 60},        // line not pow2
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s validated", cfg.Name)
		}
	}
	good := CacheConfig{Name: "g", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCacheReset(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("stats not reset")
	}
	if c.Access(0) {
		t.Error("contents not reset")
	}
}

func TestTLB(t *testing.T) {
	tl := MustNewTLB(TLBConfig{Entries: 2, PageBytes: 8192, MissPenalty: 30})
	if tl.Access(0) {
		t.Error("cold TLB hit")
	}
	if !tl.Access(4096) {
		t.Error("same-page access missed")
	}
	tl.Access(8192)  // second page
	tl.Access(0)     // keep page 0 recent
	tl.Access(16384) // third page: evicts page 1 (LRU)
	if !tl.Access(0) {
		t.Error("page 0 evicted though recently used")
	}
	if tl.Access(8192) {
		t.Error("page 1 still present")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	// Cold: TLB miss + L1 miss + L2 miss.
	lat := h.AccessDataAt(0x10000, 0)
	want := 1 + 30 + 20 + 80
	if lat != want {
		t.Errorf("cold latency = %d, want %d", lat, want)
	}
	// Hot (after the fill completed): hit latency only.
	if lat := h.AccessDataAt(0x10000, 1000); lat != 1 {
		t.Errorf("hot latency = %d, want 1", lat)
	}
	// Instruction side: cold then hot.
	if lat := h.AccessInstAt(0x20000, 0); lat != 30+20+80 {
		t.Errorf("cold ifetch latency = %d", lat)
	}
	if lat := h.AccessInstAt(0x20000, 1000); lat != 0 {
		t.Errorf("hot ifetch latency = %d, want 0", lat)
	}
}

func TestHierarchyL2SharedByIAndD(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.AccessDataAt(0x40000, 0) // warms L2 line
	lat := h.AccessInstAt(0x40000, 1000)
	// ITLB and L1I miss but L2 hits: 30 + 20.
	if lat != 50 {
		t.Errorf("latency = %d, want 50 (L2 should hit)", lat)
	}
}

func TestFillTimeSecondaryMiss(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	// Primary miss at cycle 1000: TLB(30) + L1 fill(20) + L2 fill(80).
	lat := h.AccessDataAt(0x50000, 1000)
	if lat != 1+30+20+80 {
		t.Fatalf("primary miss latency = %d", lat)
	}
	// Secondary access to the same line 10 cycles later waits for the
	// remaining fill, not the full penalty and not zero.
	lat2 := h.AccessDataAt(0x50008, 1010)
	want := 1 + (100 - 10)
	if lat2 != want {
		t.Errorf("secondary access latency = %d, want %d", lat2, want)
	}
	// After the fill completes, plain hits.
	if lat3 := h.AccessDataAt(0x50010, 2000); lat3 != 1 {
		t.Errorf("post-fill latency = %d, want 1", lat3)
	}
}
