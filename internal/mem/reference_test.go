package mem

import "testing"

type refRNG struct{ s uint64 }

func (r *refRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// refCache is a straightforward per-set LRU list used to cross-check the
// stamp-based implementation.
type refCache struct {
	sets      int
	assoc     int
	lineBytes uint64
	lines     [][]uint64 // per set, most recent first
}

func newRefCache(size, assoc, line int) *refCache {
	return &refCache{
		sets:      size / (assoc * line),
		assoc:     assoc,
		lineBytes: uint64(line),
		lines:     make([][]uint64, size/(assoc*line)),
	}
}

func (c *refCache) access(addr uint64) bool {
	line := addr / c.lineBytes
	set := int(line % uint64(c.sets))
	ls := c.lines[set]
	for i, l := range ls {
		if l == line {
			// Move to front.
			copy(ls[1:i+1], ls[:i])
			ls[0] = line
			return true
		}
	}
	ls = append([]uint64{line}, ls...)
	if len(ls) > c.assoc {
		ls = ls[:c.assoc]
	}
	c.lines[set] = ls
	return false
}

// TestCacheMatchesReferenceLRU drives random and strided access patterns
// through the cache and a reference model and requires identical
// hit/miss sequences.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	cfgs := []CacheConfig{
		{Name: "small", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64},
		{Name: "l1", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64},
		{Name: "direct", SizeBytes: 4 << 10, Assoc: 1, LineBytes: 64},
	}
	for _, cfg := range cfgs {
		c := MustNewCache(cfg)
		ref := newRefCache(cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
		rng := &refRNG{s: 99}
		for step := 0; step < 50000; step++ {
			var addr uint64
			switch step % 3 {
			case 0:
				addr = rng.next() % (1 << 16) // random within 64K
			case 1:
				addr = uint64(step) * 64 % (1 << 15) // stride
			default:
				addr = rng.next() % (1 << 12) // hot region
			}
			got := c.Access(addr)
			want := ref.access(addr)
			if got != want {
				t.Fatalf("%s: step %d addr %#x: hit=%v, reference %v", cfg.Name, step, addr, got, want)
			}
		}
	}
}

// TestFillStallCounting: secondary accesses during a fill are counted.
func TestFillStallCounting(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.AccessDataAt(0x80000, 100)  // primary miss
	h.AccessDataAt(0x80008, 110)  // secondary: same line, fill in flight
	h.AccessDataAt(0x80010, 5000) // fill long done
	if h.L1D.FillStalls != 1 {
		t.Errorf("FillStalls = %d, want 1", h.L1D.FillStalls)
	}
}
