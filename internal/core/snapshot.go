package core

import (
	"fmt"

	"rvpsim/internal/simerr"
)

// This file implements checkpoint serialization for every value
// predictor. Configuration (table sizing, hints, marked sets) is not
// serialized — it is deterministic from the experiment options and the
// profile, and the restoring side rebuilds the predictor through the
// same constructor before loading dynamic state into it.

// PredictorState is the serializable dynamic state of a Predictor. It is
// a closed set: each concrete type below corresponds to one predictor
// implementation and is registered with gob by internal/checkpoint.
type PredictorState interface {
	predictorState()
}

// Checkpointable is implemented by predictors that can round-trip their
// dynamic state through a checkpoint. All predictors in this package
// implement it; a custom Predictor that does not is simply ineligible
// for checkpoint/resume (the experiment runner checks at run time).
type Checkpointable interface {
	// SnapshotState captures the predictor's dynamic state.
	SnapshotState() PredictorState
	// RestoreState loads a state captured from a predictor built with
	// an identical configuration. A state of the wrong concrete type or
	// geometry is an error wrapping simerr.ErrCorrupt.
	RestoreState(PredictorState) error
}

// CounterTableState is the dynamic state of a CounterTable.
type CounterTableState struct {
	Ctr  []uint8
	Tags []int32

	Lookups   uint64
	Confirmed uint64
	Resets    uint64
	TagSteals uint64
}

// SnapshotState captures the table's counters, tags, and statistics.
func (t *CounterTable) SnapshotState() CounterTableState {
	return CounterTableState{
		Ctr:       append([]uint8(nil), t.ctr...),
		Tags:      append([]int32(nil), t.tags...),
		Lookups:   t.Lookups,
		Confirmed: t.Confirmed,
		Resets:    t.Resets,
		TagSteals: t.TagSteals,
	}
}

// RestoreState loads a state captured from an identically configured table.
func (t *CounterTable) RestoreState(s CounterTableState) error {
	if len(s.Ctr) != len(t.ctr) || len(s.Tags) != len(t.tags) {
		return fmt.Errorf("core: counter table state geometry mismatch: %w", simerr.ErrCorrupt)
	}
	copy(t.ctr, s.Ctr)
	copy(t.tags, s.Tags)
	t.Lookups, t.Confirmed, t.Resets, t.TagSteals = s.Lookups, s.Confirmed, s.Resets, s.TagSteals
	return nil
}

// canonU64 returns a canonical copy of a dense last-output slice: trailing
// zeros are trimmed so the serialized state is independent of how large a
// SizeHint the source predictor received (a restored-then-resnapshotted
// state is byte-identical to the original).
func canonU64(s []uint64) []uint64 {
	n := len(s)
	for n > 0 && s[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return append([]uint64(nil), s[:n]...)
}

// restoreU64 loads a canonical snapshot slice into dst, preserving dst's
// pre-sized length when it is already large enough.
func restoreU64(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		return append([]uint64(nil), src...)
	}
	copy(dst, src)
	for i := len(src); i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// wrongState builds the standard type-mismatch error.
func wrongState(who string, got PredictorState) error {
	return fmt.Errorf("core: %s: predictor state has wrong type %T: %w", who, got, simerr.ErrCorrupt)
}

// DynamicRVPState is the dynamic state of a DynamicRVP. LastOut is the
// dense per-static-instruction last-output array with trailing zeros
// trimmed (schema changed from a map at checkpoint Version 2).
type DynamicRVPState struct {
	Counters CounterTableState
	LastOut  []uint64
}

func (DynamicRVPState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *DynamicRVP) SnapshotState() PredictorState {
	return DynamicRVPState{Counters: p.counters.SnapshotState(), LastOut: canonU64(p.lastOut)}
}

// RestoreState implements Checkpointable.
func (p *DynamicRVP) RestoreState(s PredictorState) error {
	st, ok := s.(DynamicRVPState)
	if !ok {
		return wrongState(p.name, s)
	}
	if err := p.counters.RestoreState(st.Counters); err != nil {
		return err
	}
	p.lastOut = restoreU64(p.lastOut, st.LastOut)
	return nil
}

// StaticRVPState is the dynamic state of a StaticRVP. LastOut follows the
// same dense, trailing-zero-trimmed convention as DynamicRVPState.
type StaticRVPState struct {
	LastOut []uint64
}

func (StaticRVPState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *StaticRVP) SnapshotState() PredictorState {
	return StaticRVPState{LastOut: canonU64(p.lastOut)}
}

// RestoreState implements Checkpointable.
func (p *StaticRVP) RestoreState(s PredictorState) error {
	st, ok := s.(StaticRVPState)
	if !ok {
		return wrongState(p.name, s)
	}
	p.lastOut = restoreU64(p.lastOut, st.LastOut)
	return nil
}

// GabbayRVPState is the dynamic state of a GabbayRVP.
type GabbayRVPState struct {
	Counters CounterTableState
}

func (GabbayRVPState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *GabbayRVP) SnapshotState() PredictorState {
	return GabbayRVPState{Counters: p.counters.SnapshotState()}
}

// RestoreState implements Checkpointable.
func (p *GabbayRVP) RestoreState(s PredictorState) error {
	st, ok := s.(GabbayRVPState)
	if !ok {
		return wrongState(p.name, s)
	}
	return p.counters.RestoreState(st.Counters)
}

// NoPredictorState is the (empty) state of the no_predict baseline.
type NoPredictorState struct{}

func (NoPredictorState) predictorState() {}

// SnapshotState implements Checkpointable.
func (NoPredictor) SnapshotState() PredictorState { return NoPredictorState{} }

// RestoreState implements Checkpointable.
func (NoPredictor) RestoreState(s PredictorState) error {
	if _, ok := s.(NoPredictorState); !ok {
		return wrongState("no_predict", s)
	}
	return nil
}

// LVPState is the dynamic state of the last-value predictor.
type LVPState struct {
	Values []uint64
	Tags   []int32
	Ctr    []uint8

	Decides   uint64
	TagMisses uint64
	TagSteals uint64
}

func (LVPState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *LVP) SnapshotState() PredictorState {
	return LVPState{
		Values:    append([]uint64(nil), p.values...),
		Tags:      append([]int32(nil), p.tags...),
		Ctr:       append([]uint8(nil), p.ctr...),
		Decides:   p.Decides,
		TagMisses: p.TagMisses,
		TagSteals: p.TagSteals,
	}
}

// RestoreState implements Checkpointable.
func (p *LVP) RestoreState(s PredictorState) error {
	st, ok := s.(LVPState)
	if !ok {
		return wrongState(p.name, s)
	}
	if len(st.Values) != len(p.values) || len(st.Tags) != len(p.tags) || len(st.Ctr) != len(p.ctr) {
		return fmt.Errorf("core: %s: state geometry mismatch: %w", p.name, simerr.ErrCorrupt)
	}
	copy(p.values, st.Values)
	copy(p.tags, st.Tags)
	copy(p.ctr, st.Ctr)
	p.Decides, p.TagMisses, p.TagSteals = st.Decides, st.TagMisses, st.TagSteals
	return nil
}

// StrideState is the dynamic state of the stride predictor.
type StrideState struct {
	Tags   []int32
	Last   []uint64
	Stride []uint64
	Ctr    []uint8
}

func (StrideState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *StridePredictor) SnapshotState() PredictorState {
	return StrideState{
		Tags:   append([]int32(nil), p.tags...),
		Last:   append([]uint64(nil), p.last...),
		Stride: append([]uint64(nil), p.stride...),
		Ctr:    append([]uint8(nil), p.ctr...),
	}
}

// RestoreState implements Checkpointable.
func (p *StridePredictor) RestoreState(s PredictorState) error {
	st, ok := s.(StrideState)
	if !ok {
		return wrongState("stride", s)
	}
	if len(st.Tags) != len(p.tags) || len(st.Last) != len(p.last) ||
		len(st.Stride) != len(p.stride) || len(st.Ctr) != len(p.ctr) {
		return fmt.Errorf("core: stride: state geometry mismatch: %w", simerr.ErrCorrupt)
	}
	copy(p.tags, st.Tags)
	copy(p.last, st.Last)
	copy(p.stride, st.Stride)
	copy(p.ctr, st.Ctr)
	return nil
}

// ContextState is the dynamic state of the finite-context predictor.
type ContextState struct {
	Tags   []int32
	Hist   [][]uint64
	PatVal []uint64
	PatCtr []uint8
}

func (ContextState) predictorState() {}

// SnapshotState implements Checkpointable.
func (p *ContextPredictor) SnapshotState() PredictorState {
	hist := make([][]uint64, len(p.hist))
	for i, h := range p.hist {
		hist[i] = append([]uint64(nil), h...)
	}
	return ContextState{
		Tags:   append([]int32(nil), p.tags...),
		Hist:   hist,
		PatVal: append([]uint64(nil), p.patVal...),
		PatCtr: append([]uint8(nil), p.patCtr...),
	}
}

// RestoreState implements Checkpointable.
func (p *ContextPredictor) RestoreState(s PredictorState) error {
	st, ok := s.(ContextState)
	if !ok {
		return wrongState("context", s)
	}
	if len(st.Tags) != len(p.tags) || len(st.Hist) != len(p.hist) ||
		len(st.PatVal) != len(p.patVal) || len(st.PatCtr) != len(p.patCtr) {
		return fmt.Errorf("core: context: state geometry mismatch: %w", simerr.ErrCorrupt)
	}
	for i, h := range st.Hist {
		if len(h) != len(p.hist[i]) {
			return fmt.Errorf("core: context: history depth mismatch at %d: %w", i, simerr.ErrCorrupt)
		}
		copy(p.hist[i], h)
	}
	copy(p.tags, st.Tags)
	copy(p.patVal, st.PatVal)
	copy(p.patCtr, st.PatCtr)
	return nil
}

// AllPredictorStates enumerates one zero value of every concrete
// PredictorState so serialization layers (internal/checkpoint) can
// register the closed set without listing it themselves.
func AllPredictorStates() []PredictorState {
	return []PredictorState{
		DynamicRVPState{},
		StaticRVPState{},
		GabbayRVPState{},
		NoPredictorState{},
		LVPState{},
		StrideState{},
		ContextState{},
	}
}
