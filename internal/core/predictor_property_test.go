package core

import (
	"testing"

	"rvpsim/internal/isa"
)

// xorshift for the property drivers (deterministic, no math/rand state).
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

func (r *propRNG) intn(n int) int { return int(r.next() >> 33 % uint64(n)) }

// TestPredictorsNeverPredictIneligible drives every predictor with random
// instruction kinds and values and asserts structural invariants:
// ineligible instructions are never predicted, Decide is read-only (two
// calls agree), and Reset returns to the cold state.
func TestPredictorsNeverPredictIneligible(t *testing.T) {
	mk := []func() Predictor{
		func() Predictor { return MustDynamicRVP(DefaultCounterConfig()) },
		func() Predictor { return MustDynamicRVP(DefaultCounterConfig(), LoadsOnly()) },
		func() Predictor { return MustLVP(DefaultLVPConfig(), "lvp") },
		func() Predictor { return MustGabbayRVP(DefaultCounterConfig(), false) },
		func() Predictor { return MustStridePredictor(DefaultStrideConfig()) },
		func() Predictor { return MustContextPredictor(DefaultContextConfig()) },
		func() Predictor { return NewStaticRVP("s", map[int]bool{1: true, 5: true}, nil) },
	}
	ops := []isa.Op{isa.ADD, isa.LDQ, isa.STQ, isa.BEQ, isa.MUL, isa.LDT, isa.HALT, isa.NOP, isa.BR}
	for mi, make := range mk {
		p := make()
		rng := &propRNG{s: uint64(mi + 1)}
		for step := 0; step < 5000; step++ {
			idx := rng.intn(64)
			op := ops[rng.intn(len(ops))]
			in := isa.Inst{Op: op, Rd: isa.Reg(rng.intn(30)), Ra: isa.Reg(rng.intn(30))}
			d1 := p.Decide(idx, in)
			d2 := p.Decide(idx, in)
			if d1 != d2 {
				t.Fatalf("predictor %d: Decide not idempotent", mi)
			}
			if d1.Predict && !in.WritesReg() {
				t.Fatalf("predictor %d: predicted non-writing %v", mi, in)
			}
			if d1.Predict && isa.Classify(op) == isa.ClassBranch {
				t.Fatalf("predictor %d: predicted branch", mi)
			}
			val := rng.next() % 8 // small value space: reuse happens
			p.Commit(idx, in, d1.Value, val)
		}
		p.Reset()
		// After reset, dynamic predictors must be cold again (static RVP
		// keeps its marked set by design).
		if _, isStatic := p.(*StaticRVP); !isStatic {
			for idx := 0; idx < 64; idx++ {
				if p.Decide(idx, isa.Inst{Op: isa.LDQ, Rd: 3, Ra: 4}).Predict {
					t.Fatalf("predictor %d: predicts immediately after Reset", mi)
				}
			}
		}
	}
}

// TestCounterTableMatchesReference cross-checks the counter table against
// a simple reference model over random update streams.
func TestCounterTableMatchesReference(t *testing.T) {
	tab := MustCounterTable(CounterConfig{Entries: 8, Threshold: 5, Bits: 3})
	ref := make(map[int]uint8)
	rng := &propRNG{s: 42}
	for step := 0; step < 20000; step++ {
		pc := rng.intn(24) // aliases 3:1 onto 8 entries
		slot := pc & 7
		reuse := rng.intn(2) == 0
		if got, want := tab.Confident(pc), ref[slot] >= 5; got != want {
			t.Fatalf("step %d: Confident(%d) = %v, reference %v", step, pc, got, want)
		}
		tab.Update(pc, reuse)
		if reuse {
			if ref[slot] < 7 {
				ref[slot]++
			}
		} else {
			ref[slot] = 0
		}
	}
}

// TestLVPMatchesReference cross-checks the LVP table against a reference
// model with tags.
func TestLVPMatchesReference(t *testing.T) {
	cfg := LVPConfig{Entries: 8, Threshold: 3, Bits: 3, Tagged: true}
	p := MustLVP(cfg, "lvp")
	type entry struct {
		tag  int
		val  uint64
		ctr  uint8
		live bool
	}
	ref := make([]entry, 8)
	rng := &propRNG{s: 7}
	in := isa.Inst{Op: isa.LDQ, Rd: 3, Ra: 4}
	for step := 0; step < 20000; step++ {
		idx := rng.intn(24)
		slot := idx & 7
		d := p.Decide(idx, in)
		e := ref[slot]
		wantPredict := e.live && e.tag == idx && e.ctr >= 3
		if d.Predict != wantPredict {
			t.Fatalf("step %d: Predict = %v, reference %v", step, d.Predict, wantPredict)
		}
		if wantPredict && d.Value != e.val {
			t.Fatalf("step %d: value %d, reference %d", step, d.Value, e.val)
		}
		actual := rng.next() % 4
		p.Commit(idx, in, d.Value, actual)
		if e.live && e.tag == idx {
			if e.val == actual {
				if e.ctr < 7 {
					e.ctr++
				}
			} else {
				e.ctr = 0
			}
			e.val = actual
		} else {
			e = entry{tag: idx, val: actual, live: true}
		}
		ref[slot] = e
	}
}
