package core

import "testing"

func TestStridePredictorLearnsStride(t *testing.T) {
	p := MustStridePredictor(DefaultStrideConfig())
	in := ldq(3, 4)
	v := uint64(100)
	// Train on a stride of 8: install + stride detect + 7 confirmations.
	for i := 0; i < 10; i++ {
		p.Commit(5, in, 0, v)
		v += 8
	}
	d := p.Decide(5, in)
	if !d.Predict {
		t.Fatal("stride not learned")
	}
	if d.Value != v {
		t.Errorf("predicted %d, want %d", d.Value, v)
	}
	// A break in the stride resets confidence.
	p.Commit(5, in, 0, v+999)
	if p.Decide(5, in).Predict {
		t.Error("still predicting after stride break")
	}
}

func TestStridePredictorZeroStrideIsLastValue(t *testing.T) {
	p := MustStridePredictor(DefaultStrideConfig())
	in := ldq(3, 4)
	for i := 0; i < 9; i++ {
		p.Commit(5, in, 0, 42)
	}
	d := p.Decide(5, in)
	if !d.Predict || d.Value != 42 {
		t.Errorf("decision = %+v, want constant 42", d)
	}
}

func TestStridePredictorTagStealing(t *testing.T) {
	cfg := DefaultStrideConfig()
	cfg.Entries = 16
	p := MustStridePredictor(cfg)
	in := ldq(3, 4)
	for i := 0; i < 10; i++ {
		p.Commit(3, in, 0, uint64(i))
	}
	if !p.Decide(3, in).Predict {
		t.Fatal("owner not trained")
	}
	p.Commit(3+16, in, 0, 7) // alias steals the entry
	if p.Decide(3, in).Predict {
		t.Error("stolen entry still predicts for old owner")
	}
}

func TestContextPredictorLearnsAlternation(t *testing.T) {
	// Alternating values defeat last-value and stride predictors but are
	// an order-2 context pattern.
	p := MustContextPredictor(DefaultContextConfig())
	in := ldq(3, 4)
	vals := []uint64{10, 20}
	for i := 0; i < 60; i++ {
		v := vals[i%2]
		d := p.Decide(7, in)
		p.Commit(7, in, d.Value, v)
	}
	d := p.Decide(7, in)
	if !d.Predict {
		t.Fatal("context predictor did not learn alternation")
	}
	if d.Value != vals[0] && d.Value != vals[1] {
		t.Errorf("predicted %d, want one of %v", d.Value, vals)
	}
	// Check it actually predicts the NEXT value in the sequence: after an
	// even number of commits the next value is vals[0].
	if d.Value != vals[0] {
		t.Errorf("predicted %d, want %d (next in sequence)", d.Value, vals[0])
	}
}

func TestContextPredictorResets(t *testing.T) {
	p := MustContextPredictor(DefaultContextConfig())
	in := ldq(3, 4)
	for i := 0; i < 30; i++ {
		p.Commit(7, in, 0, 5)
	}
	if !p.Decide(7, in).Predict {
		t.Fatal("not trained")
	}
	p.Reset()
	if p.Decide(7, in).Predict {
		t.Error("Reset did not clear")
	}
}

func TestStorageCosts(t *testing.T) {
	// The paper's storage argument: RVP counters are a tiny fraction of
	// any buffer-based scheme.
	rvp := RVPStorageBits(DefaultCounterConfig())
	lvp := MustLVP(DefaultLVPConfig(), "lvp").StorageBits()
	stride := MustStridePredictor(DefaultStrideConfig()).StorageBits()
	ctx := MustContextPredictor(DefaultContextConfig()).StorageBits()
	if rvp != 1024*3 {
		t.Errorf("RVP storage = %d bits, want 3072", rvp)
	}
	if lvp < 20*rvp {
		t.Errorf("LVP storage %d not >> RVP %d", lvp, rvp)
	}
	if stride <= lvp {
		t.Errorf("stride storage %d not above LVP %d", stride, lvp)
	}
	if ctx <= stride {
		t.Errorf("context storage %d not above stride %d", ctx, stride)
	}
}

func TestExtraPredictorsImplementInterface(t *testing.T) {
	var _ Predictor = MustStridePredictor(DefaultStrideConfig())
	var _ Predictor = MustContextPredictor(DefaultContextConfig())
}
