package core

import (
	"errors"
	"testing"

	"rvpsim/internal/simerr"
)

// TestConstructorErrors checks every predictor constructor rejects an
// invalid configuration with a structured error wrapping ErrConfig.
func TestConstructorErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"counter table", func() error {
			_, err := NewCounterTable(CounterConfig{Entries: 100, Threshold: 7, Bits: 3})
			return err
		}},
		{"dynamic rvp", func() error {
			_, err := NewDynamicRVP(CounterConfig{Entries: 16, Threshold: 1, Bits: 0})
			return err
		}},
		{"gabbay rvp", func() error {
			_, err := NewGabbayRVP(CounterConfig{Entries: 64, Threshold: 9, Bits: 3}, false)
			return err
		}},
		{"lvp", func() error {
			_, err := NewLVP(LVPConfig{Entries: 3, Threshold: 7, Bits: 3}, "x")
			return err
		}},
		{"stride", func() error {
			_, err := NewStridePredictor(StrideConfig{Entries: 0, Threshold: 7, Bits: 3})
			return err
		}},
		{"context", func() error {
			cfg := DefaultContextConfig()
			cfg.HistDepth = 0
			_, err := NewContextPredictor(cfg)
			return err
		}},
	}
	for _, c := range cases {
		err := c.err()
		if err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
			continue
		}
		if !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", c.name, err)
		}
	}
}

// TestMustDynamicRVPPanics checks the Must wrapper panics on the same
// input the constructor rejects.
func TestMustDynamicRVPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDynamicRVP accepted invalid config")
		}
	}()
	MustDynamicRVP(CounterConfig{Entries: 100, Threshold: 7, Bits: 3})
}
