// Package core implements the paper's primary contribution: register value
// prediction (RVP) in its static and dynamic forms, together with the two
// baselines it is measured against — conventional last-value prediction
// (LVP) and the Gabbay & Mendelson register-file predictor.
//
// None of the RVP predictors store values. Dynamic RVP is a table of small
// resetting confidence counters indexed by instruction PC; the predicted
// value itself lives in the architectural register file (the previous
// value of the instruction's destination register). Compiler support is
// modelled through ReuseHints, which redirect an instruction's prediction
// source to a correlated dead/live register or to its own last value —
// exactly the transformations of Figure 2 in the paper.
package core

import (
	"fmt"

	"rvpsim/internal/isa"
	"rvpsim/internal/simerr"
)

// Kind says where a predicted value comes from.
type Kind uint8

// Prediction-source kinds.
const (
	// KindNone: no prediction.
	KindNone Kind = iota
	// KindSameReg: the prior value of the destination register.
	KindSameReg
	// KindOtherReg: the current value of a correlated register (the
	// compiler would have re-allocated so this became same-register).
	KindOtherReg
	// KindLastValue: the instruction's own previous result (the compiler
	// would have reserved the destination register across iterations).
	KindLastValue
	// KindBuffer: a value read from a hardware value table (LVP only).
	KindBuffer
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSameReg:
		return "same-reg"
	case KindOtherReg:
		return "other-reg"
	case KindLastValue:
		return "last-value"
	case KindBuffer:
		return "buffer"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ReuseHint is profile-derived compiler knowledge about one static
// instruction: which reuse pattern register re-allocation would expose.
type ReuseHint struct {
	Kind Kind
	Reg  isa.Reg // correlated register for KindOtherReg
}

// ReuseHints maps static instruction index to its hint. Instructions
// absent from the map use plain same-register reuse.
type ReuseHints map[int]ReuseHint

// Decision is a predictor's answer at rename time.
type Decision struct {
	Predict bool
	Kind    Kind
	Reg     isa.Reg // source register for KindSameReg/KindOtherReg
	Value   uint64  // predicted value for KindBuffer
}

// Predictor is the interface the pipeline drives. Decide is consulted
// when an instruction that writes a register is renamed; Commit is called
// for every such instruction, in program order, with the value the
// predictor would have predicted (resolved by the pipeline from the
// architectural state) and the actual result.
type Predictor interface {
	// Name identifies the configuration in reports.
	Name() string
	// Decide reports whether to predict the instruction at static index
	// idx and from which source.
	Decide(idx int, in isa.Inst) Decision
	// Commit trains the predictor. predicted is meaningful only when a
	// source existed (it is the value Decide's source would have
	// supplied, whether or not the instruction was actually predicted).
	Commit(idx int, in isa.Inst, predicted, actual uint64)
	// Reset clears all dynamic state.
	Reset()
}

// SizeHinter is implemented by predictors whose per-static-instruction
// state can be pre-sized. The pipeline calls SizeHint(len(prog.Insts))
// before simulation so the commit path never grows a slice; predictors
// remain correct (growing on demand) when the hint is never given.
// SizeHint is idempotent and monotonic: calling it again with a smaller
// n is a no-op.
type SizeHinter interface {
	SizeHint(n int)
}

// CounterConfig configures a table of 3-bit resetting confidence counters.
type CounterConfig struct {
	Entries   int   // table entries (power of two)
	Threshold uint8 // predict when counter >= Threshold (paper: 7)
	Bits      uint8 // counter width (paper: 3)
	Tagged    bool  // tag entries with the PC (paper: untagged for RVP)
}

// DefaultCounterConfig is the paper's 1K-entry, untagged, 3-bit resetting
// counter table with threshold 7.
func DefaultCounterConfig() CounterConfig {
	return CounterConfig{Entries: 1024, Threshold: 7, Bits: 3, Tagged: false}
}

// Validate checks the configuration. Errors wrap simerr.ErrConfig.
func (c CounterConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("core: counter entries %d not a power of two: %w", c.Entries, simerr.ErrConfig)
	}
	if c.Bits == 0 || c.Bits > 8 {
		return fmt.Errorf("core: counter bits %d out of range: %w", c.Bits, simerr.ErrConfig)
	}
	if c.Threshold > uint8(1<<c.Bits-1) {
		return fmt.Errorf("core: threshold %d exceeds counter max: %w", c.Threshold, simerr.ErrConfig)
	}
	return nil
}

// CounterTable is a direct-mapped table of resetting confidence counters.
// A resetting counter increments (saturating) on reuse and resets to zero
// on no-reuse, so confidence means "the last Threshold outcomes were all
// reuse" — the conservative filter the paper uses.
type CounterTable struct {
	cfg  CounterConfig
	max  uint8
	ctr  []uint8
	tags []int32

	// Statistics (cleared by Reset, published via PublishMetrics on the
	// predictors that embed a table).
	Lookups   uint64 // Confident consultations
	Confirmed uint64 // consultations that were at/above threshold
	Resets    uint64 // training updates that reset a counter (no reuse)
	TagSteals uint64 // tagged entries stolen by an aliasing PC
}

// NewCounterTable builds a counter table. Invalid configurations are
// reported as errors wrapping simerr.ErrConfig, not panics.
func NewCounterTable(cfg CounterConfig) (*CounterTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &CounterTable{cfg: cfg, max: uint8(1<<cfg.Bits - 1), ctr: make([]uint8, cfg.Entries)}
	if cfg.Tagged {
		t.tags = make([]int32, cfg.Entries)
		for i := range t.tags {
			t.tags[i] = -1
		}
	}
	return t, nil
}

// MustCounterTable is NewCounterTable, panicking on error (tests and
// known-valid defaults).
func MustCounterTable(cfg CounterConfig) *CounterTable {
	t, err := NewCounterTable(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *CounterTable) index(pc int) int { return pc & (t.cfg.Entries - 1) }

// Confident reports whether the counter for pc has reached the threshold.
// With tags enabled, a tag mismatch is never confident.
func (t *CounterTable) Confident(pc int) bool {
	t.Lookups++
	i := t.index(pc)
	if t.cfg.Tagged && t.tags[i] != int32(pc) {
		return false
	}
	if t.ctr[i] >= t.cfg.Threshold {
		t.Confirmed++
		return true
	}
	return false
}

// Update trains the counter for pc: reuse increments (saturating), no
// reuse resets to zero. With tags, a mismatching entry is stolen and the
// counter restarts.
func (t *CounterTable) Update(pc int, reuse bool) {
	i := t.index(pc)
	if t.cfg.Tagged && t.tags[i] != int32(pc) {
		t.TagSteals++
		t.tags[i] = int32(pc)
		t.ctr[i] = 0
		if reuse {
			t.ctr[i] = 1
		}
		return
	}
	if reuse {
		if t.ctr[i] < t.max {
			t.ctr[i]++
		}
	} else {
		if t.ctr[i] != 0 {
			t.Resets++
		}
		t.ctr[i] = 0
	}
}

// Reset clears the table and its statistics.
func (t *CounterTable) Reset() {
	for i := range t.ctr {
		t.ctr[i] = 0
	}
	for i := range t.tags {
		t.tags[i] = -1
	}
	t.Lookups, t.Confirmed, t.Resets, t.TagSteals = 0, 0, 0, 0
}

// Config returns the table configuration.
func (t *CounterTable) Config() CounterConfig { return t.cfg }
