package core

import (
	"testing"
	"testing/quick"

	"rvpsim/internal/isa"
)

func TestCounterTableResetting(t *testing.T) {
	tab := MustCounterTable(CounterConfig{Entries: 16, Threshold: 7, Bits: 3})
	pc := 5
	for i := 0; i < 6; i++ {
		tab.Update(pc, true)
		if tab.Confident(pc) {
			t.Fatalf("confident after %d reuses", i+1)
		}
	}
	tab.Update(pc, true)
	if !tab.Confident(pc) {
		t.Fatal("not confident after 7 consecutive reuses")
	}
	// Saturation: further reuse keeps it confident.
	tab.Update(pc, true)
	if !tab.Confident(pc) {
		t.Fatal("lost confidence while saturated")
	}
	// One miss resets completely.
	tab.Update(pc, false)
	if tab.Confident(pc) {
		t.Fatal("confident after reset")
	}
	tab.Update(pc, true)
	if tab.Confident(pc) {
		t.Fatal("resetting counter did not restart from zero")
	}
}

func TestCounterTableUntaggedInterference(t *testing.T) {
	// Two PCs aliasing to the same entry. Positive interference: both
	// exhibit reuse, so the shared counter stays confident for both —
	// the effect the paper exploits with untagged RVP counters.
	tab := MustCounterTable(CounterConfig{Entries: 16, Threshold: 7, Bits: 3})
	a, b := 3, 3+16
	for i := 0; i < 7; i++ {
		tab.Update(a, true)
		tab.Update(b, true)
	}
	if !tab.Confident(a) || !tab.Confident(b) {
		t.Fatal("positive interference not exploited")
	}
}

func TestCounterTableTagged(t *testing.T) {
	tab := MustCounterTable(CounterConfig{Entries: 16, Threshold: 7, Bits: 3, Tagged: true})
	a, b := 3, 3+16
	for i := 0; i < 8; i++ {
		tab.Update(a, true)
	}
	if !tab.Confident(a) {
		t.Fatal("tagged counter not confident for owner")
	}
	// Alias with a different PC: never confident, and stealing resets.
	if tab.Confident(b) {
		t.Fatal("tag mismatch reported confident")
	}
	tab.Update(b, true)
	if tab.Confident(b) || tab.Confident(a) {
		t.Fatal("stolen entry retained confidence")
	}
}

func TestCounterConfigValidate(t *testing.T) {
	bad := []CounterConfig{
		{Entries: 0, Threshold: 7, Bits: 3},
		{Entries: 100, Threshold: 7, Bits: 3},
		{Entries: 16, Threshold: 9, Bits: 3},
		{Entries: 16, Threshold: 1, Bits: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	if err := DefaultCounterConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// TestCounterNeverConfidentWithoutThresholdRun is a property test: after
// any sequence ending in a non-reuse, confidence requires at least
// Threshold consecutive subsequent reuses.
func TestCounterNeverConfidentWithoutThresholdRun(t *testing.T) {
	f := func(seq []bool) bool {
		tab := MustCounterTable(CounterConfig{Entries: 4, Threshold: 7, Bits: 3})
		run := 0
		for _, reuse := range seq {
			tab.Update(9, reuse)
			if reuse {
				run++
			} else {
				run = 0
			}
			if tab.Confident(9) != (run >= 7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func ldq(rd, ra isa.Reg) isa.Inst  { return isa.Inst{Op: isa.LDQ, Rd: rd, Ra: ra} }
func addi(rd, ra isa.Reg) isa.Inst { return isa.Inst{Op: isa.ADDI, Rd: rd, Ra: ra, Imm: 1} }

func TestDynamicRVPWarmupAndPredict(t *testing.T) {
	p := MustDynamicRVP(DefaultCounterConfig())
	in := ldq(3, 4)
	for i := 0; i < 7; i++ {
		if d := p.Decide(10, in); d.Predict {
			t.Fatalf("predicted before warm-up (iteration %d)", i)
		}
		p.Commit(10, in, 42, 42) // same-register reuse observed
	}
	d := p.Decide(10, in)
	if !d.Predict || d.Kind != KindSameReg || d.Reg != 3 {
		t.Fatalf("decision = %+v, want same-reg predict of r3", d)
	}
	// A wrong outcome resets confidence.
	p.Commit(10, in, 42, 43)
	if p.Decide(10, in).Predict {
		t.Fatal("still predicting after reset")
	}
}

func TestDynamicRVPLoadOnly(t *testing.T) {
	p := MustDynamicRVP(DefaultCounterConfig(), LoadsOnly())
	add := addi(3, 4)
	for i := 0; i < 10; i++ {
		p.Commit(11, add, 1, 1)
	}
	if p.Decide(11, add).Predict {
		t.Fatal("loads-only predictor predicted an add")
	}
	if p.Decide(11, add).Kind != KindNone {
		t.Fatal("ineligible instruction got a source kind")
	}
}

func TestDynamicRVPHints(t *testing.T) {
	hints := ReuseHints{
		20: {Kind: KindOtherReg, Reg: 9},
		21: {Kind: KindLastValue},
	}
	p := MustDynamicRVP(DefaultCounterConfig(), WithHints(hints))
	in := ldq(3, 4)
	d := p.Decide(20, in)
	if d.Kind != KindOtherReg || d.Reg != 9 {
		t.Fatalf("hinted decision = %+v", d)
	}
	// Last-value hint: Value tracks the previous result.
	p.Commit(21, in, 0, 77)
	d = p.Decide(21, in)
	if d.Kind != KindLastValue || d.Value != 77 {
		t.Fatalf("lv decision = %+v, want value 77", d)
	}
}

func TestDynamicRVPIgnoresNonWriters(t *testing.T) {
	p := MustDynamicRVP(DefaultCounterConfig())
	st := isa.Inst{Op: isa.STQ, Rd: 1, Ra: 2}
	if d := p.Decide(5, st); d.Predict || d.Kind != KindNone {
		t.Fatalf("store decision = %+v", d)
	}
	br := isa.Inst{Op: isa.BR, Rd: isa.RRA, Imm: 3}
	if d := p.Decide(6, br); d.Predict || d.Kind != KindNone {
		t.Fatalf("branch decision = %+v", d)
	}
}

func TestStaticRVPMarkedOnly(t *testing.T) {
	marked := map[int]bool{7: true}
	p := NewStaticRVP("srvp", marked, nil)
	in := ldq(3, 4)
	if !p.Decide(7, in).Predict {
		t.Fatal("marked load not predicted")
	}
	if p.Decide(8, in).Predict {
		t.Fatal("unmarked load predicted")
	}
	// Static prediction is unconditional: stays on even after misses.
	p.Commit(7, in, 1, 2)
	if !p.Decide(7, in).Predict {
		t.Fatal("static prediction disabled by a miss")
	}
}

func TestGabbayInterference(t *testing.T) {
	// Two instructions writing the same register share a counter: if one
	// has reuse and the other does not, neither gets predicted — the
	// interference the paper demonstrates against.
	p := MustGabbayRVP(DefaultCounterConfig(), false)
	a := ldq(3, 4)  // always reuses
	b := addi(3, 5) // never reuses
	for i := 0; i < 20; i++ {
		p.Commit(1, a, 9, 9)
		p.Commit(2, b, 1, 2)
	}
	if p.Decide(1, a).Predict {
		t.Fatal("register-indexed counter survived interference")
	}
	// Alone, the same training makes it confident.
	p2 := MustGabbayRVP(DefaultCounterConfig(), false)
	for i := 0; i < 8; i++ {
		p2.Commit(1, a, 9, 9)
	}
	if !p2.Decide(1, a).Predict {
		t.Fatal("register-indexed counter did not learn without interference")
	}
}

func TestLVPPredictsLastValue(t *testing.T) {
	p := MustLVP(DefaultLVPConfig(), "lvp")
	in := ldq(3, 4)
	// First commit installs the entry; seven consecutive hits follow.
	for i := 0; i < 8; i++ {
		p.Commit(30, in, 0, 1234)
	}
	d := p.Decide(30, in)
	if !d.Predict || d.Kind != KindBuffer || d.Value != 1234 {
		t.Fatalf("decision = %+v, want buffer value 1234", d)
	}
	// Value change resets the counter and updates the stored value.
	p.Commit(30, in, 0, 99)
	d = p.Decide(30, in)
	if d.Predict {
		t.Fatal("predicting right after value change")
	}
	if d.Value != 99 {
		t.Fatalf("stored value = %d, want 99", d.Value)
	}
}

func TestLVPTagStealing(t *testing.T) {
	cfg := DefaultLVPConfig()
	cfg.Entries = 16
	p := MustLVP(cfg, "lvp")
	a, b := 3, 3+16 // alias
	for i := 0; i < 8; i++ {
		p.Commit(a, ldq(1, 2), 0, 10)
	}
	if !p.Decide(a, ldq(1, 2)).Predict {
		t.Fatal("owner not confident")
	}
	// b steals the entry; a loses it.
	p.Commit(b, ldq(1, 2), 0, 20)
	if p.Decide(a, ldq(1, 2)).Predict {
		t.Fatal("a still predicts after entry stolen")
	}
	if p.Decide(b, ldq(1, 2)).Predict {
		t.Fatal("b confident immediately after stealing")
	}
}

func TestLVPStorageBits(t *testing.T) {
	p := MustLVP(DefaultLVPConfig(), "lvp")
	// 1K entries x (64 value + 3 counter + 20 tag) bits.
	want := 1024 * (64 + 3 + 20)
	if got := p.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestNoPredictor(t *testing.T) {
	var p NoPredictor
	if p.Name() != "no_predict" {
		t.Error("name wrong")
	}
	if d := p.Decide(1, ldq(1, 2)); d.Predict {
		t.Error("NoPredictor predicted")
	}
}

func TestPredictorsImplementInterface(t *testing.T) {
	var _ Predictor = MustDynamicRVP(DefaultCounterConfig())
	var _ Predictor = NewStaticRVP("s", nil, nil)
	var _ Predictor = MustGabbayRVP(DefaultCounterConfig(), true)
	var _ Predictor = MustLVP(DefaultLVPConfig(), "lvp")
	var _ Predictor = NoPredictor{}
}

func TestResets(t *testing.T) {
	d := MustDynamicRVP(DefaultCounterConfig())
	in := ldq(3, 4)
	for i := 0; i < 8; i++ {
		d.Commit(1, in, 5, 5)
	}
	if !d.Decide(1, in).Predict {
		t.Fatal("not trained")
	}
	d.Reset()
	if d.Decide(1, in).Predict {
		t.Fatal("Reset did not clear counters")
	}
	l := MustLVP(DefaultLVPConfig(), "lvp")
	for i := 0; i < 8; i++ {
		l.Commit(1, in, 5, 5)
	}
	l.Reset()
	if l.Decide(1, in).Predict {
		t.Fatal("LVP Reset did not clear state")
	}
}
