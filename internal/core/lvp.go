package core

import (
	"fmt"

	"rvpsim/internal/isa"
	"rvpsim/internal/simerr"
)

// LVPConfig configures the last-value prediction baseline.
type LVPConfig struct {
	Entries   int   // value table entries (paper: 1K)
	Threshold uint8 // resetting-counter confidence threshold (paper: 7)
	Bits      uint8 // counter width (paper: 3)
	Tagged    bool  // tag entries with the PC (paper: tagged; it helps LVP)
	LoadOnly  bool  // predict loads only
}

// DefaultLVPConfig is the paper's 1K-entry, tagged last-value table with
// 3-bit resetting counters and threshold 7.
func DefaultLVPConfig() LVPConfig {
	return LVPConfig{Entries: 1024, Threshold: 7, Bits: 3, Tagged: true}
}

// Validate checks the configuration. Errors wrap simerr.ErrConfig.
func (c LVPConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("core: lvp entries %d not a power of two: %w", c.Entries, simerr.ErrConfig)
	}
	if c.Bits == 0 || c.Bits > 8 || c.Threshold > uint8(1<<c.Bits-1) {
		return fmt.Errorf("core: lvp counter bits/threshold invalid: %w", simerr.ErrConfig)
	}
	return nil
}

// LVP is the buffer-based last-value predictor of Lipasti & Shen, sized
// per the paper's baseline: a direct-mapped table storing the last value
// each (tagged) instruction produced plus a resetting confidence counter.
// Unlike RVP it needs 8 bytes of value storage per entry plus tags.
type LVP struct {
	name   string
	cfg    LVPConfig
	max    uint8
	values []uint64
	tags   []int32
	ctr    []uint8

	elig []uint8 // per-static-instruction eligibility memo (SizeHint)

	// Statistics (cleared by Reset).
	Decides   uint64 // Decide consultations on eligible instructions
	TagMisses uint64 // consultations that missed on the tag
	TagSteals uint64 // entries stolen at training time
}

// NewLVP builds the predictor. Invalid configurations are reported as
// errors wrapping simerr.ErrConfig.
func NewLVP(cfg LVPConfig, name string) (*LVP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &LVP{
		name:   name,
		cfg:    cfg,
		max:    uint8(1<<cfg.Bits - 1),
		values: make([]uint64, cfg.Entries),
		ctr:    make([]uint8, cfg.Entries),
	}
	if cfg.Tagged {
		p.tags = make([]int32, cfg.Entries)
		for i := range p.tags {
			p.tags[i] = -1
		}
	}
	return p, nil
}

// MustLVP is NewLVP, panicking on error (tests and known-valid defaults).
func MustLVP(cfg LVPConfig, name string) *LVP {
	p, err := NewLVP(cfg, name)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *LVP) Name() string { return p.name }

func (p *LVP) index(pc int) int { return pc & (p.cfg.Entries - 1) }

// SizeHint implements SizeHinter: sizes the eligibility memo.
func (p *LVP) SizeHint(n int) {
	if n > 0 && len(p.elig) < n {
		p.elig = make([]uint8, n)
	}
}

func (p *LVP) eligibleSlow(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.cfg.LoadOnly {
		return isa.IsLoad(in.Op)
	}
	return isa.Classify(in.Op) != isa.ClassBranch
}

func (p *LVP) eligible(idx int, in isa.Inst) bool {
	if idx < len(p.elig) {
		switch p.elig[idx] {
		case eligYes:
			return true
		case eligNo:
			return false
		}
		ok := p.eligibleSlow(in)
		if ok {
			p.elig[idx] = eligYes
		} else {
			p.elig[idx] = eligNo
		}
		return ok
	}
	return p.eligibleSlow(in)
}

// Decide implements Predictor: predict the stored value when the entry
// matches (tagged) and the counter is confident.
func (p *LVP) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(idx, in) {
		return Decision{}
	}
	p.Decides++
	i := p.index(idx)
	if p.cfg.Tagged && p.tags[i] != int32(idx) {
		p.TagMisses++
		return Decision{Kind: KindBuffer}
	}
	d := Decision{Kind: KindBuffer, Value: p.values[i]}
	if p.ctr[i] >= p.cfg.Threshold {
		d.Predict = true
	}
	return d
}

// PredictedValue returns the value the table currently holds for idx (used
// by the pipeline to resolve KindBuffer predictions at rename time).
func (p *LVP) PredictedValue(idx int) uint64 { return p.values[p.index(idx)] }

// Commit implements Predictor: train with the committed value. The
// "predicted" argument is ignored — LVP's notion of reuse is its own
// stored value, which may differ from the rename-time snapshot when an
// intervening dynamic instance updated the entry.
func (p *LVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(idx, in) {
		return
	}
	i := p.index(idx)
	if p.cfg.Tagged && p.tags[i] != int32(idx) {
		// Steal the entry: new instruction, fresh history.
		p.TagSteals++
		p.tags[i] = int32(idx)
		p.values[i] = actual
		p.ctr[i] = 0
		return
	}
	if p.values[i] == actual {
		if p.ctr[i] < p.max {
			p.ctr[i]++
		}
	} else {
		p.ctr[i] = 0
	}
	p.values[i] = actual
}

// Reset implements Predictor.
func (p *LVP) Reset() {
	for i := range p.values {
		p.values[i] = 0
		p.ctr[i] = 0
	}
	for i := range p.tags {
		p.tags[i] = -1
	}
	for i := range p.elig {
		p.elig[i] = eligUnknown
	}
	p.Decides, p.TagMisses, p.TagSteals = 0, 0, 0
}

// Config returns the configuration.
func (p *LVP) Config() LVPConfig { return p.cfg }

// StorageBits reports the hardware storage the predictor needs, in bits —
// the cost the paper's RVP eliminates. Values are 64 bits per entry, tags
// (when present) are modelled at 20 bits, and the counter bits.
func (p *LVP) StorageBits() int {
	bits := p.cfg.Entries * (64 + int(p.cfg.Bits))
	if p.cfg.Tagged {
		bits += p.cfg.Entries * 20
	}
	return bits
}
