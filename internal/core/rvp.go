package core

import (
	"rvpsim/internal/isa"
)

// DynamicRVP is the paper's dynamic register value predictor: a table of
// small resetting confidence counters indexed by instruction PC and *no*
// value storage. An instruction whose counter is confident is predicted
// to produce the value already in its destination register (or, with
// compiler hints, in a correlated register / its own reserved register).
type DynamicRVP struct {
	name     string
	counters *CounterTable
	hints    ReuseHints
	loadOnly bool
	lastOut  map[int]uint64 // per-static-instruction last result (LV hints)
}

// DynamicRVPOption configures NewDynamicRVP.
type DynamicRVPOption func(*DynamicRVP)

// WithHints supplies profile-derived compiler re-allocation hints.
func WithHints(h ReuseHints) DynamicRVPOption {
	return func(p *DynamicRVP) { p.hints = h }
}

// LoadsOnly restricts prediction to load instructions.
func LoadsOnly() DynamicRVPOption {
	return func(p *DynamicRVP) { p.loadOnly = true }
}

// WithName overrides the report name.
func WithName(name string) DynamicRVPOption {
	return func(p *DynamicRVP) { p.name = name }
}

// NewDynamicRVP builds a dynamic RVP predictor with the given counter
// configuration. Invalid configurations are reported as errors wrapping
// simerr.ErrConfig.
func NewDynamicRVP(cfg CounterConfig, opts ...DynamicRVPOption) (*DynamicRVP, error) {
	t, err := NewCounterTable(cfg)
	if err != nil {
		return nil, err
	}
	p := &DynamicRVP{
		name:     "drvp",
		counters: t,
		lastOut:  make(map[int]uint64),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// MustDynamicRVP is NewDynamicRVP, panicking on error (tests and
// known-valid defaults).
func MustDynamicRVP(cfg CounterConfig, opts ...DynamicRVPOption) *DynamicRVP {
	p, err := NewDynamicRVP(cfg, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *DynamicRVP) Name() string { return p.name }

// eligible reports whether the predictor considers this instruction at all.
func (p *DynamicRVP) eligible(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.loadOnly {
		return isa.IsLoad(in.Op)
	}
	// Control transfers that write a link register are not usefully
	// predictable (their value is the PC); the paper predicts
	// register-writing computation and load instructions.
	if isa.Classify(in.Op) == isa.ClassBranch {
		return false
	}
	return true
}

// source returns the prediction source for the instruction.
func (p *DynamicRVP) source(idx int, in isa.Inst) (Kind, isa.Reg) {
	if h, ok := p.hints[idx]; ok {
		switch h.Kind {
		case KindOtherReg:
			return KindOtherReg, h.Reg
		case KindLastValue:
			return KindLastValue, in.Rd
		}
	}
	return KindSameReg, in.Rd
}

// Decide implements Predictor.
func (p *DynamicRVP) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(in) {
		return Decision{}
	}
	k, r := p.source(idx, in)
	d := Decision{Kind: k, Reg: r}
	if k == KindLastValue {
		d.Value = p.lastOut[idx]
	}
	d.Predict = p.counters.Confident(idx)
	return d
}

// Commit implements Predictor: reuse is "the source value equalled the
// result".
func (p *DynamicRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(in) {
		return
	}
	p.counters.Update(idx, predicted == actual)
	k, _ := p.source(idx, in)
	if k == KindLastValue {
		p.lastOut[idx] = actual
	}
}

// LastOut returns the instruction's previous result for KindLastValue
// sources (zero before the first execution).
func (p *DynamicRVP) LastOut(idx int) uint64 { return p.lastOut[idx] }

// Reset implements Predictor.
func (p *DynamicRVP) Reset() {
	p.counters.Reset()
	p.lastOut = make(map[int]uint64)
}

// StaticRVP models the paper's static scheme: the compiler marks
// profitable loads with rvp_load opcodes (or, equivalently here, supplies
// the marked set), and the hardware predicts every execution of a marked
// load with no confidence hardware at all.
type StaticRVP struct {
	name    string
	marked  map[int]bool
	hints   ReuseHints
	lastOut map[int]uint64
}

// NewStaticRVP builds a static RVP predictor from the marked-instruction
// set and reuse hints produced by the profiler.
func NewStaticRVP(name string, marked map[int]bool, hints ReuseHints) *StaticRVP {
	return &StaticRVP{name: name, marked: marked, hints: hints, lastOut: make(map[int]uint64)}
}

// Name implements Predictor.
func (p *StaticRVP) Name() string { return p.name }

// Decide implements Predictor. An instruction is predicted iff it is
// marked (static RVP applies to loads; the marked set contains loads).
// Control transfers are never predicted even if a stale mark aliases one.
func (p *StaticRVP) Decide(idx int, in isa.Inst) Decision {
	if !in.WritesReg() || !p.marked[idx] || isa.Classify(in.Op) == isa.ClassBranch {
		return Decision{}
	}
	d := Decision{Predict: true, Kind: KindSameReg, Reg: in.Rd}
	if h, ok := p.hints[idx]; ok {
		switch h.Kind {
		case KindOtherReg:
			d.Kind, d.Reg = KindOtherReg, h.Reg
		case KindLastValue:
			d.Kind = KindLastValue
			d.Value = p.lastOut[idx]
		}
	}
	return d
}

// Commit implements Predictor (static RVP has no counters; it only tracks
// last outputs for KindLastValue hints).
func (p *StaticRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if h, ok := p.hints[idx]; ok && h.Kind == KindLastValue {
		p.lastOut[idx] = actual
	}
}

// LastOut returns the instruction's previous result.
func (p *StaticRVP) LastOut(idx int) uint64 { return p.lastOut[idx] }

// Reset implements Predictor.
func (p *StaticRVP) Reset() { p.lastOut = make(map[int]uint64) }

// GabbayRVP is the Gabbay & Mendelson register-file predictor the paper
// compares against: confidence counters associated with *architectural
// registers* rather than instructions, so every instruction writing a
// register shares that register's counter — the interference the paper
// blames for its poor coverage.
type GabbayRVP struct {
	name     string
	cfg      CounterConfig
	counters *CounterTable
	loadOnly bool
}

// NewGabbayRVP builds the register-indexed predictor. Entries beyond the
// 64 architectural registers are unused; the counter parameters (bits,
// threshold) match cfg. Invalid parameters are reported as errors
// wrapping simerr.ErrConfig.
func NewGabbayRVP(cfg CounterConfig, loadOnly bool) (*GabbayRVP, error) {
	c := cfg
	c.Entries = 64
	c.Tagged = false
	t, err := NewCounterTable(c)
	if err != nil {
		return nil, err
	}
	return &GabbayRVP{name: "grp", cfg: c, counters: t, loadOnly: loadOnly}, nil
}

// MustGabbayRVP is NewGabbayRVP, panicking on error.
func MustGabbayRVP(cfg CounterConfig, loadOnly bool) *GabbayRVP {
	p, err := NewGabbayRVP(cfg, loadOnly)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *GabbayRVP) Name() string { return p.name }

func (p *GabbayRVP) eligible(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.loadOnly {
		return isa.IsLoad(in.Op)
	}
	return isa.Classify(in.Op) != isa.ClassBranch
}

// Decide implements Predictor: the counter is indexed by the destination
// register number.
func (p *GabbayRVP) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(in) {
		return Decision{}
	}
	d := Decision{Kind: KindSameReg, Reg: in.Rd}
	if p.counters.Confident(int(in.Rd)) {
		d.Predict = true
	}
	return d
}

// Commit implements Predictor.
func (p *GabbayRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(in) {
		return
	}
	p.counters.Update(int(in.Rd), predicted == actual)
}

// Reset implements Predictor.
func (p *GabbayRVP) Reset() { p.counters.Reset() }

// NoPredictor never predicts; it is the no_predict baseline.
type NoPredictor struct{}

// Name implements Predictor.
func (NoPredictor) Name() string { return "no_predict" }

// Decide implements Predictor.
func (NoPredictor) Decide(int, isa.Inst) Decision { return Decision{} }

// Commit implements Predictor.
func (NoPredictor) Commit(int, isa.Inst, uint64, uint64) {}

// Reset implements Predictor.
func (NoPredictor) Reset() {}
