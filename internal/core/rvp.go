package core

import (
	"rvpsim/internal/isa"
)

// Dense per-static-instruction state
//
// The predictors below are consulted once per committed instruction, so
// their per-static-instruction state (last outputs, reuse hints, marked
// sets, eligibility) is kept in flat slices indexed by static instruction
// index rather than maps. The slices are pre-sized by SizeHint (the
// pipeline calls it with len(prog.Insts) before simulation); until then
// the predictors grow the slices on demand, so they remain correct when
// driven without a hint. Eligibility — a pure function of the (immutable)
// instruction at each index — is memoized in a three-state byte array.

// Eligibility memo states.
const (
	eligUnknown uint8 = iota
	eligYes
	eligNo
)

// growU64 extends s with zeros to length n (no-op if already long enough).
func growU64(s []uint64, n int) []uint64 {
	if len(s) >= n {
		return s
	}
	return append(s, make([]uint64, n-len(s))...)
}

// denseHints expands a ReuseHints map into parallel kind/register arrays
// of length n. Indices absent from the map get KindNone (plain
// same-register reuse).
func denseHints(h ReuseHints, n int) ([]Kind, []isa.Reg) {
	k := make([]Kind, n)
	r := make([]isa.Reg, n)
	for i, hint := range h {
		if i >= 0 && i < n {
			k[i] = hint.Kind
			r[i] = hint.Reg
		}
	}
	return k, r
}

// DynamicRVP is the paper's dynamic register value predictor: a table of
// small resetting confidence counters indexed by instruction PC and *no*
// value storage. An instruction whose counter is confident is predicted
// to produce the value already in its destination register (or, with
// compiler hints, in a correlated register / its own reserved register).
type DynamicRVP struct {
	name     string
	counters *CounterTable
	hints    ReuseHints
	loadOnly bool
	lastOut  []uint64 // per-static-instruction last result (LV hints)

	// Dense fast-path state, built by SizeHint.
	hKind []Kind    // hint kind per index (KindNone = same-reg)
	hReg  []isa.Reg // correlated register for KindOtherReg hints
	elig  []uint8   // eligibility memo
}

// DynamicRVPOption configures NewDynamicRVP.
type DynamicRVPOption func(*DynamicRVP)

// WithHints supplies profile-derived compiler re-allocation hints.
func WithHints(h ReuseHints) DynamicRVPOption {
	return func(p *DynamicRVP) { p.hints = h }
}

// LoadsOnly restricts prediction to load instructions.
func LoadsOnly() DynamicRVPOption {
	return func(p *DynamicRVP) { p.loadOnly = true }
}

// WithName overrides the report name.
func WithName(name string) DynamicRVPOption {
	return func(p *DynamicRVP) { p.name = name }
}

// NewDynamicRVP builds a dynamic RVP predictor with the given counter
// configuration. Invalid configurations are reported as errors wrapping
// simerr.ErrConfig.
func NewDynamicRVP(cfg CounterConfig, opts ...DynamicRVPOption) (*DynamicRVP, error) {
	t, err := NewCounterTable(cfg)
	if err != nil {
		return nil, err
	}
	p := &DynamicRVP{
		name:     "drvp",
		counters: t,
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// MustDynamicRVP is NewDynamicRVP, panicking on error (tests and
// known-valid defaults).
func MustDynamicRVP(cfg CounterConfig, opts ...DynamicRVPOption) *DynamicRVP {
	p, err := NewDynamicRVP(cfg, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *DynamicRVP) Name() string { return p.name }

// SizeHint implements SizeHinter: pre-sizes every per-static-instruction
// slice to n so the commit path never allocates.
func (p *DynamicRVP) SizeHint(n int) {
	if n <= 0 {
		return
	}
	p.lastOut = growU64(p.lastOut, n)
	if len(p.hKind) < n {
		p.hKind, p.hReg = denseHints(p.hints, n)
	}
	if len(p.elig) < n {
		p.elig = make([]uint8, n)
	}
}

// eligibleSlow is the unmemoized eligibility predicate.
func (p *DynamicRVP) eligibleSlow(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.loadOnly {
		return isa.IsLoad(in.Op)
	}
	// Control transfers that write a link register are not usefully
	// predictable (their value is the PC); the paper predicts
	// register-writing computation and load instructions.
	return isa.Classify(in.Op) != isa.ClassBranch
}

// eligible reports whether the predictor considers this instruction at
// all, memoizing per static index once SizeHint has sized the memo.
func (p *DynamicRVP) eligible(idx int, in isa.Inst) bool {
	if idx < len(p.elig) {
		switch p.elig[idx] {
		case eligYes:
			return true
		case eligNo:
			return false
		}
		ok := p.eligibleSlow(in)
		if ok {
			p.elig[idx] = eligYes
		} else {
			p.elig[idx] = eligNo
		}
		return ok
	}
	return p.eligibleSlow(in)
}

// source returns the prediction source for the instruction.
func (p *DynamicRVP) source(idx int, in isa.Inst) (Kind, isa.Reg) {
	if idx < len(p.hKind) {
		switch p.hKind[idx] {
		case KindOtherReg:
			return KindOtherReg, p.hReg[idx]
		case KindLastValue:
			return KindLastValue, in.Rd
		}
		return KindSameReg, in.Rd
	}
	if h, ok := p.hints[idx]; ok {
		switch h.Kind {
		case KindOtherReg:
			return KindOtherReg, h.Reg
		case KindLastValue:
			return KindLastValue, in.Rd
		}
	}
	return KindSameReg, in.Rd
}

// Decide implements Predictor.
func (p *DynamicRVP) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(idx, in) {
		return Decision{}
	}
	k, r := p.source(idx, in)
	d := Decision{Kind: k, Reg: r}
	if k == KindLastValue {
		d.Value = p.LastOut(idx)
	}
	d.Predict = p.counters.Confident(idx)
	return d
}

// Commit implements Predictor: reuse is "the source value equalled the
// result".
func (p *DynamicRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(idx, in) {
		return
	}
	p.counters.Update(idx, predicted == actual)
	k, _ := p.source(idx, in)
	if k == KindLastValue {
		if idx >= len(p.lastOut) {
			p.lastOut = growU64(p.lastOut, idx+1)
		}
		p.lastOut[idx] = actual
	}
}

// LastOut returns the instruction's previous result for KindLastValue
// sources (zero before the first execution).
func (p *DynamicRVP) LastOut(idx int) uint64 {
	if idx < len(p.lastOut) {
		return p.lastOut[idx]
	}
	return 0
}

// Reset implements Predictor: all dynamic state is cleared in place so
// sweep cells that reuse a predictor do not churn the heap.
func (p *DynamicRVP) Reset() {
	p.counters.Reset()
	for i := range p.lastOut {
		p.lastOut[i] = 0
	}
	for i := range p.elig {
		p.elig[i] = eligUnknown
	}
}

// StaticRVP models the paper's static scheme: the compiler marks
// profitable loads with rvp_load opcodes (or, equivalently here, supplies
// the marked set), and the hardware predicts every execution of a marked
// load with no confidence hardware at all.
type StaticRVP struct {
	name    string
	marked  map[int]bool
	hints   ReuseHints
	lastOut []uint64

	// Dense fast-path state, built by SizeHint.
	markedD []bool
	hKind   []Kind
	hReg    []isa.Reg
	elig    []uint8
}

// NewStaticRVP builds a static RVP predictor from the marked-instruction
// set and reuse hints produced by the profiler.
func NewStaticRVP(name string, marked map[int]bool, hints ReuseHints) *StaticRVP {
	return &StaticRVP{name: name, marked: marked, hints: hints}
}

// Name implements Predictor.
func (p *StaticRVP) Name() string { return p.name }

// SizeHint implements SizeHinter.
func (p *StaticRVP) SizeHint(n int) {
	if n <= 0 {
		return
	}
	p.lastOut = growU64(p.lastOut, n)
	if len(p.markedD) < n {
		p.markedD = make([]bool, n)
		for i := range p.marked {
			if i >= 0 && i < n && p.marked[i] {
				p.markedD[i] = true
			}
		}
	}
	if len(p.hKind) < n {
		p.hKind, p.hReg = denseHints(p.hints, n)
	}
	if len(p.elig) < n {
		p.elig = make([]uint8, n)
	}
}

// eligible reports WritesReg && !branch, memoized per static index.
func (p *StaticRVP) eligible(idx int, in isa.Inst) bool {
	if idx < len(p.elig) {
		switch p.elig[idx] {
		case eligYes:
			return true
		case eligNo:
			return false
		}
		ok := in.WritesReg() && isa.Classify(in.Op) != isa.ClassBranch
		if ok {
			p.elig[idx] = eligYes
		} else {
			p.elig[idx] = eligNo
		}
		return ok
	}
	return in.WritesReg() && isa.Classify(in.Op) != isa.ClassBranch
}

// isMarked consults the dense marked set when built, the map otherwise.
func (p *StaticRVP) isMarked(idx int) bool {
	if idx < len(p.markedD) {
		return p.markedD[idx]
	}
	return p.marked[idx]
}

// hint returns the reuse hint kind (and register) for idx.
func (p *StaticRVP) hint(idx int) (Kind, isa.Reg) {
	if idx < len(p.hKind) {
		return p.hKind[idx], p.hReg[idx]
	}
	if h, ok := p.hints[idx]; ok {
		return h.Kind, h.Reg
	}
	return KindNone, 0
}

// Decide implements Predictor. An instruction is predicted iff it is
// marked (static RVP applies to loads; the marked set contains loads).
// Control transfers are never predicted even if a stale mark aliases one.
func (p *StaticRVP) Decide(idx int, in isa.Inst) Decision {
	if !p.isMarked(idx) || !p.eligible(idx, in) {
		return Decision{}
	}
	d := Decision{Predict: true, Kind: KindSameReg, Reg: in.Rd}
	switch k, r := p.hint(idx); k {
	case KindOtherReg:
		d.Kind, d.Reg = KindOtherReg, r
	case KindLastValue:
		d.Kind = KindLastValue
		d.Value = p.LastOut(idx)
	}
	return d
}

// Commit implements Predictor (static RVP has no counters; it only tracks
// last outputs for KindLastValue hints).
func (p *StaticRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if k, _ := p.hint(idx); k == KindLastValue {
		if idx >= len(p.lastOut) {
			p.lastOut = growU64(p.lastOut, idx+1)
		}
		p.lastOut[idx] = actual
	}
}

// LastOut returns the instruction's previous result.
func (p *StaticRVP) LastOut(idx int) uint64 {
	if idx < len(p.lastOut) {
		return p.lastOut[idx]
	}
	return 0
}

// Reset implements Predictor: clears dynamic state in place.
func (p *StaticRVP) Reset() {
	for i := range p.lastOut {
		p.lastOut[i] = 0
	}
	for i := range p.elig {
		p.elig[i] = eligUnknown
	}
}

// GabbayRVP is the Gabbay & Mendelson register-file predictor the paper
// compares against: confidence counters associated with *architectural
// registers* rather than instructions, so every instruction writing a
// register shares that register's counter — the interference the paper
// blames for its poor coverage.
type GabbayRVP struct {
	name     string
	cfg      CounterConfig
	counters *CounterTable
	loadOnly bool
	elig     []uint8
}

// NewGabbayRVP builds the register-indexed predictor. Entries beyond the
// 64 architectural registers are unused; the counter parameters (bits,
// threshold) match cfg. Invalid parameters are reported as errors
// wrapping simerr.ErrConfig.
func NewGabbayRVP(cfg CounterConfig, loadOnly bool) (*GabbayRVP, error) {
	c := cfg
	c.Entries = 64
	c.Tagged = false
	t, err := NewCounterTable(c)
	if err != nil {
		return nil, err
	}
	return &GabbayRVP{name: "grp", cfg: c, counters: t, loadOnly: loadOnly}, nil
}

// MustGabbayRVP is NewGabbayRVP, panicking on error.
func MustGabbayRVP(cfg CounterConfig, loadOnly bool) *GabbayRVP {
	p, err := NewGabbayRVP(cfg, loadOnly)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *GabbayRVP) Name() string { return p.name }

// SizeHint implements SizeHinter.
func (p *GabbayRVP) SizeHint(n int) {
	if n > 0 && len(p.elig) < n {
		p.elig = make([]uint8, n)
	}
}

func (p *GabbayRVP) eligibleSlow(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.loadOnly {
		return isa.IsLoad(in.Op)
	}
	return isa.Classify(in.Op) != isa.ClassBranch
}

func (p *GabbayRVP) eligible(idx int, in isa.Inst) bool {
	if idx < len(p.elig) {
		switch p.elig[idx] {
		case eligYes:
			return true
		case eligNo:
			return false
		}
		ok := p.eligibleSlow(in)
		if ok {
			p.elig[idx] = eligYes
		} else {
			p.elig[idx] = eligNo
		}
		return ok
	}
	return p.eligibleSlow(in)
}

// Decide implements Predictor: the counter is indexed by the destination
// register number.
func (p *GabbayRVP) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(idx, in) {
		return Decision{}
	}
	d := Decision{Kind: KindSameReg, Reg: in.Rd}
	if p.counters.Confident(int(in.Rd)) {
		d.Predict = true
	}
	return d
}

// Commit implements Predictor.
func (p *GabbayRVP) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(idx, in) {
		return
	}
	p.counters.Update(int(in.Rd), predicted == actual)
}

// Reset implements Predictor.
func (p *GabbayRVP) Reset() {
	p.counters.Reset()
	for i := range p.elig {
		p.elig[i] = eligUnknown
	}
}

// NoPredictor never predicts; it is the no_predict baseline.
type NoPredictor struct{}

// Name implements Predictor.
func (NoPredictor) Name() string { return "no_predict" }

// Decide implements Predictor.
func (NoPredictor) Decide(int, isa.Inst) Decision { return Decision{} }

// Commit implements Predictor.
func (NoPredictor) Commit(int, isa.Inst, uint64, uint64) {}

// Reset implements Predictor.
func (NoPredictor) Reset() {}
