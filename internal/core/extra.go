package core

import (
	"fmt"

	"rvpsim/internal/isa"
	"rvpsim/internal/simerr"
)

// This file implements the more sophisticated buffer-based predictors the
// paper positions RVP against (Section 2 / Section 7.1's "schemes that
// add additional storage and complexity to what is required for
// last-value prediction"): a stride predictor in the style of Gabbay &
// Mendelson, and a finite-context (two-level) predictor in the style of
// Sazeides & Smith. They exist as comparators and for the storage-cost
// ablation; the paper's headline comparison deliberately stops at LVP.

// StrideConfig configures the stride predictor.
type StrideConfig struct {
	Entries   int   // table entries (power of two)
	Threshold uint8 // resetting-counter confidence threshold
	Bits      uint8 // counter width
	LoadOnly  bool
}

// DefaultStrideConfig mirrors the LVP baseline's sizing.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{Entries: 1024, Threshold: 7, Bits: 3}
}

// StridePredictor predicts value + stride: it tracks each instruction's
// last value and the difference between its last two values, and
// predicts last + stride when the stride has been stable. Degenerates to
// last-value prediction when the stride is zero.
type StridePredictor struct {
	cfg    StrideConfig
	max    uint8
	tags   []int32
	last   []uint64
	stride []uint64
	ctr    []uint8
}

// Validate checks the configuration. Errors wrap simerr.ErrConfig.
func (c StrideConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("core: stride entries %d not a power of two: %w", c.Entries, simerr.ErrConfig)
	}
	if c.Bits == 0 || c.Bits > 8 || c.Threshold > uint8(1<<c.Bits-1) {
		return fmt.Errorf("core: stride counter bits/threshold invalid: %w", simerr.ErrConfig)
	}
	return nil
}

// NewStridePredictor builds the predictor. Invalid configurations are
// reported as errors wrapping simerr.ErrConfig.
func NewStridePredictor(cfg StrideConfig) (*StridePredictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &StridePredictor{
		cfg:    cfg,
		max:    uint8(1<<cfg.Bits - 1),
		tags:   make([]int32, cfg.Entries),
		last:   make([]uint64, cfg.Entries),
		stride: make([]uint64, cfg.Entries),
		ctr:    make([]uint8, cfg.Entries),
	}
	for i := range p.tags {
		p.tags[i] = -1
	}
	return p, nil
}

// MustStridePredictor is NewStridePredictor, panicking on error.
func MustStridePredictor(cfg StrideConfig) *StridePredictor {
	p, err := NewStridePredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *StridePredictor) Name() string { return "stride" }

func (p *StridePredictor) index(pc int) int { return pc & (p.cfg.Entries - 1) }

func (p *StridePredictor) eligible(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.cfg.LoadOnly {
		return isa.IsLoad(in.Op)
	}
	return isa.Classify(in.Op) != isa.ClassBranch
}

// Decide implements Predictor.
func (p *StridePredictor) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(in) {
		return Decision{}
	}
	i := p.index(idx)
	if p.tags[i] != int32(idx) {
		return Decision{Kind: KindBuffer}
	}
	d := Decision{Kind: KindBuffer, Value: p.last[i] + p.stride[i]}
	if p.ctr[i] >= p.cfg.Threshold {
		d.Predict = true
	}
	return d
}

// Commit implements Predictor.
func (p *StridePredictor) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(in) {
		return
	}
	i := p.index(idx)
	if p.tags[i] != int32(idx) {
		p.tags[i] = int32(idx)
		p.last[i] = actual
		p.stride[i] = 0
		p.ctr[i] = 0
		return
	}
	newStride := actual - p.last[i]
	if newStride == p.stride[i] {
		if p.ctr[i] < p.max {
			p.ctr[i]++
		}
	} else {
		p.ctr[i] = 0
		p.stride[i] = newStride
	}
	p.last[i] = actual
}

// Reset implements Predictor.
func (p *StridePredictor) Reset() {
	for i := range p.tags {
		p.tags[i] = -1
		p.last[i] = 0
		p.stride[i] = 0
		p.ctr[i] = 0
	}
}

// StorageBits reports the hardware storage the predictor needs: value +
// stride per entry, a 20-bit tag, and the counter.
func (p *StridePredictor) StorageBits() int {
	return p.cfg.Entries * (64 + 64 + 20 + int(p.cfg.Bits))
}

// ContextConfig configures the finite-context predictor.
type ContextConfig struct {
	Entries    int // first-level entries (power of two)
	HistDepth  int // values of history per entry (order)
	PatEntries int // second-level pattern table entries (power of two)
	Threshold  uint8
	Bits       uint8
	LoadOnly   bool
}

// DefaultContextConfig mirrors a modest order-2 FCM.
func DefaultContextConfig() ContextConfig {
	return ContextConfig{Entries: 1024, HistDepth: 2, PatEntries: 4096, Threshold: 7, Bits: 3}
}

// ContextPredictor is an order-N finite-context-method predictor: the
// first level records each instruction's last N values; their hash
// indexes a shared second-level table holding the predicted next value
// and a confidence counter. It captures repeating value *sequences* that
// defeat last-value and stride prediction, at a large storage cost.
type ContextPredictor struct {
	cfg  ContextConfig
	max  uint8
	tags []int32
	hist [][]uint64

	patVal []uint64
	patCtr []uint8
}

// Validate checks the configuration. Errors wrap simerr.ErrConfig.
func (c ContextConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 ||
		c.PatEntries <= 0 || c.PatEntries&(c.PatEntries-1) != 0 {
		return fmt.Errorf("core: context predictor sizes must be powers of two: %w", simerr.ErrConfig)
	}
	if c.HistDepth < 1 {
		return fmt.Errorf("core: context predictor needs history depth >= 1: %w", simerr.ErrConfig)
	}
	if c.Bits == 0 || c.Bits > 8 || c.Threshold > uint8(1<<c.Bits-1) {
		return fmt.Errorf("core: context counter bits/threshold invalid: %w", simerr.ErrConfig)
	}
	return nil
}

// NewContextPredictor builds the predictor. Invalid configurations are
// reported as errors wrapping simerr.ErrConfig.
func NewContextPredictor(cfg ContextConfig) (*ContextPredictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &ContextPredictor{
		cfg:    cfg,
		max:    uint8(1<<cfg.Bits - 1),
		tags:   make([]int32, cfg.Entries),
		hist:   make([][]uint64, cfg.Entries),
		patVal: make([]uint64, cfg.PatEntries),
		patCtr: make([]uint8, cfg.PatEntries),
	}
	for i := range p.tags {
		p.tags[i] = -1
		p.hist[i] = make([]uint64, cfg.HistDepth)
	}
	return p, nil
}

// MustContextPredictor is NewContextPredictor, panicking on error.
func MustContextPredictor(cfg ContextConfig) *ContextPredictor {
	p, err := NewContextPredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Predictor.
func (p *ContextPredictor) Name() string { return "context" }

func (p *ContextPredictor) index(pc int) int { return pc & (p.cfg.Entries - 1) }

func (p *ContextPredictor) hash(idx int) int {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range p.hist[p.index(idx)] {
		h ^= v
		h *= 0x100000001b3
	}
	h ^= uint64(idx)
	return int(h>>17) & (p.cfg.PatEntries - 1)
}

func (p *ContextPredictor) eligible(in isa.Inst) bool {
	if !in.WritesReg() {
		return false
	}
	if p.cfg.LoadOnly {
		return isa.IsLoad(in.Op)
	}
	return isa.Classify(in.Op) != isa.ClassBranch
}

// Decide implements Predictor.
func (p *ContextPredictor) Decide(idx int, in isa.Inst) Decision {
	if !p.eligible(in) {
		return Decision{}
	}
	if p.tags[p.index(idx)] != int32(idx) {
		return Decision{Kind: KindBuffer}
	}
	pi := p.hash(idx)
	d := Decision{Kind: KindBuffer, Value: p.patVal[pi]}
	if p.patCtr[pi] >= p.cfg.Threshold {
		d.Predict = true
	}
	return d
}

// Commit implements Predictor.
func (p *ContextPredictor) Commit(idx int, in isa.Inst, predicted, actual uint64) {
	if !p.eligible(in) {
		return
	}
	i := p.index(idx)
	if p.tags[i] == int32(idx) {
		pi := p.hash(idx)
		if p.patVal[pi] == actual {
			if p.patCtr[pi] < p.max {
				p.patCtr[pi]++
			}
		} else {
			p.patVal[pi] = actual
			p.patCtr[pi] = 0
		}
	} else {
		p.tags[i] = int32(idx)
		for k := range p.hist[i] {
			p.hist[i][k] = 0
		}
	}
	// Shift the new value into the history.
	h := p.hist[i]
	copy(h, h[1:])
	h[len(h)-1] = actual
}

// Reset implements Predictor.
func (p *ContextPredictor) Reset() {
	for i := range p.tags {
		p.tags[i] = -1
		for k := range p.hist[i] {
			p.hist[i][k] = 0
		}
	}
	for i := range p.patVal {
		p.patVal[i] = 0
		p.patCtr[i] = 0
	}
}

// StorageBits reports the (large) hardware cost: per-entry history and
// tag at the first level, value + counter at the second.
func (p *ContextPredictor) StorageBits() int {
	l1 := p.cfg.Entries * (64*p.cfg.HistDepth + 20)
	l2 := p.cfg.PatEntries * (64 + int(p.cfg.Bits))
	return l1 + l2
}

// RVPStorageBits reports dynamic RVP's total hardware cost for a counter
// configuration — just the counters (plus tags when configured), no
// values. This is the asymmetry the paper's title is about.
func RVPStorageBits(cfg CounterConfig) int {
	bits := cfg.Entries * int(cfg.Bits)
	if cfg.Tagged {
		bits += cfg.Entries * 20
	}
	return bits
}
