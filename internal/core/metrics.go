package core

import "rvpsim/internal/obs"

// publishTable folds a confidence-counter table's statistics into the
// registry under the given metric prefix.
func publishTable(reg *obs.Registry, prefix string, t *CounterTable) {
	reg.Counter(prefix+"_lookups_total", "confidence-table consultations").Add(int64(t.Lookups))
	reg.Counter(prefix+"_confident_total", "consultations at or above threshold").Add(int64(t.Confirmed))
	reg.Counter(prefix+"_resets_total", "training updates that reset a counter").Add(int64(t.Resets))
	if t.cfg.Tagged {
		reg.Counter(prefix+"_tag_steals_total", "tagged entries stolen by aliasing PCs").Add(int64(t.TagSteals))
	}
}

// PublishMetrics implements obs.Publisher: dynamic RVP's confidence
// table statistics. Predictor state is Reset at the start of each run,
// so one publish at the end of a run adds that run's totals.
func (p *DynamicRVP) PublishMetrics(reg *obs.Registry) {
	publishTable(reg, "rvpsim_drvp_table", p.counters)
	reg.Counter("rvpsim_drvp_hinted_total", "static instructions with compiler reuse hints").Add(int64(len(p.hints)))
}

// PublishMetrics implements obs.Publisher for the Gabbay & Mendelson
// register-indexed predictor.
func (p *GabbayRVP) PublishMetrics(reg *obs.Registry) {
	publishTable(reg, "rvpsim_grp_table", p.counters)
}

// PublishMetrics implements obs.Publisher for the LVP baseline.
func (p *LVP) PublishMetrics(reg *obs.Registry) {
	reg.Counter("rvpsim_lvp_decides_total", "LVP consultations on eligible instructions").Add(int64(p.Decides))
	reg.Counter("rvpsim_lvp_tag_misses_total", "LVP consultations that missed on the tag").Add(int64(p.TagMisses))
	reg.Counter("rvpsim_lvp_tag_steals_total", "LVP entries stolen at training time").Add(int64(p.TagSteals))
}
