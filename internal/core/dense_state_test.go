package core

import (
	"encoding/json"
	"testing"

	"rvpsim/internal/isa"
)

// The dense per-static-instruction state (lastOut slices, eligibility
// memos) is an internal layout choice and must stay invisible to
// checkpoints: a predictor pre-sized with SizeHint and one growing on
// demand must serialize byte-identically after the same history, and a
// snapshot must restore into either shape. These tests pin that down
// for every SizeHinter predictor.

// densePairs builds two identically configured instances per predictor;
// callers hint one and leave the other to grow on demand.
func densePairs() map[string][2]Predictor {
	return map[string][2]Predictor{
		"dynamic": {
			MustDynamicRVP(DefaultCounterConfig()),
			MustDynamicRVP(DefaultCounterConfig()),
		},
		"dynamic-loads": {
			MustDynamicRVP(DefaultCounterConfig(), LoadsOnly()),
			MustDynamicRVP(DefaultCounterConfig(), LoadsOnly()),
		},
		"static": {
			NewStaticRVP("s", map[int]bool{1: true, 5: true, 40: true}, nil),
			NewStaticRVP("s", map[int]bool{1: true, 5: true, 40: true}, nil),
		},
		"lvp": {
			MustLVP(DefaultLVPConfig(), "lvp"),
			MustLVP(DefaultLVPConfig(), "lvp"),
		},
		"gabbay": {
			MustGabbayRVP(DefaultCounterConfig(), false),
			MustGabbayRVP(DefaultCounterConfig(), false),
		},
	}
}

// driveLockstep feeds both predictors the same pseudo-random history,
// failing on any Decide divergence along the way. Like a real program
// (and like the pipeline that hosts these predictors), each static
// index maps to one fixed instruction — the eligibility memo depends on
// that invariant — while execution order and values are random.
func driveLockstep(t *testing.T, name string, a, b Predictor, seed uint64, steps int) {
	t.Helper()
	ops := []isa.Op{isa.ADD, isa.LDQ, isa.STQ, isa.MUL, isa.LDT, isa.NOP}
	rng := &propRNG{s: seed}
	prog := make([]isa.Inst, 64)
	for i := range prog {
		prog[i] = isa.Inst{Op: ops[rng.intn(len(ops))], Rd: isa.Reg(rng.intn(30)), Ra: isa.Reg(rng.intn(30))}
	}
	for step := 0; step < steps; step++ {
		idx := rng.intn(len(prog))
		in := prog[idx]
		da, db := a.Decide(idx, in), b.Decide(idx, in)
		if da != db {
			t.Fatalf("%s: step %d: Decide diverged: %+v vs %+v", name, step, da, db)
		}
		val := rng.next() % 8
		a.Commit(idx, in, da.Value, val)
		b.Commit(idx, in, db.Value, val)
	}
}

func snapshotJSON(t *testing.T, p Predictor) []byte {
	t.Helper()
	data, err := json.Marshal(p.(Checkpointable).SnapshotState())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotCanonicalAcrossSizeHint: pre-sizing dense state must not
// leak into the serialized snapshot (trailing zeros are trimmed), so a
// hinted and an unhinted predictor with the same history snapshot
// identically.
func TestSnapshotCanonicalAcrossSizeHint(t *testing.T) {
	for name, pair := range densePairs() {
		hinted, bare := pair[0], pair[1]
		hinted.(SizeHinter).SizeHint(256)
		driveLockstep(t, name, hinted, bare, 42, 4000)
		sa, sb := snapshotJSON(t, hinted), snapshotJSON(t, bare)
		if string(sa) != string(sb) {
			t.Errorf("%s: snapshot depends on SizeHint:\nhinted: %s\nbare:   %s", name, sa, sb)
		}
	}
}

// TestRestoreAcrossSizeHint: a snapshot taken from an on-demand-grown
// predictor must restore into a pre-sized one (and vice versa) with
// identical subsequent behavior and identical re-snapshots.
func TestRestoreAcrossSizeHint(t *testing.T) {
	for name, pair := range densePairs() {
		src, cold := pair[0], pair[1]
		// Build history on the unhinted source.
		driveLockstep(t, name, src, src, 7, 2000) // a==b: just drives it
		snap := src.(Checkpointable).SnapshotState()
		// Restore into a generously pre-sized twin.
		cold.(SizeHinter).SizeHint(512)
		if err := cold.(Checkpointable).RestoreState(snap); err != nil {
			t.Fatalf("%s: restore into pre-sized predictor: %v", name, err)
		}
		if sa, sb := snapshotJSON(t, src), snapshotJSON(t, cold); string(sa) != string(sb) {
			t.Fatalf("%s: re-snapshot differs after restore:\nsrc:      %s\nrestored: %s", name, sa, sb)
		}
		// Post-restore behavior must track the original exactly.
		driveLockstep(t, name, src, cold, 99, 2000)
	}
}
