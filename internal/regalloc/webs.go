package regalloc

import (
	"math/bits"

	"rvpsim/internal/isa"
	"rvpsim/internal/program"
)

// Web is one allocation unit: a maximal set of definitions of a register
// connected through shared uses (a du-web). Webs of convention registers,
// webs reaching back to procedure entry, and webs containing call-side
// synthetic definitions are pinned: they keep their architectural name.
type Web struct {
	ID     int
	Reg    isa.Reg
	Pinned bool
	Defs   []int // instruction indices of explicit defs (synthetic: -1)
}

// defRecord is one definition point.
type defRecord struct {
	inst  int // instruction index; -1 for entry/synthetic
	reg   isa.Reg
	synth bool // entry or call-clobber definition
}

type useKey struct {
	inst int
	reg  isa.Reg
}

// webInfo is the result of web construction for one procedure.
type webInfo struct {
	webs     []*Web
	webOfDef []int          // def id -> web id
	defIDAt  map[useKey]int // (inst, reg) -> explicit def id
	useWebAt map[useKey]int // (inst, reg) -> web id of the use
	adj      [][]bool       // web interference matrix
}

// bitset over def ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}
func (b bitset) copyFrom(o bitset) { copy(b, o) }
func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			f(i)
			word &= word - 1
		}
	}
}

// dfUnion is a union-find over def ids.
type dfUnion []int

func (u dfUnion) find(x int) int {
	for u[x] != x {
		u[x] = u[u[x]]
		x = u[x]
	}
	return x
}

func (u dfUnion) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[rb] = ra
	}
}

// convUses returns extra convention-implied source registers (beyond
// Inst.Sources) for instruction in.
func convUses(in isa.Inst) []isa.Reg {
	switch in.Op {
	case isa.JSR:
		out := append([]isa.Reg(nil), program.ArgRegs...)
		return append(out, program.FPArgRegs...)
	case isa.RET, isa.HALT:
		out := []isa.Reg{isa.RV}
		out = append(out, program.NonvolatileRegs...)
		return append(out, program.FPNonvolatileRegs...)
	}
	return nil
}

// callClobbers returns the volatile registers a call synthetically
// defines.
func callClobbers() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if !r.IsZero() && !pinnedNonvolatile(r) {
			out = append(out, r)
		}
	}
	return out
}

func pinnedNonvolatile(r isa.Reg) bool {
	for _, n := range program.NonvolatileRegs {
		if r == n {
			return true
		}
	}
	for _, n := range program.FPNonvolatileRegs {
		if r == n {
			return true
		}
	}
	return false
}

// buildWebs performs reaching-definitions analysis over the procedure,
// merges definitions that share uses into webs, and constructs the web
// interference graph (def-point vs live-web, Chaitin style).
func buildWebs(prog *program.Program, proc *program.Procedure, g *program.CFG, live *program.Liveness) *webInfo {
	// --- Enumerate definitions.
	var defs []defRecord
	defIDAt := map[useKey]int{}
	addDef := func(d defRecord) int {
		defs = append(defs, d)
		id := len(defs) - 1
		if !d.synth {
			defIDAt[useKey{d.inst, d.reg}] = id
		}
		return id
	}
	entryDef := map[isa.Reg]int{}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r.IsZero() {
			continue
		}
		entryDef[r] = addDef(defRecord{inst: -1, reg: r, synth: true})
	}
	// Per-instruction definition lists (explicit first, then clobbers).
	instDefs := make([][]int, proc.End-proc.Start)
	clobbers := callClobbers()
	for i := proc.Start; i < proc.End; i++ {
		in := prog.Insts[i]
		var ids []int
		if d, ok := in.Dest(); ok {
			ids = append(ids, addDef(defRecord{inst: i, reg: d}))
		}
		if in.Op == isa.JSR {
			dd, hasDest := in.Dest()
			for _, r := range clobbers {
				if hasDest && r == dd {
					continue
				}
				ids = append(ids, addDef(defRecord{inst: i, reg: r, synth: true}))
			}
		}
		instDefs[i-proc.Start] = ids
	}
	nd := len(defs)

	// --- Reaching definitions (per-register def sets), block level.
	nb := len(g.Blocks)
	type state []bitset // indexed by register
	newState := func() state {
		s := make(state, isa.NumRegs)
		for r := range s {
			s[r] = newBitset(nd)
		}
		return s
	}
	ins := make([]state, nb)
	outs := make([]state, nb)
	for b := 0; b < nb; b++ {
		ins[b] = newState()
		outs[b] = newState()
	}
	// Entry block starts with the entry definitions.
	for r, id := range entryDef {
		ins[0][r].set(id)
	}
	applyBlock := func(b int, st state) {
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			for _, id := range instDefs[i-proc.Start] {
				r := defs[id].reg
				st[r].clear()
				st[r].set(id)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			// in[b] = union of preds' outs (entry keeps its seed).
			for _, p := range g.Blocks[b].Preds {
				for r := 0; r < isa.NumRegs; r++ {
					if ins[b][r].orInto(outs[p][r]) {
						changed = true
					}
				}
			}
			tmp := newState()
			for r := 0; r < isa.NumRegs; r++ {
				tmp[r].copyFrom(ins[b][r])
			}
			applyBlock(b, tmp)
			for r := 0; r < isa.NumRegs; r++ {
				if outs[b][r].orInto(tmp[r]) {
					changed = true
				}
			}
		}
	}

	// --- Final walk: merge defs reaching each use into webs, record the
	// use's representative def, and build interference.
	uf := make(dfUnion, nd)
	for i := range uf {
		uf[i] = i
	}
	useRep := map[useKey]int{}
	// First pass: merges and use representatives.
	walk := func(visit func(i int, st state)) {
		for b := 0; b < nb; b++ {
			st := newState()
			for r := 0; r < isa.NumRegs; r++ {
				st[r].copyFrom(ins[b][r])
			}
			for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
				visit(i, st)
				for _, id := range instDefs[i-proc.Start] {
					r := defs[id].reg
					st[r].clear()
					st[r].set(id)
				}
			}
		}
	}
	recordUse := func(i int, r isa.Reg, st state) {
		if r.IsZero() {
			return
		}
		first := -1
		st[r].forEach(func(id int) {
			if first < 0 {
				first = id
			} else {
				uf.union(first, id)
			}
		})
		if first >= 0 {
			useRep[useKey{i, r}] = first
		}
	}
	walk(func(i int, st state) {
		in := prog.Insts[i]
		for _, r := range in.Sources(nil) {
			recordUse(i, r, st)
		}
		for _, r := range convUses(in) {
			recordUse(i, r, st)
		}
	})

	// --- Webs from the union-find.
	webOfRoot := map[int]int{}
	wi := &webInfo{defIDAt: defIDAt, useWebAt: map[useKey]int{}}
	wi.webOfDef = make([]int, nd)
	for id := 0; id < nd; id++ {
		root := uf.find(id)
		w, ok := webOfRoot[root]
		if !ok {
			w = len(wi.webs)
			webOfRoot[root] = w
			wi.webs = append(wi.webs, &Web{ID: w, Reg: defs[id].reg})
		}
		wi.webOfDef[id] = w
		web := wi.webs[w]
		if defs[id].synth {
			web.Pinned = true
		} else {
			web.Defs = append(web.Defs, defs[id].inst)
		}
		if pinnedReg[defs[id].reg] {
			web.Pinned = true
		}
	}
	for k, rep := range useRep {
		wi.useWebAt[k] = wi.webOfDef[uf.find(rep)]
	}

	// --- Interference: each definition point interferes with every web
	// (same register file) live after it.
	n := len(wi.webs)
	wi.adj = make([][]bool, n)
	for i := range wi.adj {
		wi.adj[i] = make([]bool, n)
	}
	walk(func(i int, st state) {
		ids := instDefs[i-proc.Start]
		if len(ids) == 0 {
			return
		}
		definedHere := map[isa.Reg]int{}
		for _, id := range ids {
			definedHere[defs[id].reg] = id
		}
		out := live.LiveOut(i)
		for _, id := range ids {
			wd := wi.webOfDef[id]
			dreg := defs[id].reg
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if r.IsZero() || !out.Has(r) || r.IsFP() != dreg.IsFP() {
					continue
				}
				if r == dreg {
					continue // the def itself provides r's live value
				}
				if oid, ok := definedHere[r]; ok {
					// r's live value post-instruction comes from a
					// sibling def at this instruction.
					ow := wi.webOfDef[oid]
					if ow != wd {
						wi.adj[wd][ow] = true
						wi.adj[ow][wd] = true
					}
					continue
				}
				st[r].forEach(func(oid int) {
					ow := wi.webOfDef[oid]
					if ow != wd {
						wi.adj[wd][ow] = true
						wi.adj[ow][wd] = true
					}
				})
			}
		}
	})
	return wi
}
