package regalloc_test

import (
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
	"rvpsim/internal/regalloc"
)

func prep(t *testing.T, src string) (*program.Program, *profile.Profile, profile.Lists) {
	t.Helper()
	p, err := asm.Assemble("t", src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.Run(p, profile.Options{MaxInsts: 200000})
	if err != nil {
		t.Fatal(err)
	}
	return p, pr, pr.Lists(0.8, false, 16)
}

// finalState runs a program to completion and returns r0 plus a few other
// convention registers (the architecturally observable outcome).
func finalState(t *testing.T, p *program.Program) [4]uint64 {
	t.Helper()
	s := emu.MustNew(p)
	s.Run(1 << 22)
	if s.Err() != nil {
		t.Fatalf("run error: %v", s.Err())
	}
	if !s.Halted {
		t.Fatal("did not halt")
	}
	return [4]uint64{s.Regs[isa.RV], s.Regs[isa.RSP], s.Mem.ReadWord(0x100000), s.Mem.ReadWord(0x100008)}
}

// deadReuseSrc: the second load's value is always in dead volatile r6; a
// re-allocation that colours r3's range onto r6 turns it into
// same-register reuse.
const deadReuseSrc = `
.text
.proc main
main:
        li      r1, 500
        lda     r2, table
        clr     r22
loop:
        ldq     r6, 0(r2)
        add     r4, r6, r6
        ldq     r3, 0(r2)
        add     r22, r22, r3
        add     r22, r22, r4
        li      r3, 0
        subi    r1, r1, 1
        bne     r1, loop
        mov     r0, r22
        halt
.endproc
.data
.org 0x100000
table:  .quad 7, 0
`

func TestDeadReuseApplied(t *testing.T) {
	p, pr, lists := prep(t, deadReuseSrc)
	if len(lists.Dead) == 0 {
		t.Fatal("profiler found no dead reuse; test premise broken")
	}
	res, err := regalloc.Reallocate(p, pr, lists)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadApplied == 0 {
		t.Fatalf("no dead reuse applied (dropped=%d)", res.DeadDropped)
	}
	// The rewritten program must compute the same result.
	if got, want := finalState(t, res.Prog), finalState(t, p); got != want {
		t.Errorf("rewritten program diverges: %v vs %v", got, want)
	}
	// The rewrite must expose same-register reuse on the reused load:
	// profile the rewritten program and check the load into the merged
	// register now shows high same-register reuse.
	pr2, err := profile.Run(res.Prog, profile.Options{MaxInsts: 200000})
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for _, is := range pr2.Insts {
		if isa.IsLoad(is.Inst.Op) && is.SameRate() > 0.9 {
			improved = true
		}
	}
	if !improved {
		t.Error("no load shows same-register reuse after re-allocation")
	}
}

// lvReuseSrc: load has last-value reuse but its register is clobbered in
// the loop; re-allocation gives the clobbering write a different register.
const lvReuseSrc = `
.text
.proc main
main:
        li      r1, 500
        lda     r2, table
        clr     r22
loop:
        ldq     r7, 0(r2)
        add     r4, r7, r7
        li      r7, 999
        add     r22, r22, r7
        add     r22, r22, r4
        subi    r1, r1, 1
        bne     r1, loop
        mov     r0, r22
        halt
.endproc
.data
.org 0x100000
table:  .quad 7, 0
`

func TestLVReuseApplied(t *testing.T) {
	p, pr, lists := prep(t, lvReuseSrc)
	if len(lists.LV) == 0 {
		t.Fatal("profiler found no LV reuse; test premise broken")
	}
	res, err := regalloc.Reallocate(p, pr, lists)
	if err != nil {
		t.Fatal(err)
	}
	if res.LVApplied == 0 {
		t.Fatalf("no LV reuse applied (dropped=%d)", res.LVDropped)
	}
	if got, want := finalState(t, res.Prog), finalState(t, p); got != want {
		t.Errorf("rewritten program diverges: %v vs %v", got, want)
	}
	// After re-allocation the load's destination register must be
	// exclusive in the loop, so same-register reuse appears.
	pr2, err := profile.Run(res.Prog, profile.Options{MaxInsts: 200000})
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for _, is := range pr2.Insts {
		if isa.IsLoad(is.Inst.Op) && is.SameRate() > 0.9 {
			improved = true
		}
	}
	if !improved {
		t.Error("LV reuse not realised as same-register reuse")
	}
}

func TestRewritePreservesSemanticsOnPlainProgram(t *testing.T) {
	// No reuse opportunities at all: reallocation must be a no-op
	// semantically.
	src := `
.text
.proc main
main:
        li   r1, 50
        clr  r4
loop:
        add  r4, r4, r1
        subi r1, r1, 1
        bne  r1, loop
        mov  r0, r4
        halt
.endproc
`
	p, pr, lists := prep(t, src)
	res, err := regalloc.Reallocate(p, pr, lists)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := finalState(t, res.Prog), finalState(t, p); got != want {
		t.Errorf("no-op reallocation diverges: %v vs %v", got, want)
	}
}

func TestPinnedRegistersUntouched(t *testing.T) {
	p, pr, lists := prep(t, deadReuseSrc)
	res, err := regalloc.Reallocate(p, pr, lists)
	if err != nil {
		t.Fatal(err)
	}
	// SP, RA, RV, arg and callee-saved registers must appear exactly
	// where they did before (identity mapping on pinned registers).
	pinned := map[isa.Reg]bool{isa.RSP: true, isa.RRA: true, isa.RV: true}
	for _, r := range program.ArgRegs {
		pinned[r] = true
	}
	for _, r := range program.NonvolatileRegs {
		pinned[r] = true
	}
	for i := range p.Insts {
		a, b := p.Insts[i], res.Prog.Insts[i]
		for _, pair := range [][2]isa.Reg{{a.Rd, b.Rd}, {a.Ra, b.Ra}, {a.Rb, b.Rb}} {
			if pinned[pair[0]] && pair[0] != pair[1] {
				t.Fatalf("inst %d: pinned %v renamed to %v", i, pair[0], pair[1])
			}
			if pinned[pair[1]] && pair[0] != pair[1] {
				t.Fatalf("inst %d: %v renamed onto pinned %v", i, pair[0], pair[1])
			}
		}
	}
}

// conflictSrc: both values are live simultaneously, so the dead-reuse
// merge is illegal and must be dropped, never miscompiled.
const conflictSrc = `
.text
.proc main
main:
        li      r1, 500
        lda     r2, table
        clr     r22
loop:
        ldq     r6, 0(r2)       ; r6 = 7
        ldq     r3, 8(r2)       ; r3 = 7 too (correlates with live r6)
        add     r4, r6, r3      ; both live here: ranges overlap
        add     r22, r22, r4
        li      r3, 0
        subi    r1, r1, 1
        bne     r1, loop
        mov     r0, r22
        halt
.endproc
.data
.org 0x100000
table:  .quad 7, 7
`

func TestConflictingReuseDropped(t *testing.T) {
	p, pr, lists := prep(t, conflictSrc)
	res, err := regalloc.Reallocate(p, pr, lists)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := finalState(t, res.Prog), finalState(t, p); got != want {
		t.Errorf("conflicting reuse miscompiled: %v vs %v", got, want)
	}
}

func TestReallocateDoesNotMutateInput(t *testing.T) {
	p, pr, lists := prep(t, deadReuseSrc)
	before := append([]isa.Inst(nil), p.Insts...)
	if _, err := regalloc.Reallocate(p, pr, lists); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if p.Insts[i] != before[i] {
			t.Fatalf("input program mutated at inst %d", i)
		}
	}
}
