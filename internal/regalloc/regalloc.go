// Package regalloc implements the paper's Section 7.3: a realistic model
// of compiler register re-allocation that converts profiled dead-register
// and last-value reuse into same-register reuse.
//
// For each procedure it builds def-use webs via reaching-definitions
// analysis, constructs a web interference graph from live-range analysis,
// merges the web of each dead-reuse instruction's destination with the web
// of the reused value's primary producer, adds interference edges between
// each last-value-reuse (LVR) instruction's destination web and every web
// defined in its innermost loop, and then Chaitin-colours the graph. When
// colouring fails, register reuses are abandoned using the paper's
// heuristics — LVR before dead reuse, outer loops before inner, low
// critical-path contribution first — until the graph colours. Surviving
// reuses are realised by rewriting the program's registers, so the
// rewritten program exhibits the reuse as plain same-register reuse with
// no hints at all.
//
// Calling-convention webs (args, return value, SP, RA, callee-saved
// registers, values reaching back to procedure entry, and call-clobber
// definitions) are pinned: they keep their architectural names, and reuses
// that would recolour them are dropped — mirroring the paper's "no reuse
// of registers defined in other procedures" rule.
package regalloc

import (
	"fmt"
	"sort"

	"rvpsim/internal/isa"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
)

// Reuse identifies one profiled reuse opportunity under consideration.
type Reuse struct {
	Inst    int  // static instruction index (the predicted instruction)
	LVR     bool // last-value reuse (vs dead-register reuse)
	Protect bool // guard existing same-register reuse (adds LVR-style
	// exclusivity edges so re-colouring cannot move another value stream
	// onto a register that already exhibits reuse)
	Reg      isa.Reg // correlated register (dead reuse only)
	Producer int     // primary producer of the reused value (-1 unknown)
	Depth    int     // loop nesting depth of Inst (0 = not in a loop)
	Crit     uint64  // critical-path contribution of Inst
}

// Result reports what the re-allocator did.
type Result struct {
	Prog *program.Program // rewritten program (a clone; input untouched)

	DeadApplied int
	DeadDropped int
	LVApplied   int
	LVDropped   int

	// Dropped lists the abandoned reuses, in pruning order.
	Dropped []Reuse
}

// volatile palettes: the colours a non-pinned web may take. The
// complement (args, RV, SP, RA, callee-saved, zero) is pinned.
var intPalette, fpPalette []isa.Reg

// pinnedReg marks registers that must keep their architectural identity.
var pinnedReg [isa.NumRegs]bool

func init() {
	pin := func(r isa.Reg) { pinnedReg[r] = true }
	pin(isa.RV)
	pin(isa.RSP)
	pin(isa.RRA)
	pin(isa.RZero)
	pin(isa.FZero)
	pin(isa.FPReg(0)) // FP return value
	for _, r := range program.ArgRegs {
		pin(r)
	}
	for _, r := range program.FPArgRegs {
		pin(r)
	}
	for _, r := range program.NonvolatileRegs {
		pin(r)
	}
	for _, r := range program.FPNonvolatileRegs {
		pin(r)
	}
	for r := 0; r < isa.NumIntRegs; r++ {
		if !pinnedReg[r] {
			intPalette = append(intPalette, isa.Reg(r))
		}
	}
	for r := isa.FPBase; r < isa.NumRegs; r++ {
		if !pinnedReg[r] {
			fpPalette = append(fpPalette, r)
		}
	}
}

// Reallocate applies Section 7.3 to prog using the profile's dead and LV
// lists, returning the rewritten program and an accounting of applied and
// dropped reuses.
func Reallocate(prog *program.Program, prof *profile.Profile, lists profile.Lists) (*Result, error) {
	out := prog.Clone()
	res := &Result{Prog: out}

	procs := out.Procs
	if len(procs) == 0 {
		procs = []program.Procedure{{Name: "<all>", Start: 0, End: len(out.Insts)}}
	}
	for pi := range procs {
		if err := reallocProc(out, &procs[pi], prof, lists, res); err != nil {
			return nil, fmt.Errorf("regalloc: %s: %w", procs[pi].Name, err)
		}
	}
	return res, nil
}

// procState carries the per-procedure analyses.
type procState struct {
	prog *program.Program
	proc *program.Procedure
	g    *program.CFG
	lp   []program.Loop
	wi   *webInfo

	reuses []Reuse // candidate reuses, stable order
}

func reallocProc(prog *program.Program, proc *program.Procedure, prof *profile.Profile, lists profile.Lists, res *Result) error {
	ps := &procState{prog: prog, proc: proc}
	ps.g = program.BuildCFG(prog, proc)
	live := program.ComputeLiveness(prog, ps.g)
	ps.lp = ps.g.NaturalLoops()
	ps.wi = buildWebs(prog, proc, ps.g, live)

	ps.collectReuses(prof, lists)

	active := make([]bool, len(ps.reuses))
	for i := range active {
		active[i] = true
	}
	for {
		ok, dropIdx := ps.tryColourWith(active)
		if ok {
			break
		}
		if dropIdx < 0 {
			for i := range active {
				if active[i] {
					active[i] = false
					if !ps.reuses[i].Protect {
						res.Dropped = append(res.Dropped, ps.reuses[i])
						countDrop(ps.reuses[i], res)
					}
				}
			}
			break
		}
		active[dropIdx] = false
		if !ps.reuses[dropIdx].Protect {
			res.Dropped = append(res.Dropped, ps.reuses[dropIdx])
			countDrop(ps.reuses[dropIdx], res)
		}
	}

	colours, applied, illegal := ps.colourFinal(active)
	for _, ri := range applied {
		switch {
		case ps.reuses[ri].Protect:
			// guards are bookkeeping, not new reuse
		case ps.reuses[ri].LVR:
			res.LVApplied++
		default:
			res.DeadApplied++
		}
	}
	for _, ri := range illegal {
		if ps.reuses[ri].Protect {
			continue
		}
		res.Dropped = append(res.Dropped, ps.reuses[ri])
		countDrop(ps.reuses[ri], res)
	}
	ps.rewrite(colours)
	return nil
}

func countDrop(r Reuse, res *Result) {
	if r.LVR {
		res.LVDropped++
	} else {
		res.DeadDropped++
	}
}

// destWeb returns the web of the instruction's destination definition,
// or -1 when it has none.
func (ps *procState) destWeb(inst int) int {
	in := ps.prog.Insts[inst]
	d, ok := in.Dest()
	if !ok {
		return -1
	}
	id, ok2 := ps.wi.defIDAt[useKey{inst, d}]
	if !ok2 {
		return -1
	}
	return ps.wi.webOfDef[id]
}

// collectReuses pulls this procedure's dead-register and LVR candidates
// from the profile lists, annotated with loop depth and criticality.
func (ps *procState) collectReuses(prof *profile.Profile, lists profile.Lists) {
	add := func(r Reuse) { ps.reuses = append(ps.reuses, r) }
	for idx, reg := range lists.Dead {
		if idx < ps.proc.Start || idx >= ps.proc.End {
			continue
		}
		is := prof.Insts[idx]
		if is == nil {
			continue
		}
		li := ps.g.InnermostLoop(ps.lp, idx)
		depth := 0
		if li >= 0 {
			depth = ps.lp[li].Depth
		}
		add(Reuse{Inst: idx, Reg: reg, Producer: is.DeadProducer, Depth: depth, Crit: is.CritHits})
	}
	for idx := range lists.LV {
		if idx < ps.proc.Start || idx >= ps.proc.End {
			continue
		}
		is := prof.Insts[idx]
		if is == nil {
			continue
		}
		li := ps.g.InnermostLoop(ps.lp, idx)
		if li < 0 {
			continue // LVR outside any loop is abandoned outright
		}
		add(Reuse{Inst: idx, LVR: true, Depth: ps.lp[li].Depth, Crit: is.CritHits})
	}
	// Existing same-register reuse must survive re-colouring: protect it
	// with the same exclusivity edges an LVR instruction gets.
	for idx := range lists.Same {
		if idx < ps.proc.Start || idx >= ps.proc.End {
			continue
		}
		is := prof.Insts[idx]
		if is == nil {
			continue
		}
		li := ps.g.InnermostLoop(ps.lp, idx)
		if li < 0 {
			continue
		}
		add(Reuse{Inst: idx, LVR: true, Protect: true, Depth: ps.lp[li].Depth, Crit: is.CritHits})
	}
	sort.Slice(ps.reuses, func(i, j int) bool { return ps.reuses[i].Inst < ps.reuses[j].Inst })
}

// pruneOrder returns indices of active reuses in the order they should be
// abandoned: LVR before dead reuse; outer loops (small depth) first;
// within that, lowest critical-path contribution first.
func (ps *procState) pruneOrder(active []bool) []int {
	var idxs []int
	for i, a := range active {
		if a {
			idxs = append(idxs, i)
		}
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		ra, rb := ps.reuses[idxs[a]], ps.reuses[idxs[b]]
		if ra.Protect != rb.Protect {
			return rb.Protect // guards of existing reuse go last
		}
		if ra.LVR != rb.LVR {
			return ra.LVR // LVR pruned first
		}
		if ra.Depth != rb.Depth {
			return ra.Depth < rb.Depth // outer loops first
		}
		return ra.Crit < rb.Crit // least critical first
	})
	return idxs
}

// rewrite renames every register operand in the procedure through the
// per-web colour assignment.
func (ps *procState) rewrite(colour map[int]isa.Reg) {
	mapDef := func(inst int, r isa.Reg) isa.Reg {
		if r.IsZero() {
			return r
		}
		if id, ok := ps.wi.defIDAt[useKey{inst, r}]; ok {
			if c, ok2 := colour[ps.wi.webOfDef[id]]; ok2 {
				return c
			}
		}
		return r
	}
	mapUse := func(inst int, r isa.Reg) isa.Reg {
		if r.IsZero() {
			return r
		}
		if w, ok := ps.wi.useWebAt[useKey{inst, r}]; ok {
			if c, ok2 := colour[w]; ok2 {
				return c
			}
		}
		return r
	}
	for i := ps.proc.Start; i < ps.proc.End; i++ {
		in := &ps.prog.Insts[i]
		orig := *in
		// Sources first (they may share fields with the dest).
		srcSet := map[isa.Reg]bool{}
		for _, r := range orig.Sources(nil) {
			srcSet[r] = true
		}
		if d, ok := orig.Dest(); ok {
			in.Rd = mapDef(i, d)
		} else if srcSet[orig.Rd] {
			in.Rd = mapUse(i, orig.Rd)
		}
		if srcSet[orig.Ra] {
			in.Ra = mapUse(i, orig.Ra)
		}
		if srcSet[orig.Rb] {
			in.Rb = mapUse(i, orig.Rb)
		}
	}
}
