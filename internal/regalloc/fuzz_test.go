package regalloc_test

import (
	"fmt"
	"strings"
	"testing"

	"rvpsim/internal/asm"
	"rvpsim/internal/emu"
	"rvpsim/internal/profile"
	"rvpsim/internal/program"
	"rvpsim/internal/progtest"
	"rvpsim/internal/regalloc"
)

// genRegs is the volatile pool the stress generator draws from.
var genRegs = []string{"r1", "r3", "r4", "r5", "r6", "r7", "r8", "r22", "r23", "r24", "r25", "r27"}

// lockstep runs two programs side by side and fails at the first
// divergence in control flow, memory effects, or final state.
func lockstep(t *testing.T, seed uint64, a, b *program.Program, maxSteps int) {
	t.Helper()
	sa, sb := emu.MustNew(a), emu.MustNew(b)
	for i := 0; i < maxSteps; i++ {
		ea, oka := sa.Step()
		eb, okb := sb.Step()
		if oka != okb {
			t.Fatalf("seed %d: step %d: one side stopped early", seed, i)
		}
		if !oka {
			break
		}
		if ea.Index != eb.Index {
			t.Fatalf("seed %d: step %d: control diverged (%d vs %d)", seed, i, ea.Index, eb.Index)
		}
		if ea.IsMem != eb.IsMem || ea.EA != eb.EA {
			t.Fatalf("seed %d: step %d (inst %d %v): memory access diverged", seed, i, ea.Index, ea.Inst)
		}
		if ea.IsMem && ea.Inst.Op.String()[0] == 's' {
			// Stores: the written word must match.
			if sa.Mem.ReadWord(ea.EA) != sb.Mem.ReadWord(eb.EA) {
				t.Fatalf("seed %d: step %d: store value diverged at %#x", seed, i, ea.EA)
			}
		}
	}
	if sa.Regs[0] != sb.Regs[0] {
		t.Fatalf("seed %d: final r0 diverged: %d vs %d", seed, sa.Regs[0], sb.Regs[0])
	}
}

// TestReallocateFuzz generates random programs, re-allocates them with
// whatever reuse the profiler finds, and checks semantic equivalence by
// lockstep execution.
func TestReallocateFuzz(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	applied := 0
	for seed := 1; seed <= seeds; seed++ {
		p := progtest.Random(uint64(seed))
		pr, err := profile.Run(p, profile.Options{MaxInsts: 50_000, MinExecs: 8})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		lists := pr.Lists(0.8, false, 8)
		res, err := regalloc.Reallocate(p, pr, lists)
		if err != nil {
			t.Fatalf("seed %d: realloc: %v", seed, err)
		}
		applied += res.DeadApplied + res.LVApplied
		lockstep(t, uint64(seed), p, res.Prog, 100_000)
	}
	// The fuzz must actually exercise rewrites, not just no-ops.
	if applied == 0 {
		t.Error("fuzz applied no reuses across all seeds; generator too bland")
	}
	t.Logf("applied %d reuses across %d seeds", applied, seeds)
}

// TestReallocateFuzzStress raises the pressure: many hot loads of a
// constant array force dense reuse lists and heavy re-colouring.
func TestReallocateFuzzStress(t *testing.T) {
	for seed := 1; seed <= 10; seed++ {
		g := newStressRNG(uint64(seed) * 0xfeedfacecafe)
		var b strings.Builder
		b.WriteString(".text\n.proc main\nmain:\n        li r9, 50\n        lda r2, arr\nouter:\n")
		// Constant loads into many registers (dense reuse), clobbers to
		// create LV opportunities, and enough pressure to force pruning.
		for i := 0; i < 10; i++ {
			r := genRegs[g(len(genRegs))]
			fmt.Fprintf(&b, "        ldq %s, %d(r2)\n", r, g(4)*8)
			if g(3) == 0 {
				fmt.Fprintf(&b, "        li %s, %d\n", r, g(50))
			}
			fmt.Fprintf(&b, "        add r4, r4, %s\n", r)
		}
		b.WriteString("        subi r9, r9, 1\n        bne r9, outer\n        mov r0, r4\n        halt\n.endproc\n")
		b.WriteString(".data\n.org 0x100000\narr: .quad 7, 7, 7, 7\n")
		p, err := asm.Assemble(fmt.Sprintf("stress%d", seed), b.String(), asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := profile.Run(p, profile.Options{MaxInsts: 50_000, MinExecs: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := regalloc.Reallocate(p, pr, pr.Lists(0.8, false, 8))
		if err != nil {
			t.Fatal(err)
		}
		lockstep(t, uint64(seed), p, res.Prog, 100_000)
	}
}

// newStressRNG returns a bounded xorshift closure.
func newStressRNG(seed uint64) func(int) int {
	s := seed | 1
	return func(n int) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
	}
}
