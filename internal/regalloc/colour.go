package regalloc

import (
	"sort"

	"rvpsim/internal/isa"
)

// trial is one attempted application of a set of reuses to the
// procedure's web interference graph: a union-find over webs (merges),
// extra LVR interference edges, and the lists of applied and structurally
// illegal reuses.
type trial struct {
	ps      *procState
	parent  []int
	extra   map[[2]int]bool
	applied []int // indices into ps.reuses that were applied
	illegal []int // indices that proved structurally illegal
}

func (t *trial) find(w int) int {
	for t.parent[w] != w {
		t.parent[w] = t.parent[t.parent[w]]
		w = t.parent[w]
	}
	return w
}

// union merges two web groups, keeping a pinned web as root when present.
func (t *trial) union(a, b int) {
	ra, rb := t.find(a), t.find(b)
	if ra == rb {
		return
	}
	if t.ps.wi.webs[rb].Pinned {
		ra, rb = rb, ra
	}
	t.parent[rb] = ra
}

func (t *trial) pinnedGroup(w int) bool { return t.ps.wi.webs[t.find(w)].Pinned }

// groupsInterfere lifts base adjacency plus LVR extras through the
// union-find.
func (t *trial) groupsInterfere(a, b int) bool {
	ga, gb := t.find(a), t.find(b)
	if ga == gb {
		return false
	}
	n := len(t.ps.wi.webs)
	for x := 0; x < n; x++ {
		if t.find(x) != ga {
			continue
		}
		for y := 0; y < n; y++ {
			if t.find(y) != gb {
				continue
			}
			if t.ps.wi.adj[x][y] || t.extra[[2]int{x, y}] || t.extra[[2]int{y, x}] {
				return true
			}
		}
	}
	return false
}

// build applies the active reuses: dead-register merges first, then LVR
// edges, collecting structural illegality as it goes.
func (t *trial) build(active []bool) {
	ps := t.ps
	n := len(ps.wi.webs)
	t.parent = make([]int, n)
	for i := range t.parent {
		t.parent[i] = i
	}
	t.extra = make(map[[2]int]bool)
	t.applied = t.applied[:0]
	t.illegal = t.illegal[:0]

	// Dead-register merges: merge the reusing instruction's destination
	// web with the primary producer's web.
	for i, ru := range ps.reuses {
		if !active[i] || ru.LVR {
			continue
		}
		dw := ps.destWeb(ru.Inst)
		sw := -1
		if ru.Producer >= ps.proc.Start && ru.Producer < ps.proc.End {
			in := ps.prog.Insts[ru.Producer]
			if d, ok := in.Dest(); ok && d == ru.Reg {
				sw = ps.destWeb(ru.Producer)
			}
		}
		switch {
		case dw < 0 || sw < 0:
			t.illegal = append(t.illegal, i)
		case ps.wi.webs[dw].Reg.IsFP() != ps.wi.webs[sw].Reg.IsFP():
			t.illegal = append(t.illegal, i)
		case t.pinnedGroup(dw) && t.pinnedGroup(sw) && t.find(dw) != t.find(sw):
			// Two convention-pinned names cannot merge.
			t.illegal = append(t.illegal, i)
		case t.pinnedGroup(dw) || t.pinnedGroup(sw):
			// Mirrors the paper's "no reuse of registers defined in other
			// procedures": pinned webs keep their identity.
			t.illegal = append(t.illegal, i)
		case t.groupsInterfere(dw, sw):
			// Live ranges conflict (e.g. the reusing range wraps around
			// and overlaps the producer) — abandoned, per the paper.
			t.illegal = append(t.illegal, i)
		default:
			t.union(dw, sw)
			t.applied = append(t.applied, i)
		}
	}

	// LVR interference edges: the destination web must own its colour for
	// the whole innermost loop.
	for i, ru := range ps.reuses {
		if !active[i] || !ru.LVR {
			continue
		}
		dw := ps.destWeb(ru.Inst)
		if dw < 0 || t.pinnedGroup(dw) {
			t.illegal = append(t.illegal, i)
			continue
		}
		li := ps.g.InnermostLoop(ps.lp, ru.Inst)
		if li < 0 {
			t.illegal = append(t.illegal, i)
			continue
		}
		dFP := ps.wi.webs[dw].Reg.IsFP()
		ok := true
		var edges [][2]int
		for _, j := range ps.lp[li].Insts {
			if j == ru.Inst {
				continue
			}
			ow := ps.destWeb(j)
			if ow < 0 || ps.wi.webs[ow].Reg.IsFP() != dFP {
				continue
			}
			if t.find(ow) == t.find(dw) {
				// Another definition in the loop already shares the
				// colour — LVR unusable (Section 7.3).
				ok = false
				break
			}
			edges = append(edges, [2]int{dw, ow})
		}
		if !ok {
			t.illegal = append(t.illegal, i)
			continue
		}
		for _, e := range edges {
			t.extra[e] = true
		}
		t.applied = append(t.applied, i)
	}
}

// colour runs Chaitin simplify/select over the trial's group graph.
// Pinned groups are precoloured with their web's register. It returns the
// per-group colour map and ok == false when simplify stalls.
func (t *trial) colour() (map[int]isa.Reg, bool) {
	n := len(t.ps.wi.webs)
	groups := map[int]bool{}
	for w := 0; w < n; w++ {
		groups[t.find(w)] = true
	}
	neighbours := map[int]map[int]bool{}
	addEdge := func(x, y int) {
		gx, gy := t.find(x), t.find(y)
		if gx == gy {
			return
		}
		if neighbours[gx] == nil {
			neighbours[gx] = map[int]bool{}
		}
		if neighbours[gy] == nil {
			neighbours[gy] = map[int]bool{}
		}
		neighbours[gx][gy] = true
		neighbours[gy][gx] = true
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if t.ps.wi.adj[x][y] || t.extra[[2]int{x, y}] || t.extra[[2]int{y, x}] {
				addEdge(x, y)
			}
		}
	}

	assignment := map[int]isa.Reg{}
	var work []int
	for g := range groups {
		if t.ps.wi.webs[g].Pinned {
			assignment[g] = t.ps.wi.webs[g].Reg
		} else {
			work = append(work, g)
		}
	}
	sort.Ints(work)

	isFP := func(g int) bool { return t.ps.wi.webs[g].Reg.IsFP() }
	palSize := func(g int) int {
		if isFP(g) {
			return len(fpPalette)
		}
		return len(intPalette)
	}
	removed := map[int]bool{}
	// Degree counts same-file neighbours; pinned neighbours with colours
	// outside the palette cannot actually conflict, so they are excluded
	// from degree but their colours are respected at select time.
	inPalette := func(r isa.Reg) bool { return !pinnedReg[r] && !r.IsZero() }
	degree := func(g int) int {
		d := 0
		for nb := range neighbours[g] {
			if removed[nb] || isFP(nb) != isFP(g) {
				continue
			}
			if c, ok := assignment[nb]; ok && !inPalette(c) {
				continue
			}
			d++
		}
		return d
	}

	var stack []int
	remaining := len(work)
	for remaining > 0 {
		found := false
		for _, g := range work {
			if removed[g] {
				continue
			}
			if degree(g) < palSize(g) {
				stack = append(stack, g)
				removed[g] = true
				remaining--
				found = true
			}
		}
		if !found {
			return nil, false // simplify stalled; caller prunes a reuse
		}
	}

	// Select, preferring each group's own register when available.
	for i := len(stack) - 1; i >= 0; i-- {
		g := stack[i]
		used := map[isa.Reg]bool{}
		for nb := range neighbours[g] {
			if c, ok := assignment[nb]; ok {
				used[c] = true
			}
		}
		pal := intPalette
		if isFP(g) {
			pal = fpPalette
		}
		own := t.ps.wi.webs[g].Reg
		chosen := isa.Reg(255)
		if inPalette(own) && !used[own] {
			chosen = own
		} else {
			for _, c := range pal {
				if !used[c] {
					chosen = c
					break
				}
			}
		}
		if chosen == 255 {
			return nil, false
		}
		assignment[g] = chosen
	}
	return assignment, true
}

// tryColourWith builds a trial for the active set and attempts colouring.
// On failure it returns the index of the reuse to prune next (-1 when no
// active reuse remains to prune).
func (ps *procState) tryColourWith(active []bool) (bool, int) {
	t := &trial{ps: ps}
	t.build(active)
	if _, ok := t.colour(); ok {
		return true, -1
	}
	order := ps.pruneOrder(active)
	appliedSet := map[int]bool{}
	for _, i := range t.applied {
		appliedSet[i] = true
	}
	for _, i := range order {
		if appliedSet[i] {
			return false, i
		}
	}
	if len(order) > 0 {
		return false, order[0]
	}
	return false, -1
}

// colourFinal builds the final trial, colours it (falling back to the
// identity assignment if Chaitin unexpectedly stalls), and returns the
// per-web colour map, the applied reuse indices, and the structurally
// illegal reuse indices.
func (ps *procState) colourFinal(active []bool) (map[int]isa.Reg, []int, []int) {
	t := &trial{ps: ps}
	t.build(active)
	assignment, ok := t.colour()
	if !ok {
		// Identity fallback: no rewrite.
		return map[int]isa.Reg{}, nil, append(append([]int(nil), t.applied...), t.illegal...)
	}
	colours := make(map[int]isa.Reg, len(ps.wi.webs))
	for w := range ps.wi.webs {
		g := t.find(w)
		if c, okc := assignment[g]; okc {
			colours[w] = c
		} else {
			colours[w] = ps.wi.webs[w].Reg
		}
	}
	return colours, append([]int(nil), t.applied...), append([]int(nil), t.illegal...)
}
