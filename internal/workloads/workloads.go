// Package workloads provides the nine synthetic benchmarks that stand in
// for the paper's SPEC95 suite (go, ijpeg, li, m88ksim, perl from CINT;
// hydro2d, mgrid, su2cor, turb3d from CFP). Each workload is a hand
// written assembly kernel modelled on the benchmark's dominant inner
// loops, with deterministic, seeded data tuned so its register-value
// reuse profile lands in the band the paper reports (Figure 1, Table 2).
//
// Every workload is self-contained: assembly text plus a programmatically
// generated data segment. Programs run for tens of millions of committed
// instructions before halting; simulations bound runs with an instruction
// budget instead of waiting for completion.
package workloads

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"rvpsim/internal/asm"
	"rvpsim/internal/program"
)

// Class groups workloads the way Figure 1 does.
type Class uint8

// Workload classes.
const (
	ClassInt Class = iota // "C SPEC"
	ClassFP               // "F SPEC"
)

func (c Class) String() string {
	if c == ClassFP {
		return "F"
	}
	return "C"
}

// Workload is one benchmark.
type Workload struct {
	Name  string
	Class Class
	Desc  string
	build func() *program.Program
}

// Build assembles the workload into a fresh program.
func (w Workload) Build() *program.Program { return w.build() }

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns the nine workloads in the paper's presentation order:
// integer benchmarks first, then floating point.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return order[out[i].Name] < order[out[j].Name]
	})
	return out
}

// order fixes the paper's x-axis order.
var order = map[string]int{
	"go": 0, "ijpeg": 1, "li": 2, "m88ksim": 3, "perl": 4,
	"hydro2d": 5, "mgrid": 6, "su2cor": 7, "turb3d": 8,
}

// Names returns the workload names in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// ByName builds the named workload.
func ByName(name string) (*program.Program, error) {
	for _, w := range registry {
		if w.Name == name {
			return w.build(), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// ---- data-segment builder ----

// rng is a deterministic xorshift64* generator; all workload data derives
// from it so runs are bit-reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// float in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// dataBuilder lays out named data arrays at 8-byte granularity starting
// at base.
type dataBuilder struct {
	addr   uint64
	syms   map[string]uint64
	chunks []program.DataChunk
}

func newData(base uint64) *dataBuilder {
	return &dataBuilder{addr: base, syms: map[string]uint64{}}
}

// array places words under name and returns its address.
func (b *dataBuilder) array(name string, words []uint64) uint64 {
	addr := b.addr
	b.syms[name] = addr
	b.chunks = append(b.chunks, program.DataChunk{Addr: addr, Words: append([]uint64(nil), words...)})
	b.addr += uint64(len(words)) * 8
	// Pad to a cache line so arrays do not share lines.
	if rem := b.addr % 64; rem != 0 {
		b.addr += 64 - rem
	}
	return addr
}

// zeros places n zero words under name.
func (b *dataBuilder) zeros(name string, n int) uint64 {
	return b.array(name, make([]uint64, n))
}

// doubles places float64 values under name.
func (b *dataBuilder) doubles(name string, vs []float64) uint64 {
	words := make([]uint64, len(vs))
	for i, v := range vs {
		words[i] = math.Float64bits(v)
	}
	return b.array(name, words)
}

// Workload source texts, recorded at assembly time so Sources can hand
// the real corpus to the assembler fuzzer.
var (
	srcMu   sync.Mutex
	srcText = map[string]string{}
)

// assemble builds the final program from source + generated data.
func (b *dataBuilder) assemble(name, src string) *program.Program {
	srcMu.Lock()
	srcText[name] = src
	srcMu.Unlock()
	p := asm.MustAssemble(name, src, asm.Options{ExternalSyms: b.syms})
	p.Data = append(p.Data, b.chunks...)
	return p
}

// Sources returns every workload's assembly source text keyed by name,
// building the workloads as a side effect. It seeds the assembler's
// fuzz corpus with realistic programs.
func Sources() map[string]string {
	for _, w := range All() {
		w.Build()
	}
	srcMu.Lock()
	defer srcMu.Unlock()
	out := make(map[string]string, len(srcText))
	for k, v := range srcText {
		out[k] = v
	}
	return out
}
