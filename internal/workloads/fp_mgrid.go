package workloads

import "rvpsim/internal/program"

// mgrid models the multigrid benchmark's smoother: a seven-point stencil
// over a 3-D grid with fully unrolled per-coefficient loads, so each
// static coefficient load always reads the same value (constant reuse),
// while the smooth field data itself varies — landing mgrid in the
// paper's mid/low coverage band with very high accuracy.
func buildMgrid() *program.Program {
	r := newRNG(0x36)
	b := newData(0x400000)

	const n = 24 // grid n^3
	grid := make([]float64, n*n*n)
	for i := range grid {
		grid[i] = r.float()
	}
	b.doubles("u", grid)
	b.doubles("v", make([]float64, n*n*n))
	b.doubles("c0", []float64{-0.5})
	b.doubles("c1", []float64{0.08333})
	b.doubles("zero", []float64{0})

	src := `
.text
.proc main
main:
        li      r9, 12000           ; smoothing passes
pass:
        lda     r10, u
        lda     r11, v
        ; skip one plane + one row + one column
        addi    r10, r10, 4808      ; (576 + 24 + 1) * 8
        addi    r11, r11, 4808
        li      r12, 22             ; interior planes
plane:
        li      r13, 22             ; interior rows
prow:
        li      r14, 22             ; interior columns
pcol:
        ldt     f10, c0             ; centre coefficient (constant)
        ldt     f11, c1             ; neighbour coefficient (constant)
        ldt     f1, 0(r10)          ; centre
        ldt     f2, -8(r10)         ; x-1
        ldt     f3, 8(r10)          ; x+1
        ldt     f4, -192(r10)       ; y-1
        ldt     f5, 192(r10)        ; y+1
        ldt     f6, -4608(r10)      ; z-1
        ldt     f7, 4608(r10)       ; z+1
        fadd    f2, f2, f3
        fadd    f4, f4, f5
        fadd    f6, f6, f7
        fadd    f2, f2, f4
        fadd    f2, f2, f6
        fmul    f2, f2, f11
        fmul    f10, f1, f10        ; register pressure: clobbers c0's reg
        fadd    f2, f2, f10
        fadd    f2, f2, f1
        stt     f2, 0(r11)
        addi    r10, r10, 8
        addi    r11, r11, 8
        subi    r14, r14, 1
        bne     r14, pcol
        addi    r10, r10, 16
        addi    r11, r11, 16
        subi    r13, r13, 1
        bne     r13, prow
        addi    r10, r10, 192       ; skip two boundary rows
        addi    r11, r11, 192
        subi    r12, r12, 1
        bne     r12, plane

        ; write smoothed field back
        lda     r10, u
        lda     r11, v
        li      r12, 13824
wb:
        ldt     f1, 0(r11)
        stt     f1, 0(r10)
        addi    r10, r10, 8
        addi    r11, r11, 8
        subi    r12, r12, 1
        bne     r12, wb

        subi    r9, r9, 1
        bne     r9, pass
        halt
.endproc
`
	return b.assemble("mgrid", src)
}

func init() {
	register(Workload{
		Name:  "mgrid",
		Class: ClassFP,
		Desc:  "3-D seven-point multigrid smoother with constant coefficients",
		build: buildMgrid,
	})
}
