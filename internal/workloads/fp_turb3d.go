package workloads

import (
	"math"

	"rvpsim/internal/program"
)

// turb3d models the turbulence benchmark's FFT core in structure-of-arrays
// form: each stage runs a real-plane butterfly pass and then an
// imaginary-plane butterfly pass over split re/im arrays, as Fortran FFT
// kernels do. The input signal is real-valued, so the entire imaginary
// plane is (and stays) exactly zero: every load in the imaginary pass —
// a streaming, cache-missing loop — produces 0.0, the strongest value
// reuse in the suite. The butterfly is an exact Givens rotation, so
// magnitudes stay bounded over millions of passes.
func buildTurb() *program.Program {
	r := newRNG(0x3d)
	b := newData(0x480000)

	const n = 4096
	re := make([]float64, n)
	im := make([]float64, n) // all zero: real-valued input signal
	for i := range re {
		re[i] = math.Sin(float64(i)*0.1) + 0.1*r.float()
	}
	b.doubles("re", re)
	b.doubles("im", im)
	theta := 2 * math.Pi / n
	b.doubles("wc", []float64{math.Cos(theta)}) // rotation cosine
	b.doubles("ws", []float64{math.Sin(theta)}) // rotation sine
	b.doubles("spec", make([]float64, n))

	src := `
.text
.proc main
main:
        li      r9, 4000            ; FFT-like stages
pass:
        ; ---- real-plane butterflies
        lda     r10, re
        li      r12, 2048
rbfly:
        ldt     f10, wc             ; stage twiddle (constant -> reuse)
        ldt     f11, ws             ; stage twiddle (constant -> reuse)
        ldt     f1, 0(r10)          ; x.re
        ldt     f2, 16384(r10)      ; y.re (stride n/2)
        fmul    f5, f10, f1
        fmul    f6, f11, f2
        fadd    f5, f5, f6          ; x.re' = c*x + s*y
        fmul    f6, f10, f2
        fmul    f7, f11, f1
        fsub    f6, f6, f7          ; y.re' = c*y - s*x
        stt     f5, 0(r10)
        stt     f6, 16384(r10)
        addi    r10, r10, 8
        subi    r12, r12, 1
        bne     r12, rbfly

        ; ---- imaginary-plane butterflies (all values exactly 0.0)
        lda     r11, im
        li      r12, 2048
ibfly:
        ldt     f12, wc             ; constant -> reuse
        ldt     f13, ws             ; constant -> reuse
        ldt     f3, 0(r11)          ; x.im (always 0.0 -> strong reuse)
        ldt     f4, 16384(r11)      ; y.im (always 0.0 -> strong reuse)
        fmul    f5, f12, f3
        fmul    f6, f13, f4
        fadd    f5, f5, f6          ; x.im' (stays 0.0)
        fmul    f6, f12, f4
        fmul    f7, f13, f3
        fsub    f6, f6, f7          ; y.im' (stays 0.0)
        stt     f5, 0(r11)
        stt     f6, 16384(r11)
        addi    r11, r11, 8
        subi    r12, r12, 1
        bne     r12, ibfly

        ; ---- spectrum magnitude sweep: |x|^2 per element, accumulated
        ; serially into a running total (the im term is a zero stream)
        lda     r10, re
        lda     r11, im
        lda     r13, spec
        clr     r1
        itof    f9, r1              ; total = 0.0
        li      r12, 4096
spectrum:
        ldt     f1, 0(r10)
        ldt     f2, 0(r11)          ; zero stream -> reuse
        fmul    f1, f1, f1
        fmul    f2, f2, f2
        fadd    f1, f1, f2
        stt     f1, 0(r13)
        fadd    f9, f9, f2          ; serial accumulation of the im term
        addi    r10, r10, 8
        addi    r11, r11, 8
        addi    r13, r13, 8
        subi    r12, r12, 1
        bne     r12, spectrum

        subi    r9, r9, 1
        bne     r9, pass
        halt
.endproc
`
	return b.assemble("turb3d", src)
}

func init() {
	register(Workload{
		Name:  "turb3d",
		Class: ClassFP,
		Desc:  "SoA FFT stages with an exactly-zero imaginary plane",
		build: buildTurb,
	})
}
