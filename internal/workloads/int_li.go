package workloads

import "rvpsim/internal/program"

// li models Xlisp's hot path: association-list lookup with type-tag
// dispatch. Cons cells carry a type tag (always TAG_CONS for list cells),
// a car (symbol id), a cdr pointer, and a boxed value. The interpreter
// repeatedly looks up a stream of keys, most of which are a few hot
// symbols near the head of the list. Reuse character: tag loads and
// interpreter-state loads (gc flag, heap limit) are constants — strong
// same-register reuse; car/cdr loads vary per node — low reuse. This
// lands li in the paper's ~20% coverage band.
func buildLI() *program.Program {
	r := newRNG(0x11)
	b := newData(0x200000)

	const cells = 256
	const nkeys = 512
	// Association list: cell i at assoc + i*32, symbol ids shuffled so
	// hot symbols (0..3) sit in the first few nodes.
	words := make([]uint64, cells*4)
	for i := 0; i < cells; i++ {
		sym := uint64(i)
		val := r.next() % 1000
		next := b.addr + uint64(i+1)*32
		if i == cells-1 {
			next = 0 // NIL terminates
		}
		words[i*4+0] = 1 // TAG_CONS
		words[i*4+1] = sym
		words[i*4+2] = next
		words[i*4+3] = val
	}
	assoc := b.array("assoc", words)

	// Key stream: 80% hot symbols (0..3), 20% uniform over all symbols.
	keys := make([]uint64, nkeys)
	for i := range keys {
		if r.intn(10) < 8 {
			keys[i] = r.intn(4)
		} else {
			keys[i] = r.intn(cells)
		}
	}
	b.array("keys", keys)
	b.array("head", []uint64{assoc}) // list head pointer (constant)
	b.array("gcflag", []uint64{0})   // gc pending flag (constant 0)
	b.zeros("results", nkeys)

	// The interpreter is call-structured like the real Xlisp: the main
	// read-eval loop calls assoc-lookup per key (exercising JSR/RET, the
	// return-address stack, and cross-call register conventions).
	src := `
.text
.proc main
main:
        li      r9, 40000           ; outer repetitions
outer:
        lda     r10, keys
        lda     r14, results
        li      r11, 512            ; keys per pass
keyloop:
        ldq     r16, 0(r10)         ; key symbol -> arg register
        call    lookup
        stq     r0, 0(r14)
        addi    r10, r10, 8
        addi    r14, r14, 8
        subi    r11, r11, 1
        bne     r11, keyloop
        subi    r9, r9, 1
        bne     r9, outer
        halt
.endproc

; lookup(r16 = key) -> r0 = value (0 when not found)
.proc lookup
lookup:
        ldq     r2, head            ; list head (constant value -> reuse)
        ldq     r7, gcflag          ; interpreter state (constant 0)
        bne     r7, collect         ; never taken
walk:
        ldq     r3, 0(r2)           ; type tag (always TAG_CONS -> reuse)
        cmpeqi  r4, r3, 1
        beq     r4, badtag          ; never taken
        ldq     r4, 8(r2)           ; car: symbol id
        sub     r5, r4, r16
        beq     r5, found
        ldq     r2, 16(r2)          ; cdr
        bne     r2, walk
        clr     r0                  ; not found: NIL value
        ret
found:
        ldq     r0, 24(r2)          ; boxed value
        ret
collect:                            ; unreached gc stub
        clr     r7
        jmp     walk
badtag:
        clr     r3
        clr     r0
        ret
.endproc
`
	return b.assemble("li", src)
}

func init() {
	register(Workload{
		Name:  "li",
		Class: ClassInt,
		Desc:  "Xlisp-style assoc-list interpreter with tag dispatch",
		build: buildLI,
	})
}
