package workloads

import "rvpsim/internal/program"

// perl models the Perl interpreter's hot loops: opcode dispatch over a
// bytecode stream plus hash-table symbol lookup. The interpreter checks a
// handful of global state words every operation (constant — reusable),
// hashes 8-byte keys from a skewed stream, and probes an open-addressed
// table. Moderate reuse (~8-14% band) with realistic branchy dispatch.
func buildPerl() *program.Program {
	r := newRNG(0x9e)
	b := newData(0x300000)

	const tabBits = 13
	const tabSize = 1 << tabBits // entries; each entry: key, value
	tab := make([]uint64, tabSize*2)
	keys := make([]uint64, 2048)
	hash := func(k uint64) uint64 {
		h := k * 0x9e3779b97f4a7c15
		return (h >> 32) & (tabSize - 1)
	}
	for i := range keys {
		k := r.next() | 1 // nonzero keys
		keys[i] = k
		// Insert with linear probing.
		slot := hash(k)
		for tab[slot*2] != 0 {
			slot = (slot + 1) & (tabSize - 1)
		}
		tab[slot*2] = k
		tab[slot*2+1] = r.next() % 10000
	}
	b.array("htab", tab)
	// Bytecode stream: op in 0..3, operand selects a key. 60% of lookups
	// hit 6 hot keys.
	const prog = 256
	code := make([]uint64, prog*2)
	for i := 0; i < prog; i++ {
		code[i*2] = r.intn(4)
		if r.intn(10) < 6 {
			code[i*2+1] = r.intn(6)
		} else {
			code[i*2+1] = r.intn(2048)
		}
	}
	b.array("bytecode", code)
	b.array("keys", keys)
	b.array("interpdepth", []uint64{3}) // constant interpreter state
	b.array("sigpending", []uint64{0})  // constant
	b.zeros("stackmem", 2048)
	b.zeros("acc", 1)

	src := `
.text
.proc main
main:
        li      r9, 50000           ; interpreter passes
pass:
        lda     r10, bytecode
        li      r11, 256            ; ops per pass
op:
        ldq     r22, sigpending     ; signal check (constant 0 -> reuse)
        bne     r22, signal         ; never taken
        ldq     r23, interpdepth    ; recursion depth (constant -> reuse)
        cmplei  r24, r23, 0
        bne     r24, signal         ; never taken
        ldq     r1, 0(r10)          ; opcode
        ldq     r2, 8(r10)          ; operand (key index)
        ; fetch key
        lda     r3, keys
        slli    r4, r2, 3
        add     r3, r3, r4
        ldq     r4, 0(r3)           ; key value (hot keys repeat)
        ; dispatch
        beq     r1, op_lookup
        cmpeqi  r5, r1, 1
        bne     r5, op_add
        cmpeqi  r5, r1, 2
        bne     r5, op_store
        ; op 3: hash only
        muli    r5, r4, 0x7f4a7c15
        srli    r5, r5, 32
        jmp     next
op_lookup:
        ; h = (key * M) >> 40 & mask
        li      r5, 0x9e3779b9
        slli    r5, r5, 32
        ori     r5, r5, 0x7f4a7c15
        mul     r5, r4, r5
        srli    r5, r5, 32
        andi    r5, r5, 8191
probe:
        lda     r6, htab
        slli    r7, r5, 4           ; *16 bytes per entry
        add     r6, r6, r7
        ldq     r7, 0(r6)           ; stored key
        sub     r8, r7, r4
        beq     r8, hit
        addi    r5, r5, 1
        andi    r5, r5, 8191
        bne     r7, probe           ; probe until empty slot
        clr     r8                  ; miss: undef
        jmp     next
hit:
        ldq     r8, 8(r6)           ; value
        ldq     r7, acc
        add     r7, r7, r8
        stq     r7, acc
        jmp     next
op_add:
        ldq     r5, acc             ; accumulator (changes -> low reuse)
        add     r5, r5, r4
        stq     r5, acc
        jmp     next
op_store:
        lda     r5, stackmem
        andi    r6, r4, 2047
        slli    r6, r6, 3
        add     r5, r5, r6
        stq     r4, 0(r5)
        jmp     next
next:
        addi    r10, r10, 16
        subi    r11, r11, 1
        bne     r11, op
        subi    r9, r9, 1
        bne     r9, pass
        halt
signal:
        clr     r22
        jmp     next
.endproc
`
	return b.assemble("perl", src)
}

func init() {
	register(Workload{
		Name:  "perl",
		Class: ClassInt,
		Desc:  "bytecode dispatch with hash-table lookups and state checks",
		build: buildPerl,
	})
}
