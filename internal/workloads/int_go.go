package workloads

import "rvpsim/internal/program"

// gobench models the Go-playing program's board scanner: nested loops
// over a 19x19 board counting pseudo-liberties of stones, with a
// mutation phase that keeps the board changing between passes. Neighbour
// loads see irregular 0/1/2 values, so value reuse is low and branches
// are hard to predict — the paper's go sits at the bottom of the coverage
// table (~4%) with plenty of branch mispredictions.
func buildGo() *program.Program {
	r := newRNG(0x60)
	b := newData(0x280000)

	const n = 19
	board := make([]uint64, n*n)
	for i := range board {
		switch {
		case r.intn(100) < 35:
			board[i] = 1 + r.intn(2) // stone
		default:
			board[i] = 0 // empty
		}
	}
	b.array("board", board)
	b.zeros("libs", n*n)
	// Mutation stream: positions to toggle between passes.
	muts := make([]uint64, 128)
	for i := range muts {
		muts[i] = 1 + n + r.intn((n-2)*(n-2)) // interior-ish index
	}
	b.array("muts", muts)
	b.array("mutidx", []uint64{0})

	src := `
.text
.proc main
main:
        li      r9, 120000          ; board scans
pass:
        lda     r10, board
        lda     r11, libs
        li      r12, 323            ; interior positions: 19..341
        addi    r10, r10, 152       ; &board[19]
        addi    r11, r11, 152
scan:
        ldq     r1, 0(r10)          ; this point
        beq     r1, empty
        ; stone: count empty neighbours
        clr     r2
        ldq     r3, -152(r10)       ; north
        cmpeqi  r4, r3, 0
        add     r2, r2, r4
        ldq     r3, 152(r10)        ; south
        cmpeqi  r4, r3, 0
        add     r2, r2, r4
        ldq     r3, -8(r10)         ; west
        cmpeqi  r4, r3, 0
        add     r2, r2, r4
        ldq     r3, 8(r10)          ; east
        cmpeqi  r4, r3, 0
        add     r2, r2, r4
        stq     r2, 0(r11)
        bne     r2, alive
        ; captured: clear the stone (board mutation)
        clr     r5
        stq     r5, 0(r10)
alive:
empty:
        addi    r10, r10, 8
        addi    r11, r11, 8
        subi    r12, r12, 1
        bne     r12, scan

        ; mutate one position per pass so the board keeps changing
        ldq     r1, mutidx
        andi    r1, r1, 127
        lda     r2, muts
        slli    r3, r1, 3
        add     r2, r2, r3
        ldq     r4, 0(r2)           ; board index to toggle
        lda     r5, board
        slli    r6, r4, 3
        add     r5, r5, r6
        ldq     r7, 0(r5)
        cmpeqi  r8, r7, 0
        beq     r8, clearpt
        li      r7, 1               ; place a stone on empty point
        jmp     writept
clearpt:
        clr     r7
writept:
        stq     r7, 0(r5)
        ldq     r1, mutidx
        addi    r1, r1, 1
        stq     r1, mutidx

        subi    r9, r9, 1
        bne     r9, pass
        halt
.endproc
`
	return b.assemble("go", src)
}

func init() {
	register(Workload{
		Name:  "go",
		Class: ClassInt,
		Desc:  "Go board scanner: liberty counting over a mutating board",
		build: buildGo,
	})
}
