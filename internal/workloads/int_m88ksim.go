package workloads

import "rvpsim/internal/program"

// m88ksim models an instruction-set simulator simulating a small
// Motorola-style machine: fetch a simulated instruction word, check
// processor status, extract fields, dispatch on opcode, and execute
// against a simulated register file in memory. The simulated hot loop
// contains one instruction per opcode, so every handler always processes
// the same static simulated instruction — its field extractions, effective
// addresses, status checks and most simulated-register loads produce the
// same value every time. Each handler value lives in its own host
// register (the register allocation a compiler would produce for distinct
// handler locals), so the constancy appears as same-register reuse — the
// reason the real m88ksim tops the paper's coverage table.
//
// Host register allocation:
//
//	r9 outer counter   r10 simPC       r11 simregs  r12 simprog  r13 simmem
//	r22 psr            r2..r7 decode   r8 dispatch scratch
//	sLOAD: r14,r15 ra-addr  r24 ptr  r25 mem-addr  r28 value  r16,r18 rd-addr
//	sACC:  r19,r20 ra-addr  r27 value  r21,r17 rd-addr  r3 acc (varies)
//	sSTEP: r4,r5 scratch addrs  r29 stride value  r24 pointer
//	sCMP:  r6,r7 scratch addrs  r1 bound value  r23 flag result
//	sBNZ:  r6 scratch  r25 flag value
func buildM88K() *program.Program {
	r := newRNG(0x88)
	b := newData(0x240000)

	// Simulated machine encoding: op<<24 | rd<<16 | ra<<8 | rb.
	enc := func(op, rd, ra, rb uint64) uint64 { return op<<24 | rd<<16 | ra<<8 | rb }
	const (
		sLOAD = 0 // sr[rd] = simmem[sr[ra]]
		sACC  = 1 // sr[rd] += sr[ra]
		sSTEP = 2 // sr[rd] += sr[ra]      (pointer advance by stride)
		sCMP  = 3 // sr[rd] = sr[ra] < sr[rb]
		sBNZ  = 4 // if sr[ra] != 0: simPC = 0
		sHALT = 5
	)
	// Simulated program: pointer walk summing simmem.
	//   sr1 = loaded value, sr2 = pointer, sr3 = stride, sr4 = accum,
	//   sr5 = flag, sr6 = end pointer.
	b.array("simprog", []uint64{
		enc(sLOAD, 1, 2, 0),
		enc(sACC, 4, 1, 0),
		enc(sSTEP, 2, 3, 0),
		enc(sCMP, 5, 2, 6),
		enc(sBNZ, 0, 5, 0),
		enc(sHALT, 0, 0, 0),
	})
	// Simulated data memory: 512 words, 75% a single repeated value.
	const simWords = 512
	mem := make([]uint64, simWords)
	for i := range mem {
		if r.intn(100) < 75 {
			mem[i] = 42
		} else {
			mem[i] = r.next() % 256
		}
	}
	b.array("simmem", mem)
	b.zeros("simregs", 32)
	b.array("simpsr", []uint64{0})              // processor status (constant)
	b.array("simbound", []uint64{simWords * 8}) // end pointer seed

	src := `
.text
.proc main
main:
        li      r9, 60000           ; simulated program runs
outer:
        lda     r11, simregs
        lda     r12, simprog
        lda     r13, simmem
        clr     r8
        stq     r8, 16(r11)         ; sr2 = 0 (pointer)
        li      r8, 8
        stq     r8, 24(r11)         ; sr3 = 8 (stride)
        clr     r8
        stq     r8, 32(r11)         ; sr4 = 0 (accumulator)
        ldq     r8, simbound
        stq     r8, 48(r11)         ; sr6 = end
        clr     r10                 ; simPC = 0
step:
        ldq     r22, simpsr         ; status check (constant 0 -> reuse)
        bne     r22, psrtrap        ; never taken
        slli    r2, r10, 3
        add     r2, r2, r12
        ldq     r3, 0(r2)           ; fetch simulated instruction
        srli    r4, r3, 24          ; opcode
        srli    r5, r3, 16
        andi    r5, r5, 255         ; rd field
        srli    r6, r3, 8
        andi    r6, r6, 255         ; ra field
        andi    r7, r3, 255         ; rb field
        addi    r10, r10, 1         ; simPC++
        bne     r4, not0
        ; --- sLOAD: sr[rd] = simmem[sr[ra]]
        slli    r14, r6, 3          ; constant (ra*8 = 16)
        add     r15, r14, r11       ; constant address of sr[ra]
        ldq     r24, 0(r15)         ; pointer value (varies)
        add     r25, r24, r13       ; varies
        ldq     r28, 0(r25)         ; simulated memory (75% same -> reuse)
        slli    r16, r5, 3          ; constant (rd*8 = 8)
        add     r18, r16, r11       ; constant address of sr[rd]
        stq     r28, 0(r18)
        jmp     step
not0:
        cmpeqi  r8, r4, 1
        beq     r8, not1
        ; --- sACC: sr[rd] += sr[ra]
        slli    r19, r6, 3          ; constant
        add     r20, r19, r11       ; constant address
        ldq     r27, 0(r20)         ; loaded value (75% same -> reuse)
        slli    r21, r5, 3          ; constant
        add     r17, r21, r11       ; constant address
        ldq     r3, 0(r17)          ; accumulator (varies)
        add     r3, r3, r27
        stq     r3, 0(r17)
        jmp     step
not1:
        cmpeqi  r8, r4, 2
        beq     r8, not2
        ; --- sSTEP: sr[rd] += sr[ra] (pointer += stride)
        slli    r4, r6, 3           ; ra*8 (constant, scratch reg)
        add     r4, r4, r11
        ldq     r29, 0(r4)          ; stride (constant 8 -> reuse)
        slli    r5, r5, 3           ; rd*8 (constant, scratch reg)
        add     r5, r5, r11
        ldq     r24, 0(r5)          ; pointer (varies)
        add     r24, r24, r29
        stq     r24, 0(r5)
        jmp     step
not2:
        cmpeqi  r8, r4, 3
        beq     r8, not3
        ; --- sCMP: sr[rd] = sr[ra] < sr[rb]
        slli    r6, r6, 3           ; scratch
        add     r6, r6, r11
        ldq     r24, 0(r6)          ; pointer (varies)
        slli    r7, r7, 3           ; scratch
        add     r7, r7, r11
        ldq     r1, 0(r7)           ; bound (constant -> reuse)
        cmplt   r23, r24, r1        ; almost always 1 -> reuse
        slli    r5, r5, 3
        add     r5, r5, r11
        stq     r23, 0(r5)
        jmp     step
not3:
        cmpeqi  r8, r4, 4
        beq     r8, simhalt
        ; --- sBNZ: if sr[ra] != 0 restart simulated loop
        slli    r6, r6, 3           ; scratch
        add     r6, r6, r11
        ldq     r25, 0(r6)          ; flag (almost always 1 -> reuse)
        beq     r25, step
        clr     r10                 ; simPC = 0
        jmp     step
simhalt:
        subi    r9, r9, 1
        bne     r9, outer
        halt
psrtrap:
        clr     r22
        jmp     step
.endproc
`
	return b.assemble("m88ksim", src)
}

func init() {
	register(Workload{
		Name:  "m88ksim",
		Class: ClassInt,
		Desc:  "instruction-set simulator with per-handler constant decode",
		build: buildM88K,
	})
}
