package workloads

import "rvpsim/internal/program"

// ijpeg models JPEG compression's hot loops: an integer DCT-like
// butterfly over 8x8 pixel blocks, quantisation by table, and a zero-run
// scan of the quantised coefficients. Pixel data is noisy, so the DCT
// loads carry little value locality; the short zero-run scan contributes
// the small amount of constant reuse that puts ijpeg near the bottom of
// the coverage table (~5%).
func buildIJpeg() *program.Program {
	r := newRNG(0x4a)
	b := newData(0x2c0000)

	const blocks = 512
	pix := make([]uint64, blocks*64)
	for i := range pix {
		pix[i] = 100 + r.intn(100) // noisy pixels
	}
	b.array("pixels", pix)
	// Quantisation divisors as shift amounts (power-of-two quant).
	q := make([]uint64, 64)
	for i := range q {
		// Higher frequencies quantised harder: most coefficients go to 0.
		q[i] = 4 + uint64(i/8)
	}
	b.array("qtab", q)
	b.zeros("coef", 64)
	b.zeros("runs", 64)

	src := `
.text
.proc main
main:
        li      r9, 90000           ; blocks processed
block:
        ; select block: (passes mod 32) * 64 words
        andi    r1, r9, 511
        muli    r1, r1, 512
        lda     r10, pixels
        add     r10, r10, r1

        ; row butterflies: 8 rows of a 4-point DCT approximation
        lda     r11, coef
        li      r12, 8
row:
        ldq     r1, 0(r10)
        ldq     r2, 8(r10)
        ldq     r3, 16(r10)
        ldq     r4, 24(r10)
        add     r5, r1, r4          ; s04
        sub     r6, r1, r4          ; d04
        add     r7, r2, r3          ; s12
        sub     r8, r2, r3          ; d12
        add     r1, r5, r7          ; dc
        sub     r2, r5, r7
        muli    r3, r6, 3           ; rotation approximations
        add     r3, r3, r8
        muli    r4, r8, 3
        sub     r4, r4, r6
        stq     r1, 0(r11)
        stq     r2, 8(r11)
        stq     r3, 16(r11)
        stq     r4, 24(r11)
        ldq     r1, 32(r10)
        ldq     r2, 40(r10)
        add     r5, r1, r2
        sub     r6, r1, r2
        stq     r5, 32(r11)
        stq     r6, 40(r11)
        ldq     r1, 48(r10)
        ldq     r2, 56(r10)
        add     r5, r1, r2
        sub     r6, r1, r2
        stq     r5, 48(r11)
        stq     r6, 56(r11)
        addi    r10, r10, 64
        subi    r12, r12, 1
        bne     r12, row

        ; quantise coefficients in place (most become zero)
        lda     r11, coef
        lda     r13, qtab
        li      r12, 64
quant:
        ldq     r1, 0(r11)
        ldq     r2, 0(r13)          ; shift amount
        sra     r1, r1, r2
        stq     r1, 0(r11)
        addi    r11, r11, 8
        addi    r13, r13, 8
        subi    r12, r12, 1
        bne     r12, quant

        ; zero-run scan: count runs of zero coefficients
        lda     r11, coef
        lda     r14, runs
        li      r12, 64
        clr     r2                  ; current run length
zscan:
        ldq     r1, 0(r11)          ; mostly zero -> some value reuse
        bne     r1, nonzero
        addi    r2, r2, 1
        jmp     znext
nonzero:
        stq     r2, 0(r14)
        addi    r14, r14, 8
        clr     r2
znext:
        addi    r11, r11, 8
        subi    r12, r12, 1
        bne     r12, zscan

        subi    r9, r9, 1
        bne     r9, block
        halt
.endproc
`
	return b.assemble("ijpeg", src)
}

func init() {
	register(Workload{
		Name:  "ijpeg",
		Class: ClassInt,
		Desc:  "integer DCT, quantisation, and zero-run scan over 8x8 blocks",
		build: buildIJpeg,
	})
}
