package workloads

import "rvpsim/internal/program"

// hydro2d models the Navier-Stokes benchmark's sweeps: a five-point
// stencil over a 2-D grid where large vacuum bands are exactly zero.
// Loads that stream through zero regions keep writing 0.0 into the same
// registers — strong same-register value reuse — while the interior does
// real FP arithmetic. Register pressure reuses the coefficient load's
// register as a temporary (the paper's Figure 2c pattern), so part of
// hydro2d's locality is only reachable with last-value re-allocation —
// which is why it appears in the paper's Figure 7.
func buildHydro() *program.Program {
	r := newRNG(0x2d)
	b := newData(0x340000)

	const n = 96 // grid is n x n
	grid := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			// Fluid occupies a central band; the rest is vacuum (zero).
			if y > n/3 && y < 2*n/3 && x > 8 && x < n-8 {
				grid[y*n+x] = 0.5 + r.float()
			}
		}
	}
	b.doubles("grid", grid)
	b.doubles("out", make([]float64, n*n))
	b.doubles("consts", []float64{0.25, 0.9, 1e-12})

	src := `
.text
.proc main
main:
        li      r9, 8000            ; sweeps
sweep:
        lda     r10, grid
        lda     r11, out
        addi    r10, r10, 776       ; &grid[1*96+1] (skip boundary)
        addi    r11, r11, 776
        li      r12, 94             ; interior rows
rowloop:
        li      r13, 94             ; interior columns
col:
        ldt     f10, consts         ; 0.25 -- register reused as a temp
                                    ; below, so only last-value reuse
        ldt     f11, consts+8       ; damping (constant -> same-reg reuse)
        ldt     f1, -768(r10)       ; north  (often 0.0 in vacuum)
        ldt     f2, 768(r10)        ; south
        ldt     f3, -8(r10)         ; west
        ldt     f4, 8(r10)          ; east
        ldt     f5, 0(r10)          ; centre
        fadd    f6, f1, f2
        fadd    f7, f3, f4
        fadd    f6, f6, f7
        fmul    f6, f6, f10         ; average of neighbours
        fsub    f10, f6, f5         ; register pressure: clobbers f10
        fmul    f10, f10, f11
        fadd    f5, f5, f10
        stt     f5, 0(r11)
        addi    r10, r10, 8
        addi    r11, r11, 8
        subi    r13, r13, 1
        bne     r13, col
        addi    r10, r10, 16        ; skip boundary columns
        addi    r11, r11, 16
        subi    r12, r12, 1
        bne     r12, rowloop

        ; copy out back to grid (streaming, mostly zeros)
        lda     r10, grid
        lda     r11, out
        li      r12, 9216           ; n*n words
copy:
        ldt     f1, 0(r11)
        stt     f1, 0(r10)
        addi    r10, r10, 8
        addi    r11, r11, 8
        subi    r12, r12, 1
        bne     r12, copy

        subi    r9, r9, 1
        bne     r9, sweep
        halt
.endproc
`
	return b.assemble("hydro2d", src)
}

func init() {
	register(Workload{
		Name:  "hydro2d",
		Class: ClassFP,
		Desc:  "2-D five-point stencil with vacuum (zero) bands",
		build: buildHydro,
	})
}
