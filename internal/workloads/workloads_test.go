package workloads

import (
	"math"
	"testing"

	"rvpsim/internal/emu"
	"rvpsim/internal/isa"
	"rvpsim/internal/profile"
)

func TestAllRegisteredAndOrdered(t *testing.T) {
	ws := All()
	if len(ws) != 9 {
		t.Fatalf("got %d workloads, want 9", len(ws))
	}
	want := []string{"go", "ijpeg", "li", "m88ksim", "perl", "hydro2d", "mgrid", "su2cor", "turb3d"}
	for i, w := range ws {
		if w.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, want[i])
		}
	}
	// First five integer, last four FP.
	for i, w := range ws {
		wantClass := ClassInt
		if i >= 5 {
			wantClass = ClassFP
		}
		if w.Class != wantClass {
			t.Errorf("%s class = %v", w.Name, w.Class)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("li"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

// TestWorkloadsRunLong checks that every workload executes at least 3M
// instructions without faulting or halting early, and that its register
// values stay finite (no NaN/Inf contamination in FP workloads).
func TestWorkloadsRunLong(t *testing.T) {
	const budget = 3_000_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Build()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			s := emu.MustNew(p)
			n := s.Run(budget)
			if s.Err() != nil {
				t.Fatalf("execution error after %d insts: %v", n, s.Err())
			}
			if s.Halted {
				t.Fatalf("halted after only %d insts; workloads must run long", n)
			}
			for r := isa.FPBase; r < isa.NumRegs; r++ {
				v := math.Float64frombits(s.Regs[r])
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("register %v = %v after %d insts", r, v, n)
				}
			}
		})
	}
}

// TestWorkloadsDeterministic: two builds produce identical programs.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		a, b := w.Build(), w.Build()
		if len(a.Insts) != len(b.Insts) {
			t.Fatalf("%s: instruction counts differ", w.Name)
		}
		for i := range a.Insts {
			if a.Insts[i] != b.Insts[i] {
				t.Fatalf("%s: instruction %d differs", w.Name, i)
			}
		}
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: data chunks differ", w.Name)
		}
		for c := range a.Data {
			for j := range a.Data[c].Words {
				if a.Data[c].Words[j] != b.Data[c].Words[j] {
					t.Fatalf("%s: data word differs", w.Name)
				}
			}
		}
	}
}

// TestReuseCharacter checks each workload's *predictable* load fraction —
// executions of static loads whose same-register reuse clears the paper's
// 80% threshold — falls in the intended ordering: m88ksim and turb3d
// high, go and ijpeg low, mirroring Table 2's coverage ordering.
func TestReuseCharacter(t *testing.T) {
	reuse := map[string]float64{}
	for _, w := range All() {
		p := w.Build()
		pr, err := profile.Run(p, profile.Options{MaxInsts: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		var loads, predictable uint64
		for _, is := range pr.Insts {
			if !isa.IsLoad(is.Inst.Op) {
				continue
			}
			loads += is.Execs
			// Reachable reuse: native same-register, or last-value reuse
			// the compiler can expose by re-allocation (Figure 2c).
			if is.SameRate() >= 0.8 || is.LastRate() >= 0.8 {
				predictable += is.Execs
			}
		}
		if loads > 0 {
			reuse[w.Name] = float64(predictable) / float64(loads)
		}
	}
	t.Logf("predictable load fraction: %v", reuse)
	// go has the least value locality in the paper's table; the high-reuse
	// designs must clear a meaningful bar. (Confidence-filtered coverage
	// ordering is validated end-to-end in the experiments package.)
	for _, high := range []string{"m88ksim", "turb3d", "hydro2d", "li", "su2cor"} {
		if reuse["go"] >= reuse[high] {
			t.Errorf("expected reuse(go)=%.3f < reuse(%s)=%.3f", reuse["go"], high, reuse[high])
		}
		if reuse[high] < 0.15 {
			t.Errorf("reuse(%s)=%.3f, want >= 0.15", high, reuse[high])
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
	f := newRNG(7).float()
	if f < 0 || f >= 1 {
		t.Errorf("float() = %v out of [0,1)", f)
	}
}

func TestDataBuilderLayout(t *testing.T) {
	b := newData(0x1000)
	a1 := b.array("a", []uint64{1, 2, 3})
	a2 := b.array("b", []uint64{4})
	if a1 != 0x1000 {
		t.Errorf("a at %#x", a1)
	}
	if a2%64 != 0 || a2 <= a1 {
		t.Errorf("b at %#x, want next cache line", a2)
	}
	if b.syms["a"] != a1 || b.syms["b"] != a2 {
		t.Error("symbols wrong")
	}
}
