package workloads

import "rvpsim/internal/program"

// su2cor models the quantum-chromodynamics benchmark's gauge-field
// update: 2x2 complex (SU(2)-like) matrix multiplies along lattice links.
// A cold-start lattice leaves most links at the identity matrix, so link
// loads repeatedly produce 1.0 and 0.0 — the moderate value reuse the
// paper reports for su2cor.
func buildSu2(seed uint64, identityPct uint64) func() *program.Program {
	return func() *program.Program {
		r := newRNG(seed)
		b := newData(0x440000)

		const links = 2048
		// Each link: 8 doubles (2x2 complex matrix: re/im pairs).
		mats := make([]float64, links*8)
		for l := 0; l < links; l++ {
			// Cold lattice: most links are exactly the identity matrix
			// ([[1,0],[0,1]], zero imaginary parts); a small fraction of
			// "hot" links carry real update values.
			if r.intn(100) < identityPct {
				mats[l*8+0] = 1.0
				mats[l*8+6] = 1.0
			} else {
				mats[l*8+0] = 0.9 + 0.2*r.float()
				mats[l*8+6] = 0.9 + 0.2*r.float()
				for _, k := range []int{1, 2, 3, 4, 5, 7} {
					mats[l*8+k] = 0.1 * (r.float()*2 - 1)
				}
			}
		}
		b.doubles("links", mats)
		b.doubles("accum", make([]float64, 8))

		src := `
.text
.proc main
main:
        li      r9, 30000           ; sweeps
sweep:
        lda     r10, links
        lda     r11, accum
        ; accum = identity
        ldt     f1, links           ; 1.0 from the first identity link
        li      r12, 2048
link:
        ; load the link matrix (identity most of the time)
        ldt     f1, 0(r10)          ; a.re   (usually 1.0)
        ldt     f2, 8(r10)          ; a.im   (usually 0.0)
        ldt     f3, 16(r10)         ; b.re   (usually 0.0)
        ldt     f4, 24(r10)         ; b.im   (usually 0.0)
        ldt     f5, 32(r10)         ; c.re   (usually 0.0)
        ldt     f6, 40(r10)         ; c.im   (usually 0.0)
        ldt     f7, 48(r10)         ; d.re   (usually 1.0)
        ldt     f8, 56(r10)         ; d.im   (usually 0.0)
        ; acc00 = a*acc00 + b*acc10 (complex, accumulated in f22..f25)
        ldt     f22, 0(r11)
        ldt     f23, 8(r11)
        fmul    f24, f1, f22
        fmul    f25, f2, f23
        fsub    f24, f24, f25
        fmul    f25, f1, f23
        fmul    f26, f2, f22
        fadd    f25, f25, f26
        fmul    f3, f3, f22         ; consumes and clobbers b.re's reg
        fadd    f24, f24, f3
        fmul    f4, f4, f23         ; consumes and clobbers b.im's reg
        fadd    f25, f25, f4
        stt     f24, 0(r11)
        stt     f25, 8(r11)
        ; acc11 = d*acc11 + c*acc01
        ldt     f22, 48(r11)
        ldt     f23, 56(r11)
        fmul    f24, f7, f22
        fmul    f25, f8, f23
        fsub    f24, f24, f25
        fmul    f25, f7, f23
        fmul    f26, f8, f22
        fadd    f25, f25, f26
        fmul    f5, f5, f22         ; consumes and clobbers c.re's reg
        fadd    f24, f24, f5
        fmul    f6, f6, f23         ; consumes and clobbers c.im's reg
        fadd    f25, f25, f6
        stt     f24, 48(r11)
        stt     f25, 56(r11)
        addi    r10, r10, 64
        subi    r12, r12, 1
        bne     r12, link

        ; renormalise the accumulator toward identity to avoid overflow
        lda     r11, accum
        ldt     f1, links           ; 1.0
        stt     f1, 0(r11)
        stt     f1, 48(r11)
        clr     r1
        itof    f2, r1              ; 0.0
        stt     f2, 8(r11)
        stt     f2, 56(r11)

        subi    r9, r9, 1
        bne     r9, sweep
        halt
.endproc
`
		return b.assemble("su2cor", src)
	}
}

func init() {
	register(Workload{
		Name:  "su2cor",
		Class: ClassFP,
		Desc:  "SU(2)-like lattice link products over a mostly-identity field",
		build: buildSu2(0x52, 92),
	})
}
