package workloads

import (
	"testing"

	"rvpsim/internal/core"
	"rvpsim/internal/pipeline"
	"rvpsim/internal/profile"
)

// TestCoverageBands runs each workload under dynamic RVP with dead+LV
// hints (the Table 2 configuration) and checks its prediction coverage
// lands in a generous band around the paper's reported range. This is the
// contract the workload designs promise to the experiment drivers.
func TestCoverageBands(t *testing.T) {
	if testing.Short() {
		t.Skip("bands need a warmed-up run")
	}
	// Bands are [lo, hi] percent coverage for drvp_all_dead_lv. The
	// paper's Table 2 values: go 5, hydro 37, ijpeg 10, li 24, m88k 57,
	// mgrid 9, perl 14, su2 21, tu3d 49 — our synthetic stand-ins aim for
	// the same ordering with overlapping (wider) bands.
	bands := map[string][2]float64{
		"go":      {0.5, 10},
		"ijpeg":   {5, 25},
		"li":      {10, 35},
		"m88ksim": {15, 60},
		"perl":    {10, 30},
		"hydro2d": {20, 50},
		"mgrid":   {4, 20},
		"su2cor":  {25, 55},
		"turb3d":  {25, 55},
	}
	const budget = 300_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Build()
			pr, err := profile.Run(p, profile.Options{MaxInsts: budget / 3})
			if err != nil {
				t.Fatal(err)
			}
			hints := pr.Lists(0.8, false, 0).Hints(profile.SupportDeadLV)
			pred := core.MustDynamicRVP(core.DefaultCounterConfig(), core.WithHints(hints))
			st, err := pipeline.MustNew(pipeline.BaselineConfig()).Run(p, pred, budget)
			if err != nil {
				t.Fatal(err)
			}
			cov := 100 * st.Coverage()
			b := bands[w.Name]
			if cov < b[0] || cov > b[1] {
				t.Errorf("coverage %.1f%% outside band [%g, %g]", cov, b[0], b[1])
			}
			if acc := 100 * st.Accuracy(); acc < 88 {
				t.Errorf("accuracy %.1f%% below the resetting-counter floor", acc)
			}
		})
	}
}
