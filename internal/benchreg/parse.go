package benchreg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rvpsim/internal/simerr"
)

// Bench is the aggregated result of one benchmark across -count
// repetitions: for every reported unit, the mean of the per-repetition
// values (ns/op, sim_insts/s, allocs/op, custom metrics, ...).
type Bench struct {
	Name    string
	Samples int
	Metrics map[string]float64
}

// Metric returns the mean value for unit (0 when absent).
func (b *Bench) Metric(unit string) float64 { return b.Metrics[unit] }

// Parsed is the distilled output of one `go test -bench` invocation.
type Parsed struct {
	Benchmarks map[string]*Bench
}

// ParseBenchOutput parses standard `go test -bench` text output.
// Benchmark lines have the shape
//
//	BenchmarkSimulator-8   3   26446282 ns/op   11343948 sim_insts/s   74 allocs/op
//
// i.e. name, iteration count, then value/unit pairs. Repetitions of the
// same benchmark (-count > 1) are averaged. Non-benchmark lines (goos,
// pkg, PASS, ok) are ignored. Zero benchmark lines in a stream that
// claims a failure ("FAIL") is an error wrapping simerr.ErrCorrupt.
func ParseBenchOutput(r io.Reader) (*Parsed, error) {
	p := &Parsed{Benchmarks: map[string]*Bench{}}
	sums := map[string]map[string]float64{}
	counts := map[string]int{}
	failed := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "FAIL") || strings.Contains(line, "--- FAIL") {
			failed = true
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so repetitions aggregate by name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
			continue
		}
		if sums[name] == nil {
			sums[name] = map[string]float64{}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			sums[name][fields[i+1]] += v
		}
		if ok {
			counts[name]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchreg: %w", err)
	}
	if failed {
		return nil, fmt.Errorf("benchreg: benchmark run failed: %w", simerr.ErrCorrupt)
	}
	for name, n := range counts {
		b := &Bench{Name: name, Samples: n, Metrics: map[string]float64{}}
		for unit, sum := range sums[name] {
			b.Metrics[unit] = sum / float64(n)
		}
		p.Benchmarks[name] = b
	}
	return p, nil
}
