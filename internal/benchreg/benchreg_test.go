package benchreg

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"rvpsim/internal/simerr"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rvpsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure1-8 	       1	 812345678 ns/op	        62.50 orlvp_%	 1024 B/op	       10 allocs/op
BenchmarkSimulator-8 	       3	  25000000 ns/op	  12000000 sim_insts/s	 5126768 B/op	      75 allocs/op
BenchmarkSimulator-8 	       3	  24000000 ns/op	  13000000 sim_insts/s	 5126768 B/op	      75 allocs/op
PASS
ok  	rvpsim	0.419s
`

func TestParseBenchOutput(t *testing.T) {
	p, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	sim := p.Benchmarks["BenchmarkSimulator"]
	if sim == nil {
		t.Fatal("BenchmarkSimulator not parsed")
	}
	if sim.Samples != 2 {
		t.Fatalf("samples = %d, want 2 (repetitions aggregated)", sim.Samples)
	}
	if got, want := sim.Metric("sim_insts/s"), 12_500_000.0; math.Abs(got-want) > 1 {
		t.Errorf("sim_insts/s = %v, want %v", got, want)
	}
	if got, want := sim.Metric("ns/op"), 24_500_000.0; math.Abs(got-want) > 1 {
		t.Errorf("ns/op = %v, want %v", got, want)
	}
	fig := p.Benchmarks["BenchmarkFigure1"]
	if fig == nil || fig.Metric("orlvp_%") != 62.50 {
		t.Errorf("Figure1 custom metric not parsed: %+v", fig)
	}
}

func TestParseBenchOutputFailure(t *testing.T) {
	_, err := ParseBenchOutput(strings.NewReader("--- FAIL: TestX\nFAIL\n"))
	if !errors.Is(err, simerr.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBuildRun(t *testing.T) {
	p, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	run := BuildRun(p, 300_000, "abc123", "2026-08-05T00:00:00Z", "go1.x", "test", 2)
	if run.Sim == nil {
		t.Fatal("no sim metrics")
	}
	if math.Abs(run.Sim.IPS-12_500_000) > 1 {
		t.Errorf("IPS = %v", run.Sim.IPS)
	}
	if want := 24_500_000.0 / 300_000; math.Abs(run.Sim.NsPerInst-want) > 1e-9 {
		t.Errorf("NsPerInst = %v, want %v", run.Sim.NsPerInst, want)
	}
	if want := 75.0 / 300_000; math.Abs(run.Sim.AllocsPerCommit-want) > 1e-12 {
		t.Errorf("AllocsPerCommit = %v, want %v", run.Sim.AllocsPerCommit, want)
	}
	if len(run.Figures) != 1 || run.Figures[0].Name != "BenchmarkFigure1" {
		t.Fatalf("figures = %+v", run.Figures)
	}
	if want := 812345678.0 / 1e9; math.Abs(run.Figures[0].WallSeconds-want) > 1e-9 {
		t.Errorf("figure wall seconds = %v, want %v", run.Figures[0].WallSeconds, want)
	}
}

func TestCompare(t *testing.T) {
	prev := &Run{Sim: &SimMetrics{IPS: 10_000_000}}
	ok := &Run{Sim: &SimMetrics{IPS: 9_500_000}}  // -5%: within 10%
	bad := &Run{Sim: &SimMetrics{IPS: 8_000_000}} // -20%: regression
	if err := Compare(prev, ok, 0.10); err != nil {
		t.Errorf("5%% drop flagged: %v", err)
	}
	if err := Compare(prev, bad, 0.10); err == nil {
		t.Error("20% drop not flagged")
	}
	if err := Compare(nil, bad, 0.10); err != nil {
		t.Errorf("nil prev must compare clean: %v", err)
	}
	if err := Compare(&Run{}, bad, 0.10); err != nil {
		t.Errorf("prev without sim metrics must compare clean: %v", err)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_pipeline.json")

	f, err := Load(path) // missing file -> empty trajectory
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 0 {
		t.Fatalf("fresh trajectory has %d runs", len(f.Runs))
	}
	f.Runs = append(f.Runs, Run{GitSHA: "abc", Timestamp: "t", Sim: &SimMetrics{IPS: 1e7}})
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Runs) != 1 || g.Runs[0].GitSHA != "abc" || g.Runs[0].Sim.IPS != 1e7 {
		t.Fatalf("round trip mismatch: %+v", g.Runs)
	}
	if g.LastWithSim() == nil {
		t.Fatal("LastWithSim lost the run")
	}
}

const serveOutput = `goos: linux
BenchmarkServeObserved/bare-8     	      20	  51234567 ns/op	        40.00 jobs/s
BenchmarkServeObserved/observed-8 	      20	  52345678 ns/op	        39.20 jobs/s
PASS
ok  	rvpsim	2.345s
`

func TestBuildRunServeMetrics(t *testing.T) {
	p, err := ParseBenchOutput(strings.NewReader(serveOutput))
	if err != nil {
		t.Fatal(err)
	}
	run := BuildRun(p, 300_000, "abc123", "2026-08-08T00:00:00Z", "go1.x", "", 1)
	if run.Serve == nil {
		t.Fatal("no serve metrics distilled from BenchmarkServeObserved")
	}
	if run.Serve.BareJPS != 40 || run.Serve.ObservedJPS != 39.2 {
		t.Fatalf("serve jobs/s = %+v", run.Serve)
	}
	if want := 1 - 39.2/40.0; math.Abs(run.Serve.OverheadFrac-want) > 1e-9 {
		t.Fatalf("overhead frac = %v, want %v", run.Serve.OverheadFrac, want)
	}
	// The sub-benchmarks must not leak into the figure wall-time list.
	for _, fig := range run.Figures {
		if strings.Contains(fig.Name, "ServeObserved") {
			t.Fatalf("serve sub-benchmark leaked into figures: %+v", run.Figures)
		}
	}
}

func TestCompareServeOverheadGate(t *testing.T) {
	ok := &Run{Serve: &ServeMetrics{BareJPS: 40, ObservedJPS: 39, OverheadFrac: 0.025}}
	bad := &Run{Serve: &ServeMetrics{BareJPS: 40, ObservedJPS: 35, OverheadFrac: 0.125}}
	if err := Compare(nil, ok, 0.10); err != nil {
		t.Errorf("2.5%% serve overhead flagged: %v", err)
	}
	err := Compare(nil, bad, 0.10)
	if err == nil {
		t.Fatal("12.5% serve overhead not flagged")
	}
	if !strings.Contains(err.Error(), "observability overhead") {
		t.Errorf("unhelpful gate error: %v", err)
	}
	// Negative overhead (observed faster than bare — noise) is clean.
	fast := &Run{Serve: &ServeMetrics{BareJPS: 40, ObservedJPS: 41, OverheadFrac: -0.025}}
	if err := Compare(nil, fast, 0.10); err != nil {
		t.Errorf("negative overhead flagged: %v", err)
	}
}
