package benchreg

import (
	"math"
	"strings"
	"testing"
)

const parallelOutput = `goos: linux
goarch: amd64
pkg: rvpsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorParallel/workers=1-8 	       3	  30000000 ns/op	         8.000 machine_cpus	  10000000 sim_insts_per_machine/s
BenchmarkSimulatorParallel/workers=2-8 	       3	  32000000 ns/op	         8.000 machine_cpus	  19000000 sim_insts_per_machine/s
BenchmarkSimulatorParallel/workers=8-8 	       3	  40000000 ns/op	         8.000 machine_cpus	  68000000 sim_insts_per_machine/s
PASS
ok  	rvpsim	1.2s
`

func TestParallelWorkers(t *testing.T) {
	cases := []struct {
		name string
		w    int
		ok   bool
	}{
		{"BenchmarkSimulatorParallel/workers=1", 1, true},
		{"BenchmarkSimulatorParallel/workers=16", 16, true},
		{"BenchmarkSimulatorParallel/workers=0", 0, false},
		{"BenchmarkSimulatorParallel/workers=x", 0, false},
		{"BenchmarkSimulatorParallel", 0, false},
		{"BenchmarkSimulator", 0, false},
	}
	for _, c := range cases {
		w, ok := parallelWorkers(c.name)
		if ok != c.ok || (ok && w != c.w) {
			t.Errorf("parallelWorkers(%q) = (%d, %v), want (%d, %v)", c.name, w, ok, c.w, c.ok)
		}
	}
}

func TestBuildRunParallel(t *testing.T) {
	p, err := ParseBenchOutput(strings.NewReader(parallelOutput))
	if err != nil {
		t.Fatal(err)
	}
	run := BuildRun(p, 300_000, "abc123", "2026-08-05T00:00:00Z", "go1.x", "test", 8)
	if run.Parallel == nil {
		t.Fatal("no parallel metrics")
	}
	if run.Parallel.CPUs != 8 {
		t.Errorf("CPUs = %d, want 8", run.Parallel.CPUs)
	}
	if len(run.Parallel.Points) != 3 {
		t.Fatalf("points = %+v", run.Parallel.Points)
	}
	for i, want := range []ParallelPoint{{1, 10e6}, {2, 19e6}, {8, 68e6}} {
		got := run.Parallel.Points[i]
		if got.Workers != want.Workers || math.Abs(got.IPS-want.IPS) > 1 {
			t.Errorf("point %d = %+v, want %+v", i, got, want)
		}
	}
	// Efficiency = IPS(8) / (8 * IPS(1)) = 68e6 / 80e6.
	if want := 0.85; math.Abs(run.Parallel.Efficiency-want) > 1e-9 {
		t.Errorf("efficiency = %v, want %v", run.Parallel.Efficiency, want)
	}
	if got := run.Parallel.MachineIPS(); math.Abs(got-68e6) > 1 {
		t.Errorf("MachineIPS = %v, want 68e6", got)
	}
	// Parallel sub-benchmarks must not leak into the figure list.
	for _, f := range run.Figures {
		if strings.HasPrefix(f.Name, "BenchmarkSimulatorParallel") {
			t.Errorf("parallel point recorded as figure: %+v", f)
		}
	}
}

func TestCompareParallel(t *testing.T) {
	mk := func(eff, machineIPS float64, cpus int) *Run {
		return &Run{Parallel: &ParallelMetrics{
			CPUs:       cpus,
			Points:     []ParallelPoint{{1, machineIPS / (eff * float64(cpus))}, {cpus, machineIPS}},
			Efficiency: eff,
		}}
	}
	prev := mk(0.90, 70e6, 8)

	if err := CompareParallel(prev, mk(0.85, 68e6, 8), 0.10); err != nil {
		t.Errorf("healthy run flagged: %v", err)
	}
	if err := CompareParallel(prev, mk(0.50, 68e6, 8), 0.10); err == nil {
		t.Error("efficiency below floor not flagged")
	}
	if err := CompareParallel(prev, mk(0.85, 50e6, 8), 0.10); err == nil {
		t.Error("20% machine-IPS regression not flagged")
	}
	// Different machine width: efficiency still gated, regression not.
	if err := CompareParallel(mk(0.90, 300e6, 32), mk(0.85, 68e6, 8), 0.10); err != nil {
		t.Errorf("cross-machine comparison flagged: %v", err)
	}
	// Missing data on either side is not an error.
	if err := CompareParallel(nil, mk(0.85, 68e6, 8), 0.10); err != nil {
		t.Errorf("nil prev flagged: %v", err)
	}
	if err := CompareParallel(prev, &Run{}, 0.10); err != nil {
		t.Errorf("cur without parallel flagged: %v", err)
	}
	// Single-core machines have no meaningful efficiency sample; a zero
	// value must not trip the floor.
	if err := CompareParallel(nil, &Run{Parallel: &ParallelMetrics{CPUs: 1, Points: []ParallelPoint{{1, 10e6}}}}, 0.10); err != nil {
		t.Errorf("single-point run flagged: %v", err)
	}
}

func TestLastWithParallel(t *testing.T) {
	f := &File{Runs: []Run{
		{GitSHA: "a", Parallel: &ParallelMetrics{CPUs: 8}},
		{GitSHA: "b"},
		{GitSHA: "c", Parallel: &ParallelMetrics{CPUs: 4}},
		{GitSHA: "d"},
	}}
	got := f.LastWithParallel()
	if got == nil || got.GitSHA != "c" {
		t.Fatalf("LastWithParallel = %+v, want run c", got)
	}
	if (&File{}).LastWithParallel() != nil {
		t.Fatal("empty file should return nil")
	}
}
