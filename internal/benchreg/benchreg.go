// Package benchreg is the benchmark-regression harness: it runs the
// repository's bench_test.go suite, distills the output into a compact
// JSON trajectory (BENCH_pipeline.json), and compares new runs against
// the previous entry with a configurable regression threshold.
//
// The trajectory file is append-only: every invocation adds one Run, so
// the file records how simulator throughput evolved across commits (the
// git SHA and timestamp are captured per run). cmd/experiments can
// append per-sweep wall-time/IPS records into the same schema via its
// -bench-out flag.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rvpsim/internal/simerr"
)

// Schema identifies the BENCH JSON layout. Bump on incompatible change.
const Schema = "rvpsim-bench/v1"

// SimMetrics is the headline simulator-throughput measurement, taken
// from BenchmarkSimulator.
type SimMetrics struct {
	IPS             float64 `json:"ips"`               // committed sim instructions / wall second
	NsPerInst       float64 `json:"ns_per_inst"`       // inverse, in nanoseconds
	AllocsPerCommit float64 `json:"allocs_per_commit"` // heap allocations per committed instruction
}

// ServeOverheadLimit is the gate on the service observability tax:
// the observed serve path (tracer, event feeds, progress hooks, flight
// recorder) may cost at most this fraction of bare jobs/s throughput.
const ServeOverheadLimit = 0.05

// ServeMetrics is the serve-path observability measurement, taken from
// BenchmarkServeObserved's bare/observed sub-benchmarks.
type ServeMetrics struct {
	BareJPS      float64 `json:"bare_jobs_per_s"`     // telemetry disabled
	ObservedJPS  float64 `json:"observed_jobs_per_s"` // production shape
	OverheadFrac float64 `json:"overhead_frac"`       // 1 - observed/bare
}

// MinScalingEfficiency is the absolute gate on parallel scaling: with
// the machine saturated (one simulator per core), aggregate throughput
// must be at least this fraction of perfect linear scaling over the
// single-worker point. On a single-core machine the saturated and
// single-worker points coincide, so the gate is trivially met there and
// bites only where real parallelism exists.
const MinScalingEfficiency = 0.75

// ParallelPoint is the aggregate machine throughput at one worker
// count, taken from one BenchmarkSimulatorParallel sub-benchmark.
type ParallelPoint struct {
	Workers int     `json:"workers"`
	IPS     float64 `json:"ips"` // summed committed sim insts / wall second
}

// ParallelMetrics is the machine-saturation measurement, taken from
// BenchmarkSimulatorParallel (recorded to BENCH_parallel.json).
type ParallelMetrics struct {
	CPUs       int             `json:"cpus"`                 // GOMAXPROCS at measurement time
	Points     []ParallelPoint `json:"points"`               // ascending worker counts
	Efficiency float64         `json:"efficiency,omitempty"` // IPS(CPUs) / (CPUs * IPS(1))
}

// IPSAt returns the aggregate throughput measured at a worker count, 0
// when that point was not measured.
func (p *ParallelMetrics) IPSAt(workers int) float64 {
	for _, pt := range p.Points {
		if pt.Workers == workers {
			return pt.IPS
		}
	}
	return 0
}

// MachineIPS returns the aggregate throughput with the machine
// saturated: the point at CPUs workers, falling back to the
// largest measured worker count.
func (p *ParallelMetrics) MachineIPS() float64 {
	if v := p.IPSAt(p.CPUs); v > 0 {
		return v
	}
	best, ips := 0, 0.0
	for _, pt := range p.Points {
		if pt.Workers > best {
			best, ips = pt.Workers, pt.IPS
		}
	}
	return ips
}

// FigureTime is the wall time of one figure/table benchmark.
type FigureTime struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// SweepRecord is one experiment-sweep measurement appended by
// `cmd/experiments -bench-out`.
type SweepRecord struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Insts       uint64  `json:"insts,omitempty"`
	IPS         float64 `json:"ips,omitempty"`
}

// Run is one trajectory entry: where (git SHA), when, and what was
// measured.
type Run struct {
	GitSHA     string           `json:"git_sha"`
	Timestamp  string           `json:"timestamp"` // RFC 3339, UTC
	GoVersion  string           `json:"go_version,omitempty"`
	Label      string           `json:"label,omitempty"`
	Iterations int              `json:"iterations,omitempty"`
	Sim        *SimMetrics      `json:"sim,omitempty"`
	Serve      *ServeMetrics    `json:"serve,omitempty"`
	Parallel   *ParallelMetrics `json:"parallel,omitempty"`
	Figures    []FigureTime     `json:"figures,omitempty"`
	Sweeps     []SweepRecord    `json:"sweeps,omitempty"`
}

// File is the whole trajectory.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Load reads a trajectory file. A missing file is not an error: it
// returns an empty trajectory ready to append to. A present-but-invalid
// file is an error wrapping simerr.ErrCorrupt.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: Schema}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchreg: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %v: %w", path, err, simerr.ErrCorrupt)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchreg: %s: schema %q, want %q: %w", path, f.Schema, Schema, simerr.ErrCorrupt)
	}
	return &f, nil
}

// Save writes the trajectory as indented JSON (atomically via a
// temp-file rename, so a crash cannot truncate the history).
func (f *File) Save(path string) error {
	f.Schema = Schema
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreg: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchreg: %w", err)
	}
	return os.Rename(tmp, path)
}

// LastWithSim returns the most recent run carrying simulator metrics,
// or nil.
func (f *File) LastWithSim() *Run {
	for i := len(f.Runs) - 1; i >= 0; i-- {
		if f.Runs[i].Sim != nil {
			return &f.Runs[i]
		}
	}
	return nil
}

// LastWithParallel returns the most recent run carrying parallel
// (machine-saturation) metrics, or nil.
func (f *File) LastWithParallel() *Run {
	for i := len(f.Runs) - 1; i >= 0; i-- {
		if f.Runs[i].Parallel != nil {
			return &f.Runs[i]
		}
	}
	return nil
}

// CompareParallel gates the machine-saturation metrics with their own
// threshold, independent of the single-simulator gate. Two checks: cur's
// scaling efficiency must clear MinScalingEfficiency absolutely, and the
// aggregate per-machine IPS must not drop more than threshold against
// prev (compared only when both runs measured the same CPU count, so a
// trajectory moved between machines never trips a false regression).
// Either run lacking parallel metrics compares clean where it is needed.
func CompareParallel(prev, cur *Run, threshold float64) error {
	if cur == nil || cur.Parallel == nil {
		return nil
	}
	p := cur.Parallel
	if p.Efficiency > 0 && p.Efficiency < MinScalingEfficiency {
		return fmt.Errorf("benchreg: parallel scaling efficiency %.2f below %.2f (%d workers: %.0f insts/s vs %d x %.0f linear)",
			p.Efficiency, MinScalingEfficiency, p.CPUs, p.MachineIPS(), p.CPUs, p.IPSAt(1))
	}
	if prev == nil || prev.Parallel == nil || prev.Parallel.CPUs != p.CPUs {
		return nil
	}
	pm, cm := prev.Parallel.MachineIPS(), p.MachineIPS()
	if pm <= 0 {
		return nil
	}
	drop := 1 - cm/pm
	if drop > threshold {
		return fmt.Errorf("benchreg: per-machine IPS regression %.1f%% (%.0f -> %.0f insts/s at %d workers, threshold %.0f%%)",
			drop*100, pm, cm, p.CPUs, threshold*100)
	}
	return nil
}

// Compare checks cur against prev: an IPS drop larger than threshold
// (fractional, e.g. 0.10 = 10%) is a regression error. Either run
// lacking sim metrics compares clean. When cur carries serve metrics,
// the observability overhead is additionally gated (absolutely, not
// against prev) at ServeOverheadLimit.
func Compare(prev, cur *Run, threshold float64) error {
	if cur != nil && cur.Serve != nil && cur.Serve.OverheadFrac > ServeOverheadLimit {
		return fmt.Errorf("benchreg: serve observability overhead %.1f%% (%.1f -> %.1f jobs/s, limit %.0f%%)",
			cur.Serve.OverheadFrac*100, cur.Serve.BareJPS, cur.Serve.ObservedJPS, ServeOverheadLimit*100)
	}
	if prev == nil || cur == nil || prev.Sim == nil || cur.Sim == nil || prev.Sim.IPS <= 0 {
		return nil
	}
	drop := 1 - cur.Sim.IPS/prev.Sim.IPS
	if drop > threshold {
		return fmt.Errorf("benchreg: IPS regression %.1f%% (%.0f -> %.0f insts/s, threshold %.0f%%)",
			drop*100, prev.Sim.IPS, cur.Sim.IPS, threshold*100)
	}
	return nil
}

// BuildRun distills parsed benchmark output into a trajectory entry.
// simInsts is the per-iteration instruction budget of BenchmarkSimulator
// (bench_test.go's benchInsts), used to scale allocs/op to allocs per
// committed instruction.
func BuildRun(p *Parsed, simInsts uint64, gitSHA, timestamp, goVersion, label string, iterations int) Run {
	run := Run{
		GitSHA:     gitSHA,
		Timestamp:  timestamp,
		GoVersion:  goVersion,
		Label:      label,
		Iterations: iterations,
	}
	var names []string
	for name := range p.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var serve ServeMetrics
	var par ParallelMetrics
	for _, name := range names {
		b := p.Benchmarks[name]
		switch name {
		case "BenchmarkServeObserved/bare":
			serve.BareJPS = b.Metric("jobs/s")
			continue
		case "BenchmarkServeObserved/observed":
			serve.ObservedJPS = b.Metric("jobs/s")
			continue
		}
		if w, ok := parallelWorkers(name); ok {
			par.Points = append(par.Points, ParallelPoint{
				Workers: w,
				IPS:     b.Metric("sim_insts_per_machine/s"),
			})
			if c := int(b.Metric("machine_cpus")); c > par.CPUs {
				par.CPUs = c
			}
			continue
		}
		if name == "BenchmarkSimulator" {
			sim := &SimMetrics{
				IPS:       b.Metric("sim_insts/s"),
				NsPerInst: b.Metric("ns/op") / float64(simInsts),
			}
			if allocs, ok := b.Metrics["allocs/op"]; ok && simInsts > 0 {
				sim.AllocsPerCommit = allocs / float64(simInsts)
			}
			run.Sim = sim
			continue
		}
		run.Figures = append(run.Figures, FigureTime{
			Name:        name,
			WallSeconds: b.Metric("ns/op") / 1e9,
		})
	}
	if serve.BareJPS > 0 && serve.ObservedJPS > 0 {
		serve.OverheadFrac = 1 - serve.ObservedJPS/serve.BareJPS
		run.Serve = &serve
	}
	if len(par.Points) > 0 {
		sort.Slice(par.Points, func(i, j int) bool { return par.Points[i].Workers < par.Points[j].Workers })
		if one, sat := par.IPSAt(1), par.IPSAt(par.CPUs); one > 0 && sat > 0 && par.CPUs > 0 {
			par.Efficiency = sat / (float64(par.CPUs) * one)
		}
		run.Parallel = &par
	}
	return run
}

// parallelWorkers extracts N from a "BenchmarkSimulatorParallel/workers=N"
// benchmark name.
func parallelWorkers(name string) (int, bool) {
	const prefix = "BenchmarkSimulatorParallel/workers="
	s, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	w, err := strconv.Atoi(s)
	if err != nil || w <= 0 {
		return 0, false
	}
	return w, true
}
