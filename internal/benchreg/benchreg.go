// Package benchreg is the benchmark-regression harness: it runs the
// repository's bench_test.go suite, distills the output into a compact
// JSON trajectory (BENCH_pipeline.json), and compares new runs against
// the previous entry with a configurable regression threshold.
//
// The trajectory file is append-only: every invocation adds one Run, so
// the file records how simulator throughput evolved across commits (the
// git SHA and timestamp are captured per run). cmd/experiments can
// append per-sweep wall-time/IPS records into the same schema via its
// -bench-out flag.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"rvpsim/internal/simerr"
)

// Schema identifies the BENCH JSON layout. Bump on incompatible change.
const Schema = "rvpsim-bench/v1"

// SimMetrics is the headline simulator-throughput measurement, taken
// from BenchmarkSimulator.
type SimMetrics struct {
	IPS             float64 `json:"ips"`               // committed sim instructions / wall second
	NsPerInst       float64 `json:"ns_per_inst"`       // inverse, in nanoseconds
	AllocsPerCommit float64 `json:"allocs_per_commit"` // heap allocations per committed instruction
}

// ServeOverheadLimit is the gate on the service observability tax:
// the observed serve path (tracer, event feeds, progress hooks, flight
// recorder) may cost at most this fraction of bare jobs/s throughput.
const ServeOverheadLimit = 0.05

// ServeMetrics is the serve-path observability measurement, taken from
// BenchmarkServeObserved's bare/observed sub-benchmarks.
type ServeMetrics struct {
	BareJPS      float64 `json:"bare_jobs_per_s"`     // telemetry disabled
	ObservedJPS  float64 `json:"observed_jobs_per_s"` // production shape
	OverheadFrac float64 `json:"overhead_frac"`       // 1 - observed/bare
}

// FigureTime is the wall time of one figure/table benchmark.
type FigureTime struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// SweepRecord is one experiment-sweep measurement appended by
// `cmd/experiments -bench-out`.
type SweepRecord struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Insts       uint64  `json:"insts,omitempty"`
	IPS         float64 `json:"ips,omitempty"`
}

// Run is one trajectory entry: where (git SHA), when, and what was
// measured.
type Run struct {
	GitSHA     string        `json:"git_sha"`
	Timestamp  string        `json:"timestamp"` // RFC 3339, UTC
	GoVersion  string        `json:"go_version,omitempty"`
	Label      string        `json:"label,omitempty"`
	Iterations int           `json:"iterations,omitempty"`
	Sim        *SimMetrics   `json:"sim,omitempty"`
	Serve      *ServeMetrics `json:"serve,omitempty"`
	Figures    []FigureTime  `json:"figures,omitempty"`
	Sweeps     []SweepRecord `json:"sweeps,omitempty"`
}

// File is the whole trajectory.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Load reads a trajectory file. A missing file is not an error: it
// returns an empty trajectory ready to append to. A present-but-invalid
// file is an error wrapping simerr.ErrCorrupt.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: Schema}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchreg: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %v: %w", path, err, simerr.ErrCorrupt)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchreg: %s: schema %q, want %q: %w", path, f.Schema, Schema, simerr.ErrCorrupt)
	}
	return &f, nil
}

// Save writes the trajectory as indented JSON (atomically via a
// temp-file rename, so a crash cannot truncate the history).
func (f *File) Save(path string) error {
	f.Schema = Schema
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreg: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchreg: %w", err)
	}
	return os.Rename(tmp, path)
}

// LastWithSim returns the most recent run carrying simulator metrics,
// or nil.
func (f *File) LastWithSim() *Run {
	for i := len(f.Runs) - 1; i >= 0; i-- {
		if f.Runs[i].Sim != nil {
			return &f.Runs[i]
		}
	}
	return nil
}

// Compare checks cur against prev: an IPS drop larger than threshold
// (fractional, e.g. 0.10 = 10%) is a regression error. Either run
// lacking sim metrics compares clean. When cur carries serve metrics,
// the observability overhead is additionally gated (absolutely, not
// against prev) at ServeOverheadLimit.
func Compare(prev, cur *Run, threshold float64) error {
	if cur != nil && cur.Serve != nil && cur.Serve.OverheadFrac > ServeOverheadLimit {
		return fmt.Errorf("benchreg: serve observability overhead %.1f%% (%.1f -> %.1f jobs/s, limit %.0f%%)",
			cur.Serve.OverheadFrac*100, cur.Serve.BareJPS, cur.Serve.ObservedJPS, ServeOverheadLimit*100)
	}
	if prev == nil || cur == nil || prev.Sim == nil || cur.Sim == nil || prev.Sim.IPS <= 0 {
		return nil
	}
	drop := 1 - cur.Sim.IPS/prev.Sim.IPS
	if drop > threshold {
		return fmt.Errorf("benchreg: IPS regression %.1f%% (%.0f -> %.0f insts/s, threshold %.0f%%)",
			drop*100, prev.Sim.IPS, cur.Sim.IPS, threshold*100)
	}
	return nil
}

// BuildRun distills parsed benchmark output into a trajectory entry.
// simInsts is the per-iteration instruction budget of BenchmarkSimulator
// (bench_test.go's benchInsts), used to scale allocs/op to allocs per
// committed instruction.
func BuildRun(p *Parsed, simInsts uint64, gitSHA, timestamp, goVersion, label string, iterations int) Run {
	run := Run{
		GitSHA:     gitSHA,
		Timestamp:  timestamp,
		GoVersion:  goVersion,
		Label:      label,
		Iterations: iterations,
	}
	var names []string
	for name := range p.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var serve ServeMetrics
	for _, name := range names {
		b := p.Benchmarks[name]
		switch name {
		case "BenchmarkServeObserved/bare":
			serve.BareJPS = b.Metric("jobs/s")
			continue
		case "BenchmarkServeObserved/observed":
			serve.ObservedJPS = b.Metric("jobs/s")
			continue
		}
		if name == "BenchmarkSimulator" {
			sim := &SimMetrics{
				IPS:       b.Metric("sim_insts/s"),
				NsPerInst: b.Metric("ns/op") / float64(simInsts),
			}
			if allocs, ok := b.Metrics["allocs/op"]; ok && simInsts > 0 {
				sim.AllocsPerCommit = allocs / float64(simInsts)
			}
			run.Sim = sim
			continue
		}
		run.Figures = append(run.Figures, FigureTime{
			Name:        name,
			WallSeconds: b.Metric("ns/op") / 1e9,
		})
	}
	if serve.BareJPS > 0 && serve.ObservedJPS > 0 {
		serve.OverheadFrac = 1 - serve.ObservedJPS/serve.BareJPS
		run.Serve = &serve
	}
	return run
}
