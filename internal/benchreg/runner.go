package benchreg

import (
	"bytes"
	"fmt"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"rvpsim/internal/obs"
)

// Options configures one harness invocation.
type Options struct {
	Dir       string // repository root (package with bench_test.go); "" = cwd
	Pattern   string // -bench regexp; "" = "."
	Benchtime string // -benchtime; "" = "1x"
	Count     int    // -count repetitions; <= 0 = 1
	Label     string // recorded on the Run entry
	SimInsts  uint64 // bench_test.go's per-iteration instruction budget
}

// Execute runs `go test -run ^$ -bench ... -benchmem` in opts.Dir,
// parses the output, and distills it into a trajectory Run stamped with
// the current git SHA and UTC time. The benchmark process's combined
// output is returned for logging either way.
func Execute(opts Options) (Run, string, error) {
	if opts.Pattern == "" {
		opts.Pattern = "."
	}
	if opts.Benchtime == "" {
		opts.Benchtime = "1x"
	}
	if opts.Count <= 0 {
		opts.Count = 1
	}
	args := []string{
		"test", "-run", "^$",
		"-bench", opts.Pattern,
		"-benchtime", opts.Benchtime,
		"-count", fmt.Sprint(opts.Count),
		"-benchmem",
		".",
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()
	text := out.String()
	if runErr != nil {
		return Run{}, text, fmt.Errorf("benchreg: go test: %w", runErr)
	}
	parsed, err := ParseBenchOutput(strings.NewReader(text))
	if err != nil {
		return Run{}, text, err
	}
	run := BuildRun(parsed, opts.SimInsts,
		obs.GitDescribe(opts.Dir),
		time.Now().UTC().Format(time.RFC3339),
		runtime.Version(),
		opts.Label,
		opts.Count)
	return run, text, nil
}
