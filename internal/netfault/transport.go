package netfault

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Transport wraps an http.RoundTripper and threads every round trip
// through an Injector (one OpRequest per RoundTrip call). It is the
// client-side fault surface: the retrying rvpc client and the fleet
// coordinator's dispatch path take it via their HTTP-client options.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// NewTransport wraps inner (http.DefaultTransport when nil) with inj.
func NewTransport(inner http.RoundTripper, inj *Injector) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, inj: inj}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	done := req.Context().Done()
	// An active partition stalls the request like a retransmitting TCP
	// stack would; the caller's context is the escape hatch.
	if !t.inj.awaitHealed(OpRequest, done) {
		return nil, req.Context().Err()
	}
	p, ok := t.inj.step(OpRequest)
	if !ok {
		return t.inner.RoundTrip(req)
	}
	switch p.Kind {
	case KindLatency:
		d := p.Dur
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		if !sleepOr(d, done) {
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)

	case KindReset:
		// The request is delivered — the server does the work — but the
		// response connection dies. This is the case that punishes clients
		// whose retries resend a drained body.
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, fmt.Errorf("%w (while injecting reset: %w)", err, ErrReset)
		}
		drainClose(resp)
		return nil, ErrReset

	case KindPartition:
		// step armed the blackhole; deliver after heal (or die with the
		// caller's context).
		if !t.inj.awaitHealed(OpRequest, done) {
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)

	case KindPartitionOneWay:
		// The request reaches the server; the response never comes back.
		resp, err := t.inner.RoundTrip(req)
		if err == nil {
			drainClose(resp)
		}
		if !t.inj.awaitHealed(OpRequest, done) {
			return nil, req.Context().Err()
		}
		return nil, fmt.Errorf("%w (response lost to one-way partition)", ErrReset)

	case KindTruncate:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		k := int64(64)
		if resp.ContentLength > 1 {
			k = resp.ContentLength / 2
		}
		resp.Body = &truncBody{inner: resp.Body, remaining: k}
		return resp, nil

	case KindFlip:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &flipBody{inner: resp.Body}
		return resp, nil

	case KindDuplicate:
		// At-least-once delivery: the request lands twice. Needs a
		// rewindable body; without GetBody it degrades to a single
		// delivery (nothing left to resend).
		first, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		if req.Body != nil && req.GetBody == nil {
			return first, nil
		}
		again := req.Clone(req.Context())
		if req.GetBody != nil {
			again.Body, err = req.GetBody()
			if err != nil {
				return first, nil
			}
		}
		second, err := t.inner.RoundTrip(again)
		if err != nil {
			return first, nil
		}
		drainClose(first)
		return second, nil

	case KindSlowLoris:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		d := p.Dur
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		resp.Body = &dripBody{inner: resp.Body, pause: d, done: done}
		return resp, nil

	case KindSkewRetryAfter:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		skew := p.Skew
		if skew <= 0 {
			skew = 10
		}
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			resp.Header.Set("Retry-After", strconv.Itoa(int(float64(secs)*skew)))
		}
		return resp, nil

	default:
		return t.inner.RoundTrip(req)
	}
}

// drainClose consumes and closes a response body so the underlying
// connection can be reused.
func drainClose(resp *http.Response) {
	if resp == nil || resp.Body == nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// truncBody delivers a byte budget, then cuts the stream with the
// unexpected-EOF a torn connection produces.
type truncBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncBody) Close() error { return b.inner.Close() }

// flipBody flips one bit in the first chunk read (see flipDigit).
type flipBody struct {
	inner   io.ReadCloser
	flipped bool
}

func (b *flipBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if n > 0 && !b.flipped {
		flipDigit(p[:n])
		b.flipped = true
	}
	return n, err
}

func (b *flipBody) Close() error { return b.inner.Close() }

// dripBody trickles the body: a pause before every read, at most 16
// bytes per read.
type dripBody struct {
	inner io.ReadCloser
	pause time.Duration
	done  <-chan struct{}
}

func (b *dripBody) Read(p []byte) (int, error) {
	if !sleepOr(b.pause, b.done) {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > 16 {
		p = p[:16]
	}
	return b.inner.Read(p)
}

func (b *dripBody) Close() error { return b.inner.Close() }
