package netfault

import (
	"io"
	"net"
	"strings"
	"sync"
)

// Proxy is a TCP proxy that forwards every connection to a fixed target
// through an Injector: the way to put an unmodified process (a real
// rvpd worker) behind a hostile link. The target-side connection is a
// wrapped Conn, so Read faults hit the response direction and Write
// faults the request direction; accepts themselves count as OpAccept.
type Proxy struct {
	inj    *Injector
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on an ephemeral loopback port and forwards to target
// (a host:port, or an http:// URL of one) through inj.
func NewProxy(target string, inj *Injector) (*Proxy, error) {
	target = strings.TrimPrefix(target, "http://")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{inj: inj, target: target, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's bound host:port.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL (what a coordinator registers as the
// worker URL).
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Injector returns the proxy's injector (for schedule inspection).
func (p *Proxy) Injector() *Injector { return p.inj }

// Close stops accepting, tears down every live connection, and waits
// for the forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	return err
}

// track remembers a live conn so Close can tear it down; false means
// the proxy is already closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		plan, ok := p.inj.step(OpAccept)
		if ok && plan.Kind == KindReset {
			_ = client.Close()
			continue
		}
		p.wg.Add(1)
		go p.serve(client)
	}
}

// serve forwards one client connection to the target through a faulted
// conn. A dial failure (the target was SIGKILLed, say) just drops the
// client — exactly what a dead backend looks like.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	if !p.track(client) {
		_ = client.Close()
		return
	}
	defer func() { p.untrack(client); _ = client.Close() }()

	raw, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	target := WrapConn(raw, p.inj)
	if !p.track(target) {
		_ = target.Close()
		return
	}
	defer func() { p.untrack(target); _ = target.Close() }()

	var inner sync.WaitGroup
	inner.Add(1)
	go func() {
		defer inner.Done()
		// Requests: client -> target (faults on target.Write).
		_, _ = io.Copy(target, client)
		// EOF from the client ends the request stream; closing the
		// target unblocks its reader.
		_ = target.Close()
	}()
	// Responses: target -> client (faults on target.Read).
	_, _ = io.Copy(client, target)
	_ = client.Close()
	inner.Wait()
}
