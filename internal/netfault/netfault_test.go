package netfault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestScheduleDeterministic is the reproduction contract: one seed, one
// schedule.
func TestScheduleDeterministic(t *testing.T) {
	kinds := []Kind{KindReset, KindLatency, KindFlip, KindPartition}
	a := Schedule(42, 500, 12, kinds, time.Second)
	b := Schedule(42, 500, 12, kinds, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%s\n%s", FormatPlans(a), FormatPlans(b))
	}
	if len(a) != 12 {
		t.Fatalf("want 12 plans, got %d", len(a))
	}
	seen := map[int64]bool{}
	for _, p := range a {
		if p.At < 0 || p.At >= 500 {
			t.Errorf("plan %s outside span", p)
		}
		if seen[p.At] {
			t.Errorf("duplicate op index %d", p.At)
		}
		seen[p.At] = true
		if p.Dur <= 0 || p.Dur > time.Second {
			t.Errorf("plan %s duration outside (0, 1s]", p)
		}
	}
	c := Schedule(43, 500, 12, kinds, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// newBackend is a test origin that counts requests and serves a JSON
// payload with a numeric field (so flips have a digit to corrupt).
func newBackend(t *testing.T, retryAfter string) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var hits, bodyBytes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		n, _ := io.Copy(io.Discard, r.Body)
		bodyBytes.Add(n)
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		fmt.Fprint(w, `{"value":1234567890,"pad":"abcdefghijklmnopqrstuvwxyz"}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits, &bodyBytes
}

func transportGet(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

func TestTransportLatency(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindLatency, Dur: 80 * time.Millisecond})
	tr := NewTransport(nil, inj)
	start := time.Now()
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("latency fault added only %v", d)
	}
	if got := inj.Trace(); len(got) != 1 || got[0] != OpRequest {
		t.Fatalf("trace = %v", got)
	}
}

func TestTransportResetDeliversRequestFirst(t *testing.T) {
	srv, hits, bodyBytes := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindReset})
	tr := NewTransport(nil, inj)

	body := bytes.Repeat([]byte("x"), 4096)
	req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.RoundTrip(req)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// The worst case for retrying clients: the server did the work.
	if hits.Load() != 1 || bodyBytes.Load() != int64(len(body)) {
		t.Fatalf("request not fully delivered before reset: hits=%d bytes=%d", hits.Load(), bodyBytes.Load())
	}
}

func TestTransportPartitionDelaysThenDelivers(t *testing.T) {
	srv, hits, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindPartition, Dur: 100 * time.Millisecond})
	tr := NewTransport(nil, inj)
	start := time.Now()
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("partition healed too fast: %v", d)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d", hits.Load())
	}
	// A second request after heal flows cleanly.
	resp, err = transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
}

func TestTransportPartitionRespectsContext(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindPartition, Dur: 5 * time.Second})
	tr := NewTransport(nil, inj)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	if err == nil {
		t.Fatal("expected context error inside partition")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context did not cut the partition wait short")
	}
}

func TestTransportOneWayPartitionLosesResponse(t *testing.T) {
	srv, hits, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindPartitionOneWay, Dur: 50 * time.Millisecond})
	tr := NewTransport(nil, inj)
	_, err := transportGet(t, tr, srv.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected loss, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("request should have reached the server: hits=%d", hits.Load())
	}
}

func TestTransportTruncate(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindTruncate})
	tr := NewTransport(nil, inj)
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v (read %d bytes)", err, len(raw))
	}
	if len(raw) == 0 || int64(len(raw)) >= resp.ContentLength && resp.ContentLength > 0 {
		t.Fatalf("truncation delivered %d bytes of %d", len(raw), resp.ContentLength)
	}
}

func TestTransportFlipCorruptsOneDigit(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	clean, err := transportGet(t, NewTransport(nil, NewInjector()), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(clean.Body)
	clean.Body.Close()

	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindFlip})
	resp, err := transportGet(t, NewTransport(nil, inj), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("flip changed length: %d != %d", len(got), len(want))
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bytes, want exactly 1\nwant %q\ngot  %q", diff, want, got)
	}
}

func TestTransportDuplicateDeliversTwice(t *testing.T) {
	srv, hits, bodyBytes := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindDuplicate})
	tr := NewTransport(nil, inj)
	body := []byte(`{"k":1}`)
	req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if req.GetBody == nil {
		t.Fatal("bytes.Reader bodies must set GetBody")
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if hits.Load() != 2 {
		t.Fatalf("duplicate delivered %d times", hits.Load())
	}
	if bodyBytes.Load() != 2*int64(len(body)) {
		t.Fatalf("duplicate bodies incomplete: %d bytes", bodyBytes.Load())
	}
}

func TestTransportSlowLoris(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindSlowLoris, Dur: 5 * time.Millisecond})
	tr := NewTransport(nil, inj)
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	start := time.Now()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// ~59 bytes at ≤16 bytes/read with a 5ms pause each: ≥4 reads.
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow-loris body arrived too fast: %v for %d bytes", d, len(raw))
	}
}

func TestTransportSkewsRetryAfter(t *testing.T) {
	srv, _, _ := newBackend(t, "3")
	inj := NewInjector()
	inj.FailAt(Plan{At: 0, Kind: KindSkewRetryAfter, Skew: 10})
	tr := NewTransport(nil, inj)
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want 30", got)
	}
}

// TestProxyForwardsCleanly: with an empty schedule the proxy is a
// transparent pipe.
func TestProxyForwardsCleanly(t *testing.T) {
	srv, hits, _ := newBackend(t, "")
	inj := NewInjector()
	px, err := NewProxy(srv.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	resp, err := http.Get(px.URL())
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if hits.Load() != 1 || !bytes.Contains(raw, []byte("1234567890")) {
		t.Fatalf("proxy mangled a clean request: hits=%d body=%q", hits.Load(), raw)
	}
	if ops := inj.Ops(); ops < 2 { // at least accept + some reads/writes
		t.Fatalf("injector counted %d ops", ops)
	}
}

// TestProxyReadReset: a reset on the response path kills the request
// but the next connection succeeds.
func TestProxyReadReset(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	// Op 0 is the accept; the first read of the response stream comes
	// later. Schedule resets broadly over early ops to catch it.
	for i := int64(1); i < 8; i++ {
		inj.FailAt(Plan{At: i, Kind: KindReset})
	}
	px, err := NewProxy(srv.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	hc := &http.Client{Timeout: 5 * time.Second}
	if _, err := hc.Get(px.URL()); err == nil {
		t.Fatal("expected the faulted connection to fail")
	}
	// The schedule is finite: a retrying client gets through once the
	// planned resets are spent — the convergence contract chaos tests
	// lean on.
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := hc.Get(px.URL())
		if err == nil {
			drainClose(resp)
			return
		}
		lastErr = err
	}
	t.Fatalf("no request succeeded after the schedule drained: %v\ntrace: %v", lastErr, inj.Trace())
}

// TestProxyFlipCorruptsPayload: a flip on the response path reaches the
// client as a changed byte, not a transport error.
func TestProxyFlipCorruptsPayload(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	px, err := NewProxy(srv.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	hc := &http.Client{Timeout: 5 * time.Second}

	resp, err := hc.Get(px.URL())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	// Corrupt every read op for the next request. The proxy faults the
	// raw TCP stream, so the flip may land in the HTTP headers (framing
	// damage surfacing as a client error) or in the body (a changed
	// byte); either way the payload must not arrive intact.
	n := inj.Ops()
	for i := n; i < n+16; i++ {
		inj.FailAt(Plan{At: i, Kind: KindFlip})
	}
	resp, err = hc.Get(px.URL())
	if err != nil {
		return // framing corrupted: the client saw the damage
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && bytes.Equal(got, want) {
		t.Fatalf("flip left the payload intact: %q", got)
	}
}

// TestConnPartitionBlocksThenHeals drives a wrapped pipe directly: a
// full partition stalls both directions, then delivery resumes.
func TestConnPartitionBlocksThenHeals(t *testing.T) {
	srv, _, _ := newBackend(t, "")
	inj := NewInjector()
	px, err := NewProxy(srv.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	// Partition the link at the first post-accept op.
	inj.FailAt(Plan{At: 1, Kind: KindPartition, Dur: 120 * time.Millisecond})
	hc := &http.Client{Timeout: 5 * time.Second}
	start := time.Now()
	resp, err := hc.Get(px.URL())
	if err != nil {
		t.Fatalf("partitioned request should heal and succeed: %v", err)
	}
	drainClose(resp)
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("request finished in %v, inside the partition window", d)
	}
}
