// Package netfault is the deterministic network fault seam: the
// network-side twin of internal/vfs. An Injector counts network
// operations (HTTP round trips, accepted connections, connection reads
// and writes) and applies scheduled faults at exact op indices, so a
// failing run replays from nothing but its schedule — and a schedule is
// derivable from a single printed seed.
//
// Two wrappers thread the injector into real traffic:
//
//   - Transport wraps an http.RoundTripper (client-side faults: the
//     retrying rvpc client, the fleet coordinator's dispatch path).
//   - Conn/WrapListener wrap net.Conn/net.Listener, and Proxy chains
//     them into a TCP proxy so an unmodified rvpd worker process can sit
//     behind a hostile link in end-to-end tests.
//
// The fault taxonomy covers what real networks do to protocols: added
// latency, connection reset, full and one-way partition, response
// truncation, payload bit-flip (silent corruption), duplicated
// delivery, slow-loris trickle reads, and clock-skewed Retry-After
// hints.
//
// Determinism contract: the schedule — which op index suffers which
// fault — is exactly reproducible from a seed. Under concurrent
// connections the assignment of op indices to specific packets depends
// on goroutine interleaving, so byte-level outcomes may vary run to
// run; what tests assert is that the system converges to the correct
// result under any interleaving of the scheduled faults.
package netfault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names one network operation class the injector can target.
type Op string

const (
	// OpRequest is one HTTP round trip through a Transport.
	OpRequest Op = "request"
	// OpAccept is one accepted connection on a wrapped listener/proxy.
	OpAccept Op = "accept"
	// OpRead is one Read on a wrapped connection (the response direction
	// in a Proxy).
	OpRead Op = "read"
	// OpWrite is one Write on a wrapped connection (the request
	// direction in a Proxy).
	OpWrite Op = "write"
)

// ErrInjected marks every injected failure so tests can tell a planted
// fault from a real one.
var ErrInjected = errors.New("netfault: injected fault")

// ErrReset is the injected connection reset. It wraps both ErrInjected
// and ECONNRESET, so code matching either classification sees it.
var ErrReset = fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)

// Kind is what an injection does to its operation.
type Kind int

const (
	// KindLatency delays the operation by Dur, then lets it proceed.
	KindLatency Kind = iota
	// KindReset kills the connection: the operation fails with ErrReset.
	// On a Transport the request is still delivered before the response
	// is torn down — the worst case for a retrying client, whose retry
	// must rewind the request body.
	KindReset
	// KindPartition blackholes the link in both directions for Dur:
	// operations block (delivery resumes after heal, like TCP
	// retransmission) instead of failing fast.
	KindPartition
	// KindPartitionOneWay blackholes only the response direction for
	// Dur: requests keep reaching the far side, acknowledgements and
	// responses do not — the asymmetric-partition case that breaks naive
	// lease protocols.
	KindPartitionOneWay
	// KindTruncate delivers a prefix of the payload, then cuts the
	// stream.
	KindTruncate
	// KindFlip delivers the payload with one bit flipped and reports
	// success — silent corruption in flight. The flip targets the first
	// ASCII digit (low bit), so JSON payloads stay parseable and the
	// corruption reaches the decoded values instead of dying in the
	// decoder.
	KindFlip
	// KindDuplicate delivers the payload twice (at-least-once delivery;
	// on a Transport the whole request is issued twice).
	KindDuplicate
	// KindSlowLoris switches the stream to trickle mode: every
	// subsequent read/write on it moves at most a few bytes after a Dur
	// pause.
	KindSlowLoris
	// KindSkewRetryAfter multiplies a response's Retry-After header by
	// Skew — the clock-skewed server whose hints would stretch a naive
	// retry schedule forever. Transport only; elsewhere it degrades to
	// KindLatency.
	KindSkewRetryAfter
)

// String names the kind for schedule printouts.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindReset:
		return "reset"
	case KindPartition:
		return "partition"
	case KindPartitionOneWay:
		return "partition1w"
	case KindTruncate:
		return "truncate"
	case KindFlip:
		return "flip"
	case KindDuplicate:
		return "duplicate"
	case KindSlowLoris:
		return "slowloris"
	case KindSkewRetryAfter:
		return "skew"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan is one scheduled injection.
type Plan struct {
	// At is the 0-based index (over counted operations) to inject at.
	At int64
	// Kind is what happens there.
	Kind Kind
	// Dur parameterizes time-shaped faults: the added latency, the
	// partition duration, the slow-loris per-read pause. Zero takes a
	// kind-appropriate default.
	Dur time.Duration
	// Skew is the Retry-After multiplier for KindSkewRetryAfter
	// (default 10).
	Skew float64
}

func (p Plan) String() string {
	s := fmt.Sprintf("@%d %s", p.At, p.Kind)
	if p.Dur > 0 {
		s += fmt.Sprintf(" dur=%v", p.Dur)
	}
	if p.Skew > 0 {
		s += fmt.Sprintf(" skew=%g", p.Skew)
	}
	return s
}

// FormatPlans renders a schedule compactly for test logs — the
// reproduction recipe a failing chaos run prints.
func FormatPlans(plans []Plan) string {
	parts := make([]string, len(plans))
	for i, p := range plans {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Injector counts operations and applies the fault schedule. One
// injector models one link; wrappers sharing it share its op counter
// and partition state.
type Injector struct {
	mu    sync.Mutex
	n     int64
	plans map[int64]Plan
	ops   []Op

	// Partition state: while now < partUntil the link is blackholed
	// (both directions, or responses only with partOneWay).
	partUntil  time.Time
	partOneWay bool
}

// NewInjector returns an injector with an empty schedule.
func NewInjector() *Injector {
	return &Injector{plans: map[int64]Plan{}}
}

// FailAt schedules plan p (replacing any previous plan at the same
// index).
func (inj *Injector) FailAt(p Plan) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.plans[p.At] = p
}

// Apply schedules every plan in ps.
func (inj *Injector) Apply(ps ...Plan) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, p := range ps {
		inj.plans[p.At] = p
	}
}

// Ops returns the count of operations observed so far.
func (inj *Injector) Ops() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.n
}

// Trace returns the op kinds counted so far, in order — the audit trail
// a failing test prints next to its schedule.
func (inj *Injector) Trace() []Op {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Op(nil), inj.ops...)
}

// step counts one operation and returns the plan scheduled for it, if
// any. Partition plans also arm the injector's partition state here, so
// the triggering op and every later op observe the blackhole.
func (inj *Injector) step(op Op) (Plan, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	i := inj.n
	inj.n++
	inj.ops = append(inj.ops, op)
	p, ok := inj.plans[i]
	if !ok {
		return Plan{}, false
	}
	switch p.Kind {
	case KindPartition, KindPartitionOneWay:
		d := p.Dur
		if d <= 0 {
			d = 200 * time.Millisecond
		}
		until := time.Now().Add(d)
		if until.After(inj.partUntil) {
			inj.partUntil = until
			inj.partOneWay = p.Kind == KindPartitionOneWay
		}
	}
	return p, true
}

// partitionRemaining reports how long the partition (affecting the
// given direction) still holds; zero means the link is clear. Reads
// (the response direction) are blocked by both partition kinds; writes
// only by the full partition.
func (inj *Injector) partitionRemaining(op Op) time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	rem := time.Until(inj.partUntil)
	if rem <= 0 {
		return 0
	}
	if inj.partOneWay && op != OpRead && op != OpRequest {
		return 0
	}
	return rem
}

// awaitHealed blocks until the partition affecting op clears or done is
// closed/signalled; it reports false when done fired first. Delivery
// after heal models TCP retransmission surviving a short partition.
func (inj *Injector) awaitHealed(op Op, done <-chan struct{}) bool {
	for {
		rem := inj.partitionRemaining(op)
		if rem <= 0 {
			return true
		}
		// Wake early to re-check: a longer partition may have been armed
		// meanwhile, or done may fire.
		wait := rem
		if wait > 20*time.Millisecond {
			wait = 20 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-done:
			t.Stop()
			return false
		case <-t.C:
		}
	}
}

// Schedule derives a deterministic fault schedule from a seed: n plans
// spread over the first span counted ops, kinds drawn from kinds,
// durations in (0, maxDur]. Equal seeds give equal schedules — the
// reproduction contract chaos tests print.
func Schedule(seed int64, span int64, n int, kinds []Kind, maxDur time.Duration) []Plan {
	if span <= 0 || n <= 0 || len(kinds) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int64]bool, n)
	plans := make([]Plan, 0, n)
	for len(plans) < n && int64(len(used)) < span {
		at := rng.Int63n(span)
		if used[at] {
			continue
		}
		used[at] = true
		k := kinds[rng.Intn(len(kinds))]
		p := Plan{At: at, Kind: k}
		if maxDur > 0 {
			p.Dur = time.Duration(rng.Int63n(int64(maxDur))) + 1
		}
		if k == KindSkewRetryAfter {
			p.Skew = float64(2 + rng.Intn(9)) // 2x..10x
		}
		plans = append(plans, p)
	}
	// Stable order for printing; the map application is order-free.
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].At < plans[j-1].At; j-- {
			plans[j], plans[j-1] = plans[j-1], plans[j]
		}
	}
	return plans
}

// flipDigit flips the low bit of the first ASCII digit in b (in place),
// turning it into a different digit — a single-bit corruption that
// keeps JSON parseable so it reaches the decoded values. Without a
// digit it falls back to the vfs idiom: flip 0x40 in the middle byte.
func flipDigit(b []byte) {
	for i, c := range b {
		if c >= '0' && c <= '9' {
			b[i] ^= 0x01
			return
		}
	}
	if len(b) > 0 {
		b[len(b)/2] ^= 0x40
	}
}

// sleepOr sleeps d unless done fires first; it reports false when done
// fired.
func sleepOr(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}
