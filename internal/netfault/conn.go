package netfault

import (
	"io"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and threads its reads and writes through an
// Injector. In a Proxy the wrapped side is the target (server) side, so
// Read faults hit the response direction and Write faults the request
// direction — matching the Op taxonomy.
type Conn struct {
	inner net.Conn
	inj   *Injector

	mu sync.Mutex
	// done closes when the conn closes, releasing partition waiters.
	done   chan struct{}
	closed bool
	// cut marks a truncated stream: reads return EOF, writes ErrReset.
	cut bool
	// drip is the slow-loris per-op pause (0 = full speed).
	drip time.Duration
	// replay holds a duplicated chunk to re-deliver on the next read.
	replay []byte
}

// WrapConn wraps inner so its I/O goes through inj.
func WrapConn(inner net.Conn, inj *Injector) *Conn {
	return &Conn{inner: inner, inj: inj, done: make(chan struct{})}
}

// dripDelay returns the current trickle pause.
func (c *Conn) dripDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drip
}

// Read implements net.Conn. A partition (full or one-way) blocks it
// until heal; scheduled faults then shape the delivered bytes.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if c.cut {
		c.mu.Unlock()
		return 0, io.EOF
	}
	if len(c.replay) > 0 {
		// Duplicated delivery: the copy arrives as its own segment,
		// without counting a new op (the duplicate is one fault).
		n := copy(b, c.replay)
		c.replay = c.replay[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()

	if !c.inj.awaitHealed(OpRead, c.done) {
		return 0, net.ErrClosed
	}
	p, ok := c.inj.step(OpRead)
	if d := c.dripDelay(); d > 0 {
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
		if len(b) > 16 {
			b = b[:16]
		}
	}
	if !ok {
		return c.inner.Read(b)
	}
	switch p.Kind {
	case KindLatency, KindSkewRetryAfter:
		d := p.Dur
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
		return c.inner.Read(b)
	case KindReset:
		_ = c.Close()
		return 0, ErrReset
	case KindPartition, KindPartitionOneWay:
		// step armed the partition; this read waits it out like any other.
		if !c.inj.awaitHealed(OpRead, c.done) {
			return 0, net.ErrClosed
		}
		return c.inner.Read(b)
	case KindTruncate:
		n, err := c.inner.Read(b)
		if n > 1 {
			n = n / 2
		}
		c.mu.Lock()
		c.cut = true
		c.mu.Unlock()
		if err != nil {
			return n, err
		}
		return n, nil
	case KindFlip:
		n, err := c.inner.Read(b)
		if n > 0 {
			flipDigit(b[:n])
		}
		return n, err
	case KindDuplicate:
		n, err := c.inner.Read(b)
		if n > 0 {
			c.mu.Lock()
			c.replay = append(c.replay, b[:n]...)
			c.mu.Unlock()
		}
		return n, err
	case KindSlowLoris:
		d := p.Dur
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		c.mu.Lock()
		c.drip = d
		c.mu.Unlock()
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
		if len(b) > 16 {
			b = b[:16]
		}
		return c.inner.Read(b)
	default:
		return c.inner.Read(b)
	}
}

// Write implements net.Conn. Only a full partition blocks writes (a
// one-way partition lets requests through — that asymmetry is its
// point).
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if c.cut {
		c.mu.Unlock()
		return 0, ErrReset
	}
	c.mu.Unlock()

	if !c.inj.awaitHealed(OpWrite, c.done) {
		return 0, net.ErrClosed
	}
	p, ok := c.inj.step(OpWrite)
	if d := c.dripDelay(); d > 0 {
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
	}
	if !ok {
		return c.inner.Write(b)
	}
	switch p.Kind {
	case KindLatency, KindSkewRetryAfter:
		d := p.Dur
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
		return c.inner.Write(b)
	case KindReset:
		_ = c.Close()
		return 0, ErrReset
	case KindPartition, KindPartitionOneWay:
		if !c.inj.awaitHealed(OpWrite, c.done) {
			return 0, net.ErrClosed
		}
		return c.inner.Write(b)
	case KindTruncate:
		k := len(b) / 2
		if k == 0 && len(b) > 0 {
			k = 1
		}
		if _, err := c.inner.Write(b[:k]); err != nil {
			return 0, err
		}
		c.mu.Lock()
		c.cut = true
		c.mu.Unlock()
		return k, ErrReset
	case KindFlip:
		mut := append([]byte(nil), b...)
		flipDigit(mut)
		n, err := c.inner.Write(mut)
		return n, err
	case KindDuplicate:
		if _, err := c.inner.Write(b); err != nil {
			return 0, err
		}
		return c.inner.Write(b)
	case KindSlowLoris:
		d := p.Dur
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		c.mu.Lock()
		c.drip = d
		c.mu.Unlock()
		if !sleepOr(d, c.done) {
			return 0, net.ErrClosed
		}
		return c.inner.Write(b)
	default:
		return c.inner.Write(b)
	}
}

// Close implements net.Conn; it releases any partition waiters.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener: every accepted connection is counted
// (OpAccept) and wrapped in a Conn sharing the injector.
type Listener struct {
	inner net.Listener
	inj   *Injector
}

// WrapListener wraps ln so accepted connections go through inj.
func WrapListener(ln net.Listener, inj *Injector) *Listener {
	return &Listener{inner: ln, inj: inj}
}

// Accept implements net.Listener. A KindReset plan closes the fresh
// connection immediately (the SYN-then-RST pattern) and waits for the
// next one — an http.Server must keep serving through injected resets,
// not die on a non-Temporary Accept error. A KindLatency plan delays
// the hand-off.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		p, ok := l.inj.step(OpAccept)
		if ok {
			switch p.Kind {
			case KindReset:
				_ = conn.Close()
				continue
			case KindLatency:
				d := p.Dur
				if d <= 0 {
					d = 50 * time.Millisecond
				}
				time.Sleep(d)
			}
		}
		return WrapConn(conn, l.inj), nil
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }
